#!/usr/bin/env python
"""Preemptible jobs — the paper's headline use case.

The introduction's motivation: DOE centers want long-running jobs to be
*preemptible on minutes of notice* so urgent real-time workloads (XFEL
analysis, disaster response) can take the machine.  Library-based
checkpointing can't always reach its next synchronized iteration in
time; MANA checkpoints transparently wherever the application happens
to be.

This example runs an HPCG-like CG solve, preempts it twice (each
preemption writes a checkpoint and kills the job), and finishes the work
in a third session — with bit-identical results to an uninterrupted run.

Run:  python examples/preemptible_job.py
"""

import tempfile
from dataclasses import replace

from repro import JobConfig, Launcher
from repro.apps import HpcgProxy


def main() -> None:
    spec = replace(HpcgProxy.paper_config(), nranks=8, blocks=12)

    # Uninterrupted reference.
    ref = Launcher(JobConfig(nranks=8, impl="mpich", mana=True)).run(
        lambda r: HpcgProxy(spec)
    )
    assert ref.status == "completed", ref.first_error()
    ref_residuals = ref.apps()[0].residual_history
    print(f"reference: {len(ref_residuals)} CG iterations, "
          f"final residual {ref_residuals[-1]:.6e}")

    ckpt_dir = tempfile.mkdtemp(prefix="preemptible-")
    cfg = JobConfig(nranks=8, impl="mpich", mana=True, ckpt_dir=ckpt_dir,
                    loop_lag_window=2)

    # --- session 1: starts the job, gets preempted -----------------------
    job1 = Launcher(cfg).launch(lambda r: HpcgProxy(spec))
    t1 = job1.checkpoint_at_iteration("main", 2, kind="loop", mode="exit")
    job1.start()
    info1 = t1.wait()
    r1 = job1.wait()
    print(f"\nsession 1: PREEMPTED at iteration {info1['loop_target']} "
          f"(image: {info1['mean_bytes_per_rank'] / 1e6:.0f} MB/rank, "
          f"written in {info1['ckpt_time']:.1f} s) -> {r1.status}")

    # --- session 2: restarts, gets preempted again ------------------------
    job2 = Launcher(cfg).restart(ckpt_dir)
    t2 = job2.coordinator.checkpoint_at_iteration("main", 7, kind="loop",
                                                  mode="exit")
    job2.start()
    info2 = t2.wait()
    r2 = job2.wait()
    print(f"session 2: resumed, PREEMPTED again at iteration "
          f"{info2['loop_target']} -> {r2.status}")

    # --- session 3: runs to completion ------------------------------------
    job3 = Launcher(cfg).restart(ckpt_dir)
    r3 = job3.run()
    assert r3.status == "completed", r3.first_error()
    residuals = r3.apps()[0].residual_history
    print(f"session 3: completed; {len(residuals)} CG iterations total, "
          f"final residual {residuals[-1]:.6e}")

    assert residuals == ref_residuals, "preemption changed the solve!"
    print("\nthree sessions, two preemptions, identical solve ✓")


if __name__ == "__main__":
    main()
