#!/usr/bin/env python
"""Preemptible jobs — the paper's headline use case.

The introduction's motivation: DOE centers want long-running jobs to be
*preemptible on minutes of notice* so urgent real-time workloads (XFEL
analysis, disaster response) can take the machine.  Library-based
checkpointing can't always reach its next synchronized iteration in
time; MANA checkpoints transparently wherever the application happens
to be.

This example runs an HPCG-like CG solve, preempts it twice (each
preemption writes a checkpoint and kills the job), and finishes the work
in a third session — with bit-identical results to an uninterrupted run.
A second act replays the story on a *shrinking machine*: the preempting
workload takes half the nodes, so the job resumes elastically on 4 of
its 8 ranks, then grows back to 8 when the machine frees up
(docs/PROTOCOLS.md §12).

Run:  python examples/preemptible_job.py
"""

import tempfile
from dataclasses import replace

from repro import JobConfig, Launcher
from repro.apps import ElasticHaloApp, HpcgProxy


def main() -> None:
    spec = replace(HpcgProxy.paper_config(), nranks=8, blocks=12)

    # Uninterrupted reference.
    ref = Launcher(JobConfig(nranks=8, impl="mpich", mana=True)).run(
        lambda r: HpcgProxy(spec)
    )
    assert ref.status == "completed", ref.first_error()
    ref_residuals = ref.apps()[0].residual_history
    print(f"reference: {len(ref_residuals)} CG iterations, "
          f"final residual {ref_residuals[-1]:.6e}")

    ckpt_dir = tempfile.mkdtemp(prefix="preemptible-")
    cfg = JobConfig(nranks=8, impl="mpich", mana=True, ckpt_dir=ckpt_dir,
                    loop_lag_window=2)

    # --- session 1: starts the job, gets preempted -----------------------
    job1 = Launcher(cfg).launch(lambda r: HpcgProxy(spec))
    t1 = job1.checkpoint_at_iteration("main", 2, kind="loop", mode="exit")
    job1.start()
    info1 = t1.wait()
    r1 = job1.wait()
    print(f"\nsession 1: PREEMPTED at iteration {info1['loop_target']} "
          f"(image: {info1['mean_bytes_per_rank'] / 1e6:.0f} MB/rank, "
          f"written in {info1['ckpt_time']:.1f} s) -> {r1.status}")

    # --- session 2: restarts, gets preempted again ------------------------
    job2 = Launcher(cfg).restart(ckpt_dir)
    t2 = job2.coordinator.checkpoint_at_iteration("main", 7, kind="loop",
                                                  mode="exit")
    job2.start()
    info2 = t2.wait()
    r2 = job2.wait()
    print(f"session 2: resumed, PREEMPTED again at iteration "
          f"{info2['loop_target']} -> {r2.status}")

    # --- session 3: runs to completion ------------------------------------
    job3 = Launcher(cfg).restart(ckpt_dir)
    r3 = job3.run()
    assert r3.status == "completed", r3.first_error()
    residuals = r3.apps()[0].residual_history
    print(f"session 3: completed; {len(residuals)} CG iterations total, "
          f"final residual {residuals[-1]:.6e}")

    assert residuals == ref_residuals, "preemption changed the solve!"
    print("\nthree sessions, two preemptions, identical solve ✓")

    # ======================================================================
    # Act 2: the preempting workload takes half the machine.  Instead of
    # waiting for 8 nodes to return, the job resumes elastically on the
    # 4 ranks left, then grows back to 8 when capacity frees up.
    # ======================================================================
    espec = replace(ElasticHaloApp.paper_config(), blocks=12)
    eref = Launcher(JobConfig(nranks=8, impl="mpich", mana=True)).run(
        lambda r: ElasticHaloApp(replace(espec, nranks=8))
    )
    assert eref.status == "completed", eref.first_error()
    eref_checksum = eref.apps()[0].checksum

    eckpt = tempfile.mkdtemp(prefix="preemptible-elastic-")
    ecfg = JobConfig(nranks=8, impl="mpich", mana=True, ckpt_dir=eckpt,
                     loop_lag_window=2)

    ejob1 = Launcher(ecfg).launch(
        lambda r: ElasticHaloApp(replace(espec, nranks=8))
    )
    et1 = ejob1.checkpoint_at_iteration("main", 2, kind="loop", mode="exit")
    ejob1.start()
    einfo1 = et1.wait()
    ejob1.wait()
    print(f"\nelastic session 1: PREEMPTED at iteration "
          f"{einfo1['loop_target']}; the urgent job takes 4 of 8 nodes")

    ejob2 = Launcher(ecfg).elastic_restart(eckpt, new_nranks=4)
    et2 = ejob2.coordinator.checkpoint_at_iteration("main", 7, kind="loop",
                                                    mode="exit")
    ejob2.start()
    einfo2 = et2.wait()
    ejob2.wait()
    print(f"elastic session 2: resumed on 4 ranks, PREEMPTED again at "
          f"iteration {einfo2['loop_target']}; the machine frees up")

    ejob3 = Launcher(ecfg).elastic_restart(eckpt, new_nranks=8)
    er3 = ejob3.run()
    assert er3.status == "completed", er3.first_error()
    echecksum = er3.apps()[0].checksum
    assert echecksum == eref_checksum, "elastic preemption changed results!"
    print(f"elastic session 3: grew back to 8 ranks and completed\n"
          f"\n8 -> 4 -> 8 ranks across two preemptions, checksum "
          f"{echecksum!r} == uninterrupted 8-rank run ✓")


if __name__ == "__main__":
    main()
