#!/usr/bin/env python
"""Develop once, run everywhere — the implementation-oblivious claim.

The same unmodified application (a LAMMPS-style LJ benchmark) runs under
MANA on all four simulated MPI implementations.  The *legacy* virtual-id
design is also attempted everywhere: it works only on the MPICH family
and fails on pointer-handle implementations — exactly the limitation
(paper §4.1) that motivated the new architecture.

Run:  python examples/choose_your_mpi.py
"""

from dataclasses import replace

from repro import JobConfig, Launcher
from repro.apps import LammpsLJProxy
from repro.util.errors import IncompatibleHandleError


def run(impl: str, mana: bool, vid: str = "new"):
    spec = replace(LammpsLJProxy.paper_config(), nranks=8, blocks=6)
    cfg = JobConfig(nranks=8, impl=impl, mana=mana, vid_design=vid)
    res = Launcher(cfg).run(lambda r: LammpsLJProxy(spec))
    if res.status == "failed" and "IncompatibleHandleError" in (
        res.first_error() or ""
    ):
        raise IncompatibleHandleError(res.first_error())
    assert res.status == "completed", res.first_error()
    return res


def main() -> None:
    print(f"{'impl':10} {'native':>9} {'MANA+virtId':>12} {'overhead':>9} "
          f"{'legacy MANA':>12}")
    print("-" * 58)
    for impl in ("mpich", "openmpi", "exampi", "craympi"):
        nat = run(impl, mana=False)
        man = run(impl, mana=True, vid="new")
        overhead = man.runtime / nat.runtime - 1
        try:
            run(impl, mana=True, vid="legacy")
            legacy = "works"
        except IncompatibleHandleError:
            legacy = "INCOMPATIBLE"
        print(f"{impl:10} {nat.runtime:8.1f}s {man.runtime:11.1f}s "
              f"{overhead:+8.1%} {legacy:>12}")

    print(
        "\nThe new virtual ids run everywhere; the legacy int-based ids\n"
        "cannot represent Open MPI / ExaMPI pointer handles (paper §4.1).\n"
        "All four results come from ONE application source and ONE MANA\n"
        "codebase — 'develop once, run everywhere'."
    )


if __name__ == "__main__":
    main()
