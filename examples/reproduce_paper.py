#!/usr/bin/env python
"""Regenerate every table and figure of the paper in one run.

Usage:
    python examples/reproduce_paper.py             # quick (~1 minute)
    python examples/reproduce_paper.py --scale 0.5 # closer to paper scale
    python examples/reproduce_paper.py --full      # paper ranks + blocks

Output: each experiment's table/figure rendered to stdout, with the
paper's reference numbers alongside.  See EXPERIMENTS.md for the
paper-vs-measured record of a full run.
"""

import argparse
import time

from repro.harness import experiments as E


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--scale", type=float, default=0.12,
                    help="fraction of the paper's loop blocks (default 0.12)")
    ap.add_argument("--ranks-cap", type=int, default=8,
                    help="cap rank counts (default 8; 0 = paper scale)")
    ap.add_argument("--full", action="store_true",
                    help="paper scale: --scale 1.0, no rank cap (slow!)")
    ap.add_argument("--only", choices=[
        "table1", "table2", "figure2", "figure3", "figure4",
        "section63", "table3", "cross_impl_restart", "restart_analysis",
        "overhead_breakdown", "ablation_ggid", "ablation_vid_lookup",
    ], help="run a single experiment")
    args = ap.parse_args()

    scale = 1.0 if args.full else args.scale
    ranks_cap = None if (args.full or args.ranks_cap == 0) else args.ranks_cap

    t0 = time.monotonic()
    if args.only:
        from repro.harness.runner import CaseCache

        fn = getattr(E, args.only)
        if args.only in ("table1", "table2", "ablation_ggid",
                         "ablation_vid_lookup", "cross_impl_restart",
                         "restart_analysis", "overhead_breakdown"):
            out = fn()
        else:
            out = fn(scale, ranks_cap, CaseCache())
        print(out["text"])
    else:
        results = E.run_all(scale=scale, ranks_cap=ranks_cap)
        for name, out in results.items():
            print(out["text"])
            print("\n" + "·" * 78 + "\n")
    print(f"[reproduced in {time.monotonic() - t0:.0f}s wall time; "
          f"scale={scale}, ranks_cap={ranks_cap}]")


if __name__ == "__main__":
    main()
