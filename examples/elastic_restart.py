#!/usr/bin/env python
"""Elastic restart — surviving node loss by shrinking, then growing back.

A fixed-size restart needs the original rank count available; real
clusters lose nodes and get them back.  This example checkpoints an
8-rank job, restores it onto 4 ranks (half the machine went away),
checkpoints again, and restores onto 8 ranks (capacity returned) —
each hop under `Launcher.elastic_restart` (docs/PROTOCOLS.md §12).

The application is the elastic determinism oracle: a globally seeded
stencil whose results are independent of the decomposition, so every
resized session's final checksum is bit-identical to an uninterrupted
run at any rank count.

Run:  python examples/elastic_restart.py
"""

import tempfile
from dataclasses import replace

from repro import JobConfig, Launcher
from repro.apps import ElasticHaloApp


def main() -> None:
    spec = replace(ElasticHaloApp.paper_config(), blocks=12)

    # Uninterrupted 8-rank reference.
    ref = Launcher(JobConfig(nranks=8, impl="mpich", mana=True)).run(
        lambda r: ElasticHaloApp(replace(spec, nranks=8))
    )
    assert ref.status == "completed", ref.first_error()
    ref_checksum = ref.apps()[0].checksum
    print(f"reference (8 ranks, uninterrupted): checksum {ref_checksum!r}")

    ckpt_dir = tempfile.mkdtemp(prefix="elastic-")
    cfg = JobConfig(nranks=8, impl="mpich", mana=True, ckpt_dir=ckpt_dir,
                    loop_lag_window=2)

    # --- session 1: 8 ranks, checkpoint, "lose" half the nodes -----------
    job1 = Launcher(cfg).launch(
        lambda r: ElasticHaloApp(replace(spec, nranks=8))
    )
    t1 = job1.checkpoint_at_iteration("main", 2, kind="loop", mode="exit")
    job1.start()
    info1 = t1.wait()
    job1.wait()
    print(f"\nsession 1: 8 ranks, checkpointed at iteration "
          f"{info1['loop_target']}, then 4 nodes are lost")

    # --- session 2: restore 8-rank images onto the 4 surviving ranks -----
    job2 = Launcher(cfg).elastic_restart(ckpt_dir, new_nranks=4)
    t2 = job2.coordinator.checkpoint_at_iteration("main", 7, kind="loop",
                                                  mode="exit")
    job2.start()
    info2 = t2.wait()
    job2.wait()
    print(f"session 2: resumed on 4 ranks (8-rank images repartitioned), "
          f"checkpointed at iteration {info2['loop_target']}")

    # --- session 3: capacity returns, grow back to 8 ranks ---------------
    job3 = Launcher(cfg).elastic_restart(ckpt_dir, new_nranks=8)
    r3 = job3.run()
    assert r3.status == "completed", r3.first_error()
    checksum = r3.apps()[0].checksum
    print(f"session 3: grew back to 8 ranks and completed; "
          f"checksum {checksum!r}")

    assert checksum == ref_checksum, "elastic hops changed the results!"
    print("\n8 -> 4 -> 8 ranks across two restores, "
          "bit-identical results ✓")


if __name__ == "__main__":
    main()
