#!/usr/bin/env python
"""Quickstart: transparently checkpoint an MPI application with MANA.

Runs a small Lennard-Jones MD proxy (CoMD) on 8 simulated ranks under
MANA, takes a transparent checkpoint mid-run, *replaces the entire lower
half* (a brand-new MPI library instance with different physical ids),
and lets the application finish — it never notices.

Run:  python examples/quickstart.py
"""

from dataclasses import replace

from repro import JobConfig, Launcher
from repro.apps import CoMDProxy


def main() -> None:
    # A scaled-down CoMD workload (8 ranks, 10 blocks).
    spec = replace(CoMDProxy.paper_config(), nranks=8, blocks=10)

    # --- 1. a plain MANA run, for reference -----------------------------
    cfg = JobConfig(nranks=8, impl="mpich", platform="discovery", mana=True)
    reference = Launcher(cfg).run(lambda rank: CoMDProxy(spec))
    assert reference.status == "completed", reference.first_error()
    ref_energy = reference.apps()[0].energy_history[-1]
    print(f"reference run : final energy {ref_energy:.6f}, "
          f"runtime {reference.runtime:.1f} virtual s")

    # --- 2. the same run, checkpointed and relaunched mid-flight --------
    job = Launcher(JobConfig(nranks=8, impl="mpich", mana=True)).launch(
        lambda rank: CoMDProxy(spec)
    )
    # Fire a checkpoint when the main loop reaches block 4; "relaunch"
    # discards the lower half and rebuilds every MPI object.
    ticket = job.checkpoint_at_iteration("main", 4, kind="in-session",
                                         mode="relaunch")
    job.start()
    info = ticket.wait()
    print(f"checkpoint    : generation {info['generation']}, "
          f"{info['mean_bytes_per_rank'] / 1e6:.1f} MB/rank "
          f"(+ simulated working set), {info['ckpt_time']:.1f} s")

    result = job.wait()
    assert result.status == "completed", result.first_error()
    energy = result.apps()[0].energy_history[-1]
    print(f"relaunched run: final energy {energy:.6f}, "
          f"runtime {result.runtime:.1f} virtual s")

    assert energy == ref_energy, "checkpoint changed the physics!"
    print("\nidentical results across the checkpoint ✓")
    print(f"wrapper crossings (context switches): {result.total_cs:,} "
          f"({result.cs_per_second / 1e6:.2f}M CS/s, cf. paper §6.3)")


if __name__ == "__main__":
    main()
