#!/usr/bin/env python
"""Periodic checkpointing — fault tolerance for long production runs.

Production MANA jobs checkpoint on an interval so that a node failure
costs at most one interval of work.  This example runs a LULESH-style
hydrodynamics job with periodic checkpoints, then simulates a node
failure by killing the job and restarting from the *latest* image.

Run:  python examples/interval_checkpointing.py
"""

import tempfile
from dataclasses import replace

from repro import JobConfig, Launcher
from repro.apps import LuleshProxy
from repro.mana.checkpoint import latest_generations, read_manifest


def main() -> None:
    spec = replace(LuleshProxy.paper_config(), nranks=8, blocks=14)

    ref = Launcher(JobConfig(nranks=8, impl="mpich", mana=True)).run(
        lambda r: LuleshProxy(spec)
    )
    assert ref.status == "completed", ref.first_error()
    ref_dt = ref.apps()[0].dt_history

    ckpt_dir = tempfile.mkdtemp(prefix="interval-")
    cfg = JobConfig(
        nranks=8, impl="mpich", mana=True, ckpt_dir=ckpt_dir,
        ckpt_interval=12.0,          # every 12 virtual seconds
        loop_lag_window=2,
    )

    # --- the long-running job, checkpointing on its interval ------------
    job = Launcher(cfg).launch(lambda r: LuleshProxy(spec))
    res = job.run()
    assert res.status == "completed", res.first_error()
    gens = latest_generations(ckpt_dir)
    print(f"job ran {res.runtime:.0f} virtual s and wrote "
          f"{len(gens)} periodic checkpoints: generations {gens}")
    for g in gens:
        m = read_manifest(ckpt_dir, g)
        print(f"  gen {g}: parked at loop iteration {m['loop_target']}")

    # --- "node failure": restart from the newest image ------------------
    job2 = Launcher(cfg).restart(ckpt_dir)          # latest generation
    job2.coordinator._interval = None               # plain rerun of the tail
    res2 = job2.run()
    assert res2.status == "completed", res2.first_error()
    print(f"\nrestart from gen {gens[-1]} replayed only the tail: "
          f"finished at {res2.runtime:.0f} virtual s "
          f"(incl. {res2.ranks[0].accounts.get('restart', 0):.0f} s "
          f"image-read time)")

    assert res2.apps()[0].dt_history == ref_dt
    print("timestep history identical to the uninterrupted run ✓")


if __name__ == "__main__":
    main()
