#!/usr/bin/env python
"""Checkpoint under one MPI implementation, restart under another.

[GPC19 §3.6] demonstrated this once, for a GROMACS build restricted to
MPI primitives.  The paper's §9 names full interoperability — arbitrary
applications with user-created MPI objects — as future work that the new
implementation-oblivious virtual ids make possible.  This simulation
implements it: the records behind every virtual id are implementation-
neutral, so replay can target any library.

The chain below migrates a CoMD run (which creates communicators,
derived datatypes, and uses MAXLOC reductions) across THREE MPI
implementations with different handle representations:

    MPICH (32-bit int handles)
      -> Open MPI (64-bit pointer handles)
      -> ExaMPI (enum datatypes + lazy pointer constants)

Run:  python examples/cross_impl_restart.py
"""

import tempfile
from dataclasses import replace

from repro import JobConfig, Launcher
from repro.apps import CoMDProxy


def main() -> None:
    spec = replace(CoMDProxy.paper_config(), nranks=8, blocks=12)

    ref = Launcher(JobConfig(nranks=8, impl="mpich", mana=True)).run(
        lambda r: CoMDProxy(spec)
    )
    assert ref.status == "completed", ref.first_error()
    ref_energy = ref.apps()[0].energy_history[-1]
    print(f"reference (mpich only): final energy {ref_energy:.6f}")

    ckpt_dir = tempfile.mkdtemp(prefix="cross-impl-")
    cfg = JobConfig(nranks=8, impl="mpich", mana=True, ckpt_dir=ckpt_dir,
                    loop_lag_window=2)

    # Leg 1: MPICH, preempted early.
    job = Launcher(cfg).launch(lambda r: CoMDProxy(spec))
    t = job.checkpoint_at_iteration("main", 2, kind="loop", mode="exit")
    job.start()
    info = t.wait()
    job.wait()
    print(f"leg 1: mpich    ran to iteration {info['loop_target']}, "
          f"checkpointed (32-bit int handles)")

    # Leg 2: restart under Open MPI, preempted again.
    job = Launcher(cfg).restart(ckpt_dir, impl_override="openmpi")
    t = job.coordinator.checkpoint_at_iteration("main", 7, kind="loop",
                                                mode="exit")
    job.start()
    info = t.wait()
    job.wait()
    print(f"leg 2: openmpi  ran to iteration {info['loop_target']}, "
          f"checkpointed (64-bit pointer handles)")

    # Leg 3: finish under ExaMPI.
    job = Launcher(cfg).restart(ckpt_dir, impl_override="exampi")
    res = job.run()
    assert res.status == "completed", res.first_error()
    energy = res.apps()[0].energy_history[-1]
    print(f"leg 3: exampi   completed (enum datatypes, lazy constants)")

    assert energy == ref_energy
    print(f"\nfinal energy {energy:.6f} — bit-identical to the "
          f"single-implementation run ✓")
    print("One application, one checkpoint lineage, three MPI "
          "implementations.")


if __name__ == "__main__":
    main()
