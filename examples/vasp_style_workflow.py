#!/usr/bin/env python
"""Multi-algorithm workflows — why NERSC needs *transparent* checkpointing.

VASP (≈20% of all NERSC CPU time, paper §1) runs several different
algorithms back to back: SCF electronic minimization, ionic relaxation,
molecular dynamics.  There is no single globally synchronized main loop,
so library-based checkpointing (VeloC/SCR-style, which hooks "the"
iteration boundary) has nowhere general to hook — while MANA checkpoints
wherever the preemption lands.

This example preempts a VASP-like workflow once in EACH phase and shows
the workflow completing identically across three restarts.

Run:  python examples/vasp_style_workflow.py
"""

import tempfile
from dataclasses import replace

from repro import JobConfig, Launcher
from repro.apps import VaspLikeProxy


def main() -> None:
    spec = replace(VaspLikeProxy.paper_config(), nranks=8, blocks=6)

    ref = Launcher(JobConfig(nranks=8, impl="mpich", mana=True)).run(
        lambda r: VaspLikeProxy(spec)
    )
    assert ref.status == "completed", ref.first_error()
    ref_app = ref.apps()[0]
    print("reference workflow: "
          f"{len(ref_app.scf_energies)} SCF + {len(ref_app.relax_forces)} "
          f"relax + {len(ref_app.md_temps)} MD iterations")

    ckpt_dir = tempfile.mkdtemp(prefix="vasp-")
    cfg = JobConfig(nranks=8, impl="mpich", mana=True, ckpt_dir=ckpt_dir,
                    loop_lag_window=2)

    # Preempt once inside each algorithm phase.
    job = Launcher(cfg).launch(lambda r: VaspLikeProxy(spec))
    tk = job.checkpoint_at_iteration("scf", 1, kind="loop", mode="exit")
    job.start()
    tk.wait()
    job.wait()
    print("preempted mid-SCF          (phase 1/3)")

    job = Launcher(cfg).restart(ckpt_dir)
    tk = job.coordinator.checkpoint_at_iteration("relax", 1, kind="loop",
                                                 mode="exit")
    job.start()
    tk.wait()
    job.wait()
    print("preempted mid-relaxation   (phase 2/3)")

    job = Launcher(cfg).restart(ckpt_dir)
    tk = job.coordinator.checkpoint_at_iteration("md", 1, kind="loop",
                                                 mode="exit")
    job.start()
    tk.wait()
    job.wait()
    print("preempted mid-MD           (phase 3/3)")

    final = Launcher(cfg).restart(ckpt_dir).run()
    assert final.status == "completed", final.first_error()
    app = final.apps()[0]
    assert app.scf_energies == ref_app.scf_energies
    assert app.relax_forces == ref_app.relax_forces
    assert app.md_temps == ref_app.md_temps
    print("\nfour sessions, one preemption per algorithm phase —")
    print("all three phase histories identical to the uninterrupted run ✓")


if __name__ == "__main__":
    main()
