"""Checkpoint image format, manifests, and failure modes."""

import os
import pickle

import numpy as np
import pytest

from repro.mana.checkpoint import (
    FORMAT_VERSION,
    CheckpointImage,
    generation_dir,
    latest_generations,
    load_image,
    rank_image_path,
    read_manifest,
    save_image,
    write_manifest,
)
from repro.mana.drain import DrainBuffer
from repro.mana.virtid import VirtualIdTable
from repro.util.errors import CheckpointError, RestartError


def make_image(rank=0, app=None):
    return CheckpointImage(
        rank=rank,
        nranks=4,
        impl="mpich",
        kind="loop",
        generation=1,
        app=app if app is not None else {"x": np.arange(4.0)},
        loops={"main": 7},
        vid_table=VirtualIdTable(32),
        drain_buffer=DrainBuffer(),
        clock_state={"now": 1.5, "accounts": {}},
        rng_state=None,
        cs_count=123,
        epoch=0,
    )


class TestImageRoundtrip:
    def test_save_load(self, tmp_path):
        path = str(tmp_path / "g" / "rank_00000.img")
        nbytes = save_image(path, make_image())
        assert nbytes > 0 and os.path.getsize(path) == nbytes
        img = load_image(path)
        assert img.rank == 0 and img.loops == {"main": 7}
        assert np.array_equal(img.app["x"], np.arange(4.0))
        assert img.cs_count == 123

    def test_shared_references_preserved(self, tmp_path):
        """A buffer referenced both from app state and a RequestRecord
        must come back as ONE object (single-pickle property)."""
        from repro.mana.records import RequestRecord

        buf = np.zeros(8)
        table = VirtualIdTable(32)
        from repro.mpi.api import HandleKind

        rec = RequestRecord(
            kind="recv", comm_vid=1, peer=0, tag=1, count=8,
            datatype_vid=2, buf=buf,
        )
        table.attach(HandleKind.REQUEST, rec, None)
        image = make_image(app={"mybuf": buf, "extra": 1})
        image.vid_table = table
        path = str(tmp_path / "x.img")
        save_image(path, image)
        img = load_image(path)
        restored_rec = next(iter(img.vid_table.entries("request"))).record
        assert restored_rec.buf is img.app["mybuf"]

    def test_unpicklable_app_raises_checkpoint_error(self, tmp_path):
        bad = make_image(app={"fn": lambda: 1})
        with pytest.raises(CheckpointError, match="not serializable"):
            save_image(str(tmp_path / "bad.img"), bad)

    def test_missing_image(self, tmp_path):
        with pytest.raises(RestartError, match="no checkpoint image"):
            load_image(str(tmp_path / "nope.img"))

    def test_version_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "old.img")
        with open(path, "wb") as f:
            pickle.dump({"format_version": FORMAT_VERSION - 1}, f)
        with pytest.raises(RestartError, match="format"):
            load_image(path)

    def test_no_tmp_file_left_behind(self, tmp_path):
        path = str(tmp_path / "a" / "img")
        save_image(path, make_image())
        assert os.listdir(os.path.dirname(path)) == ["img"]


class TestManifest:
    def test_write_read(self, tmp_path):
        base = str(tmp_path)
        write_manifest(
            base, 3, nranks=8, impl="openmpi", kind="loop",
            cold_restartable=True, loop_target=12,
            extra={"vid_design": "new"},
        )
        doc = read_manifest(base, 3)
        assert doc["nranks"] == 8 and doc["impl"] == "openmpi"
        assert doc["cold_restartable"] and doc["loop_target"] == 12
        assert doc["extra"]["vid_design"] == "new"

    def test_latest_generation_default(self, tmp_path):
        base = str(tmp_path)
        for g in (1, 2, 5):
            write_manifest(base, g, nranks=2, impl="mpich", kind="loop",
                           cold_restartable=True, loop_target=0)
        assert read_manifest(base)["generation"] == 5
        assert latest_generations(base) == [1, 2, 5]

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(RestartError):
            read_manifest(str(tmp_path))

    def test_paths_layout(self, tmp_path):
        base = str(tmp_path)
        assert generation_dir(base, 7).endswith("ckpt_0007")
        assert rank_image_path(base, 7, 3).endswith("rank_00003.img")

    def test_non_checkpoint_dirs_ignored(self, tmp_path):
        base = str(tmp_path)
        os.makedirs(os.path.join(base, "ckpt_0002"))
        os.makedirs(os.path.join(base, "random_dir"))
        open(os.path.join(base, "ckpt_bogus"), "w").close()
        assert latest_generations(base) == [2]
