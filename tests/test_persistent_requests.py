"""Persistent requests: native semantics + survival across checkpoints."""

import numpy as np
import pytest

from repro import JobConfig, Launcher, MpiApplication
from repro.util.errors import MpiError
from tests.conftest import ALL_IMPLS, facade_world, run_ranks


class TestNativePersistent:
    def test_start_wait_cycles(self, impl_name):
        _, mpi_for = facade_world(2, impl_name)

        def body(r):
            MPI = mpi_for(r)
            w = MPI.COMM_WORLD
            recv = np.zeros(1)
            send = np.zeros(1)
            rreq = MPI.recv_init(recv, 1, MPI.DOUBLE, 1 - r, 8, w)
            sreq = MPI.send_init(send, 1, MPI.DOUBLE, 1 - r, 8, w)
            got = []
            for it in range(5):
                send[0] = r * 100 + it
                MPI.startall([sreq, rreq])
                MPI.wait(sreq)
                MPI.wait(rreq)
                got.append(float(recv[0]))
            MPI.request_free(sreq)
            MPI.request_free(rreq)
            return got

        out = run_ranks(2, body)
        assert out[0] == [100 + i for i in range(5)]
        assert out[1] == [0 + i for i in range(5)]

    def test_buffer_contents_at_start_time(self, impl_name):
        """MPI reads the send buffer at MPI_Start, not at *_init."""
        _, mpi_for = facade_world(2, impl_name)

        def body(r):
            MPI = mpi_for(r)
            w = MPI.COMM_WORLD
            if r == 0:
                buf = np.array([1.0])
                req = MPI.send_init(buf, 1, MPI.DOUBLE, 1, 9, w)
                buf[0] = 42.0  # modified after init, before start
                MPI.start(req)
                MPI.wait(req)
                MPI.request_free(req)
                return None
            recv = np.zeros(1)
            MPI.recv(recv, 1, MPI.DOUBLE, 0, 9, w)
            return float(recv[0])

        assert run_ranks(2, body)[1] == 42.0

    def test_start_errors(self, impl_name):
        _, mpi_for = facade_world(1, impl_name)
        MPI = mpi_for(0)
        w = MPI.COMM_SELF
        req = MPI.irecv(np.zeros(1), 1, MPI.DOUBLE, MPI.PROC_NULL, 0, w)
        with pytest.raises(MpiError, match="non-persistent"):
            MPI.start(req)

    def test_double_start_rejected(self, impl_name):
        _, mpi_for = facade_world(1, impl_name)
        MPI = mpi_for(0)
        w = MPI.COMM_SELF
        req = MPI.recv_init(np.zeros(1), 1, MPI.DOUBLE, MPI.ANY_SOURCE, 1, w)
        MPI.start(req)
        with pytest.raises(MpiError, match="already-active"):
            MPI.start(req)

    def test_inactive_test_trivially_true(self, impl_name):
        _, mpi_for = facade_world(1, impl_name)
        MPI = mpi_for(0)
        req = MPI.recv_init(np.zeros(1), 1, MPI.DOUBLE, MPI.ANY_SOURCE, 1,
                            MPI.COMM_SELF)
        flag, _ = MPI.test(req)
        assert flag
        MPI.request_free(req)


class HaloPersistentApp(MpiApplication):
    """The classic persistent-request halo exchange: requests created
    once in setup, started every iteration."""

    name = "halo-persistent"

    def __init__(self, niters=20):
        self.niters = niters
        self.history = []

    def setup(self, ctx):
        MPI = ctx.MPI
        w = MPI.COMM_WORLD
        nxt = (ctx.rank + 1) % ctx.nranks
        prv = (ctx.rank - 1) % ctx.nranks
        self.sendbuf = np.zeros(4)
        self.recvbuf = np.zeros(4)
        self.reqs = [
            MPI.recv_init(self.recvbuf, 4, MPI.DOUBLE, prv, 30, w),
            MPI.send_init(self.sendbuf, 4, MPI.DOUBLE, nxt, 30, w),
        ]

    def run(self, ctx):
        MPI = ctx.MPI
        for it in ctx.loop("main", self.niters):
            self.sendbuf[:] = ctx.rank * 1000 + it
            MPI.startall(self.reqs)
            MPI.waitall(self.reqs)
            self.history.append(float(self.recvbuf[0]))
            out = np.zeros(1)
            MPI.allreduce(self.recvbuf[:1], out, 1, MPI.DOUBLE, MPI.SUM,
                          MPI.COMM_WORLD)

    def validate(self, ctx):
        if len(self.history) != self.niters:
            return f"halo ran {len(self.history)}/{self.niters}"
        return None


class TestPersistentUnderMana:
    @pytest.mark.parametrize("impl", ALL_IMPLS)
    def test_matches_native(self, impl):
        nat = Launcher(JobConfig(nranks=4, impl=impl, mana=False)).run(
            lambda r: HaloPersistentApp(), timeout=60
        )
        man = Launcher(JobConfig(nranks=4, impl=impl, mana=True)).run(
            lambda r: HaloPersistentApp(), timeout=60
        )
        assert man.status == "completed", man.first_error()
        assert [a.history for a in man.apps()] == [
            a.history for a in nat.apps()
        ]

    @pytest.mark.parametrize("at_iter", [3, 9, 15])
    def test_survives_relaunch(self, at_iter):
        base = Launcher(JobConfig(nranks=4, impl="mpich", mana=True)).run(
            lambda r: HaloPersistentApp(), timeout=60
        )
        job = Launcher(JobConfig(nranks=4, impl="mpich", mana=True)).launch(
            lambda r: HaloPersistentApp()
        )
        tk = job.checkpoint_at_iteration("main", at_iter, mode="relaunch")
        job.start()
        tk.wait(60)
        res = job.wait(60)
        assert res.status == "completed", res.first_error()
        assert [a.history for a in res.apps()] == [
            a.history for a in base.apps()
        ]

    def test_survives_cold_cross_impl_restart(self, tmp_path):
        base = Launcher(JobConfig(nranks=4, impl="mpich", mana=True)).run(
            lambda r: HaloPersistentApp(), timeout=60
        )
        ckdir = str(tmp_path / "ck")
        cfg = JobConfig(nranks=4, impl="mpich", mana=True, ckpt_dir=ckdir,
                        loop_lag_window=2)
        job = Launcher(cfg).launch(lambda r: HaloPersistentApp())
        tk = job.checkpoint_at_iteration("main", 5, kind="loop", mode="exit")
        job.start()
        tk.wait(60)
        assert job.wait(60).status == "preempted"
        job2 = Launcher(cfg).restart(ckdir, impl_override="openmpi")
        res2 = job2.run(timeout=60)
        assert res2.status == "completed", res2.first_error()
        assert [a.history for a in res2.apps()] == [
            a.history for a in base.apps()
        ]
