"""Message-fabric tests: matching semantics, ordering, counters, abort."""

import pytest

from repro.fabric.network import ANY_SOURCE, ANY_TAG, Fabric
from repro.simtime.cost import CostModel
from repro.util.errors import MpiAbort, ReproError


@pytest.fixture
def fab():
    return Fabric(4, CostModel.discovery())


def post(fab, src, dst, tag=1, ctx=10, payload=b"x", t=0.0):
    return fab.post_send(src, dst, tag, ctx, payload, t)


class TestPostAndMatch:
    def test_simple_roundtrip(self, fab):
        post(fab, 0, 1, tag=7, payload=b"hello")
        m = fab.try_match(1, 0, 7, 10)
        assert m.payload == b"hello"
        assert m.src == 0 and m.tag == 7

    def test_no_match_returns_none(self, fab):
        assert fab.try_match(1, 0, 7, 10) is None

    def test_context_isolation(self, fab):
        post(fab, 0, 1, tag=7, ctx=10)
        assert fab.try_match(1, 0, 7, 99) is None
        assert fab.try_match(1, 0, 7, 10) is not None

    def test_tag_mismatch(self, fab):
        post(fab, 0, 1, tag=7)
        assert fab.try_match(1, 0, 8, 10) is None

    def test_source_wildcard(self, fab):
        post(fab, 2, 1, tag=7)
        m = fab.try_match(1, ANY_SOURCE, 7, 10)
        assert m.src == 2

    def test_tag_wildcard(self, fab):
        post(fab, 0, 1, tag=42)
        m = fab.try_match(1, 0, ANY_TAG, 10)
        assert m.tag == 42

    def test_full_wildcard_oldest_first(self, fab):
        post(fab, 2, 1, tag=5, payload=b"first")
        post(fab, 3, 1, tag=6, payload=b"second")
        m = fab.try_match(1, ANY_SOURCE, ANY_TAG, 10)
        assert m.payload == b"first"

    def test_non_overtaking_same_pair_same_tag(self, fab):
        for i in range(5):
            post(fab, 0, 1, tag=9, payload=bytes([i]))
        got = [fab.try_match(1, 0, 9, 10).payload[0] for _ in range(5)]
        assert got == [0, 1, 2, 3, 4]

    def test_tag_selective_matching_skips_earlier(self, fab):
        post(fab, 0, 1, tag=1, payload=b"a")
        post(fab, 0, 1, tag=2, payload=b"b")
        assert fab.try_match(1, 0, 2, 10).payload == b"b"
        assert fab.try_match(1, 0, 1, 10).payload == b"a"

    def test_rank_range_checked(self, fab):
        with pytest.raises(ReproError):
            post(fab, 0, 9)
        with pytest.raises(ReproError):
            fab.try_match(-1, 0, 0, 0)


class TestTiming:
    def test_arrival_after_send_time(self, fab):
        m = post(fab, 0, 1, payload=b"x" * 1000, t=5.0)
        cost = fab.cost_model.message_cost(1000)
        assert m.arrive_time == pytest.approx(5.0 + cost)

    def test_bigger_messages_arrive_later(self, fab):
        m1 = post(fab, 0, 1, tag=1, payload=b"x", t=0.0)
        m2 = post(fab, 0, 1, tag=2, payload=b"x" * 10_000_000, t=0.0)
        assert m2.arrive_time > m1.arrive_time


class TestIprobe:
    def test_iprobe_nondestructive(self, fab):
        post(fab, 0, 1, tag=3, payload=b"abc")
        r1 = fab.iprobe(1, 0, 3, 10)
        r2 = fab.iprobe(1, 0, 3, 10)
        assert r1 is not None and r2 is not None
        assert r1.nbytes == 3
        assert fab.in_flight(1) == 1

    def test_iprobe_none_when_empty(self, fab):
        assert fab.iprobe(1, ANY_SOURCE, ANY_TAG, 10) is None


class TestCounters:
    def test_in_flight_total_and_per_rank(self, fab):
        post(fab, 0, 1)
        post(fab, 0, 2)
        assert fab.in_flight() == 2
        assert fab.in_flight(1) == 1
        fab.try_match(1, 0, 1, 10)
        assert fab.in_flight() == 1

    def test_pairwise_counts(self, fab):
        post(fab, 0, 1)
        post(fab, 0, 1)
        post(fab, 2, 1)
        assert fab.pairwise_sent(0, 1) == 2
        assert fab.pairwise_sent(2, 1) == 1
        assert fab.pairwise_received(0, 1) == 0
        fab.try_match(1, 0, ANY_TAG, 10)
        assert fab.pairwise_received(0, 1) == 1


class TestWaitMatch:
    def test_wait_returns_when_available(self, fab):
        import threading

        def sender():
            post(fab, 0, 1, tag=4, payload=b"later")

        t = threading.Thread(target=sender)
        t.start()
        m = fab.wait_match(1, 0, 4, 10, deadline=5.0)
        t.join()
        assert m.payload == b"later"

    def test_wait_should_stop(self, fab):
        m = fab.wait_match(1, 0, 4, 10, should_stop=lambda: True)
        assert m is None

    def test_wait_deadline_raises(self, fab):
        with pytest.raises(ReproError, match="deadlock"):
            fab.wait_match(1, 0, 4, 10, deadline=0.2, poll_timeout=0.05)


class TestAbort:
    def test_abort_wakes_waiters(self, fab):
        import threading

        caught = []

        def waiter():
            try:
                fab.wait_match(1, 0, 4, 10, deadline=10.0)
            except MpiAbort as exc:
                caught.append(exc)

        t = threading.Thread(target=waiter)
        t.start()
        fab.abort()
        t.join(timeout=5)
        assert caught and fab.aborted

    def test_post_after_abort_raises(self, fab):
        fab.abort()
        with pytest.raises(MpiAbort):
            post(fab, 0, 1)
