"""Content-defined chunking + the content-addressed chunk store."""

import hashlib
import os
import zlib

import numpy as np
import pytest

from repro.mana.chunkstore import (
    CHUNK_MAX,
    CHUNK_MIN,
    ChunkStore,
    chunk_spans,
    store_for,
)
from repro.util.errors import IntegrityError


def _payload(n: int, seed: int = 1) -> bytes:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=n, dtype=np.uint8).tobytes()


class TestChunkSpans:
    def test_spans_tile_the_input(self):
        data = _payload(300_000)
        spans = chunk_spans(data)
        assert spans[0][0] == 0 and spans[-1][1] == len(data)
        for (a, b), (c, d) in zip(spans, spans[1:]):
            assert b == c and a < b
        assert b"".join(data[a:b] for a, b in spans) == data

    def test_size_bounds(self):
        spans = chunk_spans(_payload(500_000))
        # Every chunk but the final one respects [CHUNK_MIN, CHUNK_MAX].
        for a, b in spans[:-1]:
            assert CHUNK_MIN <= b - a <= CHUNK_MAX
        assert spans[-1][1] - spans[-1][0] <= CHUNK_MAX

    def test_deterministic(self):
        data = _payload(200_000)
        assert chunk_spans(data) == chunk_spans(data)

    def test_boundaries_resync_after_insert(self):
        """The property monolithic (fixed-offset) chunking lacks: an
        insertion shifts every later byte, yet most chunk *contents*
        reappear because boundaries are content-defined."""
        data = _payload(400_000)
        edited = data[:1000] + b"wedge" + data[1000:]
        digests = lambda d: {
            hashlib.sha256(d[a:b]).hexdigest() for a, b in chunk_spans(d)
        }
        before, after = digests(data), digests(edited)
        assert len(before & after) / len(before) > 0.9

    def test_empty_and_tiny_inputs(self):
        assert chunk_spans(b"") == []
        assert chunk_spans(b"x") == [(0, 1)]


class TestChunkStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = ChunkStore(str(tmp_path))
        data = _payload(10_000)
        digest, written, reused = store.put(data)
        assert digest == hashlib.sha256(data).hexdigest()
        assert written > 0 and not reused
        assert store.get(digest) == data

    def test_second_put_is_deduped(self, tmp_path):
        store = ChunkStore(str(tmp_path))
        data = _payload(10_000)
        store.put(data)
        digest, written, reused = store.put(data)
        assert reused and written == 0
        assert len(store.digests()) == 1

    def test_compression_shrinks_compressible_data(self, tmp_path):
        store = ChunkStore(str(tmp_path), compress_level=3)
        digest, written, _ = store.put(b"abc" * 10_000)
        assert written < 1_000
        assert store.get(digest) == b"abc" * 10_000

    def test_missing_chunk_names_digest(self, tmp_path):
        store = ChunkStore(str(tmp_path))
        missing = hashlib.sha256(b"never stored").hexdigest()
        with pytest.raises(IntegrityError, match=missing[:12]):
            store.get(missing)

    def test_corrupt_chunk_is_integrity_error(self, tmp_path):
        store = ChunkStore(str(tmp_path))
        digest, _, _ = store.put(_payload(10_000))
        path = store.chunk_path(digest)
        with open(path, "r+b") as f:
            f.seek(100)
            b = f.read(1)
            f.seek(100)
            f.write(bytes([b[0] ^ 0xFF]))
        with pytest.raises(IntegrityError, match=digest[:12]):
            store.get(digest)

    def test_checksum_mismatch_detected(self, tmp_path):
        """A chunk whose bytes decompress fine but hash to the wrong
        digest (e.g. a renamed file) is caught."""
        store = ChunkStore(str(tmp_path))
        os.makedirs(store.dir, exist_ok=True)
        wrong = hashlib.sha256(b"claimed content").hexdigest()
        with open(store.chunk_path(wrong), "wb") as f:
            f.write(zlib.compress(b"actual content"))
        with pytest.raises(IntegrityError, match=wrong[:12]):
            store.get(wrong)

    def test_verify_cache_invalidated_on_file_change(self, tmp_path):
        store = ChunkStore(str(tmp_path))
        digest, _, _ = store.put(_payload(10_000))
        store.verify(digest)  # memoizes on (size, mtime_ns)
        path = store.chunk_path(digest)
        with open(path, "wb") as f:
            f.write(b"rotten")
        with pytest.raises(IntegrityError):
            store.verify(digest)

    def test_gc_removes_unreferenced(self, tmp_path):
        store = ChunkStore(str(tmp_path))
        keep, _, _ = store.put(_payload(10_000, seed=1))
        drop, _, _ = store.put(_payload(10_000, seed=2))
        before = store.stored_bytes()
        removed, reclaimed = store.gc({keep})
        assert removed == 1 and 0 < reclaimed < before
        assert store.digests() == {keep}
        assert not os.path.exists(store.chunk_path(drop))

    def test_store_for_registry_is_per_dir(self, tmp_path):
        a = store_for(str(tmp_path / "a"))
        assert store_for(str(tmp_path / "a")) is a
        assert store_for(str(tmp_path / "b")) is not a


class TestGearEquivalence:
    """The vectorized boundary scan must match the pure-python rolling
    hash bit-for-bit — chunk boundaries are a durable on-disk contract
    (dedup depends on every process cutting identically)."""

    @staticmethod
    def _pure_candidates(data: bytes):
        import repro.mana.chunkstore as cs

        saved = cs._np
        cs._np = None
        try:
            return [int(i) for i in cs._boundary_candidates(data)]
        finally:
            cs._np = saved

    @staticmethod
    def _numpy_candidates(data: bytes):
        import repro.mana.chunkstore as cs

        assert cs._np is not None
        return [int(i) for i in cs._boundary_candidates(data)]

    @pytest.mark.parametrize(
        "size", [0, 1, 2, 3, 5, 11, 12, 13, 14, 31, 32, 33, 100, 4096,
                 65_537]
    )
    def test_equivalence_across_sizes(self, size):
        # Odd/even and sub-window sizes: the numpy path special-cases
        # partial windows (i < 12) and odd-length pair gathers.
        data = _payload(size, seed=size + 7)
        assert self._numpy_candidates(data) == self._pure_candidates(data)

    def test_equivalence_random_payloads(self):
        for seed in range(40):
            data = _payload(2048, seed=seed)
            assert (self._numpy_candidates(data)
                    == self._pure_candidates(data))

    def test_equivalence_adversarial_patterns(self):
        for pat in (b"\x00" * 5000, b"\xff" * 5000, bytes(range(256)) * 20,
                    b"ab" * 2500):
            assert (self._numpy_candidates(pat)
                    == self._pure_candidates(pat))

    def test_spans_identical_with_and_without_numpy(self):
        import repro.mana.chunkstore as cs

        data = _payload(300_000, seed=3)
        with_np = chunk_spans(data)
        saved = cs._np
        cs._np = None
        try:
            without_np = chunk_spans(data)
        finally:
            cs._np = saved
        assert with_np == without_np


class TestPutKnownAndPins:
    def test_put_known_matches_put(self, tmp_path):
        store = ChunkStore(str(tmp_path))
        data = _payload(10_000)
        digest = hashlib.sha256(data).hexdigest()
        written, reused = store.put_known(digest, data)
        assert written > 0 and not reused
        assert store.get(digest) == data
        written2, reused2 = store.put_known(digest, data)
        assert reused2 and written2 == 0

    def test_pinned_chunk_survives_gc(self, tmp_path):
        store = ChunkStore(str(tmp_path))
        keep, _, _ = store.put(_payload(10_000, seed=1))
        inflight, _, _ = store.put(_payload(10_000, seed=2))
        drop, _, _ = store.put(_payload(10_000, seed=3))
        store.pin([inflight])
        removed, _ = store.gc({keep})
        assert removed == 1
        assert store.digests() == {keep, inflight}
        # After the in-flight writer lands its header, the pin drops and
        # the next gc honours references alone.
        store.unpin([inflight])
        store.gc({keep})
        assert store.digests() == {keep}

    def test_pins_are_refcounted(self, tmp_path):
        store = ChunkStore(str(tmp_path))
        d, _, _ = store.put(_payload(5_000))
        store.pin([d])
        store.pin([d])
        store.unpin([d])
        assert d in store.pinned()
        store.unpin([d])
        assert d not in store.pinned()
