"""Datatype algebra: geometry, packing, envelopes, reconstruction.

These invariants carry MANA's restart correctness: a datatype decoded
via envelope/contents and rebuilt must pack identically.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import constants as C
from repro.mpi.datatypes import (
    ContiguousType,
    IndexedType,
    NamedType,
    StructType,
    TypeDescriptor,
    VectorType,
    descriptor_from_contents,
    make_predefined_types,
)
from repro.util.errors import MpiError, TruncationError

DOUBLE = NamedType("MPI_DOUBLE", "f8")
INT = NamedType("MPI_INT", "i4")
BYTE = NamedType("MPI_BYTE", "u1")


class TestNamedTypes:
    def test_all_predefined_construct(self):
        table = make_predefined_types()
        assert set(table) == set(C.PREDEFINED_DATATYPES)
        for t in table.values():
            assert t.size() == t.extent() > 0

    def test_unknown_name_rejected(self):
        with pytest.raises(MpiError):
            NamedType("MPI_BOGUS", "f8")

    def test_pair_type_layout(self):
        di = NamedType("MPI_DOUBLE_INT", C.PREDEFINED_DATATYPES["MPI_DOUBLE_INT"])
        assert di.size() == 12  # unaligned f8 + i4

    def test_named_contents_is_erroneous(self):
        with pytest.raises(MpiError):
            DOUBLE.contents()

    def test_envelope_named(self):
        env = INT.envelope()
        assert env.combiner == C.COMBINER_NAMED
        assert (env.num_integers, env.num_addresses, env.num_datatypes) == (0, 0, 0)


class TestGeometry:
    def test_contiguous(self):
        t = ContiguousType(5, DOUBLE)
        assert t.size() == 40
        assert t.extent() == 40
        assert t.is_dense()

    def test_vector_gapped(self):
        t = VectorType(3, 2, 4, DOUBLE)  # 3 blocks of 2, stride 4
        assert t.size() == 6 * 8
        # span: last block starts at 8*4*2=64, covers 2 doubles -> 80
        assert t.extent() == (2 * 4 + 2) * 8
        assert not t.is_dense()

    def test_vector_stride_equal_blocklength_is_dense_sized(self):
        t = VectorType(4, 2, 2, DOUBLE)
        assert t.size() == t.extent() == 64

    def test_indexed(self):
        t = IndexedType([2, 1], [0, 5], INT)
        assert t.size() == 12
        assert t.extent() == 6 * 4

    def test_struct_mixed(self):
        t = StructType([2, 3], [0, 16], [DOUBLE, INT])
        assert t.size() == 2 * 8 + 3 * 4
        assert t.extent() == 16 + 3 * 4

    def test_empty_counts(self):
        assert ContiguousType(0, DOUBLE).size() == 0
        assert VectorType(0, 3, 4, INT).size() == 0
        assert IndexedType([], [], INT).size() == 0

    def test_negative_counts_rejected(self):
        with pytest.raises(MpiError):
            ContiguousType(-1, DOUBLE)
        with pytest.raises(MpiError):
            VectorType(-1, 1, 1, INT)
        with pytest.raises(MpiError):
            IndexedType([-2], [0], INT)

    def test_mismatched_indexed_arrays(self):
        with pytest.raises(MpiError):
            IndexedType([1, 2], [0], INT)


class TestPacking:
    def test_contiguous_roundtrip(self):
        src = np.arange(10, dtype=np.float64)
        t = ContiguousType(10, DOUBLE)
        payload = t.pack(src, 1)
        dst = np.zeros(10)
        t.unpack(payload, dst, 1)
        assert np.array_equal(src, dst)

    def test_vector_selects_strided(self):
        src = np.arange(8, dtype=np.float64)
        t = VectorType(4, 1, 2, DOUBLE)
        payload = t.pack(src, 1)
        assert np.array_equal(
            np.frombuffer(payload, np.float64), src[::2]
        )

    def test_vector_unpack_scatters(self):
        t = VectorType(4, 1, 2, DOUBLE)
        payload = np.array([9.0, 8.0, 7.0, 6.0]).tobytes()
        dst = np.zeros(8)
        t.unpack(payload, dst, 1)
        assert np.array_equal(dst[::2], [9, 8, 7, 6])
        assert np.array_equal(dst[1::2], np.zeros(4))

    def test_indexed_roundtrip(self):
        src = np.arange(12, dtype=np.int32)
        t = IndexedType([2, 3], [1, 6], INT)
        payload = t.pack(src, 1)
        vals = np.frombuffer(payload, np.int32)
        assert list(vals) == [1, 2, 6, 7, 8]

    def test_struct_roundtrip(self):
        t = StructType([2, 2], [0, 16], [DOUBLE, INT])
        buf = np.zeros(24, dtype=np.uint8)
        buf[:16] = np.frombuffer(
            np.array([1.5, -2.5]).tobytes(), np.uint8
        )
        buf[16:24] = np.frombuffer(
            np.array([7, 9], dtype=np.int32).tobytes(), np.uint8
        )
        payload = t.pack(buf, 1)
        out = np.zeros(24, dtype=np.uint8)
        t.unpack(payload, out, 1)
        assert np.array_equal(out, buf)

    def test_multi_element_pack(self):
        src = np.arange(16, dtype=np.float64)
        t = VectorType(2, 1, 2, DOUBLE)  # extent 3 doubles? no: 2 blocks stride 2
        payload = t.pack(src, 2)
        vals = np.frombuffer(payload, np.float64)
        # element 0 -> indices 0,2 ; element 1 starts at extent boundary
        assert vals[0] == 0.0 and vals[1] == 2.0
        assert len(vals) == 4

    def test_pack_buffer_too_small(self):
        t = ContiguousType(100, DOUBLE)
        with pytest.raises(MpiError):
            t.pack(np.zeros(10), 1)

    def test_unpack_truncation(self):
        t = ContiguousType(2, DOUBLE)
        with pytest.raises(TruncationError):
            t.unpack(b"\0" * 100, np.zeros(64), 1)

    def test_unpack_partial_element(self):
        # MPI allows receiving fewer bytes than count*size.
        t = ContiguousType(4, DOUBLE)
        dst = np.zeros(4)
        consumed = t.unpack(np.array([5.0]).tobytes(), dst, 1)
        assert consumed == 8
        assert dst[0] == 5.0 and dst[1] == 0.0

    def test_noncontiguous_buffer_rejected(self):
        t = ContiguousType(2, DOUBLE)
        arr = np.zeros((4, 4))[:, 0]  # non-contiguous view
        with pytest.raises(MpiError, match="contiguous"):
            t.pack(arr, 1)

    def test_count_elements(self):
        t = ContiguousType(3, INT)
        assert t.count_elements(24) == 2
        assert t.count_elements(0) == 0
        assert t.count_elements(7) == C.UNDEFINED


class TestEnvelopeContents:
    def test_contiguous_roundtrip(self):
        t = ContiguousType(7, DOUBLE)
        env = t.envelope()
        assert env.combiner == C.COMBINER_CONTIGUOUS
        c = t.contents()
        rebuilt = descriptor_from_contents(env.combiner, c.integers, c.addresses, c.datatypes)
        assert rebuilt == t

    def test_nested_roundtrip(self):
        inner = VectorType(2, 3, 5, INT)
        t = ContiguousType(4, inner)
        c = t.contents()
        rebuilt = descriptor_from_contents(
            t.envelope().combiner, c.integers, c.addresses, c.datatypes
        )
        assert rebuilt == t
        assert rebuilt.signature() == t.signature()

    def test_struct_roundtrip(self):
        t = StructType([1, 2], [0, 8], [DOUBLE, INT])
        env = t.envelope()
        assert env.num_addresses == 2
        c = t.contents()
        rebuilt = descriptor_from_contents(env.combiner, c.integers, c.addresses, c.datatypes)
        assert rebuilt == t

    def test_indexed_contents_layout(self):
        t = IndexedType([2, 1], [0, 4], INT)
        c = t.contents()
        assert c.integers == (2, 2, 1, 0, 4)

    def test_signature_equality_is_structural(self):
        a = VectorType(2, 1, 3, NamedType("MPI_DOUBLE", "f8"))
        b = VectorType(2, 1, 3, NamedType("MPI_DOUBLE", "f8"))
        assert a == b and hash(a) == hash(b)
        assert a != VectorType(2, 1, 4, DOUBLE)


# ----------------------------------------------------------------------
# property-based: arbitrary descriptor trees survive decode/rebuild and
# pack/unpack roundtrips
# ----------------------------------------------------------------------

_named = st.sampled_from(
    [NamedType(n, C.PREDEFINED_DATATYPES[n])
     for n in ("MPI_DOUBLE", "MPI_INT", "MPI_BYTE", "MPI_INT16_T")]
)


def _derived(children):
    return st.one_of(
        st.builds(ContiguousType, st.integers(1, 4), children),
        st.builds(
            VectorType,
            st.integers(1, 3),
            st.integers(1, 3),
            st.integers(1, 5),
            children,
        ),
        st.builds(
            lambda bls, base: IndexedType(
                bls, list(range(0, 3 * len(bls), 3)), base
            ),
            st.lists(st.integers(1, 3), min_size=1, max_size=3),
            children,
        ),
    )


type_trees = st.recursive(_named, _derived, max_leaves=6)


@given(type_trees)
@settings(max_examples=60, deadline=None)
def test_property_contents_roundtrip(t: TypeDescriptor):
    if t.is_named():
        return
    env = t.envelope()
    c = t.contents()
    rebuilt = descriptor_from_contents(env.combiner, c.integers, c.addresses, c.datatypes)
    assert rebuilt == t


@given(type_trees, st.integers(1, 3))
@settings(max_examples=60, deadline=None)
def test_property_pack_unpack_roundtrip(t: TypeDescriptor, count: int):
    span = count * t.extent() + abs(t.lower_bound()) + 16
    rng = np.random.default_rng(0)
    src = rng.integers(0, 255, size=span, dtype=np.uint8) + 1
    payload = t.pack(src, count)
    assert len(payload) == count * t.size()
    dst = np.zeros(span, dtype=np.uint8)
    t.unpack(payload, dst, count)
    # Every byte the typemap touches must have been copied verbatim.
    payload2 = t.pack(dst, count)
    assert payload2 == payload
