"""The new virtual-id architecture (paper §4.2) — unit + property tests."""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mana.records import CommRecord, ConstantRecord, GroupRecord
from repro.mana.virtid import (
    GGID_HASH_COST_PER_RANK,
    KIND_TAGS,
    MANA_MAGIC,
    VID_LAYOUT,
    GgidPolicy,
    VirtualIdTable,
)
from repro.mpi.api import HandleKind
from repro.mpi.group import ggid_of
from repro.simtime.clock import VirtualClock
from repro.util.errors import InvalidHandleError


def comm_record(ranks, dup_seq=0):
    return CommRecord(world_ranks=tuple(ranks), ggid=None, dup_seq=dup_seq)


class TestLayout:
    def test_32_bits_kind_plus_index(self):
        vid = VID_LAYOUT.pack(kind=KIND_TAGS[HandleKind.COMM], index=123)
        assert 0 <= vid < (1 << 32)
        assert VID_LAYOUT.extract(vid, "kind") == 1

    def test_five_kinds_have_distinct_tags(self):
        assert len(set(KIND_TAGS.values())) == 5
        assert all(1 <= t <= 7 for t in KIND_TAGS.values())


class TestEmbedding:
    def test_32_bit_identity(self):
        t = VirtualIdTable(32)
        vh = t.attach(HandleKind.GROUP, GroupRecord((0,)), 5)
        assert vh < (1 << 32)
        assert t.extract(vh) == vh

    def test_64_bit_carries_mana_tag(self):
        t = VirtualIdTable(64)
        vh = t.attach(HandleKind.GROUP, GroupRecord((0,)), 5)
        assert vh >> 32 == MANA_MAGIC
        assert t.extract(vh) == vh & 0xFFFFFFFF

    def test_extract_accepts_both_widths(self):
        # Cross-implementation restart: a 32-bit-era handle must decode
        # under a 64-bit implementation and vice versa.
        t32, t64 = VirtualIdTable(32), VirtualIdTable(64)
        vid = VID_LAYOUT.pack(kind=2, index=9)
        assert t32.extract(vid) == vid
        assert t64.extract((MANA_MAGIC << 32) | vid) == vid

    def test_stray_pointer_rejected(self):
        # A 64-bit value without the MANA tag is a leaked physical
        # pointer, not a virtual handle.
        with pytest.raises(InvalidHandleError, match="MANA tag"):
            VirtualIdTable.extract(0x7F00_1234_0000_0010)

    def test_negative_rejected(self):
        with pytest.raises(InvalidHandleError):
            VirtualIdTable.extract(-1)


class TestAttachLookup:
    def test_single_lookup_returns_everything(self):
        t = VirtualIdTable(32)
        rec = comm_record((0, 1, 2))
        vh = t.attach(HandleKind.COMM, rec, phys=0x44000000)
        e = t.lookup(vh)
        assert e.record is rec
        assert e.phys == 0x44000000
        assert e.kind == HandleKind.COMM

    def test_kind_check(self):
        t = VirtualIdTable(32)
        vh = t.attach(HandleKind.OP, ConstantRecord("MPI_SUM"), 7)
        with pytest.raises(InvalidHandleError, match="is a op, not a comm"):
            t.lookup(vh, HandleKind.COMM)

    def test_unknown_vid(self):
        t = VirtualIdTable(32)
        with pytest.raises(InvalidHandleError, match="unknown virtual id"):
            t.lookup(VID_LAYOUT.pack(kind=1, index=55))

    def test_phys_missing_after_unbind(self):
        t = VirtualIdTable(32)
        vh = t.attach(HandleKind.GROUP, GroupRecord((1,)), 9)
        t.set_phys(vh, None)
        with pytest.raises(InvalidHandleError, match="no physical binding"):
            t.phys(vh)

    def test_remove_and_double_free(self):
        t = VirtualIdTable(32)
        vh = t.attach(HandleKind.GROUP, GroupRecord((1,)), 9)
        t.remove(vh)
        with pytest.raises(InvalidHandleError, match="double free"):
            t.remove(vh)

    def test_reverse_translation_o1(self):
        t = VirtualIdTable(32)
        vh = t.attach(HandleKind.DATATYPE, ConstantRecord("MPI_INT"), 0x4C0)
        assert t.vid_of_phys(HandleKind.DATATYPE, 0x4C0) == vh
        assert t.vid_of_phys(HandleKind.DATATYPE, 0xBAD) is None

    def test_set_phys_updates_reverse(self):
        t = VirtualIdTable(32)
        vh = t.attach(HandleKind.GROUP, GroupRecord((1,)), 10)
        t.set_phys(vh, 20)
        assert t.vid_of_phys(HandleKind.GROUP, 20) == vh
        assert t.vid_of_phys(HandleKind.GROUP, 10) is None


class TestGgidEmbedding:
    def test_comm_vid_embeds_ggid(self):
        t = VirtualIdTable(32)
        ranks = (0, 3, 7)
        vh = t.attach(HandleKind.COMM, comm_record(ranks), 1)
        e = t.lookup(vh)
        assert e.record.ggid == ggid_of(ranks)  # eager policy computed it
        assert e.index == ggid_of(ranks) & ((1 << 29) - 1)

    def test_same_membership_same_vid_across_tables(self):
        # The property MANA relies on: a communicator's virtual id is
        # identical on every member rank.
        ta, tb = VirtualIdTable(32), VirtualIdTable(32)
        va = ta.attach(HandleKind.COMM, comm_record((1, 2)), 11)
        vb = tb.attach(HandleKind.COMM, comm_record((1, 2)), 99)
        assert va == vb

    def test_dup_seq_disambiguates(self):
        t = VirtualIdTable(32)
        v0 = t.attach(HandleKind.COMM, comm_record((0, 1), dup_seq=0), 1)
        v1 = t.attach(HandleKind.COMM, comm_record((0, 1), dup_seq=1), 2)
        assert v0 != v1

    def test_collision_probing(self):
        t = VirtualIdTable(32)
        # Same (membership, dup_seq) attached twice (pathological but
        # must not corrupt the table): linear probe finds a second index.
        v0 = t.attach(HandleKind.COMM, comm_record((0, 1)), 1)
        v1 = t.attach(HandleKind.COMM, comm_record((0, 1)), 2)
        assert v0 != v1
        assert t.lookup(v0).phys == 1 and t.lookup(v1).phys == 2

    def test_constant_indices_stable_across_sessions(self):
        ta, tb = VirtualIdTable(32), VirtualIdTable(64)
        va = ta.attach(HandleKind.DATATYPE, ConstantRecord("MPI_INT"), 3,
                       constant_name="MPI_INT")
        vb = tb.attach(HandleKind.DATATYPE, ConstantRecord("MPI_INT"), 999,
                       constant_name="MPI_INT")
        assert ta.extract(va) == tb.extract(vb)

    def test_constant_vid_lookup_by_name(self):
        t = VirtualIdTable(32)
        vh = t.attach(HandleKind.OP, ConstantRecord("MPI_SUM"), 5,
                      constant_name="MPI_SUM")
        assert t.constant_vid("MPI_SUM") == vh
        assert t.constant_vid("MPI_MAX") is None


class TestGgidPolicies:
    def test_eager_charges_at_create(self):
        clock = VirtualClock()
        t = VirtualIdTable(32, GgidPolicy.EAGER, clock=clock)
        t.attach(HandleKind.COMM, comm_record(tuple(range(10))), 1)
        assert clock.account("mana-ggid") == pytest.approx(
            10 * GGID_HASH_COST_PER_RANK
        )

    def test_lazy_defers_to_finalize(self):
        clock = VirtualClock()
        t = VirtualIdTable(32, GgidPolicy.LAZY, clock=clock)
        vh = t.attach(HandleKind.COMM, comm_record((0, 1, 2)), 1)
        assert t.lookup(vh).record.ggid is None
        assert clock.account("mana-ggid") == 0.0
        assert t.finalize_ggids() == 1
        assert t.lookup(vh).record.ggid == ggid_of((0, 1, 2))

    def test_hybrid_caches_membership(self):
        clock = VirtualClock()
        t = VirtualIdTable(32, GgidPolicy.HYBRID, clock=clock)
        v1 = t.attach(HandleKind.COMM, comm_record((0, 1)), 1)
        assert t.lookup(v1).record.ggid is None  # first sight: deferred
        t.finalize_ggids()
        t.remove(v1)
        v2 = t.attach(HandleKind.COMM, comm_record((0, 1)), 2)
        # second sight: served from the cache, no deferral
        assert t.lookup(v2).record.ggid == ggid_of((0, 1))

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            VirtualIdTable(32, "random")


class TestPickling:
    def test_phys_dropped_records_kept(self):
        t = VirtualIdTable(32)
        rec = comm_record((0, 1))
        vh = t.attach(HandleKind.COMM, rec, phys=1234)
        t2 = pickle.loads(pickle.dumps(t))
        e = t2.lookup(vh)
        assert e.phys is None            # physical ids die with the lower half
        assert e.record.world_ranks == (0, 1)

    def test_creation_order_preserved(self):
        t = VirtualIdTable(32)
        handles = [
            t.attach(HandleKind.GROUP, GroupRecord((i,)), i)
            for i in range(5)
        ]
        t2 = pickle.loads(pickle.dumps(t))
        order = [e.creation_seq for e in t2.entries(HandleKind.GROUP)]
        assert order == sorted(order)
        # new attaches after restore keep increasing
        vh = t2.attach(HandleKind.GROUP, GroupRecord((99,)), 99)
        assert t2.lookup(vh).creation_seq > max(order)
        assert handles  # silence lint

    def test_rebuild_reverse(self):
        t = VirtualIdTable(32)
        vh = t.attach(HandleKind.GROUP, GroupRecord((0,)), 44)
        t2 = pickle.loads(pickle.dumps(t))
        assert t2.vid_of_phys(HandleKind.GROUP, 44) is None
        t2.set_phys(vh, 55)
        t2.rebuild_reverse()
        assert t2.vid_of_phys(HandleKind.GROUP, 55) == vh


@given(
    kinds=st.lists(
        st.sampled_from(list(HandleKind.ALL)), min_size=1, max_size=40
    )
)
@settings(max_examples=50, deadline=None)
def test_property_attach_lookup_remove(kinds):
    t = VirtualIdTable(32)
    live = {}
    for i, kind in enumerate(kinds):
        if kind == HandleKind.COMM:
            rec = comm_record((i,))
        elif kind == HandleKind.GROUP:
            rec = GroupRecord((i,))
        else:
            rec = ConstantRecord("MPI_INT")
        vh = t.attach(kind, rec, phys=i)
        assert vh not in live
        live[vh] = (kind, i)
    assert len(t) == len(live)
    for vh, (kind, phys) in live.items():
        e = t.lookup(vh, kind)
        assert e.phys == phys
    for vh in live:
        t.remove(vh)
    assert len(t) == 0
