"""Deterministic fault injection and self-healing recovery.

Covers the four layers of the subsystem: the declarative plan
(:mod:`repro.faults.plan`), the integrity-checked image format
(:mod:`repro.mana.checkpoint`), the coordinator's bounded-retry round
protocol, and the supervised restart loop
(:meth:`repro.runtime.Launcher.supervise`).
"""

import os
import threading
import time

import pytest

from repro import FaultPlan, FaultSpec, InjectedFault, JobConfig, Launcher
from repro.faults.plan import (
    CORRUPT_BITFLIP,
    CORRUPT_TRUNCATE,
    CRASH,
    SITE_MID_SAVE,
    SITE_PRE_DRAIN,
)
from repro.mana.checkpoint import (
    CheckpointImage,
    latest_restorable_generation,
    load_image,
    rank_image_path,
    restorable_generations,
    save_image,
    validate_generation,
    verify_image,
    write_manifest,
)
from repro.util.errors import CheckpointError, IntegrityError, RestartError


# ----------------------------------------------------------------------
# plan layer
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_crash_requires_valid_site(self):
        with pytest.raises(ValueError, match="crash site"):
            FaultSpec(CRASH, rank=0, site="nowhere")

    def test_corrupt_requires_valid_mode(self):
        with pytest.raises(ValueError, match="corruption mode"):
            FaultSpec("corrupt-image", rank=0, generation=1, mode="eat")

    def test_fluent_builders_accumulate(self):
        plan = (
            FaultPlan(seed=3)
            .crash_at_loop(rank=1, iteration=9)
            .corrupt_image(generation=2, rank=0, mode=CORRUPT_BITFLIP)
            .disk_full(rank=1, generation=2)
            .drop_message(src=0, dst=1, nth=2)
            .delay_message(src=1, dst=0, seconds=4.0)
            .abort_round(generation=1)
        )
        assert len(plan.specs) == 6
        descs = plan.describe()
        assert "crash rank 1 at loop 'main' iteration 9" in descs
        assert "bitflip image of rank 0 generation 2" in descs
        assert any("disk full" in d for d in descs)
        assert any("drop message #2 0->1" in d for d in descs)
        assert any("delay 4.0s" in d for d in descs)
        assert any("abort checkpoint round" in d for d in descs)

    def test_seeded_crash_is_seed_deterministic(self):
        a = FaultPlan.seeded_crash(11, nranks=8)
        b = FaultPlan.seeded_crash(11, nranks=8)
        c = FaultPlan.seeded_crash(12, nranks=8)
        assert a.specs[0] == b.specs[0]
        assert (a.specs[0].rank, a.specs[0].at) != (
            c.specs[0].rank, c.specs[0].at
        )


# ----------------------------------------------------------------------
# image integrity layer
# ----------------------------------------------------------------------
def _image(rank=0, generation=1, nranks=2):
    return CheckpointImage(
        rank=rank, nranks=nranks, impl="mpich", kind="loop",
        generation=generation, app={"acc": [1.0, 2.0]},
        loops={"main": 4}, vid_table=None, drain_buffer=None,
        clock_state={"now": 1.25}, rng_state=None, cs_count=17, epoch=0,
    )


def _write_generation(base, generation, nranks=2, cold=True):
    for r in range(nranks):
        save_image(rank_image_path(base, generation, r),
                   _image(rank=r, generation=generation, nranks=nranks))
    write_manifest(base, generation, nranks=nranks, impl="mpich",
                   kind="loop", cold_restartable=cold, loop_target=4)


class TestImageIntegrity:
    def test_verify_ok_and_header_contents(self, tmp_path):
        path = str(tmp_path / "r0.img")
        nbytes = save_image(path, _image())
        hdr = verify_image(path)
        assert nbytes == os.path.getsize(path)
        assert hdr["rank"] == 0 and hdr["generation"] == 1
        assert hdr["payload_sha256"]

    def test_truncated_image_is_integrity_error(self, tmp_path):
        path = str(tmp_path / "r0.img")
        save_image(path, _image())
        with open(path, "r+b") as f:
            f.truncate(os.path.getsize(path) - 7)
        with pytest.raises(IntegrityError, match="truncated"):
            verify_image(path)
        with pytest.raises(IntegrityError, match="truncated"):
            load_image(path)

    def test_bitflipped_payload_is_integrity_error(self, tmp_path):
        path = str(tmp_path / "r0.img")
        save_image(path, _image())
        size = os.path.getsize(path)
        with open(path, "r+b") as f:
            f.seek(size - 3)
            b = f.read(1)
            f.seek(size - 3)
            f.write(bytes([b[0] ^ 0xFF]))
        with pytest.raises(IntegrityError, match="checksum mismatch"):
            load_image(path)

    def test_unrecognized_file_is_restart_error(self, tmp_path):
        path = str(tmp_path / "junk.img")
        with open(path, "wb") as f:
            f.write(b"this is not a checkpoint image at all")
        with pytest.raises(RestartError, match="format"):
            verify_image(path)

    def test_validate_generation_reports_problems(self, tmp_path):
        base = str(tmp_path)
        assert validate_generation(base, 1) != []  # no manifest
        _write_generation(base, 1)
        assert validate_generation(base, 1) == []
        # corrupt rank 1 -> named in the problem list
        path = rank_image_path(base, 1, 1)
        with open(path, "r+b") as f:
            f.truncate(os.path.getsize(path) // 2)
        problems = validate_generation(base, 1)
        assert any("rank 1" in p and "truncated" in p for p in problems)

    def test_restorable_generation_selection(self, tmp_path):
        base = str(tmp_path)
        assert latest_restorable_generation(base) is None
        _write_generation(base, 1)
        _write_generation(base, 2)
        _write_generation(base, 3, cold=False)  # in-session: not cold
        assert restorable_generations(base) == [1, 2]
        # bit rot in generation 2 drops it from the restorable set
        path = rank_image_path(base, 2, 0)
        with open(path, "r+b") as f:
            f.seek(os.path.getsize(path) - 1)
            f.write(b"\x00")
        assert latest_restorable_generation(base) == 1


# ----------------------------------------------------------------------
# coordinator layer
# ----------------------------------------------------------------------
class TestCoordinatorDiagnostics:
    def test_ticket_timeout_names_phase_and_outstanding_ranks(self, tmp_path):
        from repro.mana.coordinator import CheckpointCoordinator
        from repro.simtime.cost import FilesystemProfile

        coord = CheckpointCoordinator(
            2, str(tmp_path), FilesystemProfile.discovery_nfsv3(),
            phase_timeout=30.0,
        )
        tk = coord.request_checkpoint()
        att = coord.begin_participation(0)

        def lone_rank():
            try:
                coord.quiesce(0, 1.0, att)  # blocks: rank 1 never arrives
            except Exception:
                pass

        t = threading.Thread(target=lone_rank, daemon=True)
        t.start()
        time.sleep(0.2)
        with pytest.raises(CheckpointError) as ei:
            tk.wait(timeout=0.5)
        msg = str(ei.value)
        assert "did not complete" in msg
        assert "quiesce" in msg
        assert "outstanding ranks [1]" in msg
        coord.abort(RuntimeError("test teardown"))
        t.join(5)


# ----------------------------------------------------------------------
# end-to-end: injection determinism + supervised self-healing
# ----------------------------------------------------------------------
class TestInjectionEndToEnd:
    def _run_crash(self, seed):
        from repro.faults.scenarios import SurvivorApp

        plan = FaultPlan(seed=seed).crash_at_call(rank=2, n=25)
        cfg = JobConfig(nranks=4, impl="mpich", mana=True, seed=seed,
                        deadline=30.0, faults=plan)
        res = Launcher(cfg).run(lambda r: SurvivorApp(8), timeout=30)
        return res, cfg.faults.trace()

    def test_crash_at_call_fires_deterministically(self):
        res1, trace1 = self._run_crash(5)
        res2, trace2 = self._run_crash(5)
        assert res1.status == "failed"
        assert any("injected crash" in (r.error or "") for r in res1.ranks)
        assert trace1 == trace2
        assert trace1[0]["what"].startswith("crash rank 2")
        # the victim's virtual time of death is scheduling-independent
        assert res1.ranks[2].runtime == res2.ranks[2].runtime

    def test_pre_drain_crash_fails_round_then_supervisor_recovers(
            self, tmp_path):
        from repro.faults.scenarios import (
            SurvivorApp, _arm_triggers, _config, baseline_checksums,
        )
        from repro.runtime import RestartPolicy

        plan = FaultPlan(seed=7).crash_in_checkpoint(
            rank=1, generation=2, site=SITE_PRE_DRAIN)
        cfg = _config(str(tmp_path), 7, plan)
        res = Launcher(cfg, RestartPolicy(max_restarts=2)).supervise(
            lambda r: SurvivorApp(), timeout=60.0, on_launch=_arm_triggers,
        )
        assert res.status == "completed", res.first_error()
        assert res.restarts == 1
        restored = [e["generation"] for e in res.recovery_events
                    if e["event"] == "restart"]
        assert restored == [1]
        assert [round(a.checksum, 9) for a in res.apps()] == \
            baseline_checksums(7)

    def test_supervisor_gives_up_without_restorable_generation(
            self, tmp_path):
        from repro.faults.scenarios import SurvivorApp
        from repro.runtime import RestartPolicy

        # crash before any checkpoint exists: nothing to restore from
        plan = FaultPlan(seed=7).crash_at_loop(rank=0, iteration=1)
        cfg = JobConfig(nranks=4, impl="mpich", mana=True, seed=7,
                        ckpt_dir=str(tmp_path), deadline=30.0, faults=plan)
        res = Launcher(cfg, RestartPolicy(max_restarts=2)).supervise(
            lambda r: SurvivorApp(8), timeout=30.0,
        )
        assert res.status == "failed"
        assert res.restarts == 0
        kinds = [e["event"] for e in res.recovery_events]
        assert kinds == ["rank-failure", "no-restorable-generation"]

    def test_restart_budget_is_bounded(self, tmp_path):
        from repro.faults.scenarios import (
            SurvivorApp, _arm_triggers, _config,
        )
        from repro.runtime import RestartPolicy

        # rank 1 dies at iteration 9 on the first run AND again on the
        # restarted run (iteration 9 re-executes after restoring the
        # generation parked at iteration 8) — with a zero-restart budget
        # the supervisor must stop after the first failure.
        plan = (FaultPlan(seed=7)
                .crash_at_loop(rank=1, iteration=9)
                .crash_at_loop(rank=2, iteration=9))
        cfg = _config(str(tmp_path), 7, plan)
        res = Launcher(cfg, RestartPolicy(max_restarts=0)).supervise(
            lambda r: SurvivorApp(), timeout=60.0, on_launch=_arm_triggers,
        )
        assert res.status == "failed"
        assert res.restarts == 0
        assert any(e["event"] == "restart-budget-exhausted"
                   for e in res.recovery_events)


class TestScenarioSweep:
    """The CLI scenarios double as the paper-style acceptance suite."""

    def test_self_heal_acceptance(self):
        from repro.faults.scenarios import scenario_self_heal

        out = scenario_self_heal(seed=7)
        assert out["ok"], out

    def test_disk_full_leaves_no_torn_files(self):
        from repro.faults.scenarios import scenario_disk_full

        out = scenario_disk_full(seed=7)
        assert out["ok"], out
        assert out["torn_files"] == []

    def test_round_abort_retries_without_restart(self):
        from repro.faults.scenarios import scenario_round_abort

        out = scenario_round_abort(seed=7)
        assert out["ok"], out
        aborts = [e for e in out["events"] if e["event"] == "round-abort"]
        assert aborts and aborts[0]["retrying"]

    def test_chunk_corrupt_self_heals(self):
        """Bit rot in one format-5 store chunk: the supervisor must fall
        back to the intact prior generation and finish correctly."""
        from repro.faults.scenarios import scenario_chunk_corrupt

        out = scenario_chunk_corrupt(seed=7)
        assert out["ok"], out
        restored = [e["generation"] for e in out["events"]
                    if e["event"] == "restart"]
        assert restored == [1]  # gen 2's chunk is rotten, gen 1 intact
        fired = {e["fault"] for e in out["faults_fired"]}
        assert "corrupt-chunk" in fired
        chunk_ev = next(e for e in out["faults_fired"]
                        if e["fault"] == "corrupt-chunk")
        assert len(chunk_ev["chunk"]) == 12  # names the rotten chunk
        # Manifests carry per-generation dedup stats for diagnostics.
        assert out["dedup"] and all(
            "chunks_written" in d for d in out["dedup"].values()
        )

    def test_recovery_trace_is_deterministic(self):
        from repro.faults.scenarios import fault_smoke, recovery_fingerprint

        out = fault_smoke(seed=7)
        assert out["self_heal_ok"]
        assert out["deterministic"], (
            recovery_fingerprint(out["run"]), out["rerun"],
        )

    def test_hot_path_untouched_without_plan(self):
        """faults=None must leave every hook disconnected."""
        cfg = JobConfig(nranks=2, impl="mpich", mana=True)
        job = Launcher(cfg).launch(
            lambda r: __import__("tests.miniapps", fromlist=["RingApp"])
            .RingApp(4)
        )
        assert job.injector is None
        assert job.fabric.injector is None
        assert job.coordinator.injector is None
        res = job.run(30)
        assert res.status == "completed"
