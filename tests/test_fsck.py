"""Durability layer: intent journal, crash-safe publishes, and fsck.

Covers the journal record lifecycle (:mod:`repro.mana.journal`), the
unique-temp-name discipline and store-open hygiene
(:mod:`repro.mana.storeio`, :class:`repro.mana.chunkstore.ChunkStore`),
the :func:`repro.mana.fsck.fsck` repair rules (roll forward / roll
back / finish prune / quarantine / orphan reclamation), the supervised
auto-repair hook, and the single-bit-flip detection property of both
image formats and the chunk store.  See docs/PROTOCOLS.md §13.
"""

import json
import os
import random
import threading
import zlib

import pytest

from repro.faults.crashpoints import CrashPointInjector
from repro.mana import storeio
from repro.mana.checkpoint import (
    CheckpointImage,
    QUARANTINE_DIRNAME,
    invalidate_checkpoint_caches,
    latest_restorable_generation,
    rank_image_path,
    referenced_chunks,
    restorable_generations,
    save_chunked_blob,
    save_image,
    verify_image,
    write_manifest,
)
from repro.mana.chunkstore import ChunkStore, store_for
from repro.mana.fsck import auto_repair, fsck
from repro.mana.journal import Journal
from repro.util.errors import InjectedCrash, IntegrityError, RestartError


def _image(rank=0, generation=1, nranks=2):
    return CheckpointImage(
        rank=rank, nranks=nranks, impl="mpich", kind="loop",
        generation=generation, app={"acc": [1.0, 2.0]},
        loops={"main": 4}, vid_table=None, drain_buffer=None,
        clock_state={"now": 1.25}, rng_state=None, cs_count=17, epoch=0,
    )


def _blob(generation, rank, n=20_000):
    return random.Random(generation * 1000 + rank).randbytes(n)


def _write_generation(base, generation, nranks=2):
    """One complete format-5 generation (images + manifest)."""
    store = store_for(base)
    for r in range(nranks):
        save_chunked_blob(
            rank_image_path(base, generation, r),
            _image(rank=r, generation=generation, nranks=nranks),
            _blob(generation, r), store,
        )
    write_manifest(base, generation, nranks=nranks, impl="mpich",
                   kind="loop", cold_restartable=True, loop_target=4)


# ----------------------------------------------------------------------
# journal layer
# ----------------------------------------------------------------------
class TestJournal:
    def test_begin_pending_retire_roundtrip(self, tmp_path):
        j = Journal(str(tmp_path))
        token = j.begin("image-save", generation=3, rank=1)
        assert os.path.exists(token)
        # Record names carry the writer's identity: <seq>-<op>-<pid>-<tid>
        stem = os.path.basename(token)[: -len(".json")]
        assert int(stem.rsplit("-", 2)[1]) == os.getpid()
        (rec,) = j.pending()
        assert rec["op"] == "image-save"
        assert rec["generation"] == 3 and rec["rank"] == 1
        j.retire(token)
        assert j.pending() == []
        # Already-retired tokens and None are tolerated.
        j.retire(token)
        j.retire(None)

    def test_torn_record_parses_as_unknown_op(self, tmp_path):
        j = Journal(str(tmp_path))
        os.makedirs(j.dir, exist_ok=True)
        with open(os.path.join(j.dir, "000001-x-1-1.json"), "wb") as f:
            f.write(b'{"op": "image-sa')  # torn mid-write
        (rec,) = j.pending()
        assert rec["op"] == "?"

    def test_retire_matching_filters_by_op_and_generation(self, tmp_path):
        j = Journal(str(tmp_path))
        j.begin("image-save", generation=2, rank=0)
        j.begin("image-save", generation=2, rank=1)
        j.begin("image-save", generation=3, rank=0)
        j.begin("prune", generations=[1])
        assert j.retire_matching(op="image-save", generation=2) == 2
        ops = sorted(r["op"] for r in j.pending())
        assert ops == ["image-save", "prune"]

    def test_records_sort_in_begin_order(self, tmp_path):
        j = Journal(str(tmp_path))
        for g in (5, 1, 3):
            j.begin("image-save", generation=g, rank=0)
        assert [r["generation"] for r in j.pending()] == [5, 1, 3]


# ----------------------------------------------------------------------
# unique temp names + store-open hygiene
# ----------------------------------------------------------------------
class TestUniqueTmpNames:
    def test_tmp_name_embeds_writer_identity(self):
        name = storeio.tmp_name("/x/chunk.z")
        assert name.endswith(storeio.TMP_SUFFIX)
        assert storeio.tmp_owner_pid(os.path.basename(name)) == os.getpid()

    def test_threads_get_distinct_tmp_names(self):
        names = {}
        # Both threads must be alive at once: thread idents are reused
        # after a thread exits (and that reuse is exactly when sharing
        # a temp name would be harmless).
        barrier = threading.Barrier(2)

        def grab(k):
            names[k] = storeio.tmp_name("/x/same-final-path")
            barrier.wait(timeout=10)

        ts = [threading.Thread(target=grab, args=(i,)) for i in range(2)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert names[0] != names[1]

    def test_owner_liveness(self):
        me = f"c.z.{os.getpid()}.1.tmp"
        assert storeio.tmp_owner_alive(me)
        # pid 99999999 exceeds any default pid_max: definitely dead.
        assert not storeio.tmp_owner_alive("c.z.99999999.1.tmp")
        # Legacy bare name: no owner recorded, treated as dead.
        assert storeio.tmp_owner_pid("c.z.tmp") is None
        assert not storeio.tmp_owner_alive("c.z.tmp")

    def test_store_open_sweeps_dead_writers_tmp_and_warns(self, tmp_path):
        base = str(tmp_path)
        store = ChunkStore(base)
        os.makedirs(store.dir)
        dead = os.path.join(store.dir, "abc.z.99999999.7.tmp")
        live = os.path.join(store.dir, f"abc.z.{os.getpid()}.7.tmp")
        for p in (dead, live):
            with open(p, "wb") as f:
                f.write(b"partial")
        with pytest.warns(UserWarning, match="fsck"):
            removed = store.sweep_stray_tmp()
        assert removed == 1
        assert not os.path.exists(dead)
        assert os.path.exists(live)  # conservatively kept: owner alive

    def test_save_leaves_no_tmp_or_pending_record(self, tmp_path):
        base = str(tmp_path)
        _write_generation(base, 1)
        for dirpath, _d, files in os.walk(base):
            assert not any(n.endswith(".tmp") for n in files), dirpath
        assert Journal(base).pending() == []


# ----------------------------------------------------------------------
# fsck repair rules
# ----------------------------------------------------------------------
class TestFsckRepair:
    def test_clean_directory_reports_clean(self, tmp_path):
        base = str(tmp_path)
        _write_generation(base, 1)
        report = fsck(base)
        assert not report.dirty
        assert report.restorable_generations == [1]
        assert auto_repair(base) is None
        assert auto_repair(str(tmp_path / "nonexistent")) is None

    def test_stale_record_of_completed_generation_rolls_forward(
            self, tmp_path):
        """A writer that died *after* its generation committed must not
        cost us the generation: the record is retired, nothing deleted."""
        base = str(tmp_path)
        _write_generation(base, 1)
        Journal(base).begin("image-save", generation=1, rank=0)
        report = fsck(base)
        assert report.rolled_forward_generations == [1]
        assert report.rolled_back_generations == []
        assert report.restorable_generations == [1]
        assert Journal(base).pending() == []

    def test_pending_record_of_uncommitted_generation_rolls_back(
            self, tmp_path):
        base = str(tmp_path)
        _write_generation(base, 1)
        # Generation 2 died mid-save: rank 0's image landed, rank 1's
        # record is still pending, and no manifest ever committed.
        save_chunked_blob(rank_image_path(base, 2, 0),
                          _image(0, 2), _blob(2, 0), store_for(base))
        Journal(base).begin("image-save", generation=2, rank=1)
        report = fsck(base)
        assert report.rolled_back_generations == [2]
        assert not os.path.isdir(os.path.dirname(
            rank_image_path(base, 2, 0)))
        assert report.restorable_generations == [1]
        # The rolled-back generation's now-unreferenced chunks are gone.
        assert store_for(base).digests() == referenced_chunks(base)

    def test_manifest_less_generation_without_record_rolls_back(
            self, tmp_path):
        """Death in the window between retiring the last image record
        and journaling the manifest commit: no pending record, but the
        generation has no commit marker either."""
        base = str(tmp_path)
        _write_generation(base, 1)
        store = store_for(base)
        save_chunked_blob(rank_image_path(base, 2, 0),
                          _image(0, 2), _blob(2, 0), store)
        report = fsck(base)
        assert report.rolled_back_generations == [2]
        assert report.restorable_generations == [1]

    def test_pending_prune_is_finished(self, tmp_path):
        base = str(tmp_path)
        for g in (1, 2, 3):
            _write_generation(base, g)
        Journal(base).begin("prune", generations=[1])
        report = fsck(base)
        assert report.finished_prunes == [1]
        assert report.restorable_generations == [2, 3]

    def test_corrupt_chunk_is_quarantined_and_generation_skipped(
            self, tmp_path):
        base = str(tmp_path)
        _write_generation(base, 1)
        _write_generation(base, 2)
        store = store_for(base)
        # Rot one chunk referenced only by generation 2.
        only2 = sorted(
            referenced_chunks(base, [2]) - referenced_chunks(base, [1])
        )
        victim = only2[0]
        path = store.chunk_path(victim)
        with open(path, "r+b") as f:
            f.seek(10)
            b = f.read(1)
            f.seek(10)
            f.write(bytes([b[0] ^ 0x40]))
        invalidate_checkpoint_caches(base)
        # Make fsck treat it as dirty (simulated dead writer).
        Journal(base).begin("gc")
        report = fsck(base)
        assert report.quarantined_chunks == [victim]
        qfile = os.path.join(base, QUARANTINE_DIRNAME, victim + ".z")
        assert os.path.exists(qfile)       # kept for forensics
        assert not os.path.exists(path)    # out of the store
        # The restart fallback skips the generation referencing it.
        assert 2 in report.skipped_generations
        assert any("missing" in p for p in report.skipped_generations[2])
        assert report.restorable_generations == [1]
        assert latest_restorable_generation(base) == 1

    def test_orphan_chunks_are_reclaimed(self, tmp_path):
        base = str(tmp_path)
        _write_generation(base, 1)
        store = store_for(base)
        digest, written, reused = store.put(b"never referenced by anyone")
        assert written and not reused
        report = fsck(base)
        assert report.orphan_chunks_removed == 1
        assert not store.contains(digest)
        assert report.restorable_generations == [1]

    def test_fsck_is_idempotent(self, tmp_path):
        base = str(tmp_path)
        _write_generation(base, 1)
        save_chunked_blob(rank_image_path(base, 2, 0),
                          _image(0, 2), _blob(2, 0), store_for(base))
        Journal(base).begin("image-save", generation=2, rank=1)
        first = fsck(base)
        assert first.dirty
        second = fsck(base)
        assert not second.dirty
        assert second.restorable_generations == [1]

    def test_check_only_mode_mutates_nothing(self, tmp_path):
        base = str(tmp_path)
        _write_generation(base, 1)
        save_chunked_blob(rank_image_path(base, 2, 0),
                          _image(0, 2), _blob(2, 0), store_for(base))
        token = Journal(base).begin("image-save", generation=2, rank=1)
        report = fsck(base, repair=False)
        assert report.dirty and not report.repaired
        assert os.path.exists(token)                        # not retired
        assert os.path.exists(rank_image_path(base, 2, 0))  # not rolled back

    def test_crash_injection_then_fsck_restores(self, tmp_path):
        """End-to-end: kill a save at a syscall boundary, repair, and
        the prior generation must still verify."""
        base = str(tmp_path)
        _write_generation(base, 1)
        inj = CrashPointInjector(arm_at="save.image.rename.before")
        storeio.set_injector(inj)
        try:
            with pytest.raises(InjectedCrash):
                save_chunked_blob(rank_image_path(base, 2, 0),
                                  _image(0, 2), _blob(2, 0),
                                  store_for(base))
        finally:
            storeio.set_injector(None)
        # The dead writer stranded a tmp file and a pending record.
        assert Journal(base).pending()
        report = fsck(base)
        assert report.dirty
        assert report.rolled_back_generations == [2]
        assert report.restorable_generations == [1]
        for r in range(2):
            verify_image(rank_image_path(base, 1, r))
        assert not fsck(base).dirty


# ----------------------------------------------------------------------
# supervised auto-repair
# ----------------------------------------------------------------------
class TestSuperviseAutoFsck:
    def test_mid_save_crash_triggers_fsck_before_restart(self, tmp_path):
        from repro import FaultPlan, Launcher
        from repro.faults.plan import SITE_MID_SAVE
        from repro.faults.scenarios import (
            SurvivorApp, _arm_triggers, _config,
        )
        from repro.runtime import RestartPolicy

        plan = FaultPlan(seed=7).crash_in_checkpoint(
            rank=1, generation=2, site=SITE_MID_SAVE)
        cfg = _config(str(tmp_path), 7, plan)
        res = Launcher(cfg, RestartPolicy(max_restarts=2)).supervise(
            lambda r: SurvivorApp(), timeout=60.0, on_launch=_arm_triggers,
        )
        assert res.status == "completed", res.first_error()
        kinds = [e["event"] for e in res.recovery_events]
        # The dirty shutdown (stranded tmp + pending journal record) is
        # repaired before the restore point is chosen.
        assert "fsck" in kinds
        assert kinds.index("fsck") < kinds.index("restart")
        fsck_ev = next(e for e in res.recovery_events
                       if e["event"] == "fsck")
        assert fsck_ev["rolled_back_generations"] == [2]
        restored = [e["generation"] for e in res.recovery_events
                    if e["event"] == "restart"]
        assert restored == [1]

    def test_skip_reasons_recorded_for_unrestorable_generations(
            self, tmp_path):
        from repro import FaultPlan, Launcher
        from repro.faults.plan import CORRUPT_TRUNCATE
        from repro.faults.scenarios import (
            SurvivorApp, _arm_triggers, _config,
        )
        from repro.runtime import RestartPolicy

        # Generation 2 commits, then its rank-1 image is truncated, then
        # rank 2 dies: the supervisor must fall back to generation 1 and
        # say *why* generation 2 was passed over — without leaking the
        # absolute checkpoint path into the (fingerprinted) trace.
        plan = (FaultPlan(seed=7)
                .corrupt_image(generation=2, rank=1,
                               mode=CORRUPT_TRUNCATE)
                .crash_at_loop(rank=2, iteration=9))
        cfg = _config(str(tmp_path), 7, plan)
        res = Launcher(cfg, RestartPolicy(max_restarts=2)).supervise(
            lambda r: SurvivorApp(), timeout=60.0, on_launch=_arm_triggers,
        )
        restart = next(e for e in res.recovery_events
                       if e["event"] == "restart")
        assert restart["skipped_generations"] == [2]
        reasons = restart["skip_reasons"][2]
        assert reasons and any("truncated" in r for r in reasons)
        assert all(str(tmp_path) not in r for r in reasons)
        assert any("<ckpt>" in r for r in reasons)


# ----------------------------------------------------------------------
# single-bit-flip detection (property-style, seeded sampling)
# ----------------------------------------------------------------------
class TestBitFlipDetection:
    def _flip(self, path, offset, bit):
        with open(path, "r+b") as f:
            f.seek(offset)
            b = f.read(1)
            f.seek(offset)
            f.write(bytes([b[0] ^ (1 << bit)]))

    def test_format4_payload_flips_detected(self, tmp_path):
        path = str(tmp_path / "g" / "rank_00000.img")
        save_image(path, _image())
        size = os.path.getsize(path)
        header = verify_image(path)
        payload_start = size - header["payload_bytes"]
        rng = random.Random(0xF4)
        for _ in range(12):
            offset = rng.randrange(payload_start, size)
            bit = rng.randrange(8)
            self._flip(path, offset, bit)
            with pytest.raises(IntegrityError):
                verify_image(path)
            self._flip(path, offset, bit)  # restore
        verify_image(path)

    def test_format5_header_flips_detected(self, tmp_path):
        base = str(tmp_path)
        _write_generation(base, 1, nranks=1)
        path = rank_image_path(base, 1, 0)
        size = os.path.getsize(path)
        rng = random.Random(0xF5)
        offsets = {rng.randrange(size) for _ in range(12)}
        for offset in sorted(offsets):
            bit = rng.randrange(8)
            self._flip(path, offset, bit)
            invalidate_checkpoint_caches(base)
            # Magic/length flips surface as RestartError (unrecognized
            # or truncated), everything else as IntegrityError — either
            # way the flip cannot go unnoticed.
            with pytest.raises((IntegrityError, RestartError)):
                verify_image(path)
            self._flip(path, offset, bit)
        verify_image(path)

    def test_chunk_flips_detected_including_compressed_stream(
            self, tmp_path):
        base = str(tmp_path)
        store = store_for(base)
        payload = zlib.compress(_blob(9, 9), 0)  # poorly compressible
        digest, _w, _r = store.put(payload)
        path = store.chunk_path(digest)
        size = os.path.getsize(path)
        rng = random.Random(0xC0)
        # Sample across the whole file: zlib stream header, the
        # compressed byte stream, and the trailing adler32.
        offsets = {0, size - 1} | {rng.randrange(size) for _ in range(10)}
        for offset in sorted(offsets):
            bit = rng.randrange(8)
            self._flip(path, offset, bit)
            with pytest.raises(IntegrityError):
                store.get(digest)
            self._flip(path, offset, bit)
        store.get(digest)  # intact again
