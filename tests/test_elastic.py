"""Elastic restart: N-rank checkpoints restored onto M ranks.

Covers the layers of docs/PROTOCOLS.md §12: the partitioning plan
(:class:`repro.apps.Partitioner` / :class:`repro.apps.RepartitionPlan`),
the per-app ``repartition`` contract, the launcher's
:meth:`Launcher.elastic_restart`, the elastic :class:`RestartPolicy`
modes under supervision, and the fail-fast rank-count checks.

The acceptance oracle: :class:`ElasticHaloApp` is globally seeded with a
decomposition-independent update, so an M-rank elastic restore of an
N-rank checkpoint must finish **bit-identical** to a cold M-rank run.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro import (
    ElasticRestartError,
    Job,
    JobConfig,
    Launcher,
    RestartError,
    RestartPolicy,
)
from repro.apps import Partitioner, RepartitionPlan
from repro.apps.comd import CoMDProxy
from repro.apps.elastic import GLOBAL_CELLS, ElasticHaloApp
from repro.apps.sw4 import Sw4Proxy
from repro.mana.checkpoint import (
    latest_generations,
    load_image,
    rank_image_path,
    read_manifest,
)

SEED = 7
BLOCKS = 8


# ----------------------------------------------------------------------
# partitioning plan
# ----------------------------------------------------------------------
class TestPartitioner:
    @pytest.mark.parametrize("total,nranks", [
        (240, 8), (240, 6), (10, 3), (7, 7), (5, 8), (1, 1),
    ])
    def test_bounds_cover_exactly(self, total, nranks):
        bounds = Partitioner.bounds(total, nranks)
        assert len(bounds) == nranks
        Partitioner.verify(bounds, total)
        owned = [i for lo, hi in bounds for i in range(lo, hi)]
        assert owned == list(range(total))

    def test_owner_of(self):
        bounds = Partitioner.bounds(10, 3)  # [0,4) [4,7) [7,10)
        assert [Partitioner.owner_of(i, bounds) for i in range(10)] == \
            [0, 0, 0, 0, 1, 1, 1, 2, 2, 2]

    def test_verify_rejects_gap(self):
        with pytest.raises(ValueError, match="gap or overlap"):
            Partitioner.verify([(0, 3), (4, 10)], 10)

    def test_rejects_zero_ranks(self):
        with pytest.raises(ValueError, match="nranks"):
            Partitioner.bounds(10, 0)


class TestRepartitionPlan:
    @pytest.mark.parametrize("old,new", [(8, 4), (4, 8), (8, 6), (3, 5)])
    def test_rank_map_is_a_total_unique_assignment(self, old, new):
        plan = RepartitionPlan.build(
            [hi - lo for lo, hi in Partitioner.bounds(GLOBAL_CELLS, old)],
            new,
        )
        rm = plan.rank_map()
        assert sorted(rm) == list(range(old))
        # merged_into partitions the old ranks: every old rank's
        # identity lands on exactly one new rank.
        seen = []
        for r in range(new):
            seen.extend(plan.merged_into(r))
        assert sorted(seen) == list(range(old))

    def test_src_of_owns_first_item(self):
        plan = RepartitionPlan.build([30] * 8, 6)  # 240 cells, 8 -> 6
        for r in range(6):
            lo, hi = plan.new_bounds[r]
            src = plan.src_of(r)
            s_lo, s_hi = plan.old_bounds[src]
            assert s_lo <= lo < s_hi

    def test_uneven_shrink_seed_and_identity_can_differ(self):
        # 240 cells, 8 old ranks (30 each), 6 new ranks (40 each): new
        # rank 1 starts at cell 40 inside old rank 1's slice, but old
        # rank 1's first cell (30) lands on new rank 0 — the seed of a
        # new rank need not be an identity it inherits.
        plan = RepartitionPlan.build([30] * 8, 6)
        assert plan.src_of(1) == 1
        assert plan.rank_map()[1] == 0
        assert 1 not in plan.merged_into(1)


# ----------------------------------------------------------------------
# app-level repartition contract (no MPI needed)
# ----------------------------------------------------------------------
def _halo_apps(nranks: int, blocks_done: int = 3):
    spec = replace(ElasticHaloApp.paper_config(), nranks=nranks, seed=SEED)
    field = np.arange(float(GLOBAL_CELLS))
    apps = []
    for r, (lo, hi) in enumerate(Partitioner.bounds(GLOBAL_CELLS, nranks)):
        a = ElasticHaloApp(spec)
        a.field = field[lo:hi].copy()
        a.history = [1.5, 2.5, 3.5]
        a.blocks_done = blocks_done
        a.checksum = 7.5
        apps.append(a)
    return apps


class TestRepartitionContract:
    @pytest.mark.parametrize("old,new", [(8, 4), (4, 8), (8, 6)])
    def test_halo_field_rows_are_preserved(self, old, new):
        new_apps, plan = ElasticHaloApp.repartition(_halo_apps(old), new)
        assert len(new_apps) == new
        merged = np.concatenate([a.field for a in new_apps])
        assert np.array_equal(merged, np.arange(float(GLOBAL_CELLS)))
        for a in new_apps:
            assert a.spec.nranks == new
            assert a.blocks_done == 3
            assert a.checksum == 7.5        # replicated checksum copied
            assert a.history == [1.5, 2.5, 3.5]

    def test_comd_ledger_checksum_is_conserved(self):
        spec = replace(CoMDProxy.paper_config(), nranks=4)
        rng = np.random.default_rng(0)
        apps = []
        for r in range(4):
            a = CoMDProxy(spec)
            a.positions = rng.normal(size=(10, 3))
            a.velocities = rng.normal(size=(10, 3))
            a.vec3 = 0x123
            a.energy_history = [float(r)]
            a.blocks_done = 2
            a.checksum = float(r + 1)
            apps.append(a)
        new_apps, plan = CoMDProxy.repartition(apps, 2)
        # Ledger mode: per-rank partial checksums fold into the unique
        # inheritor, so the global sum is conserved.
        assert sum(a.checksum for a in new_apps) == pytest.approx(10.0)
        merged = np.concatenate([a.positions for a in new_apps])
        assert np.array_equal(
            merged, np.concatenate([a.positions for a in apps])
        )
        for r, a in enumerate(new_apps):
            # post_repartition recomputed the decomposition metadata.
            assert a.dims == tuple(a.dims)
            assert a.halo_pairs
            assert a.n_halo <= len(a.positions)

    def test_sw4_refuses_repartition(self):
        with pytest.raises(ElasticRestartError, match="pins the world"):
            Sw4Proxy.repartition([], 2)


# ----------------------------------------------------------------------
# end-to-end elastic restore (the §12 pipeline)
# ----------------------------------------------------------------------
def _spec(nranks: int) -> "WorkloadSpec":
    return replace(
        ElasticHaloApp.paper_config(),
        nranks=nranks, seed=SEED, blocks=BLOCKS,
    )


def _run_checkpointed(ckpt_dir: str, nranks: int, impl: str = "mpich",
                      triggers=(2,)) -> JobConfig:
    """Run ElasticHaloApp to completion, leaving LOOP checkpoints (lag
    window 2: a trigger at iteration k parks at k+2)."""
    spec = _spec(nranks)
    cfg = JobConfig(
        nranks=nranks, impl=impl, mana=True, seed=SEED,
        ckpt_dir=ckpt_dir, loop_lag_window=2, deadline=60.0,
    )
    job = Launcher(cfg).launch(lambda r: ElasticHaloApp(spec))
    for t in triggers:
        job.checkpoint_at_iteration("main", t, kind="loop")
    res = job.run(60.0)
    assert res.status == "completed", res.first_error()
    return cfg


def _cold_state(nranks: int, impl: str = "mpich", tmp_path=None) -> dict:
    spec = _spec(nranks)
    cfg = JobConfig(
        nranks=nranks, impl=impl, mana=True, seed=SEED, deadline=60.0,
        ckpt_dir=str(tmp_path) if tmp_path is not None else None,
    )
    res = Launcher(cfg).run(lambda r: ElasticHaloApp(spec), 60.0)
    assert res.status == "completed", res.first_error()
    return {
        "checksums": [a.checksum for a in res.apps()],
        "history": [list(a.history) for a in res.apps()],
    }


def _restored_state(res) -> dict:
    return {
        "checksums": [a.checksum for a in res.apps()],
        "history": [list(a.history) for a in res.apps()],
    }


class TestElasticRestart:
    @pytest.mark.parametrize("old,new", [(8, 4), (4, 8), (8, 6)])
    def test_restore_is_bit_identical_to_cold_run(self, tmp_path, old, new):
        cfg = _run_checkpointed(str(tmp_path / "ckpt"), old)
        job = Launcher(cfg).elastic_restart(cfg.ckpt_dir, new_nranks=new)
        res = job.run(60.0)
        assert res.status == "completed", res.first_error()
        assert len(res.ranks) == new
        assert _restored_state(res) == _cold_state(new)

    @pytest.mark.parametrize("new", [4, 2])
    def test_cross_impl_elastic_migration(self, tmp_path, new):
        """Checkpoint under Open MPI at 4 ranks, restore under MPICH at
        the same and at a smaller size: §9 interoperability composes
        with resizing and the results stay bit-identical."""
        cfg = _run_checkpointed(str(tmp_path / "ckpt"), 4, impl="openmpi")
        job = Launcher(cfg).elastic_restart(
            cfg.ckpt_dir, new_nranks=new, impl_override="mpich"
        )
        assert job.config.impl == "mpich"
        res = job.run(60.0)
        assert res.status == "completed", res.first_error()
        assert _restored_state(res) == _cold_state(new, impl="mpich")

    def test_equal_size_delegates_to_plain_restart(self, tmp_path):
        cfg = _run_checkpointed(str(tmp_path / "ckpt"), 4)
        job = Launcher(cfg).elastic_restart(cfg.ckpt_dir, new_nranks=4)
        # Plain restart path: no elastic provenance to stamp.
        assert job.coordinator.elastic_provenance is None
        res = job.run(60.0)
        assert res.status == "completed", res.first_error()
        assert _restored_state(res) == _cold_state(4)

    def test_first_checkpoint_after_restore_is_stamped(self, tmp_path):
        cfg = _run_checkpointed(str(tmp_path / "ckpt"), 8)
        job = Launcher(cfg).elastic_restart(cfg.ckpt_dir, new_nranks=4)
        assert job.coordinator.elastic_provenance == {
            "from_nranks": 8, "to_nranks": 4,
            "from_impl": "mpich", "to_impl": "mpich",
            "source_generation": 1,
        }
        job.checkpoint_at_iteration("main", 4, kind="loop")
        res = job.run(60.0)
        assert res.status == "completed", res.first_error()
        gens = latest_generations(cfg.ckpt_dir)
        manifest = read_manifest(cfg.ckpt_dir, gens[-1])
        assert manifest["nranks"] == 4
        assert manifest["extra"]["elastic"] == {
            "from_nranks": 8, "to_nranks": 4,
            "from_impl": "mpich", "to_impl": "mpich",
            "source_generation": 1,
        }

    def test_supervised_elastic_shrink_records_events(self, tmp_path):
        from repro.faults import FaultPlan

        spec = _spec(8)
        cfg = JobConfig(
            nranks=8, impl="mpich", mana=True, seed=SEED,
            ckpt_dir=str(tmp_path / "ckpt"), loop_lag_window=2,
            deadline=60.0,
            faults=FaultPlan(seed=SEED).crash_at_loop(rank=1, iteration=5),
        )
        policy = RestartPolicy(
            max_restarts=2, elastic="shrink_on_node_loss", capacity=[4],
        )

        def arm(job):
            job.checkpoint_at_iteration("main", 2, kind="loop")

        res = Launcher(cfg, policy).supervise(
            lambda r: ElasticHaloApp(spec), timeout=60.0, on_launch=arm,
        )
        assert res.status == "completed", res.first_error()
        assert len(res.ranks) == 4
        ev = [e for e in res.recovery_events if e["event"] == "restart"]
        assert len(ev) == 1
        assert ev[0]["elastic"] == "shrink_on_node_loss"
        assert ev[0]["from_nranks"] == 8
        assert ev[0]["to_nranks"] == 4
        assert ev[0]["skipped_generations"] == []
        assert _restored_state(res) == _cold_state(4)


# ----------------------------------------------------------------------
# fail-fast rank-count checks
# ----------------------------------------------------------------------
class TestRankCountFailFast:
    def test_load_image_checks_expected_nranks(self, tmp_path):
        cfg = _run_checkpointed(str(tmp_path / "ckpt"), 4)
        path = rank_image_path(cfg.ckpt_dir, 1, 0)
        with pytest.raises(RestartError, match="elastic restart"):
            load_image(path, expect_nranks=8)
        # The happy path still loads.
        assert load_image(path, expect_nranks=4).nranks == 4

    def test_job_rejects_wrong_image_count(self, tmp_path):
        cfg = _run_checkpointed(str(tmp_path / "ckpt"), 4)
        images = [
            load_image(rank_image_path(cfg.ckpt_dir, 1, r))
            for r in range(4)
        ]
        bad = JobConfig(nranks=4, impl="mpich", mana=True,
                        ckpt_dir=cfg.ckpt_dir)
        with pytest.raises(RestartError, match="elastic restart"):
            Job(bad, images=images[:3])

    def test_job_rejects_mismatched_image_nranks(self, tmp_path):
        cfg = _run_checkpointed(str(tmp_path / "ckpt"), 4)
        images = [
            load_image(rank_image_path(cfg.ckpt_dir, 1, r))
            for r in range(3)
        ]
        bad = JobConfig(nranks=3, impl="mpich", mana=True,
                        ckpt_dir=cfg.ckpt_dir)
        with pytest.raises(RestartError, match="checkpointed at nranks=4"):
            Job(bad, images=images)

    def test_policy_validates_elastic_mode(self):
        with pytest.raises(ValueError, match="elastic mode"):
            RestartPolicy(elastic="teleport", capacity=[4])
        with pytest.raises(ValueError, match="capacity"):
            RestartPolicy(elastic="grow_to_capacity")
        # The default stays permissive.
        assert RestartPolicy().elastic is None

    def test_non_elastic_app_refused_end_to_end(self, tmp_path):
        """A checkpoint of an app with elastic=False must raise, not
        mis-restore."""
        from tests.miniapps import RingApp

        cfg = JobConfig(
            nranks=4, impl="mpich", mana=True, seed=SEED,
            ckpt_dir=str(tmp_path / "ckpt"), loop_lag_window=2,
            deadline=60.0,
        )
        job = Launcher(cfg).launch(lambda r: RingApp(12))
        job.checkpoint_at_iteration("main", 2, kind="loop")
        res = job.run(60.0)
        assert res.status == "completed", res.first_error()
        with pytest.raises(ElasticRestartError):
            Launcher(cfg).elastic_restart(cfg.ckpt_dir, new_nranks=2)
