"""CLI smoke tests (python -m repro)."""

import pytest

from repro.__main__ import main


def test_apps_listing(capsys):
    assert main(["apps"]) == 0
    out = capsys.readouterr().out
    for app in ("comd", "hpcg", "lammps", "lulesh", "sw4", "gromacs"):
        assert app in out


def test_impls_listing(capsys):
    assert main(["impls"]) == 0
    out = capsys.readouterr().out
    assert "openmpi" in out and "64" in out
    assert "mpich" in out and "32" in out


def test_run_native(capsys):
    assert main(["run", "lulesh", "--ranks", "4", "--blocks", "3"]) == 0
    out = capsys.readouterr().out
    assert "status   : completed" in out


def test_run_mana(capsys):
    rc = main(["run", "comd", "--ranks", "4", "--blocks", "3", "--mana"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "crossings" in out


def test_preempt_and_restart_roundtrip(tmp_path, capsys):
    ck = str(tmp_path / "ck")
    rc = main([
        "run", "comd", "--ranks", "4", "--blocks", "8",
        "--preempt-at", "2", "--ckpt-dir", ck, "--lag-window", "2",
    ])
    assert rc == 0
    assert "preempted" in capsys.readouterr().out
    rc = main(["restart", ck])
    assert rc == 0
    assert "completed" in capsys.readouterr().out


def test_restart_under_other_impl(tmp_path, capsys):
    ck = str(tmp_path / "ck")
    main([
        "run", "lammps", "--ranks", "4", "--blocks", "8",
        "--preempt-at", "2", "--ckpt-dir", ck, "--lag-window", "2",
    ])
    capsys.readouterr()
    rc = main(["restart", ck, "--impl", "exampi"])
    assert rc == 0
    assert "restarted under exampi" in capsys.readouterr().out


def test_report_single_table(capsys):
    assert main(["report", "table1"]) == 0
    assert "Table 1" in capsys.readouterr().out


def test_report_ablation(capsys):
    assert main(["report", "ablation_vid_lookup"]) == 0
    out = capsys.readouterr().out
    assert "legacy" in out and "new" in out


def test_faults_single_scenario(capsys):
    assert main(["faults", "round-abort"]) == 0
    out = capsys.readouterr().out
    assert "[ok ] round-abort" in out
    assert "self-healed" in out


def test_faults_chunk_corrupt_prints_dedup(capsys):
    assert main(["faults", "chunk-corrupt"]) == 0
    out = capsys.readouterr().out
    assert "[ok ] chunk-corrupt" in out
    assert "chunks written" in out and "reused" in out


def test_ckpt_smoke(capsys):
    assert main(["ckpt-smoke"]) == 0
    out = capsys.readouterr().out
    assert "[ok ] bytes_dedup_factor" in out
    assert "within tolerance" in out


def test_ckpt_smoke_missing_baseline(tmp_path, capsys):
    rc = main(["ckpt-smoke", "--baseline", str(tmp_path / "nope.json")])
    assert rc == 2
    assert "no baseline" in capsys.readouterr().out


def test_fault_smoke(capsys):
    assert main(["fault-smoke"]) == 0
    out = capsys.readouterr().out
    assert "self-heal    : ok" in out
    assert "deterministic: ok" in out


def test_legacy_vid_run_fails_on_openmpi(capsys):
    rc = main([
        "run", "comd", "--ranks", "2", "--blocks", "2", "--mana",
        "--impl", "openmpi", "--vid-design", "legacy",
    ])
    assert rc == 1
    assert "IncompatibleHandleError" in capsys.readouterr().out
