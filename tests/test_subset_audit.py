"""Section 5 audit: MANA itself uses only the declared MPI subset.

The paper specifies three categories of MPI functions MANA requires of
any implementation:

1. message drain:  MPI_Iprobe, MPI_Recv, MPI_Test;
2. object decoding: MPI_Comm_group, MPI_Group_translate_ranks,
   MPI_Type_get_envelope, MPI_Type_get_contents;
3. MANA-internal communication: MPI_Send, MPI_Recv, MPI_Alltoall.

Restart replay additionally invokes the constructors of the objects
being rebuilt (Comm_split, Group_incl, Type_*, Op_create, Irecv) — the
calls whose *results* it is recreating.  This test runs real checkpoints
and restarts and asserts MANA's lower-half traffic stays inside that
envelope.
"""

import pytest

from repro import JobConfig, Launcher
from tests.conftest import ALL_IMPLS
from tests.miniapps import RingApp, SkewedSendersApp

#: §5's three categories.
CORE_SUBSET = {
    "iprobe", "recv", "test",                       # category 1
    "comm_group", "group_translate_ranks",          # category 2
    "type_get_envelope", "type_get_contents",
    "send", "alltoall", "probe",                    # category 3 (+probe)
    "group_size", "group_free",                     # group decode helpers
    "constant",                                     # mpi.h constant access
}

#: Constructors replay may call — one per object kind it rebuilds.
REPLAY_CONSTRUCTORS = {
    "comm_split", "comm_dup", "group_incl",
    "type_contiguous", "type_vector", "type_indexed",
    "type_create_struct", "type_commit", "type_free",
    "op_create", "irecv", "init", "barrier",
}

ALLOWED_DRAIN = CORE_SUBSET
ALLOWED_REPLAY = CORE_SUBSET | REPLAY_CONSTRUCTORS


@pytest.mark.parametrize("impl", ALL_IMPLS)
def test_drain_uses_only_core_subset(impl):
    job = Launcher(JobConfig(nranks=4, impl=impl, mana=True)).launch(
        lambda r: SkewedSendersApp(16)
    )
    tk = job.checkpoint_at_iteration("main", 6, mode="continue")
    job.start()
    tk.wait(120)
    res = job.wait(120)
    assert res.status == "completed", res.first_error()
    for mana in job.manas:
        used = set(mana.last_internal_calls)
        extra = used - ALLOWED_DRAIN
        assert not extra, (
            f"{impl}: MANA's drain used functions outside the §5 "
            f"subset: {sorted(extra)}"
        )


@pytest.mark.parametrize("impl", ALL_IMPLS)
def test_replay_uses_only_subset_plus_constructors(impl):
    job = Launcher(JobConfig(nranks=4, impl=impl, mana=True)).launch(
        lambda r: RingApp(20)
    )
    tk = job.checkpoint_at_iteration("main", 7, mode="relaunch")
    job.start()
    tk.wait(120)
    res = job.wait(120)
    assert res.status == "completed", res.first_error()
    for mana in job.manas:
        used = set(mana.last_internal_calls)
        extra = used - ALLOWED_REPLAY
        assert not extra, (
            f"{impl}: MANA's restart replay used functions outside the "
            f"allowed envelope: {sorted(extra)}"
        )


def test_drain_actually_used_the_required_functions():
    """Not vacuous: the drain really exercises Iprobe/Recv/Alltoall."""
    job = Launcher(JobConfig(nranks=4, impl="mpich", mana=True)).launch(
        lambda r: SkewedSendersApp(16)
    )
    tk = job.checkpoint_at_iteration("main", 6, mode="continue")
    job.start()
    tk.wait(120)
    res = job.wait(120)
    assert res.status == "completed", res.first_error()
    receiver = job.manas[1]  # rank 1 lags; messages were drained
    used = receiver.last_internal_calls
    assert used.get("alltoall", 0) >= 1   # count exchange
    assert used.get("iprobe", 0) >= 1     # pending-message detection
    assert used.get("recv", 0) >= 1       # the drain itself


def test_exampi_subset_covers_mana_requirements():
    """§5's conclusion: the subset sufficient for MANA must be inside
    what even the most restricted implementation (ExaMPI) provides."""
    from repro.impls.exampi import ExaMpiLib

    overlap = (CORE_SUBSET - {"constant"}) & ExaMpiLib.UNSUPPORTED
    assert not overlap
