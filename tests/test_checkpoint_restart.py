"""Integration: transparent checkpoint/restart across all implementations.

The contract under test: for any checkpoint kind/mode, the final
application state equals that of an uninterrupted run — no lost messages,
no duplicated work, all MPI objects semantically reconstructed.
"""

import numpy as np
import pytest

from repro import CheckpointKind, CheckpointMode, JobConfig, Launcher
from repro.util.errors import CheckpointError
from tests.conftest import ALL_IMPLS
from tests.miniapps import PendingIrecvApp, RingApp, SkewedSendersApp

NRANKS = 4


def run_baseline(app_factory, impl, **cfg_kw):
    res = Launcher(
        JobConfig(nranks=NRANKS, impl=impl, mana=True, **cfg_kw)
    ).run(app_factory, timeout=120)
    assert res.status == "completed", res.first_error()
    return res


def run_with_checkpoint(app_factory, impl, at_iter, kind, mode, **cfg_kw):
    job = Launcher(
        JobConfig(nranks=NRANKS, impl=impl, mana=True, **cfg_kw)
    ).launch(app_factory)
    ticket = job.checkpoint_at_iteration("main", at_iter, kind=kind, mode=mode)
    job.start()
    info = ticket.wait(120)
    res = job.wait(120)
    return res, info


@pytest.mark.parametrize("impl", ALL_IMPLS)
@pytest.mark.parametrize("mode", [CheckpointMode.CONTINUE, CheckpointMode.RELAUNCH])
def test_in_session_checkpoint_preserves_results(impl, mode):
    base = run_baseline(lambda r: RingApp(30), impl)
    expect = [a.acc[0] for a in base.apps()]
    res, info = run_with_checkpoint(
        lambda r: RingApp(30), impl, 11, CheckpointKind.IN_SESSION, mode
    )
    assert res.status == "completed", res.first_error()
    assert [a.acc[0] for a in res.apps()] == expect
    assert info["generation"] == 1
    assert info["ckpt_time"] > 0


@pytest.mark.parametrize("impl", ALL_IMPLS)
def test_relaunch_rebinds_physical_ids(impl):
    """After a relaunch, the lower half is a NEW library instance; the
    app continues using its old virtual handles untouched."""
    job = Launcher(JobConfig(nranks=NRANKS, impl=impl, mana=True)).launch(
        lambda r: RingApp(24)
    )
    tk = job.checkpoint_at_iteration(
        "main", 8, kind=CheckpointKind.IN_SESSION, mode=CheckpointMode.RELAUNCH
    )
    job.start()
    tk.wait(120)
    res = job.wait(120)
    assert res.status == "completed", res.first_error()
    for mana in job.manas:
        assert mana.epoch == 1  # lower half was replaced exactly once


@pytest.mark.parametrize("impl", ALL_IMPLS)
def test_in_flight_messages_drained_and_replayed(impl):
    base = run_baseline(lambda r: SkewedSendersApp(20), impl)
    expect = [a.received for a in base.apps()]
    res, info = run_with_checkpoint(
        lambda r: SkewedSendersApp(20), impl, 7,
        CheckpointKind.IN_SESSION, CheckpointMode.RELAUNCH,
    )
    assert res.status == "completed", res.first_error()
    got = [a.received for a in res.apps()]
    assert got == expect
    for app in res.apps():
        assert app.validate(None) is None  # ordering preserved


@pytest.mark.parametrize("impl", ALL_IMPLS)
def test_pending_irecv_survives_relaunch(impl):
    res, _ = run_with_checkpoint(
        lambda r: PendingIrecvApp(24), impl, 9,
        CheckpointKind.IN_SESSION, CheckpointMode.RELAUNCH,
    )
    assert res.status == "completed", res.first_error()
    for app in res.apps():
        assert app.validate(None) is None


@pytest.mark.parametrize("impl", ALL_IMPLS)
def test_preempt_and_cold_restart(impl, tmp_path):
    base = run_baseline(lambda r: RingApp(26), impl)
    expect = [a.acc[0] for a in base.apps()]

    ckdir = str(tmp_path / "ck")
    cfg = JobConfig(nranks=NRANKS, impl=impl, mana=True, ckpt_dir=ckdir)
    job = Launcher(cfg).launch(lambda r: RingApp(26))
    tk = job.checkpoint_at_iteration(
        "main", 6, kind=CheckpointKind.LOOP, mode=CheckpointMode.EXIT
    )
    job.start()
    info = tk.wait(120)
    res = job.wait(120)
    assert res.status == "preempted"
    # Work done so far is bounded by the elected target iteration.
    assert all(len(a.trace) <= info["loop_target"] for a in res.apps())

    job2 = Launcher(cfg).restart(ckdir)
    res2 = job2.run(timeout=120)
    assert res2.status == "completed", res2.first_error()
    assert [a.acc[0] for a in res2.apps()] == expect


def test_multiple_checkpoints_same_run():
    base = run_baseline(lambda r: RingApp(36), "mpich")
    expect = [a.acc[0] for a in base.apps()]
    job = Launcher(JobConfig(nranks=NRANKS, impl="mpich", mana=True)).launch(
        lambda r: RingApp(36)
    )
    t1 = job.checkpoint_at_iteration("main", 6, mode=CheckpointMode.RELAUNCH)
    job.start()
    i1 = t1.wait(120)
    t2 = job.coordinator.checkpoint_at_iteration(
        "main", 20, mode=CheckpointMode.RELAUNCH
    )
    i2 = t2.wait(120)
    res = job.wait(120)
    assert res.status == "completed", res.first_error()
    assert (i1["generation"], i2["generation"]) == (1, 2)
    assert [a.acc[0] for a in res.apps()] == expect
    assert all(m.epoch == 2 for m in job.manas)


def test_restart_then_checkpoint_again(tmp_path):
    """Cold restart followed by another preemption and another restart."""
    base = run_baseline(lambda r: RingApp(30), "mpich")
    expect = [a.acc[0] for a in base.apps()]

    ckdir = str(tmp_path / "ck")
    cfg = JobConfig(nranks=NRANKS, impl="mpich", mana=True, ckpt_dir=ckdir)
    job = Launcher(cfg).launch(lambda r: RingApp(30))
    tk = job.checkpoint_at_iteration("main", 4, kind="loop", mode="exit")
    job.start()
    tk.wait(120)
    assert job.wait(120).status == "preempted"

    job2 = Launcher(cfg).restart(ckdir)
    tk2 = job2.coordinator.checkpoint_at_iteration(
        "main", 18, kind="loop", mode="exit"
    )
    job2.start()
    tk2.wait(120)
    assert job2.wait(120).status == "preempted"

    job3 = Launcher(cfg).restart(ckdir)  # latest generation
    res3 = job3.run(timeout=120)
    assert res3.status == "completed", res3.first_error()
    assert [a.acc[0] for a in res3.apps()] == expect


def test_in_session_image_not_cold_restartable(tmp_path):
    ckdir = str(tmp_path / "ck")
    cfg = JobConfig(nranks=NRANKS, impl="mpich", mana=True, ckpt_dir=ckdir)
    job = Launcher(cfg).launch(lambda r: RingApp(20))
    tk = job.checkpoint_at_iteration("main", 5, kind="in-session")
    job.start()
    tk.wait(120)
    assert job.wait(120).status == "completed"
    from repro.util.errors import RestartError

    with pytest.raises(RestartError, match="cold-restartable"):
        Launcher(cfg).restart(ckdir)


def test_loop_checkpoint_past_end_is_cancelled():
    job = Launcher(JobConfig(nranks=NRANKS, impl="mpich", mana=True)).launch(
        lambda r: RingApp(10)
    )
    # target = 9 + lag(8) = beyond the loop end -> must cancel, not hang
    tk = job.checkpoint_at_iteration("main", 9, kind="loop", mode="exit")
    job.start()
    with pytest.raises(CheckpointError, match="cancelled"):
        tk.wait(120)
    assert job.wait(120).status == "completed"


def test_checkpoint_after_completion_is_cancelled():
    job = Launcher(JobConfig(nranks=NRANKS, impl="mpich", mana=True)).launch(
        lambda r: RingApp(6)
    )
    res = job.start().wait(120)
    assert res.status == "completed"
    ticket = job.request_checkpoint()
    # the job already cancelled pending work at wait(); a fresh request
    # must fail fast at the next wait() rather than hang
    job.coordinator.cancel_pending("test cleanup")
    with pytest.raises(CheckpointError):
        ticket.wait(5)


def test_clock_includes_checkpoint_cost():
    base = run_baseline(lambda r: RingApp(20), "mpich")
    res, info = run_with_checkpoint(
        lambda r: RingApp(20), "mpich", 8,
        CheckpointKind.IN_SESSION, CheckpointMode.CONTINUE,
    )
    assert res.runtime >= base.runtime + info["ckpt_time"] * 0.9


def test_checkpoint_image_sizes_reported():
    res, info = run_with_checkpoint(
        lambda r: RingApp(20), "mpich", 8,
        CheckpointKind.IN_SESSION, CheckpointMode.CONTINUE,
    )
    assert len(info["bytes_per_rank"]) == NRANKS
    assert all(b > 100 for b in info["bytes_per_rank"])
