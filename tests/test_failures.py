"""Failure injection: crashes, aborts, bad state, torn checkpoints."""

import os
import threading
import time

import numpy as np
import pytest

from repro import JobConfig, Launcher, MpiApplication
from repro.util.errors import CheckpointError, MpiAbort
from tests.miniapps import RingApp


class CrashInside(MpiApplication):
    """Dies at a chosen point; peers must not hang."""

    def __init__(self, where: str):
        self.where = where

    def run(self, ctx):
        MPI = ctx.MPI
        w = MPI.COMM_WORLD
        for it in ctx.loop("main", 12):
            if ctx.rank == 1 and it == 4:
                if self.where == "before-collective":
                    raise RuntimeError("crash before collective")
            out = np.zeros(1)
            MPI.allreduce(np.array([1.0]), out, 1, MPI.DOUBLE, MPI.SUM, w)
            if ctx.rank == 1 and it == 4 and self.where == "after-collective":
                raise RuntimeError("crash after collective")
            if ctx.rank == 1 and it == 4 and self.where == "mpi-abort":
                MPI.abort(w, 42)


class UnpicklableState(MpiApplication):
    """Grows an unpicklable member: checkpoint must fail loudly, not
    corrupt the job silently."""

    def run(self, ctx):
        MPI = ctx.MPI
        self.bad = threading.Lock()  # unpicklable
        for it in ctx.loop("main", 10):
            MPI.barrier(MPI.COMM_WORLD)


class TestRankCrashes:
    @pytest.mark.parametrize("where", ["before-collective", "after-collective"])
    def test_crash_fails_job_without_hanging(self, where):
        res = Launcher(JobConfig(nranks=4, impl="mpich", mana=True)).run(
            lambda r: CrashInside(where), timeout=60
        )
        assert res.status == "failed"
        assert "crash" in res.first_error()

    def test_mpi_abort_tears_down_job(self):
        res = Launcher(JobConfig(nranks=4, impl="mpich", mana=True)).run(
            lambda r: CrashInside("mpi-abort"), timeout=60
        )
        assert res.status == "failed"
        assert "MPI_Abort" in res.first_error() or "ABORT" in res.first_error()

    def test_crash_during_pending_checkpoint_fails_ticket(self):
        job = Launcher(JobConfig(nranks=4, impl="mpich", mana=True)).launch(
            lambda r: CrashInside("before-collective")
        )
        # The trigger fires at iteration 6, but rank 1 dies at 4: the
        # ticket must error out rather than hang.
        tk = job.checkpoint_at_iteration("main", 6)
        job.start()
        res = job.wait(60)
        assert res.status == "failed"
        with pytest.raises(Exception):
            tk.wait(10)


class TestCheckpointFailures:
    def test_unpicklable_state_fails_checkpoint(self):
        job = Launcher(JobConfig(nranks=2, impl="mpich", mana=True)).launch(
            lambda r: UnpicklableState()
        )
        tk = job.checkpoint_at_iteration("main", 3)
        job.start()
        with pytest.raises(Exception):
            tk.wait(30)
        res = job.wait(60)
        assert res.status == "failed"
        assert "not serializable" in res.first_error()

    def test_corrupt_image_rejected_at_restart(self, tmp_path):
        ckdir = str(tmp_path / "ck")
        cfg = JobConfig(nranks=2, impl="mpich", mana=True, ckpt_dir=ckdir,
                        loop_lag_window=2)
        job = Launcher(cfg).launch(lambda r: RingApp(16))
        tk = job.checkpoint_at_iteration("main", 3, kind="loop", mode="exit")
        job.start()
        tk.wait(60)
        assert job.wait(60).status == "preempted"

        # Truncate one rank's image.
        from repro.mana.checkpoint import rank_image_path

        path = rank_image_path(ckdir, 1, 1)
        with open(path, "r+b") as f:
            f.truncate(os.path.getsize(path) // 2)
        with pytest.raises(Exception):
            Launcher(cfg).restart(ckdir).run(timeout=30)

    def test_missing_rank_image_rejected(self, tmp_path):
        ckdir = str(tmp_path / "ck")
        cfg = JobConfig(nranks=2, impl="mpich", mana=True, ckpt_dir=ckdir,
                        loop_lag_window=2)
        job = Launcher(cfg).launch(lambda r: RingApp(16))
        tk = job.checkpoint_at_iteration("main", 3, kind="loop", mode="exit")
        job.start()
        tk.wait(60)
        job.wait(60)
        from repro.mana.checkpoint import rank_image_path
        from repro.util.errors import RestartError

        os.remove(rank_image_path(ckdir, 1, 0))
        with pytest.raises(RestartError, match="no checkpoint image"):
            Launcher(cfg).restart(ckdir)

    def test_restart_from_empty_dir(self, tmp_path):
        from repro.util.errors import RestartError

        cfg = JobConfig(nranks=2, impl="mpich", mana=True)
        with pytest.raises(RestartError, match="no checkpoints"):
            Launcher(cfg).restart(str(tmp_path / "nothing"))


class TestIntegrityFallback:
    """Torn or bit-rotted images are rejected with typed errors, and a
    generation-less restart falls back to the newest intact generation."""

    def _two_generations(self, tmp_path):
        ckdir = str(tmp_path / "ck")
        cfg = JobConfig(nranks=2, impl="mpich", mana=True, ckpt_dir=ckdir,
                        loop_lag_window=2)
        job = Launcher(cfg).launch(lambda r: RingApp(16))
        job.checkpoint_at_iteration("main", 3, kind="loop")
        tk = job.checkpoint_at_iteration("main", 8, kind="loop", mode="exit")
        job.start()
        tk.wait(60)
        assert job.wait(60).status == "preempted"
        return ckdir, cfg

    @pytest.mark.parametrize("corruption", ["truncate", "bitflip"])
    def test_corrupt_generation_falls_back_to_previous(
            self, tmp_path, corruption):
        from repro.mana.checkpoint import load_image, rank_image_path
        from repro.util.errors import IntegrityError

        ckdir, cfg = self._two_generations(tmp_path)
        path = rank_image_path(ckdir, 2, 0)
        size = os.path.getsize(path)
        if corruption == "truncate":
            with open(path, "r+b") as f:
                f.truncate(size // 2)
            expect = "truncated"
        else:
            with open(path, "r+b") as f:
                f.seek(size - 5)
                b = f.read(1)
                f.seek(size - 5)
                f.write(bytes([b[0] ^ 0x01]))
            expect = "checksum mismatch"
        with pytest.raises(IntegrityError, match=expect):
            load_image(path)
        # generation 2 is no longer restorable; restart picks 1
        assert Launcher.restorable(ckdir) == [1]
        res = Launcher(cfg).restart(ckdir).run(timeout=60)
        assert res.status == "completed", res.first_error()


class TestFabricFailures:
    def test_deadlocked_recv_detected(self):
        class DeadlockApp(MpiApplication):
            def run(self, ctx):
                if ctx.rank == 0:
                    # waits for a message nobody sends
                    buf = np.zeros(1)
                    ctx.MPI.recv(buf, 1, ctx.MPI.DOUBLE, 1, 99,
                                 ctx.MPI.COMM_WORLD)

        # Native blocking recv has a real-time deadline guard.
        cfg = JobConfig(nranks=2, impl="mpich", mana=False, deadline=20.0)
        job = Launcher(cfg).launch(lambda r: DeadlockApp())
        # shrink the guard so the test is fast
        import repro.mpi.api as api

        orig = api.BaseMpiLib._deadline
        api.BaseMpiLib._deadline = lambda self: 1.0
        try:
            res = job.run(timeout=30)
        finally:
            api.BaseMpiLib._deadline = orig
        assert res.status == "failed"
        assert "deadlock" in res.first_error()
