"""DrainBuffer matching semantics + drain-related wrapper behavior."""

import numpy as np
import pytest

from repro.mana.drain import DrainBuffer, DrainedMessage
from repro.mpi.constants import ANY_SOURCE, ANY_TAG


def msg(comm_vid=1, src_world=0, src_comm_rank=0, tag=5, payload=b"x"):
    return DrainedMessage(comm_vid, src_world, src_comm_rank, tag, payload)


class TestDrainBuffer:
    def test_fifo_within_matches(self):
        buf = DrainBuffer()
        buf.add(msg(payload=b"a"))
        buf.add(msg(payload=b"b"))
        assert buf.match(1, 0, 5).payload == b"a"
        assert buf.match(1, 0, 5).payload == b"b"
        assert buf.match(1, 0, 5) is None

    def test_comm_isolation(self):
        buf = DrainBuffer()
        buf.add(msg(comm_vid=1))
        assert buf.match(2, 0, 5) is None
        assert buf.match(1, 0, 5) is not None

    def test_source_and_tag_filters(self):
        buf = DrainBuffer()
        buf.add(msg(src_world=3, tag=7))
        assert buf.match(1, 4, 7) is None
        assert buf.match(1, 3, 8) is None
        assert buf.match(1, 3, 7) is not None

    def test_wildcards(self):
        buf = DrainBuffer()
        buf.add(msg(src_world=2, tag=9, payload=b"z"))
        m = buf.match(1, ANY_SOURCE, ANY_TAG)
        assert m.payload == b"z"

    def test_peek_without_remove(self):
        buf = DrainBuffer()
        buf.add(msg())
        assert buf.match(1, 0, 5, remove=False) is not None
        assert len(buf) == 1

    def test_selective_tag_can_skip_older(self):
        buf = DrainBuffer()
        buf.add(msg(tag=1, payload=b"old"))
        buf.add(msg(tag=2, payload=b"new"))
        assert buf.match(1, 0, 2).payload == b"new"
        assert buf.match(1, 0, ANY_TAG).payload == b"old"

    def test_pickle_roundtrip(self):
        import pickle

        buf = DrainBuffer()
        buf.add(msg(payload=b"persist"))
        buf2 = pickle.loads(pickle.dumps(buf))
        assert buf2.match(1, 0, 5).payload == b"persist"


class TestDrainIntegration:
    """The drain must empty the fabric of user p2p traffic."""

    def test_fabric_empty_of_user_traffic_after_checkpoint(self):
        from repro import JobConfig, Launcher
        from tests.miniapps import SkewedSendersApp

        job = Launcher(
            JobConfig(nranks=4, impl="mpich", mana=True)
        ).launch(lambda r: SkewedSendersApp(16))
        probe = {}

        # Wrap the saved gate's action with a spy to observe the fabric
        # exactly at image-writing time.
        coord = job.coordinator
        orig = coord._g_saved.action

        def spy():
            probe["in_flight"] = job.fabric.in_flight()
            orig()

        coord._g_saved.action = spy
        tk = job.checkpoint_at_iteration("main", 6)
        job.start()
        info = tk.wait(120)
        res = job.wait(120)
        assert res.status == "completed", res.first_error()
        # At save time the network held no user messages (MANA-internal
        # traffic has been consumed too: the drain alltoall completes
        # before any rank reaches the saved barrier is not guaranteed,
        # but user contexts must be empty — in this fabric everything
        # must be empty because collectives complete before returning).
        assert probe["in_flight"] == 0
        assert info["bytes_per_rank"]

    def test_drained_messages_in_image(self, tmp_path):
        """A LOOP checkpoint taken while messages are in flight stores
        them in the image and replays them after cold restart."""
        from repro import JobConfig, Launcher
        from repro.mana.checkpoint import load_image, rank_image_path
        from tests.miniapps import SkewedSendersApp

        base = Launcher(
            JobConfig(nranks=4, impl="mpich", mana=True)
        ).run(lambda r: SkewedSendersApp(16), timeout=120)
        expect = [a.received for a in base.apps()]

        ckdir = str(tmp_path / "ck")
        cfg = JobConfig(nranks=4, impl="mpich", mana=True, ckpt_dir=ckdir)
        job = Launcher(cfg).launch(lambda r: SkewedSendersApp(16))
        tk = job.checkpoint_at_iteration("main", 5, kind="loop", mode="exit")
        job.start()
        tk.wait(120)
        assert job.wait(120).status == "preempted"

        # The sender (rank 0) ran ahead: receiver images must hold
        # drained messages.
        drained_total = 0
        for r in range(1, 4):
            image = load_image(rank_image_path(ckdir, 1, r))
            drained_total += len(image.drain_buffer)
        assert drained_total > 0, "expected in-flight messages at ckpt"

        res2 = Launcher(cfg).restart(ckdir).run(timeout=120)
        assert res2.status == "completed", res2.first_error()
        assert [a.received for a in res2.apps()] == expect
