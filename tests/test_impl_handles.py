"""Implementation-specific handle designs (paper Section 3).

These tests pin the exact properties that motivated the new virtual-id
architecture: MPICH's session-stable 32-bit constants, Open MPI's
session-varying 64-bit pointers, ExaMPI's enum + lazy aliased constants.
"""

import pytest

from repro.impls.exampi import ENUM_PRIMITIVE, PRIMITIVE_ENUM
from repro.impls.mpich import (
    CATEGORY_BUILTIN,
    CATEGORY_DYNAMIC,
    HANDLE_LAYOUT,
    KIND_CODES,
)
from repro.mpi.api import HandleKind
from repro.util.errors import (
    InvalidHandleError,
    MpiError,
    UnsupportedFunctionError,
)
from tests.conftest import make_world


class TestMpichHandles:
    def test_handles_are_32_bit(self):
        _, lib_for = make_world(2, "mpich")
        lib = lib_for(0)
        assert lib.handles.handle_bits == 32
        world = lib.constant("MPI_COMM_WORLD")
        assert 0 <= world < (1 << 32)

    def test_builtin_constants_session_stable(self):
        # "the same in the upper and lower half, and the same before
        # checkpoint and after restart" (§4.3)
        _, lib_a = make_world(2, "mpich", epoch=0)
        _, lib_b = make_world(2, "mpich", epoch=7)
        a, b = lib_a(0), lib_b(1)
        for name in ("MPI_COMM_WORLD", "MPI_INT", "MPI_SUM", "MPI_DOUBLE"):
            assert a.constant(name) == b.constant(name)

    def test_constant_resolvable_before_init(self):
        # MPICH constants are compile-time literals from mpi.h.
        _, lib_for = make_world(2, "mpich")
        lib = lib_for(0, init=False)
        assert lib.constant("MPI_COMM_WORLD") == lib_for(1).constant(
            "MPI_COMM_WORLD"
        )

    def test_builtin_vs_dynamic_category_bits(self):
        # 1-rank world: comm_dup is collective and must not block.
        _, lib_for = make_world(1, "mpich")
        lib = lib_for(0)
        world = lib.constant("MPI_COMM_WORLD")
        assert HANDLE_LAYOUT.extract(world, "category") == CATEGORY_BUILTIN
        dup = lib.comm_dup(world)
        assert HANDLE_LAYOUT.extract(dup, "category") == CATEGORY_DYNAMIC

    def test_kind_bits_encode_object_type(self):
        _, lib_for = make_world(2, "mpich")
        lib = lib_for(0)
        world = lib.constant("MPI_COMM_WORLD")
        g = lib.comm_group(world)
        assert HANDLE_LAYOUT.extract(world, "kind") == KIND_CODES[HandleKind.COMM]
        assert HANDLE_LAYOUT.extract(g, "kind") == KIND_CODES[HandleKind.GROUP]

    def test_wrong_kind_resolution_rejected(self):
        _, lib_for = make_world(2, "mpich")
        lib = lib_for(0)
        world = lib.constant("MPI_COMM_WORLD")
        with pytest.raises(InvalidHandleError, match="not a group"):
            lib.handles.resolve(HandleKind.GROUP, world)

    def test_dynamic_handles_differ_across_epochs(self):
        # A restarted lower half hands out different physical ids for the
        # same logical objects — the hazard virtual ids absorb.
        _, lib_e0 = make_world(1, "mpich", epoch=0)
        _, lib_e1 = make_world(1, "mpich", epoch=1)
        a, b = lib_e0(0), lib_e1(0)
        assert a.comm_dup(a.constant("MPI_COMM_WORLD")) != b.comm_dup(
            b.constant("MPI_COMM_WORLD")
        )

    def test_dangling_handle_detected(self):
        _, lib_for = make_world(1, "mpich")
        lib = lib_for(0)
        dup = lib.comm_dup(lib.constant("MPI_COMM_WORLD"))
        lib.comm_free(dup)
        with pytest.raises(InvalidHandleError):
            lib.handles.resolve(HandleKind.COMM, dup)

    def test_slot_reuse_after_free(self):
        _, lib_for = make_world(1, "mpich")
        lib = lib_for(0)
        world = lib.constant("MPI_COMM_WORLD")
        h1 = lib.comm_dup(world)
        lib.comm_free(h1)
        h2 = lib.comm_dup(world)
        assert h1 == h2  # freed slot recycled, like real MPICH tables

    def test_craympi_different_magic_constants(self):
        _, mp = make_world(1, "mpich")
        _, cr = make_world(1, "craympi")
        assert mp(0).constant("MPI_COMM_WORLD") != cr(0).constant(
            "MPI_COMM_WORLD"
        )


class TestOpenMpiHandles:
    def test_handles_are_64_bit_pointers(self):
        _, lib_for = make_world(2, "openmpi")
        lib = lib_for(0)
        assert lib.handles.handle_bits == 64
        world = lib.constant("MPI_COMM_WORLD")
        assert world > (1 << 32)  # a heap address, not a small id

    def test_constants_vary_across_sessions(self):
        # §4.3: MPI_COMM_WORLD's value varies between before-checkpoint
        # and after-restart (and between linked halves).
        _, e0 = make_world(1, "openmpi", epoch=0)
        _, e1 = make_world(1, "openmpi", epoch=1)
        assert e0(0).constant("MPI_COMM_WORLD") != e1(0).constant(
            "MPI_COMM_WORLD"
        )

    def test_constants_vary_across_ranks(self):
        _, lib_for = make_world(2, "openmpi")
        assert lib_for(0).constant("MPI_COMM_WORLD") != lib_for(1).constant(
            "MPI_COMM_WORLD"
        )

    def test_constant_before_init_raises(self):
        # Open MPI constants are macros expanding to function calls,
        # resolvable only after library startup.
        _, lib_for = make_world(1, "openmpi")
        lib = lib_for(0, init=False)
        with pytest.raises(MpiError, match="before library"):
            lib.constant("MPI_COMM_WORLD")

    def test_dangling_pointer_detected(self):
        _, lib_for = make_world(1, "openmpi")
        lib = lib_for(0)
        dup = lib.comm_dup(lib.constant("MPI_COMM_WORLD"))
        lib.comm_free(dup)
        with pytest.raises(InvalidHandleError, match="dangling"):
            lib.handles.resolve(HandleKind.COMM, dup)

    def test_foreign_pointer_detected(self):
        _, lib_for = make_world(1, "openmpi")
        lib = lib_for(0)
        with pytest.raises(InvalidHandleError):
            lib.handles.resolve(HandleKind.COMM, 0xDEADBEEF)

    def test_wrong_struct_kind_detected(self):
        _, lib_for = make_world(1, "openmpi")
        lib = lib_for(0)
        world = lib.constant("MPI_COMM_WORLD")
        with pytest.raises(InvalidHandleError, match="comm struct"):
            lib.handles.resolve(HandleKind.DATATYPE, world)

    def test_null_is_zero_pointer(self):
        _, lib_for = make_world(1, "openmpi")
        lib = lib_for(0)
        for kind in HandleKind.ALL:
            assert lib.null_handle(kind) == 0


class TestExaMpiHandles:
    def test_primitive_datatypes_are_enum_values(self):
        _, lib_for = make_world(1, "exampi")
        lib = lib_for(0)
        h = lib.constant("MPI_INT")
        assert h == PRIMITIVE_ENUM["MPI_INT"]
        assert h < 64  # an enum value, not a pointer

    def test_enum_values_session_stable_but_lazy(self):
        _, e0 = make_world(1, "exampi", epoch=0)
        _, e1 = make_world(1, "exampi", epoch=3)
        assert e0(0).constant("MPI_DOUBLE") == e1(0).constant("MPI_DOUBLE")

    def test_constants_resolved_lazily(self):
        _, lib_for = make_world(1, "exampi")
        lib = lib_for(0)
        before = set(lib.resolved_constant_names())
        assert "MPI_SUM" not in before
        lib.constant("MPI_SUM")
        assert "MPI_SUM" in lib.resolved_constant_names()

    def test_unresolved_enum_rejected(self):
        _, lib_for = make_world(1, "exampi")
        lib = lib_for(0)
        with pytest.raises(InvalidHandleError, match="lazy"):
            lib.handles.resolve(
                HandleKind.DATATYPE, PRIMITIVE_ENUM["MPI_FLOAT"]
            )

    def test_aliasing_int8_char_share_pointer(self):
        # §4.3: "MPI_INT8_T and MPI_CHAR can share a pointer"
        _, lib_for = make_world(1, "exampi")
        lib = lib_for(0)
        assert lib.constant("MPI_INT8_T") == lib.constant("MPI_CHAR")
        assert lib.constant("MPI_UINT8_T") == lib.constant("MPI_BYTE")

    def test_aliased_types_resolve_to_same_object(self):
        _, lib_for = make_world(1, "exampi")
        lib = lib_for(0)
        h = lib.constant("MPI_INT8_T")
        obj = lib.handles.resolve(HandleKind.DATATYPE, h)
        assert obj.descriptor.size() == 1

    def test_ops_are_pointers(self):
        _, lib_for = make_world(1, "exampi")
        lib = lib_for(0)
        assert lib.constant("MPI_SUM") > (1 << 32)

    def test_unsupported_subset_raises(self):
        _, lib_for = make_world(4, "exampi")
        lib = lib_for(0)
        with pytest.raises(UnsupportedFunctionError):
            lib.cart_create(lib.constant("MPI_COMM_WORLD"), [2, 2], [True, True])
        with pytest.raises(UnsupportedFunctionError):
            lib.type_indexed([1], [0], lib.constant("MPI_INT"))

    def test_core_mana_subset_present(self):
        # §5: the functions MANA itself requires must exist.
        from repro.impls.exampi import ExaMpiLib

        required = {
            "iprobe", "recv", "test", "send", "alltoall", "comm_group",
            "group_translate_ranks", "type_get_envelope",
            "type_get_contents",
        }
        assert not (required & ExaMpiLib.UNSUPPORTED)

    def test_primitive_enum_cannot_be_freed(self):
        _, lib_for = make_world(1, "exampi")
        lib = lib_for(0)
        h = lib.constant("MPI_INT")
        with pytest.raises(MpiError):
            lib.type_free(h)

    def test_enum_reverse_map_consistent(self):
        assert all(
            PRIMITIVE_ENUM[name] == val
            for val, name in ENUM_PRIMITIVE.items()
        )
