"""Interval (periodic) checkpointing — production MANA's --ckpt-interval."""

import pytest

from repro import JobConfig, Launcher
from repro.mana.checkpoint import latest_generations
from tests.miniapps import RingApp


def test_periodic_checkpoints_fire(tmp_path):
    ckdir = str(tmp_path / "ck")
    base = Launcher(JobConfig(nranks=4, impl="mpich", mana=True)).run(
        lambda r: RingApp(30, compute=0.05), timeout=120
    )
    expect = [a.acc[0] for a in base.apps()]

    cfg = JobConfig(
        nranks=4, impl="mpich", mana=True, ckpt_dir=ckdir,
        ckpt_interval=0.4, loop_lag_window=2,
    )
    job = Launcher(cfg).launch(lambda r: RingApp(30, compute=0.05))
    res = job.run(timeout=120)
    assert res.status == "completed", res.first_error()
    # ~1.5s of app time at a 0.4s interval: several checkpoints fired.
    gens = latest_generations(ckdir)
    assert len(gens) >= 2, gens
    # every written generation has a ticket (one extra ticket may have
    # been armed near job end and cancelled)
    assert len(job.coordinator.interval_tickets) >= len(gens)
    # Results unchanged by the periodic interruptions.
    assert [a.acc[0] for a in res.apps()] == expect
    # Runtime includes the checkpoint costs.
    assert res.runtime > base.runtime


def test_interval_images_cold_restartable(tmp_path):
    ckdir = str(tmp_path / "ck")
    base = Launcher(JobConfig(nranks=4, impl="mpich", mana=True)).run(
        lambda r: RingApp(24, compute=0.05), timeout=120
    )
    expect = [a.acc[0] for a in base.apps()]

    cfg = JobConfig(
        nranks=4, impl="mpich", mana=True, ckpt_dir=ckdir,
        ckpt_interval=0.5, loop_lag_window=2,
    )
    res = Launcher(cfg).run(lambda r: RingApp(24, compute=0.05), timeout=120)
    assert res.status == "completed", res.first_error()
    gens = latest_generations(ckdir)
    assert gens

    # Restart from the latest periodic image: re-runs the tail of the
    # job, ending in the same state.
    job2 = Launcher(cfg).restart(ckdir)
    # disable further periodic checkpoints for a clean comparison
    job2.coordinator._interval = None
    res2 = job2.run(timeout=120)
    assert res2.status == "completed", res2.first_error()
    assert [a.acc[0] for a in res2.apps()] == expect


def test_invalid_interval_rejected():
    from repro.mana.coordinator import CheckpointCoordinator
    from repro.simtime.cost import FilesystemProfile

    c = CheckpointCoordinator(1, "/tmp/x", FilesystemProfile.discovery_nfsv3())
    with pytest.raises(ValueError):
        c.enable_interval_checkpoints(0)
