"""Behavioral MPI semantics, parametrized across all four implementations.

Whatever their handle designs, all implementations must agree on MPI
semantics — this is what lets MANA treat them interchangeably.
"""

import numpy as np
import pytest

from repro.mpi.objects import Status
from repro.util.errors import MpiError, TruncationError, UnsupportedFunctionError
from repro.util.registry import user_op
from tests.conftest import ALL_IMPLS, facade_world, run_ranks


def world_of(MPI):
    return MPI.COMM_WORLD


class TestPointToPoint:
    def test_ring(self, impl_name):
        _, mpi_for = facade_world(4, impl_name)

        def body(r):
            MPI = mpi_for(r)
            w = MPI.COMM_WORLD
            MPI.send(np.array([r], dtype=np.int32), 1, MPI.INT,
                     (r + 1) % 4, 1, w)
            buf = np.zeros(1, dtype=np.int32)
            st = MPI.recv(buf, 1, MPI.INT, (r - 1) % 4, 1, w)
            return int(buf[0]), st.source, st.tag

        out = run_ranks(4, body)
        for r, (v, src, tag) in enumerate(out):
            assert v == (r - 1) % 4
            assert src == (r - 1) % 4 and tag == 1

    def test_any_source_any_tag(self, impl_name):
        _, mpi_for = facade_world(3, impl_name)

        def body(r):
            MPI = mpi_for(r)
            w = MPI.COMM_WORLD
            if r != 0:
                MPI.send(np.array([r * 1.5]), 1, MPI.DOUBLE, 0, 10 + r, w)
                return None
            got = []
            for _ in range(2):
                buf = np.zeros(1)
                st = MPI.recv(buf, 1, MPI.DOUBLE, MPI.ANY_SOURCE,
                              MPI.ANY_TAG, w)
                got.append((st.source, st.tag, float(buf[0])))
            return sorted(got)

        out = run_ranks(3, body)
        assert out[0] == [(1, 11, 1.5), (2, 12, 3.0)]

    def test_proc_null_send_recv(self, impl_name):
        _, mpi_for = facade_world(1, impl_name)
        MPI = mpi_for(0)
        w = MPI.COMM_WORLD
        MPI.send(np.zeros(1), 1, MPI.DOUBLE, MPI.PROC_NULL, 0, w)
        st = MPI.recv(np.zeros(1), 1, MPI.DOUBLE, MPI.PROC_NULL, 0, w)
        assert st.source == MPI.PROC_NULL

    def test_nonblocking_roundtrip(self, impl_name):
        _, mpi_for = facade_world(2, impl_name)

        def body(r):
            MPI = mpi_for(r)
            w = MPI.COMM_WORLD
            recv = np.zeros(4)
            rreq = MPI.irecv(recv, 4, MPI.DOUBLE, 1 - r, 3, w)
            sreq = MPI.isend(np.full(4, float(r)), 4, MPI.DOUBLE, 1 - r, 3, w)
            MPI.waitall([rreq, sreq])
            return recv.tolist()

        out = run_ranks(2, body)
        assert out[0] == [1.0] * 4 and out[1] == [0.0] * 4

    def test_test_polls_until_complete(self, impl_name):
        _, mpi_for = facade_world(2, impl_name)

        def body(r):
            MPI = mpi_for(r)
            w = MPI.COMM_WORLD
            if r == 1:
                import time

                time.sleep(0.05)
                MPI.send(np.array([7.0]), 1, MPI.DOUBLE, 0, 9, w)
                return True
            buf = np.zeros(1)
            req = MPI.irecv(buf, 1, MPI.DOUBLE, 1, 9, w)
            polls = 0
            while True:
                flag, st = MPI.test(req)
                if flag:
                    return buf[0] == 7.0
                polls += 1
                assert polls < 100000

        assert all(run_ranks(2, body))

    def test_iprobe_then_recv(self, impl_name):
        _, mpi_for = facade_world(2, impl_name)

        def body(r):
            MPI = mpi_for(r)
            w = MPI.COMM_WORLD
            if r == 1:
                MPI.send(np.arange(3.0), 3, MPI.DOUBLE, 0, 5, w)
                return None
            while True:
                flag, st = MPI.iprobe(MPI.ANY_SOURCE, MPI.ANY_TAG, w)
                if flag:
                    break
            assert st.count_bytes == 24
            buf = np.zeros(3)
            MPI.recv(buf, 3, MPI.DOUBLE, st.source, st.tag, w)
            return buf.tolist()

        assert run_ranks(2, body)[0] == [0.0, 1.0, 2.0]

    def test_sendrecv_exchange(self, impl_name):
        _, mpi_for = facade_world(2, impl_name)

        def body(r):
            MPI = mpi_for(r)
            w = MPI.COMM_WORLD
            out = np.array([float(r)])
            inp = np.zeros(1)
            MPI.sendrecv(out, 1, MPI.DOUBLE, 1 - r, 2,
                         inp, 1, MPI.DOUBLE, 1 - r, 2, w)
            return float(inp[0])

        assert run_ranks(2, body) == [1.0, 0.0]

    def test_truncation_error(self, impl_name):
        _, mpi_for = facade_world(2, impl_name)

        def body(r):
            MPI = mpi_for(r)
            w = MPI.COMM_WORLD
            if r == 0:
                MPI.send(np.zeros(10), 10, MPI.DOUBLE, 1, 1, w)
                return None
            with pytest.raises(TruncationError):
                MPI.recv(np.zeros(2), 2, MPI.DOUBLE, 0, 1, w)
            return True

        run_ranks(2, body)

    def test_get_count(self, impl_name):
        _, mpi_for = facade_world(1, impl_name)
        MPI = mpi_for(0)
        st = Status(count_bytes=32)
        assert MPI.get_count(st, MPI.DOUBLE) == 4
        assert MPI.get_count(st, MPI.INT) == 8

    def test_uncommitted_datatype_rejected(self, impl_name):
        _, mpi_for = facade_world(1, impl_name)
        MPI = mpi_for(0)
        t = MPI.type_contiguous(2, MPI.DOUBLE)
        with pytest.raises(MpiError, match="commit"):
            MPI.send(np.zeros(4), 1, t, MPI.PROC_NULL + 0 if False else 0,
                     0, MPI.COMM_SELF)


class TestCollectives:
    @pytest.mark.parametrize("nranks", [1, 2, 5, 8])
    def test_barrier_all_sizes(self, impl_name, nranks):
        _, mpi_for = facade_world(nranks, impl_name)

        def body(r):
            MPI = mpi_for(r)
            MPI.barrier(MPI.COMM_WORLD)
            return True

        assert all(run_ranks(nranks, body))

    @pytest.mark.parametrize("root", [0, 2])
    def test_bcast(self, impl_name, root):
        _, mpi_for = facade_world(4, impl_name)

        def body(r):
            MPI = mpi_for(r)
            buf = np.full(3, float(r * 100))
            if r == root:
                buf[:] = [1.0, 2.0, 3.0]
            MPI.bcast(buf, 3, MPI.DOUBLE, root, MPI.COMM_WORLD)
            return buf.tolist()

        assert run_ranks(4, body) == [[1.0, 2.0, 3.0]] * 4

    def test_allreduce_sum_matches_numpy(self, impl_name):
        _, mpi_for = facade_world(5, impl_name)

        def body(r):
            MPI = mpi_for(r)
            src = np.array([r + 1.0, r * 2.0])
            out = np.zeros(2)
            MPI.allreduce(src, out, 2, MPI.DOUBLE, MPI.SUM, MPI.COMM_WORLD)
            return out.tolist()

        expect = [sum(range(1, 6)), sum(2 * r for r in range(5))]
        for got in run_ranks(5, body):
            assert got == expect

    @pytest.mark.parametrize("opname,reducer", [
        ("MAX", max), ("MIN", min), ("PROD", lambda xs: np.prod(xs)),
    ])
    def test_reduce_predefined_ops(self, impl_name, opname, reducer):
        _, mpi_for = facade_world(4, impl_name)

        def body(r):
            MPI = mpi_for(r)
            src = np.array([float(r + 1)])
            out = np.zeros(1)
            MPI.reduce(src, out, 1, MPI.DOUBLE, getattr(MPI, opname), 0,
                       MPI.COMM_WORLD)
            return float(out[0])

        out = run_ranks(4, body)
        assert out[0] == pytest.approx(float(reducer([1.0, 2.0, 3.0, 4.0])))

    def test_maxloc(self, impl_name):
        _, mpi_for = facade_world(4, impl_name)

        def body(r):
            MPI = mpi_for(r)
            pair = np.zeros(1, dtype=[("value", "f8"), ("index", "i4")])
            pair["value"] = [10.0 if r == 2 else float(r)]
            pair["index"] = r
            out = np.zeros_like(pair)
            MPI.allreduce(pair, out, 1, MPI.DOUBLE_INT, MPI.MAXLOC,
                          MPI.COMM_WORLD)
            return float(out["value"][0]), int(out["index"][0])

        assert set(run_ranks(4, body)) == {(10.0, 2)}

    def test_user_op_non_commutative_order(self, impl_name):
        @user_op(f"takes-first-{impl_name}")
        def take_first(invec, inoutvec):
            # result = invec op inoutvec; "op" keeps the left operand, so
            # a left-fold yields rank 0's contribution.
            inoutvec[:] = invec

        _, mpi_for = facade_world(4, impl_name)

        def body(r):
            MPI = mpi_for(r)
            op = MPI.op_create(take_first, False)
            src = np.array([float(r + 1)])
            out = np.zeros(1)
            MPI.allreduce(src, out, 1, MPI.DOUBLE, op, MPI.COMM_WORLD)
            return float(out[0])

        assert run_ranks(4, body) == [1.0] * 4  # rank order respected

    def test_gather_scatter(self, impl_name):
        _, mpi_for = facade_world(3, impl_name)

        def body(r):
            MPI = mpi_for(r)
            w = MPI.COMM_WORLD
            send = np.array([float(r), float(r * 10)])
            gathered = np.zeros(6) if r == 1 else np.zeros(6)
            MPI.gather(send, 2, MPI.DOUBLE, gathered, 2, MPI.DOUBLE, 1, w)
            back = np.zeros(2)
            MPI.scatter(gathered, 2, MPI.DOUBLE, back, 2, MPI.DOUBLE, 1, w)
            return gathered.tolist() if r == 1 else back.tolist()

        out = run_ranks(3, body)
        assert out[1] == [0.0, 0.0, 1.0, 10.0, 2.0, 20.0]
        assert out[0] == [0.0, 0.0] and out[2] == [2.0, 20.0]

    def test_allgather(self, impl_name):
        _, mpi_for = facade_world(4, impl_name)

        def body(r):
            MPI = mpi_for(r)
            out = np.zeros(4, dtype=np.int32)
            MPI.allgather(np.array([r * r], dtype=np.int32), 1, MPI.INT,
                          out, 1, MPI.INT, MPI.COMM_WORLD)
            return out.tolist()

        assert run_ranks(4, body) == [[0, 1, 4, 9]] * 4

    def test_alltoall(self, impl_name):
        _, mpi_for = facade_world(3, impl_name)

        def body(r):
            MPI = mpi_for(r)
            send = np.array([10 * r + c for c in range(3)], dtype=np.int32)
            recv = np.zeros(3, dtype=np.int32)
            MPI.alltoall(send, 1, MPI.INT, recv, 1, MPI.INT, MPI.COMM_WORLD)
            return recv.tolist()

        out = run_ranks(3, body)
        for r in range(3):
            assert out[r] == [10 * s + r for s in range(3)]

    def test_vector_collectives_where_supported(self, impl_name):
        _, mpi_for = facade_world(3, impl_name)

        def body(r):
            MPI = mpi_for(r)
            w = MPI.COMM_WORLD
            counts = [1, 2, 3]
            displs = [0, 1, 3]
            send = np.full(counts[r], float(r))
            recv = np.zeros(6)
            try:
                MPI.allgatherv(send, counts[r], MPI.DOUBLE,
                               recv, counts, displs, MPI.DOUBLE, w)
            except UnsupportedFunctionError:
                return "unsupported"
            return recv.tolist()

        out = run_ranks(3, body)
        if impl_name == "exampi":
            assert out == ["unsupported"] * 3
        else:
            assert out == [[0.0, 1.0, 1.0, 2.0, 2.0, 2.0]] * 3


class TestCommunicatorManagement:
    def test_split_halves(self, impl_name):
        _, mpi_for = facade_world(4, impl_name)

        def body(r):
            MPI = mpi_for(r)
            sub = MPI.comm_split(MPI.COMM_WORLD, r % 2, r)
            size = MPI.comm_size(sub)
            rank = MPI.comm_rank(sub)
            # verify isolation: traffic on sub cannot cross colors
            out = np.zeros(1)
            MPI.allreduce(np.array([float(r)]), out, 1, MPI.DOUBLE,
                          MPI.SUM, sub)
            return size, rank, float(out[0])

        out = run_ranks(4, body)
        assert out[0] == (2, 0, 2.0) and out[2] == (2, 1, 2.0)
        assert out[1] == (2, 0, 4.0) and out[3] == (2, 1, 4.0)

    def test_split_undefined_gets_null(self, impl_name):
        _, mpi_for = facade_world(2, impl_name)

        def body(r):
            MPI = mpi_for(r)
            color = 0 if r == 0 else MPI.UNDEFINED
            sub = MPI.comm_split(MPI.COMM_WORLD, color, 0)
            return sub == MPI.COMM_NULL

        assert run_ranks(2, body) == [False, True]

    def test_comm_create_from_group(self, impl_name):
        _, mpi_for = facade_world(3, impl_name)

        def body(r):
            MPI = mpi_for(r)
            w = MPI.COMM_WORLD
            g = MPI.comm_group(w)
            sub_g = MPI.group_incl(g, [0, 2])
            sub = MPI.comm_create(w, sub_g)
            if r == 1:
                return sub == MPI.COMM_NULL
            return MPI.comm_size(sub), MPI.comm_rank(sub)

        out = run_ranks(3, body)
        assert out[1] is True
        assert out[0] == (2, 0) and out[2] == (2, 1)

    def test_dup_is_congruent_but_isolated(self, impl_name):
        _, mpi_for = facade_world(2, impl_name)

        def body(r):
            MPI = mpi_for(r)
            w = MPI.COMM_WORLD
            d = MPI.comm_dup(w)
            cmp = MPI.comm_compare(w, d)
            # message sent on dup must not match a recv on world
            MPI.send(np.array([1.0]), 1, MPI.DOUBLE, 1 - r, 7, d)
            flag, _ = MPI.iprobe(1 - r, 7, w)
            buf = np.zeros(1)
            MPI.recv(buf, 1, MPI.DOUBLE, 1 - r, 7, d)
            return cmp, flag

        for cmp, flag in run_ranks(2, body):
            assert cmp == 1  # CONGRUENT
            assert flag is False

    def test_free_predefined_rejected(self, impl_name):
        _, mpi_for = facade_world(1, impl_name)
        MPI = mpi_for(0)
        with pytest.raises(MpiError):
            MPI.comm_free(MPI.COMM_WORLD)

    def test_group_ops_through_api(self, impl_name):
        _, mpi_for = facade_world(4, impl_name)
        MPI = mpi_for(0)
        w = MPI.COMM_WORLD
        g = MPI.comm_group(w)
        assert MPI.group_size(g) == 4
        assert MPI.group_rank(g) == 0
        evens = MPI.group_incl(g, [0, 2])
        odds = MPI.group_excl(g, [0, 2])
        assert MPI.group_size(evens) == 2 and MPI.group_size(odds) == 2
        u = MPI.group_union(evens, odds)
        assert MPI.group_size(u) == 4
        i = MPI.group_intersection(u, evens)
        assert MPI.group_compare(i, evens) == MPI.IDENT
        assert MPI.group_translate_ranks(evens, [0, 1], g) == [0, 2]
        for h in (evens, odds, u, i, g):
            MPI.group_free(h)


class TestDatatypeApi:
    def test_envelope_contents_via_handles(self, impl_name):
        _, mpi_for = facade_world(1, impl_name)
        MPI = mpi_for(0)
        v = MPI.type_vector(3, 1, 2, MPI.DOUBLE)
        env = MPI.type_get_envelope(v)
        assert env.combiner == "MPI_COMBINER_VECTOR"
        ints, addrs, types = MPI.type_get_contents(v)
        assert tuple(ints) == (3, 1, 2)
        assert types[0] == MPI.DOUBLE  # predefined handle returned
        MPI.type_free(v)

    def test_type_size_extent(self, impl_name):
        _, mpi_for = facade_world(1, impl_name)
        MPI = mpi_for(0)
        v = MPI.type_vector(3, 1, 2, MPI.DOUBLE)
        assert MPI.type_size(v) == 24
        lb, extent = MPI.type_get_extent(v)
        assert lb == 0 and extent == 40

    def test_free_predefined_type_rejected(self, impl_name):
        _, mpi_for = facade_world(1, impl_name)
        MPI = mpi_for(0)
        with pytest.raises(MpiError):
            MPI.type_free(MPI.DOUBLE)

    def test_derived_send_recv(self, impl_name):
        _, mpi_for = facade_world(2, impl_name)

        def body(r):
            MPI = mpi_for(r)
            w = MPI.COMM_WORLD
            v = MPI.type_vector(4, 1, 2, MPI.DOUBLE)
            MPI.type_commit(v)
            if r == 0:
                src = np.arange(8, dtype=np.float64)
                MPI.send(src, 1, v, 1, 1, w)
                return None
            dst = np.zeros(8)
            MPI.recv(dst, 1, v, 0, 1, w)
            return dst.tolist()

        out = run_ranks(2, body)
        assert out[1] == [0.0, 0, 2.0, 0, 4.0, 0, 6.0, 0]


class TestEnvironment:
    def test_rank_size_wtime(self, impl_name):
        _, mpi_for = facade_world(3, impl_name)

        def body(r):
            MPI = mpi_for(r)
            w = MPI.COMM_WORLD
            return (MPI.comm_rank(w), MPI.comm_size(w), MPI.wtime() >= 0,
                    MPI.initialized())

        out = run_ranks(3, body)
        assert [o[0] for o in out] == [0, 1, 2]
        assert all(o[1] == 3 and o[2] and o[3] for o in out)

    def test_double_init_rejected(self, impl_name):
        from tests.conftest import make_world

        _, lib_for = make_world(1, impl_name)
        lib = lib_for(0)
        with pytest.raises(MpiError):
            lib.init()

    def test_calls_after_finalize_rejected(self, impl_name):
        from tests.conftest import make_world

        _, lib_for = make_world(1, impl_name)
        lib = lib_for(0)
        lib.finalize()
        with pytest.raises(MpiError):
            lib.barrier(0)


class TestCartTopology:
    def test_cart_where_supported(self, impl_name):
        if impl_name == "exampi":
            pytest.skip("ExaMPI subset lacks cartesian topology")
        _, mpi_for = facade_world(4, impl_name)

        def body(r):
            MPI = mpi_for(r)
            cart = MPI.cart_create(MPI.COMM_WORLD, [2, 2], [True, True])
            coords = MPI.cart_coords(cart, r)
            back = MPI.cart_rank(cart, coords)
            src, dst = MPI.cart_shift(cart, 0, 1)
            return coords, back, src, dst

        out = run_ranks(4, body)
        assert out[0][0] == (0, 0) and out[3][0] == (1, 1)
        assert all(o[1] == i for i, o in enumerate(out))
        assert out[0][2:] == (2, 2)  # periodic 2x2: +1/-1 is same rank
