"""Asynchronous format-5 checkpointing: snapshot at the barrier, drain
behind compute (PROTOCOLS.md §11)."""

import glob
import os

import pytest

from repro import JobConfig, Launcher
from repro.faults import FaultPlan
from repro.mana.checkpoint import (
    generation_dir,
    latest_generations,
    latest_restorable_generation,
    rank_image_path,
    read_manifest,
    restorable_generations,
    validate_generation,
)
from tests.miniapps import RingApp

NRANKS = 4
STEPS = 30


def _cfg(ckdir, **kw):
    base = dict(
        nranks=NRANKS, impl="mpich", mana=True, ckpt_dir=ckdir,
        ckpt_interval=0.4, loop_lag_window=2, ckpt_async=True,
    )
    base.update(kw)
    return JobConfig(**base)


def _run(cfg, steps=STEPS):
    job = Launcher(cfg).launch(lambda r: RingApp(steps, compute=0.05))
    res = job.run(timeout=120)
    assert res.status == "completed", res.first_error()
    return job, res


def _image_bytes(ckdir, gen):
    out = {}
    for r in range(NRANKS):
        with open(rank_image_path(ckdir, gen, r), "rb") as f:
            out[r] = f.read()
    return out


class TestAsyncCorrectness:
    def test_results_match_sync(self, tmp_path):
        sync_dir = str(tmp_path / "sync")
        async_dir = str(tmp_path / "async")
        _, sync_res = _run(_cfg(sync_dir, ckpt_async=False))
        _, async_res = _run(_cfg(async_dir))
        assert ([a.acc[0] for a in async_res.apps()]
                == [a.acc[0] for a in sync_res.apps()])
        gens = latest_generations(async_dir)
        assert len(gens) >= 2, gens
        # Every durable async generation is manifest-complete and marked.
        for gen in restorable_generations(async_dir):
            m = read_manifest(async_dir, gen)
            assert m["extra"]["async"] is True
            assert m["dedup"]["payload_bytes"] > 0
            validate_generation(async_dir, gen)

    def test_first_generation_bit_identical_to_sync(self, tmp_path):
        """The snapshot happens at the same barrier state the sync path
        pickles at, so generation 1 (taken before any divergence in
        charged checkpoint durations) must be byte-for-byte the same."""
        sync_dir = str(tmp_path / "sync")
        async_dir = str(tmp_path / "async")
        _run(_cfg(sync_dir, ckpt_async=False))
        _run(_cfg(async_dir))
        assert _image_bytes(sync_dir, 1) == _image_bytes(async_dir, 1)

    def test_async_run_is_deterministic(self, tmp_path):
        dirs = [str(tmp_path / d) for d in ("a", "b")]
        results = [_run(_cfg(d))[1] for d in dirs]
        assert results[0].runtime == results[1].runtime
        common = set(latest_generations(dirs[0])) & set(
            latest_generations(dirs[1])
        )
        assert common
        for gen in sorted(common):
            assert _image_bytes(dirs[0], gen) == _image_bytes(dirs[1], gen)

    def test_restart_from_async_images(self, tmp_path):
        ckdir = str(tmp_path / "ck")
        base = Launcher(JobConfig(nranks=NRANKS, impl="mpich",
                                  mana=True)).run(
            lambda r: RingApp(STEPS, compute=0.05), timeout=120
        )
        expect = [a.acc[0] for a in base.apps()]
        cfg = _cfg(ckdir)
        _run(cfg)
        job2 = Launcher(cfg).restart(ckdir)
        job2.coordinator._interval = None
        res2 = job2.run(timeout=120)
        assert res2.status == "completed", res2.first_error()
        assert [a.acc[0] for a in res2.apps()] == expect


class TestAsyncAccounting:
    def test_overlap_reduces_virtual_runtime(self, tmp_path):
        """Ranks are charged the snapshot plus any drain overrun —
        strictly less than the full synchronous save cost here."""
        sync_dir = str(tmp_path / "sync")
        async_dir = str(tmp_path / "async")
        _, sync_res = _run(_cfg(sync_dir, ckpt_async=False))
        _, async_res = _run(_cfg(async_dir))
        assert async_res.runtime < sync_res.runtime

    def test_tickets_carry_async_fields(self, tmp_path):
        job, _ = _run(_cfg(str(tmp_path / "ck")))
        done = [t for t in job.coordinator.interval_tickets
                if t.result and t.error is None]
        assert done
        for t in done:
            assert t.result["async"] is True
            assert t.result["snapshot_time"] > 0.0
            assert t.result["drain_overrun"] >= 0.0
            assert t.result["dedup"]["chunks_total"] > 0
            assert t.result["drain_time"] > 0.0
        # Later rounds arrive after the previous drain's virtual span
        # has been modeled; at this interval at least one sees overrun 0
        # (fully hidden) — and none is charged more than a full drain.
        for t in done:
            assert t.result["drain_overrun"] <= t.result["drain_time"] + 1e-9


class TestAsyncPruning:
    def test_pruned_async_run_keeps_valid_generations(self, tmp_path):
        """Generation pruning + chunk GC run behind in-flight drains;
        pinning must keep every surviving manifest-ed generation fully
        restorable."""
        ckdir = str(tmp_path / "ck")
        _run(_cfg(ckdir, ckpt_keep_generations=2))
        gens = latest_generations(ckdir)
        assert 0 < len(gens) <= 2
        for gen in restorable_generations(ckdir):
            validate_generation(ckdir, gen)
        # No generation remains pinned after the job drains out.
        from repro.mana.checkpoint import pinned_generations
        assert pinned_generations(ckdir) == set()


class TestAsyncDrainFailure:
    def test_drain_fault_fails_generation_not_job(self, tmp_path):
        ckdir = str(tmp_path / "ck")
        plan = FaultPlan().crash_in_checkpoint(
            rank=1, generation=2, site="mid-save"
        )
        cfg = _cfg(ckdir, faults=plan)
        job, res = _run(cfg)
        # The app never saw the fault: the drain absorbed it.
        events = [e for e in job.coordinator.round_events
                  if e.get("event") == "async-drain-failed"]
        assert events and events[0]["generation"] == 2
        # Generation 2 is gone — no partial images, no manifest.
        assert not glob.glob(
            os.path.join(generation_dir(ckdir, 2), "rank_*")
        )
        assert 2 not in restorable_generations(ckdir)
        failed = [t for t in job.coordinator.interval_tickets
                  if t.error is not None]
        assert failed and "injected" in str(failed[0].error)

    def test_restart_falls_back_to_previous_generation(self, tmp_path):
        ckdir = str(tmp_path / "ck")
        base = Launcher(JobConfig(nranks=NRANKS, impl="mpich",
                                  mana=True)).run(
            lambda r: RingApp(STEPS, compute=0.05), timeout=120
        )
        expect = [a.acc[0] for a in base.apps()]
        plan = FaultPlan().crash_in_checkpoint(
            rank=0, generation=2, site="mid-save"
        )
        _run(_cfg(ckdir, faults=plan))
        latest = latest_restorable_generation(ckdir)
        assert latest is not None and latest != 2
        cfg2 = _cfg(ckdir)
        job2 = Launcher(cfg2).restart(ckdir)
        job2.coordinator._interval = None
        res2 = job2.run(timeout=120)
        assert res2.status == "completed", res2.first_error()
        assert [a.acc[0] for a in res2.apps()] == expect
