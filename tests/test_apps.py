"""Proxy applications: correctness, determinism, MANA-equivalence."""

from dataclasses import replace

import numpy as np
import pytest

from repro import JobConfig, Launcher
from repro.apps import APP_CLASSES, EXAMPI_COMPATIBLE
from repro.apps.base import coords_of, face_neighbors, grid_dims, rank_of
from repro.util.errors import UnsupportedFunctionError

APP_NAMES = tuple(sorted(APP_CLASSES))


def tiny_spec(name, nranks=8, blocks=5):
    spec = APP_CLASSES[name].paper_config()
    return replace(spec, nranks=nranks, blocks=blocks)


def run_app(name, impl="mpich", mana=False, nranks=8, blocks=5, **cfg_kw):
    cls = APP_CLASSES[name]
    spec = tiny_spec(name, nranks, blocks)
    res = Launcher(
        JobConfig(nranks=nranks, impl=impl, mana=mana, **cfg_kw)
    ).run(lambda r: cls(spec), timeout=180)
    return res


class TestDecomposition:
    def test_grid_dims_product(self):
        for n in (8, 27, 56, 64, 12):
            dims = grid_dims(n)
            assert np.prod(dims) == n

    def test_coords_rank_roundtrip(self):
        dims = (3, 3, 3)
        for r in range(27):
            assert rank_of(coords_of(r, dims), dims) == r

    def test_face_neighbors_symmetric(self):
        """If A sends to B on some face, B receives from A on it."""
        dims = (2, 2, 2)
        for r in range(8):
            for face, (dst, src) in enumerate(face_neighbors(r, dims)):
                back = face_neighbors(dst, dims)[face]
                assert back[1] == r  # dst receives from r on that face

    def test_nonperiodic_edges_proc_null(self):
        from repro.mpi.constants import PROC_NULL

        dims = (2, 1, 1)
        pairs = face_neighbors(0, dims, periodic=False)
        assert any(d == PROC_NULL or s == PROC_NULL for d, s in pairs)


@pytest.mark.parametrize("name", APP_NAMES)
class TestEachApp:
    def test_native_run_validates(self, name):
        res = run_app(name)
        assert res.status == "completed", res.first_error()
        for app in res.apps():
            assert app.validate(None) is None

    def test_deterministic_across_runs(self, name):
        a = run_app(name)
        b = run_app(name)
        assert [x.checksum for x in a.apps()] == [
            x.checksum for x in b.apps()
        ]

    def test_mana_matches_native(self, name):
        nat = run_app(name, mana=False)
        man = run_app(name, mana=True)
        assert man.status == "completed", man.first_error()
        assert [x.checksum for x in man.apps()] == [
            x.checksum for x in nat.apps()
        ]

    def test_checkpoint_relaunch_matches(self, name):
        cls = APP_CLASSES[name]
        spec = tiny_spec(name, 8, 6)
        nat = run_app(name, blocks=6)
        job = Launcher(JobConfig(nranks=8, impl="mpich", mana=True)).launch(
            lambda r: cls(spec)
        )
        tk = job.checkpoint_at_iteration(cls.primary_loop, 2, mode="relaunch")
        job.start()
        tk.wait(180)
        res = job.wait(180)
        assert res.status == "completed", res.first_error()
        assert [x.checksum for x in res.apps()] == [
            x.checksum for x in nat.apps()
        ]

    def test_paper_config_shape(self, name):
        spec = APP_CLASSES[name].paper_config()
        assert spec.nranks > 0 and spec.blocks > 0
        assert spec.steps_per_block >= 1
        assert spec.simulated_state_bytes > 0
        assert spec.input_label


class TestExaMpiCompatibility:
    @pytest.mark.parametrize("name", sorted(EXAMPI_COMPATIBLE))
    def test_compatible_apps_run_on_exampi(self, name):
        res = run_app(name, impl="exampi")
        assert res.status == "completed", res.first_error()

    @pytest.mark.parametrize("name", ["hpcg", "sw4"])
    def test_incompatible_apps_rejected_by_exampi(self, name):
        res = run_app(name, impl="exampi")
        assert res.status == "failed"
        assert "does not implement" in res.first_error()

    def test_compat_list_matches_paper_figure3(self):
        # Figure 3 runs the ExaMPI-compatible subset of the paper's five
        # benchmarks; HPCG and SW4 are excluded by construction.
        from repro.harness.experiments import FIG3_APPS

        assert set(FIG3_APPS) == {"comd", "lammps", "lulesh"}
        assert not {"hpcg", "sw4"} & set(EXAMPI_COMPATIBLE)


class TestCalibration:
    """The §6.3 ordering must hold: LAMMPS > SW4 > CoMD > HPCG > LULESH
    in per-rank context-switch rate."""

    def test_cs_rate_ordering(self):
        rates = {}
        for name in ("comd", "hpcg", "lammps", "lulesh", "sw4"):
            res = run_app(name, mana=True, nranks=8, blocks=5)
            assert res.status == "completed", (name, res.first_error())
            rates[name] = res.cs_per_second / 8
        assert rates["lammps"] > rates["sw4"] > rates["comd"]
        assert rates["comd"] > rates["hpcg"] > rates["lulesh"]

    def test_overhead_tracks_cs_rate(self):
        """Higher call rate => higher MANA overhead (the paper's core
        explanatory claim)."""
        overheads = {}
        for name in ("lammps", "lulesh"):
            nat = run_app(name, mana=False)
            man = run_app(name, mana=True)
            overheads[name] = man.runtime / nat.runtime - 1
        assert overheads["lammps"] > 4 * overheads["lulesh"]

    def test_image_size_ordering_matches_table3(self):
        sizes = {
            name: APP_CLASSES[name].paper_config().simulated_state_bytes
            for name in ("comd", "lammps", "sw4", "lulesh", "hpcg")
        }
        assert (
            sizes["comd"] < sizes["lammps"] < sizes["sw4"]
            < sizes["lulesh"] < sizes["hpcg"]
        )


class TestGromacsPrimitivesRestriction:
    def test_creates_no_mpi_objects(self):
        """The §3.6 proxy must hold no user-created MPI objects — only
        constants may appear in its virtual-id table."""
        from repro.apps.gromacs_primitives import GromacsPrimitivesProxy

        spec = replace(GromacsPrimitivesProxy.paper_config(), nranks=4, blocks=4)
        job = Launcher(JobConfig(nranks=4, impl="mpich", mana=True)).launch(
            lambda r: GromacsPrimitivesProxy(spec)
        )
        res = job.run(timeout=120)
        assert res.status == "completed", res.first_error()
        for mana in job.manas:
            for entry in mana.vids.entries():
                assert entry.constant_name is not None or entry.kind == "request", (
                    f"gromacs proxy created a {entry.kind}"
                )
