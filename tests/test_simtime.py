"""Virtual clock and cost-model tests, including the Table 3 filesystem
shape (MB/s/rank rises with image size)."""

import pytest

from repro.simtime.clock import VirtualClock
from repro.simtime.cost import (
    CostModel,
    FilesystemProfile,
    KernelProfile,
    NetworkProfile,
    checkpoint_time,
)


class TestVirtualClock:
    def test_advance_accumulates(self):
        c = VirtualClock()
        c.advance(1.5, "compute")
        c.advance(0.5, "compute")
        assert c.now == 2.0
        assert c.account("compute") == 2.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)

    def test_merge_forward_counts_idle(self):
        c = VirtualClock()
        c.advance(1.0)
        c.merge(3.0)
        assert c.now == 3.0
        assert c.account("idle") == 2.0

    def test_merge_backward_is_noop(self):
        c = VirtualClock(5.0)
        c.merge(2.0)
        assert c.now == 5.0
        assert c.account("idle") == 0.0

    def test_state_roundtrip(self):
        c = VirtualClock()
        c.advance(2.0, "a")
        c.merge(5.0)
        c2 = VirtualClock()
        c2.set_state(c.get_state())
        assert c2.now == c.now
        assert c2.accounts() == c.accounts()


class TestKernelProfiles:
    def test_prctl_much_more_expensive_than_fsgsbase(self):
        prctl = KernelProfile.prctl_profile()
        fsgs = KernelProfile.fsgsbase_profile()
        assert not prctl.fsgsbase and fsgs.fsgsbase
        # The paper's penalty range (3%-30%+) requires roughly an order
        # of magnitude between the two switch costs.
        assert prctl.switch_pair_cost > 5 * fsgs.switch_pair_cost


class TestCostModel:
    def test_message_cost_latency_plus_bandwidth(self):
        cm = CostModel.discovery()
        small = cm.message_cost(0)
        big = cm.message_cost(1_000_000)
        assert small == cm.network.latency
        assert big > small

    def test_wrapper_crossing_vid_designs(self):
        cm = CostModel.discovery()
        assert cm.wrapper_crossing_cost("new") < cm.wrapper_crossing_cost(
            "legacy"
        )

    def test_compute_cost_scales_with_cpu_speed(self):
        disc = CostModel.discovery()
        perl = CostModel.perlmutter()
        assert perl.compute_cost(1.0) < disc.compute_cost(1.0)

    def test_with_kernel_replaces_only_kernel(self):
        cm = CostModel.discovery()
        cm2 = cm.with_kernel(KernelProfile.fsgsbase_profile())
        assert cm2.kernel.fsgsbase
        assert cm2.network == cm.network


class TestFilesystemModel:
    """Table 3's load-bearing shape."""

    def test_mbps_per_rank_rises_with_image_size(self):
        fs = FilesystemProfile.discovery_nfsv3()
        sizes_mb = [32, 42, 49, 207, 934]
        rates = []
        for mb in sizes_mb:
            t = checkpoint_time(fs, 56, mb * 1024 * 1024)
            rates.append(mb / t)
        assert rates == sorted(rates), (
            "MB/s/rank must rise with image size (fixed cost amortizes)"
        )

    def test_fixed_overhead_dominates_small_images(self):
        fs = FilesystemProfile.discovery_nfsv3()
        t = checkpoint_time(fs, 27, 1024)
        assert t == pytest.approx(fs.fixed_overhead, rel=0.01)

    def test_table3_endpoints_roughly_match_paper(self):
        fs = FilesystemProfile.discovery_nfsv3()
        t_comd = checkpoint_time(fs, 27, 32 * 1024 * 1024)
        t_hpcg = checkpoint_time(fs, 56, 934 * 1024 * 1024)
        assert 6 < t_comd < 13      # paper: 8.9 s
        assert 55 < t_hpcg < 95     # paper: 72.9 s

    def test_lustre_much_faster(self):
        nfs = FilesystemProfile.discovery_nfsv3()
        lustre = FilesystemProfile.perlmutter_lustre()
        mb = 207 * 1024 * 1024
        assert checkpoint_time(lustre, 64, mb) < checkpoint_time(nfs, 27, mb)


class TestNetworkProfiles:
    def test_perlmutter_network_much_faster(self):
        disc = NetworkProfile.discovery_tcp()
        perl = NetworkProfile.perlmutter_ss11()
        assert perl.latency < disc.latency / 5
        assert perl.bandwidth > disc.bandwidth * 5
