"""Cross-implementation restart: checkpoint under impl A, restart under B.

[GPC19 §3.6] demonstrated this only for a primitives-only application;
the paper's §9 identifies full interoperability as future work enabled by
the new virtual-id design.  The simulation implements it fully, so every
(A, B) pair is tested — including 32-bit <-> 64-bit handle transitions.
"""

import itertools

import numpy as np
import pytest

from repro import JobConfig, Launcher
from tests.conftest import ALL_IMPLS
from tests.miniapps import RingApp

NRANKS = 4
PAIRS = [(a, b) for a, b in itertools.product(ALL_IMPLS, ALL_IMPLS) if a != b]


def preempt_under(impl, app_factory, ckdir, at_iter=8, niters=24):
    cfg = JobConfig(nranks=NRANKS, impl=impl, mana=True, ckpt_dir=ckdir)
    job = Launcher(cfg).launch(app_factory)
    tk = job.checkpoint_at_iteration("main", at_iter, kind="loop", mode="exit")
    job.start()
    tk.wait(120)
    res = job.wait(120)
    assert res.status == "preempted", res.first_error()
    return cfg


@pytest.mark.parametrize("src,dst", PAIRS)
def test_full_app_cross_restart(src, dst, tmp_path):
    """A full-featured app (sub-comms, derived types, user ops) restarts
    under a different implementation with identical results."""
    base = Launcher(
        JobConfig(nranks=NRANKS, impl=src, mana=True)
    ).run(lambda r: RingApp(24), timeout=120)
    assert base.status == "completed", base.first_error()
    expect = [a.acc[0] for a in base.apps()]

    ckdir = str(tmp_path / "ck")
    cfg = preempt_under(src, lambda r: RingApp(24), ckdir)
    job2 = Launcher(cfg).restart(ckdir, impl_override=dst)
    res2 = job2.run(timeout=120)
    assert res2.status == "completed", res2.first_error()
    assert [a.acc[0] for a in res2.apps()] == expect
    # The restarted job really runs the other implementation.
    assert all(m.impl_name == dst for m in job2.manas)


def test_handle_width_transition_32_to_64(tmp_path):
    """MPICH (32-bit int handles) -> Open MPI (64-bit pointers): the
    virtual handles stored in app state keep working."""
    ckdir = str(tmp_path / "ck")
    cfg = preempt_under("mpich", lambda r: RingApp(24), ckdir)
    job = Launcher(cfg).restart(ckdir, impl_override="openmpi")
    res = job.run(timeout=120)
    assert res.status == "completed", res.first_error()
    assert all(m.lower.handles.handle_bits == 64 for m in job.manas)


def test_handle_width_transition_64_to_32(tmp_path):
    ckdir = str(tmp_path / "ck")
    cfg = preempt_under("openmpi", lambda r: RingApp(24), ckdir)
    job = Launcher(cfg).restart(ckdir, impl_override="mpich")
    res = job.run(timeout=120)
    assert res.status == "completed", res.first_error()
    assert all(m.lower.handles.handle_bits == 32 for m in job.manas)


def test_three_hop_chain(tmp_path):
    """mpich -> openmpi -> exampi, preempted at each hop."""
    base = Launcher(
        JobConfig(nranks=NRANKS, impl="mpich", mana=True)
    ).run(lambda r: RingApp(30), timeout=120)
    expect = [a.acc[0] for a in base.apps()]

    ckdir = str(tmp_path / "ck")
    cfg = preempt_under("mpich", lambda r: RingApp(30), ckdir, at_iter=4,
                        niters=30)
    job2 = Launcher(cfg).restart(ckdir, impl_override="openmpi")
    tk = job2.coordinator.checkpoint_at_iteration(
        "main", 18, kind="loop", mode="exit"
    )
    job2.start()
    tk.wait(120)
    assert job2.wait(120).status == "preempted"

    job3 = Launcher(cfg).restart(ckdir, impl_override="exampi")
    res3 = job3.run(timeout=120)
    assert res3.status == "completed", res3.first_error()
    assert [a.acc[0] for a in res3.apps()] == expect


class ConstWitness(RingApp):
    """Records the vid of MPI.COMM_WORLD at each (re)entry of run()."""

    def run(self, ctx):
        from repro.mana.virtid import VirtualIdTable

        self.world_handles = getattr(self, "world_handles", [])
        self.world_handles.append(
            VirtualIdTable.extract(ctx.MPI.COMM_WORLD)
        )
        super().run(ctx)


def test_virtual_constants_stable_across_implementations(tmp_path):
    """MPI.COMM_WORLD as seen by the app is the same virtual handle
    before (mpich) and after (openmpi) — while the physical ids differ
    wildly.  The §4.3 constants-as-functions machinery."""
    ckdir = str(tmp_path / "ck")
    cfg = preempt_under("mpich", lambda r: ConstWitness(24), ckdir)
    job2 = Launcher(cfg).restart(ckdir, impl_override="openmpi")
    res2 = job2.run(timeout=120)
    assert res2.status == "completed", res2.first_error()
    for app in res2.apps():
        first, second = app.world_handles
        assert first == second  # same 32-bit virtual id across impls
