"""Odds and ends: gatherv/scatterv, comm_split_type, reduce errors,
fabric jitter, concurrent jobs in one process."""

import numpy as np
import pytest

from repro import JobConfig, Launcher
from repro.fabric.network import Fabric
from repro.simtime.cost import CostModel
from repro.util.errors import MpiError
from tests.conftest import facade_world, run_ranks
from repro import MpiApplication
from tests.miniapps import RingApp


class NodeApp(MpiApplication):
    """Shared-memory-node communicator exercised across a relaunch."""

    def __init__(self):
        self.sizes = []

    def setup(self, ctx):
        MPI = ctx.MPI
        self.node = MPI.comm_split_type(
            MPI.COMM_WORLD, MPI.COMM_TYPE_SHARED, ctx.rank
        )

    def run(self, ctx):
        MPI = ctx.MPI
        for it in ctx.loop("main", 8):
            self.sizes.append(MPI.comm_size(self.node))
            MPI.barrier(self.node)


class TestGathervScatterv:
    def test_gatherv_variable_counts(self):
        _, mpi_for = facade_world(3, "mpich")

        def body(r):
            MPI = mpi_for(r)
            w = MPI.COMM_WORLD
            counts = [1, 2, 3]
            displs = [0, 2, 4]       # with a hole at index 1
            send = np.full(counts[r], float(r + 1))
            recv = np.full(7, -1.0)
            MPI.gatherv(send, counts[r], MPI.DOUBLE,
                        recv, counts, displs, MPI.DOUBLE, 0, w)
            return recv.tolist() if r == 0 else None

        got = run_ranks(3, body)[0]
        assert got == [1.0, -1.0, 2.0, 2.0, 3.0, 3.0, 3.0]

    def test_scatterv_variable_counts(self):
        _, mpi_for = facade_world(3, "mpich")

        def body(r):
            MPI = mpi_for(r)
            w = MPI.COMM_WORLD
            counts = [2, 1, 3]
            displs = [0, 2, 3]
            send = np.arange(6, dtype=np.float64) if r == 0 else np.zeros(6)
            recv = np.zeros(counts[r])
            MPI.scatterv(send, counts, displs, MPI.DOUBLE,
                         recv, counts[r], MPI.DOUBLE, 0, w)
            return recv.tolist()

        out = run_ranks(3, body)
        assert out == [[0.0, 1.0], [2.0], [3.0, 4.0, 5.0]]


class TestCommSplitType:
    def test_single_node_everyone_shares(self):
        _, mpi_for = facade_world(4, "mpich")

        def body(r):
            MPI = mpi_for(r)
            node = MPI.comm_split_type(MPI.COMM_WORLD,
                                       MPI.COMM_TYPE_SHARED, r)
            return MPI.comm_size(node), MPI.comm_rank(node)

        out = run_ranks(4, body)
        assert [o[0] for o in out] == [4] * 4  # 4 ranks < 56/node

    def test_unsupported_split_type(self):
        _, mpi_for = facade_world(1, "mpich")
        MPI = mpi_for(0)
        with pytest.raises(MpiError, match="split_type"):
            MPI.comm_split_type(MPI.COMM_WORLD, 999, 0)

    def test_under_mana_with_checkpoint(self):
        job = Launcher(JobConfig(nranks=4, impl="mpich", mana=True)).launch(
            lambda r: NodeApp()
        )
        tk = job.checkpoint_at_iteration("main", 3, mode="relaunch")
        job.start()
        tk.wait(60)
        res = job.wait(60)
        assert res.status == "completed", res.first_error()
        assert all(set(a.sizes) == {4} for a in res.apps())


class TestReduceErrors:
    def test_reduce_on_gapped_derived_type_rejected(self):
        _, mpi_for = facade_world(1, "mpich")
        MPI = mpi_for(0)
        v = MPI.type_vector(2, 1, 3, MPI.DOUBLE)  # gapped
        MPI.type_commit(v)
        with pytest.raises(MpiError, match="reduction"):
            MPI.allreduce(np.zeros(8), np.zeros(8), 1, v, MPI.SUM,
                          MPI.COMM_SELF)

    def test_reduce_on_contiguous_derived_type_ok(self):
        _, mpi_for = facade_world(1, "mpich")
        MPI = mpi_for(0)
        c = MPI.type_contiguous(3, MPI.DOUBLE)
        MPI.type_commit(c)
        out = np.zeros(3)
        MPI.allreduce(np.arange(3.0), out, 1, c, MPI.SUM, MPI.COMM_SELF)
        assert out.tolist() == [0.0, 1.0, 2.0]


class TestFabricJitter:
    def test_jitter_perturbs_arrival(self):
        cm = CostModel.discovery()
        plain = Fabric(2, cm)
        noisy = Fabric(2, cm, latency_jitter=0.5, jitter_seed=3)
        m0 = plain.post_send(0, 1, 1, 0, b"x" * 100, 0.0)
        m1 = noisy.post_send(0, 1, 1, 0, b"x" * 100, 0.0)
        assert m1.arrive_time > m0.arrive_time  # jitter only adds

    def test_jitter_deterministic_by_seed(self):
        cm = CostModel.discovery()
        a = Fabric(2, cm, latency_jitter=0.5, jitter_seed=7)
        b = Fabric(2, cm, latency_jitter=0.5, jitter_seed=7)
        for _ in range(5):
            assert (
                a.post_send(0, 1, 1, 0, b"y", 0.0).arrive_time
                == b.post_send(0, 1, 1, 0, b"y", 0.0).arrive_time
            )

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError):
            Fabric(2, CostModel.discovery(), latency_jitter=-0.1)


class TestConcurrentJobs:
    def test_two_jobs_isolated(self):
        """Two simulated jobs in one process must not share any state
        (separate fabrics, coordinators, virtual-id tables)."""
        job_a = Launcher(JobConfig(nranks=3, impl="mpich", mana=True)).launch(
            lambda r: RingApp(15)
        )
        job_b = Launcher(JobConfig(nranks=4, impl="openmpi", mana=True)).launch(
            lambda r: RingApp(15)
        )
        job_a.start()
        job_b.start()
        ra = job_a.wait(120)
        rb = job_b.wait(120)
        assert ra.status == "completed", ra.first_error()
        assert rb.status == "completed", rb.first_error()
        assert job_a.fabric is not job_b.fabric
        assert len(ra.ranks) == 3 and len(rb.ranks) == 4
