"""Coordinator unit tests: tickets, triggers, elections, trivial barrier."""

import threading
import time

import pytest

from repro.mana.coordinator import (
    CheckpointCoordinator,
    CheckpointKind,
    CheckpointMode,
)
from repro.simtime.cost import FilesystemProfile
from repro.util.errors import CheckpointError


def coord(nranks=2, lag=4):
    return CheckpointCoordinator(
        nranks, "/tmp/coord-test", FilesystemProfile.discovery_nfsv3(),
        loop_lag_window=lag,
    )


class TestTickets:
    def test_request_arms_intent(self):
        c = coord()
        t = c.request_checkpoint()
        assert c.intent is t
        assert c.should_park_now()

    def test_second_request_while_busy_rejected(self):
        c = coord()
        c.request_checkpoint()
        with pytest.raises(CheckpointError, match="already in progress"):
            c.request_checkpoint()

    def test_unknown_kind_mode_rejected(self):
        c = coord()
        with pytest.raises(ValueError):
            c.request_checkpoint(kind="weird")
        with pytest.raises(ValueError):
            c.request_checkpoint(mode="weird")

    def test_cancel_pending(self):
        c = coord()
        t = c.request_checkpoint()
        c.cancel_pending("test")
        with pytest.raises(CheckpointError, match="cancelled"):
            t.wait(1)
        assert c.intent is None

    def test_generations_increment(self):
        c = coord()
        t1 = c.request_checkpoint()
        c.cancel_pending("x")
        t2 = c.request_checkpoint()
        assert (t1.generation, t2.generation) == (1, 2)

    def test_ticket_wait_timeout(self):
        c = coord()
        t = c.request_checkpoint()
        with pytest.raises(CheckpointError, match="did not complete"):
            t.wait(0.05)

    def test_abort_fails_tickets(self):
        c = coord()
        t = c.request_checkpoint()
        c.abort(RuntimeError("boom"))
        with pytest.raises(RuntimeError):
            t.wait(1)


class TestTriggers:
    def test_trigger_fires_on_iteration(self):
        c = coord()
        t = c.checkpoint_at_iteration("main", 5)
        c.note_loop_progress("main", 4)
        assert c.intent is None
        c.note_loop_progress("main", 5)
        assert c.intent is t

    def test_trigger_fires_past_iteration(self):
        c = coord()
        t = c.checkpoint_at_iteration("main", 5)
        c.note_loop_progress("main", 9)
        assert c.intent is t

    def test_trigger_loop_name_scoped(self):
        c = coord()
        c.checkpoint_at_iteration("outer", 5)
        c.note_loop_progress("inner", 10)
        assert c.intent is None

    def test_only_one_trigger_fires_at_a_time(self):
        c = coord()
        t1 = c.checkpoint_at_iteration("main", 1)
        t2 = c.checkpoint_at_iteration("main", 2)
        c.note_loop_progress("main", 5)
        assert c.intent is t1
        c.note_loop_progress("main", 6)  # t1 still in progress
        assert c.intent is t1
        assert t2.generation == t1.generation + 1

    def test_cancel_pending_covers_triggers(self):
        c = coord()
        t = c.checkpoint_at_iteration("main", 100)
        c.cancel_pending("done")
        with pytest.raises(CheckpointError):
            t.wait(1)


class TestLoopElection:
    def test_target_is_first_observer_plus_lag(self):
        c = coord(lag=4)
        c.request_checkpoint(kind=CheckpointKind.LOOP)
        assert c.loop_poll("main", 10) is False
        assert c.loop_target() == 14
        assert c.loop_poll("main", 13) is False
        assert c.loop_poll("main", 14) is True

    def test_skew_beyond_lag_detected(self):
        c = coord(lag=2)
        c.request_checkpoint(kind=CheckpointKind.LOOP)
        c.loop_poll("main", 10)
        with pytest.raises(CheckpointError, match="skew"):
            c.loop_poll("main", 13)

    def test_non_loop_intent_ignores_poll(self):
        c = coord()
        c.request_checkpoint(kind=CheckpointKind.IN_SESSION)
        assert c.loop_poll("main", 3) is False
        assert c.loop_target() is None

    def test_other_loop_not_elected(self):
        c = coord()
        c.request_checkpoint(kind=CheckpointKind.LOOP)
        c.loop_poll("main", 10)
        assert c.loop_poll("side", 14) is False

    def test_loop_cancel(self):
        c = coord()
        t = c.request_checkpoint(kind=CheckpointKind.LOOP)
        c.loop_poll("main", 10)
        c.loop_cancel("loop ended")
        with pytest.raises(CheckpointError, match="cancelled"):
            t.wait(1)
        assert c.intent is None


class TestFinalize:
    def test_all_finalized_disables_and_cancels(self):
        c = coord(nranks=2)
        t = c.request_checkpoint()
        done = []

        def fin(rank):
            c.finalize_rank(rank, park_check=lambda: None)
            done.append(rank)

        th = threading.Thread(target=fin, args=(0,))
        th.start()
        time.sleep(0.05)
        assert not done  # rank 0 waits for rank 1
        fin(1)
        th.join(timeout=5)
        assert sorted(done) == [0, 1]
        assert not c.should_park_now()
        with pytest.raises(CheckpointError):
            t.wait(1)

    def test_park_check_called_while_waiting(self):
        c = coord(nranks=2)
        calls = []

        def park():
            calls.append(1)

        th = threading.Thread(
            target=c.finalize_rank, args=(0, park), daemon=True
        )
        th.start()
        time.sleep(0.05)
        c.finalize_rank(1, lambda: None)
        th.join(timeout=5)
        assert calls  # rank 0 polled while waiting


class TestTrivialBarrier:
    def test_completes_when_all_members_arrive(self):
        c = coord(nranks=2)
        out = []

        def member(rank):
            c.trivial_barrier(("g", 0), 1, rank, (0, 1), lambda: None)
            out.append(rank)

        ts = [threading.Thread(target=member, args=(r,)) for r in (0, 1)]
        [t.start() for t in ts]
        [t.join(timeout=5) for t in ts]
        assert sorted(out) == [0, 1]

    def test_subset_members_only(self):
        c = coord(nranks=4)
        done = []

        def member(rank):
            c.trivial_barrier(("sub", 7), 3, rank, (1, 3), lambda: None)
            done.append(rank)

        ts = [threading.Thread(target=member, args=(r,)) for r in (1, 3)]
        [t.start() for t in ts]
        [t.join(timeout=5) for t in ts]
        assert sorted(done) == [1, 3]

    def test_parks_resolve_then_barrier_completes(self):
        """With an in-session intent armed, members leave the barrier to
        park; once the 'checkpoint' resolves (intent cleared), the
        barrier completes for everyone.  A park_check that does nothing
        would livelock — parking MUST resolve the intent, as the real
        checkpoint_participate does."""
        c = coord(nranks=2)
        parked = []
        c.request_checkpoint(kind=CheckpointKind.IN_SESSION)

        def park():
            parked.append(1)
            c.cancel_pending("simulated checkpoint completed")

        def member(rank):
            c.trivial_barrier(("g", 1), 1, rank, (0, 1), park)

        ts = [threading.Thread(target=member, args=(r,)) for r in (0, 1)]
        [t.start() for t in ts]
        [t.join(timeout=10) for t in ts]
        assert not any(t.is_alive() for t in ts)
        assert parked  # at least one member detoured into the park path

    def test_committed_member_does_not_park(self):
        """Once a member observes commitment, it proceeds into the
        collective even though an intent arrives at that instant."""
        c = coord(nranks=2)
        order = []

        def member_a():
            c.trivial_barrier(("g", 2), 1, 0, (0, 1), lambda: order.append("a-parked"))
            order.append("a-through")

        def member_b():
            c.trivial_barrier(("g", 2), 1, 1, (0, 1), lambda: order.append("b-parked"))
            order.append("b-through")

        ta = threading.Thread(target=member_a)
        tb = threading.Thread(target=member_b)
        ta.start()
        tb.start()
        ta.join(timeout=5)
        tb.join(timeout=5)
        # No intent was armed: nobody parked, everybody went through.
        assert sorted(order) == ["a-through", "b-through"]

    def test_stale_entries_cleaned(self):
        c = coord(nranks=1)
        for seq in range(1, 6):
            c.trivial_barrier(("g", 0), seq, 0, (0,), lambda: None)
        keys = [k[1] for k in c._tb_arrivals if k[0] == ("g", 0)]
        assert min(keys) >= 3  # anything older than seq-2 dropped
