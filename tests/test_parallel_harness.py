"""Parallel experiment harness: ordering, determinism, error mapping.

The whole contract is "byte-identical to serial, just sooner": outcomes
come back in submission order, failures are data mapped to their slot,
and a parallel figure renders exactly the serial figure.
"""

import pytest

from repro.harness.parallel import default_jobs, run_cases
from repro.harness.runner import CaseCache
from repro.util.errors import IncompatibleHandleError

# Small enough that a whole figure sweep stays test-suite friendly.
FAST = dict(scale=0.05, ranks_cap=4)


def _kw(app, impl, mana, vid="new"):
    return dict(app_name=app, impl=impl, mana=mana, vid_design=vid,
                platform="discovery", **FAST)


class TestRunCases:
    def test_empty(self):
        assert run_cases([], jobs=4) == []

    def test_outcomes_in_submission_order(self):
        kws = [
            _kw("comd", "mpich", False),
            # Doomed: legacy 32-bit ints on a 64-bit-pointer MPI.
            _kw("comd", "openmpi", True, vid="legacy"),
            _kw("comd", "mpich", True),
        ]
        outcomes = run_cases(kws, jobs=3)
        assert [s for s, _ in outcomes] == ["ok", "err", "ok"]
        ok0, ok2 = outcomes[0][1], outcomes[2][1]
        assert (ok0.impl, ok0.mana) == ("mpich", False)
        assert (ok2.impl, ok2.mana) == ("mpich", True)
        assert isinstance(outcomes[1][1], IncompatibleHandleError)

    def test_parallel_matches_serial(self):
        kws = [_kw("comd", "mpich", False), _kw("comd", "mpich", True)]
        serial = run_cases(kws, jobs=1)
        parallel = run_cases(kws, jobs=2)
        assert [s for s, _ in serial] == [s for s, _ in parallel] == ["ok", "ok"]
        for (_, a), (_, b) in zip(serial, parallel):
            assert a == b  # CaseResult is a dataclass: full field equality

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1


class TestCaseCachePrefetch:
    def test_prefetch_dedupes_and_get_hits(self):
        cache = CaseCache()
        kw = _kw("comd", "mpich", False)
        ran = cache.prefetch([kw, dict(kw), dict(kw)], jobs=2)
        assert ran == 1
        res = cache.get(**kw)
        assert res.status == "completed"
        assert cache.prefetch([kw], jobs=2) == 0  # already cached

    def test_cached_errors_reraise(self):
        cache = CaseCache()
        kw = _kw("comd", "openmpi", True, vid="legacy")
        cache.prefetch([kw], jobs=2)
        for _ in range(2):  # raises from cache every time
            with pytest.raises(IncompatibleHandleError):
                cache.get(**kw)


class TestFigureDeterminism:
    def test_figure2_parallel_identical_to_serial(self):
        from repro.harness.experiments import figure2

        serial = figure2(0.05, 4, CaseCache())
        parallel = figure2(0.05, 4, CaseCache(), jobs=4)
        assert parallel["data"] == serial["data"]
        assert parallel["text"] == serial["text"]
