"""ExaMPI constant aliasing under MANA (paper §4.3).

MPI_INT8_T and MPI_CHAR share one physical pointer in ExaMPI.  MANA must
(a) not require distinct physical ids for distinct constant names, and
(b) keep both names usable — including across a relaunch, where the lazy
constants materialize in a brand-new lower half on demand.
"""

import numpy as np
import pytest

from repro import JobConfig, Launcher, MpiApplication
from repro.mana.virtid import VirtualIdTable


class AliasApp(MpiApplication):
    def __init__(self):
        self.ok_rounds = 0

    def run(self, ctx):
        MPI = ctx.MPI
        w = MPI.COMM_WORLD
        peer = 1 - ctx.rank
        for it in ctx.loop("main", 10):
            # send as INT8_T, receive as CHAR (same layout, aliased ptr)
            if ctx.rank == 0:
                MPI.send(np.arange(4, dtype=np.int8), 4, MPI.INT8_T,
                         peer, 60, w)
                buf = np.zeros(4, dtype=np.int8)
                MPI.recv(buf, 4, MPI.CHAR, peer, 61, w)
                if buf.tolist() == [9, 8, 7, 6]:
                    self.ok_rounds += 1
            else:
                buf = np.zeros(4, dtype=np.int8)
                MPI.recv(buf, 4, MPI.CHAR, peer, 60, w)
                MPI.send(np.array([9, 8, 7, 6], dtype=np.int8), 4,
                         MPI.INT8_T, peer, 61, w)
                if buf.tolist() == [0, 1, 2, 3]:
                    self.ok_rounds += 1
            MPI.barrier(w)


def test_aliased_constants_work_under_mana():
    job = Launcher(JobConfig(nranks=2, impl="exampi", mana=True)).launch(
        lambda r: AliasApp()
    )
    res = job.run(timeout=60)
    assert res.status == "completed", res.first_error()
    assert all(a.ok_rounds == 10 for a in res.apps())
    # Distinct virtual ids for the aliased names...
    mana = job.manas[0]
    v_int8 = mana.vids.constant_vid("MPI_INT8_T")
    v_char = mana.vids.constant_vid("MPI_CHAR")
    assert v_int8 != v_char
    # ...bound to the SAME physical pointer.
    assert mana.vids.lookup(v_int8).phys == mana.vids.lookup(v_char).phys


def test_aliases_survive_relaunch():
    job = Launcher(JobConfig(nranks=2, impl="exampi", mana=True)).launch(
        lambda r: AliasApp()
    )
    tk = job.checkpoint_at_iteration("main", 4, mode="relaunch")
    job.start()
    tk.wait(60)
    res = job.wait(60)
    assert res.status == "completed", res.first_error()
    assert all(a.ok_rounds == 10 for a in res.apps())
    mana = job.manas[0]
    assert (
        mana.vids.lookup(mana.vids.constant_vid("MPI_INT8_T")).phys
        == mana.vids.lookup(mana.vids.constant_vid("MPI_CHAR")).phys
    )


def test_virtual_ids_stable_while_lazy_pointers_move():
    """Across two sessions the lazy physical pointers differ, but the
    name-derived virtual ids are identical."""
    vids = []
    for epoch in (0, 1):
        job = Launcher(
            JobConfig(nranks=2, impl="exampi", mana=True, epoch=epoch)
        ).launch(lambda r: AliasApp())
        res = job.run(timeout=60)
        assert res.status == "completed", res.first_error()
        mana = job.manas[0]
        vids.append(
            (
                VirtualIdTable.extract(mana.vids.constant_vid("MPI_INT8_T")),
                mana.vids.lookup(mana.vids.constant_vid("MPI_INT8_T")).phys,
            )
        )
    (vid_a, phys_a), (vid_b, phys_b) = vids
    assert vid_a == vid_b           # virtual: stable by name
    # physical enum values of primitives are session-stable in ExaMPI
    # (the enum is part of its source); ops/groups pointers move instead.
    assert phys_a == phys_b
