"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import threading
from typing import Callable, List

import pytest

from repro.fabric.network import Fabric
from repro.impls import IMPLS, make_lib
from repro.impls.facade import NativeFacade
from repro.simtime.clock import VirtualClock
from repro.simtime.cost import CostModel

ALL_IMPLS = tuple(sorted(IMPLS))


def run_ranks(nranks: int, body: Callable[[int], object],
              timeout: float = 60.0) -> List[object]:
    """Run ``body(rank)`` on one thread per rank; returns results in rank
    order; re-raises the first exception."""
    results: List[object] = [None] * nranks
    errors: List[BaseException] = []

    def runner(r: int) -> None:
        try:
            results[r] = body(r)
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [
        threading.Thread(target=runner, args=(r,), daemon=True)
        for r in range(nranks)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout)
    alive = [t for t in threads if t.is_alive()]
    if alive and not errors:
        raise TimeoutError(f"{len(alive)} rank threads hung")
    if errors:
        raise errors[0]
    return results


def make_world(nranks: int, impl: str = "mpich", epoch: int = 0,
               cost_model: CostModel = None):
    """A fabric plus a lib factory for hand-driven multi-rank tests."""
    cm = cost_model or CostModel.discovery()
    fabric = Fabric(nranks, cm)

    def lib_for(rank: int, init: bool = True):
        lib = make_lib(impl, fabric, rank, VirtualClock(), cm,
                       epoch=epoch, seed=42)
        if init:
            lib.init()
        return lib

    return fabric, lib_for


def facade_world(nranks: int, impl: str = "mpich", epoch: int = 0):
    fabric, lib_for = make_world(nranks, impl, epoch)

    def mpi_for(rank: int) -> NativeFacade:
        return NativeFacade(lib_for(rank))

    return fabric, mpi_for


@pytest.fixture(params=ALL_IMPLS)
def impl_name(request):
    return request.param
