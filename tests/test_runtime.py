"""Runtime tests: launcher, job lifecycle, context, platforms."""

import numpy as np
import pytest

from repro import JobConfig, Launcher, MpiApplication
from repro.runtime.platforms import cost_model_for
from repro.util.errors import ReproError
from tests.miniapps import RingApp


class FailingApp(MpiApplication):
    def __init__(self, fail_rank=1):
        self.fail_rank = fail_rank

    def run(self, ctx):
        MPI = ctx.MPI
        for it in ctx.loop("main", 10):
            if ctx.rank == self.fail_rank and it == 3:
                raise RuntimeError("injected failure")
            MPI.barrier(MPI.COMM_WORLD)


class ComputeOnly(MpiApplication):
    def __init__(self, per_iter=0.5, iters=4):
        self.per_iter = per_iter
        self.iters = iters

    def run(self, ctx):
        for _ in ctx.loop("main", self.iters):
            ctx.compute(self.per_iter)


class TestJobLifecycle:
    def test_native_and_mana_complete(self):
        for mana in (False, True):
            res = Launcher(
                JobConfig(nranks=3, impl="mpich", mana=mana)
            ).run(lambda r: RingApp(6), timeout=60)
            assert res.status == "completed", res.first_error()
            assert len(res.ranks) == 3

    def test_app_factory_receives_rank(self):
        seen = []

        def factory(r):
            seen.append(r)
            return RingApp(4)

        res = Launcher(JobConfig(nranks=3, impl="mpich")).run(
            factory, timeout=60
        )
        assert res.status == "completed"
        assert sorted(seen) == [0, 1, 2]

    def test_rank_failure_fails_whole_job(self):
        res = Launcher(JobConfig(nranks=3, impl="mpich", mana=True)).run(
            lambda r: FailingApp(), timeout=60
        )
        assert res.status == "failed"
        assert "injected failure" in res.first_error()

    def test_native_failure_aborts_peers(self):
        res = Launcher(JobConfig(nranks=3, impl="mpich")).run(
            lambda r: FailingApp(), timeout=60
        )
        assert res.status == "failed"

    def test_double_start_rejected(self):
        job = Launcher(JobConfig(nranks=1, impl="mpich")).launch(
            lambda r: RingApp(2)
        )
        job.start()
        with pytest.raises(ReproError):
            job.start()
        job.wait(60)

    def test_checkpoint_on_native_job_rejected(self):
        job = Launcher(JobConfig(nranks=1, impl="mpich", mana=False)).launch(
            lambda r: RingApp(2)
        )
        with pytest.raises(ReproError, match="mana=True"):
            job.request_checkpoint()
        job.run(timeout=60)

    def test_factory_or_images_exclusive(self):
        from repro.runtime.launcher import Job

        with pytest.raises(ValueError):
            Job(JobConfig(nranks=1), app_factory=None, images=None)

    def test_unknown_impl_rejected(self):
        with pytest.raises(ValueError, match="unknown implementation"):
            Launcher(JobConfig(nranks=1, impl="fakempi")).run(
                lambda r: RingApp(1), timeout=30
            )


class TestJobResult:
    def test_runtime_is_slowest_rank(self):
        class Uneven(MpiApplication):
            def run(self, ctx):
                ctx.compute(1.0 * (ctx.rank + 1))

        res = Launcher(JobConfig(nranks=3, impl="mpich")).run(
            lambda r: Uneven(), timeout=60
        )
        assert res.runtime == pytest.approx(3.0, rel=0.01)

    def test_accounts_decompose_runtime(self):
        res = Launcher(JobConfig(nranks=2, impl="mpich", mana=True)).run(
            lambda r: RingApp(10), timeout=60
        )
        for r in res.ranks:
            total = sum(r.accounts.values())
            assert total == pytest.approx(r.runtime, rel=1e-6)

    def test_lib_call_counts_collected(self):
        res = Launcher(JobConfig(nranks=2, impl="mpich")).run(
            lambda r: RingApp(5), timeout=60
        )
        counts = res.ranks[0].lib_call_counts
        assert counts.get("send", 0) >= 5
        assert counts.get("recv", 0) >= 5


class TestContext:
    def test_loop_token_resumes(self):
        """ctx.loop skips completed iterations on re-entry."""
        from repro.runtime.context import RankContext
        from repro.simtime.clock import VirtualClock
        from repro.simtime.cost import CostModel

        ctx = RankContext(0, 1, None, VirtualClock(), CostModel.discovery())
        first = []
        for i in ctx.loop("L", 10):
            first.append(i)
            if i == 3:
                break
        # a break records iteration 3 as *incomplete* (resume re-runs it)
        assert ctx._loops["L"] == 3
        resumed = list(ctx.loop("L", 10))
        assert resumed == list(range(3, 10))
        assert ctx._loops["L"] == 10

    def test_nested_loops_tracked_separately(self):
        from repro.runtime.context import RankContext
        from repro.simtime.clock import VirtualClock
        from repro.simtime.cost import CostModel

        ctx = RankContext(0, 1, None, VirtualClock(), CostModel.discovery())
        pairs = [(i, j) for i in ctx.loop("outer", 2) for j in ctx.loop("inner", 2)]
        # inner loop completes during i=0 and stays exhausted: apps must
        # reset or uniquely name inner loops (documented behavior)
        assert pairs == [(0, 0), (0, 1)]

    def test_compute_advances_clock(self):
        res = Launcher(JobConfig(nranks=1, impl="mpich")).run(
            lambda r: ComputeOnly(0.25, 4), timeout=60
        )
        assert res.runtime == pytest.approx(1.0, rel=0.01)

    def test_perlmutter_faster_cpu(self):
        res_d = Launcher(
            JobConfig(nranks=1, impl="mpich", platform="discovery")
        ).run(lambda r: ComputeOnly(1.0, 2), timeout=60)
        res_p = Launcher(
            JobConfig(nranks=1, impl="craympi", platform="perlmutter")
        ).run(lambda r: ComputeOnly(1.0, 2), timeout=60)
        assert res_p.runtime < res_d.runtime


class TestPlatforms:
    def test_known_platforms(self):
        for impl in ("mpich", "openmpi", "exampi", "craympi"):
            cm = cost_model_for("discovery", impl)
            assert not cm.kernel.fsgsbase
        cm = cost_model_for("perlmutter", "craympi")
        assert cm.kernel.fsgsbase

    def test_openmpi_software_path_slower_on_discovery(self):
        m = cost_model_for("discovery", "mpich")
        o = cost_model_for("discovery", "openmpi")
        assert o.network.per_call_overhead > m.network.per_call_overhead
        assert o.network.latency > m.network.latency

    def test_unknown_platform_and_impl(self):
        with pytest.raises(ValueError, match="unknown platform"):
            cost_model_for("frontier", "mpich")
        with pytest.raises(ValueError, match="unknown implementation"):
            cost_model_for("discovery", "mvapich")
