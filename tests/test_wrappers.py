"""Wrapper-layer behavior: virtualization, accounting, facade semantics."""

import numpy as np
import pytest

from repro import JobConfig, Launcher, MpiApplication
from repro.mana.virtid import MANA_MAGIC, VirtualIdTable
from repro.util.errors import IncompatibleHandleError, MpiError
from tests.conftest import ALL_IMPLS
from tests.miniapps import RingApp


class HandleWitness(MpiApplication):
    """Collects every handle the app ever sees, for leak checks."""

    name = "witness"

    def __init__(self):
        self.seen = {}

    def run(self, ctx):
        MPI = ctx.MPI
        w = MPI.COMM_WORLD
        sub = MPI.comm_split(w, 0, ctx.rank)
        g = MPI.comm_group(w)
        t = MPI.type_contiguous(2, MPI.DOUBLE)
        MPI.type_commit(t)
        req = MPI.irecv(np.zeros(2), 2, MPI.DOUBLE, (ctx.rank + 1) % ctx.nranks, 1, w)
        MPI.send(np.zeros(2), 2, MPI.DOUBLE, (ctx.rank - 1) % ctx.nranks, 1, w)
        MPI.wait(req)
        self.seen = {
            "world": w, "sub": sub, "group": g, "dtype": t,
            "double": MPI.DOUBLE, "sum_op": MPI.SUM,
        }
        MPI.barrier(w)


class TestVirtualization:
    @pytest.mark.parametrize("impl", ALL_IMPLS)
    def test_app_never_sees_physical_ids(self, impl):
        job = Launcher(JobConfig(nranks=2, impl=impl, mana=True)).launch(
            lambda r: HandleWitness()
        )
        res = job.run(timeout=60)
        assert res.status == "completed", res.first_error()
        for rank, app in enumerate(res.apps()):
            mana = job.manas[rank]
            for name, vh in app.seen.items():
                vid = VirtualIdTable.extract(vh)
                # every handle decodes as a virtual id known to the table
                entry = mana.vids.lookup(vid)
                assert entry is not None, name
                if mana.lower.handles.handle_bits == 64:
                    assert (vh >> 32) == MANA_MAGIC

    def test_comm_world_vid_identical_on_all_ranks(self):
        job = Launcher(JobConfig(nranks=4, impl="mpich", mana=True)).launch(
            lambda r: HandleWitness()
        )
        res = job.run(timeout=60)
        assert res.status == "completed", res.first_error()
        worlds = {a.seen["world"] for a in res.apps()}
        assert len(worlds) == 1  # ggid-derived: same vid everywhere

    def test_sub_comm_vid_identical_on_members(self):
        job = Launcher(JobConfig(nranks=4, impl="mpich", mana=True)).launch(
            lambda r: HandleWitness()
        )
        res = job.run(timeout=60)
        subs = {a.seen["sub"] for a in res.apps()}
        assert len(subs) == 1

    def test_legacy_design_works_on_32bit_impls(self):
        for impl in ("mpich", "craympi"):
            res = Launcher(
                JobConfig(nranks=2, impl=impl, mana=True, vid_design="legacy")
            ).run(lambda r: RingApp(8), timeout=60)
            assert res.status == "completed", res.first_error()

    @pytest.mark.parametrize("impl", ["openmpi", "exampi"])
    def test_legacy_design_fails_on_pointer_impls(self, impl):
        res = Launcher(
            JobConfig(nranks=2, impl=impl, mana=True, vid_design="legacy")
        ).run(lambda r: RingApp(8), timeout=60)
        assert res.status == "failed"
        assert "IncompatibleHandleError" in res.first_error()


class TestAccounting:
    def test_cs_count_includes_call_weight(self):
        class Weighted(MpiApplication):
            def run(self, ctx):
                ctx.set_call_weight(100)
                ctx.MPI.barrier(ctx.MPI.COMM_WORLD)

        job = Launcher(JobConfig(nranks=2, impl="mpich", mana=True)).launch(
            lambda r: Weighted()
        )
        res = job.run(timeout=60)
        assert res.status == "completed", res.first_error()
        # barrier: 1 wrapped crossing + 1 extra internal call, both x100,
        # plus bootstrap/init/finalize small-weight calls.
        assert res.ranks[0].cs_count >= 200

    def test_native_run_has_zero_cs(self):
        res = Launcher(JobConfig(nranks=2, impl="mpich", mana=False)).run(
            lambda r: RingApp(5), timeout=60
        )
        assert res.status == "completed"
        assert res.total_cs == 0

    def test_mana_overhead_account_populated(self):
        res = Launcher(JobConfig(nranks=2, impl="mpich", mana=True)).run(
            lambda r: RingApp(10), timeout=60
        )
        assert res.status == "completed"
        assert all(r.accounts.get("mana-overhead", 0) > 0 for r in res.ranks)

    def test_legacy_vid_design_slower(self):
        """§6.1: the new design's lookup is cheaper per call."""
        def go(design):
            res = Launcher(
                JobConfig(nranks=2, impl="mpich", mana=True, vid_design=design)
            ).run(lambda r: RingApp(20, compute=0.0001), timeout=60)
            assert res.status == "completed", res.first_error()
            return res.runtime

        assert go("legacy") > go("new")

    def test_invalid_call_weight(self):
        class Bad(MpiApplication):
            def run(self, ctx):
                ctx.set_call_weight(0)

        res = Launcher(JobConfig(nranks=1, impl="mpich", mana=True)).run(
            lambda r: Bad(), timeout=60
        )
        assert res.status == "failed"
        assert "call weight" in res.first_error()


class CartApp(MpiApplication):
    def __init__(self):
        self.coords = []

    def run(self, ctx):
        MPI = ctx.MPI
        cart = MPI.cart_create(MPI.COMM_WORLD, [2, 2], [True, False])
        for it in ctx.loop("main", 12):
            self.coords.append(MPI.cart_coords(cart, ctx.rank))
            MPI.barrier(cart)


class TestFacade:
    def test_mana_facade_surface_matches_native(self):
        from repro.impls.facade import _FORWARDED, NativeFacade
        from repro.mana.wrappers import ManaFacade, ManaRank

        for fn in _FORWARDED:
            assert hasattr(ManaRank, fn), f"ManaRank missing wrapper {fn}"

    def test_null_handles_distinct_per_kind(self):
        job = Launcher(JobConfig(nranks=1, impl="mpich", mana=True)).launch(
            lambda r: HandleWitness()
        )
        res = job.run(timeout=60)
        assert res.status == "completed"
        mana = job.manas[0]
        from repro.mpi.api import HandleKind

        nulls = {k: mana.null_vhandle(k) for k in HandleKind.ALL}
        assert len(set(nulls.values())) == 5
        assert all(mana.is_null_vhandle(v) for v in nulls.values())

    def test_unknown_attr_raises(self):
        job = Launcher(JobConfig(nranks=1, impl="mpich", mana=True)).launch(
            lambda r: HandleWitness()
        )
        job.run(timeout=60)
        from repro.mana.wrappers import ManaFacade

        facade = ManaFacade(job.manas[0])
        with pytest.raises(AttributeError):
            facade.NOT_A_THING

    def test_unregistered_user_op_rejected_under_mana(self):
        class BadOp(MpiApplication):
            def run(self, ctx):
                ctx.MPI.op_create(lambda a, b: None, True)

        res = Launcher(JobConfig(nranks=1, impl="mpich", mana=True)).run(
            lambda r: BadOp(), timeout=60
        )
        assert res.status == "failed"
        assert "registered" in res.first_error()

    def test_cart_served_from_records(self):
        """Topology queries answered from MANA metadata keep working
        after a relaunch (where comm_split loses lib-level topology)."""
        job = Launcher(JobConfig(nranks=4, impl="mpich", mana=True)).launch(
            lambda r: CartApp()
        )
        tk = job.checkpoint_at_iteration("main", 5, mode="relaunch")
        job.start()
        tk.wait(60)
        res = job.wait(60)
        assert res.status == "completed", res.first_error()
        for app in res.apps():
            assert len(set(app.coords)) == 1  # stable across relaunch
