"""Hot-path fast lane: hit accounting and strict invalidation.

The cache may never be observable through translation *results* — only
through the counters (``lookup_count``, ``cache_hits``, ``cache_epoch``)
and, of course, speed.  Every test here drives a mutation the fast lane
must survive (rebind, free, lower-half swap, cross-impl restart) and
asserts translations behave exactly as an uncached table would.
"""

import pickle

import pytest

from repro import JobConfig, Launcher
from repro.mana.virtid import VirtualIdTable
from repro.mpi.api import HandleKind
from repro.util.errors import InvalidHandleError
from tests.miniapps import RingApp

NRANKS = 4


def _table(handle_bits=32):
    t = VirtualIdTable(handle_bits=handle_bits)
    vh = t.attach(HandleKind.REQUEST, object(), phys=111)
    return t, vh


class TestHitAccounting:
    def test_first_phys_misses_then_hits(self):
        t, vh = _table()
        assert t.phys(vh, HandleKind.REQUEST) == 111
        assert t.cache_hits == 0          # cold: went down the slow path
        before = t.lookup_count
        assert t.phys(vh, HandleKind.REQUEST) == 111
        assert t.cache_hits == 1          # warm: fast lane
        assert t.lookup_count == before + 1   # accounting never skipped

    def test_lookup_hit_counts(self):
        t, vh = _table()
        e1 = t.lookup(vh)
        e2 = t.lookup(vh)
        assert e1 is e2
        assert t.cache_hits == 1
        assert t.lookup_count == 2

    def test_kind_dispatch_is_per_kind(self):
        """A hit under kind=None must not satisfy a kinded probe (and
        vice versa): the kind check is part of correctness."""
        t, vh = _table()
        assert t.phys(vh) == 111                      # fills kind=None
        assert t.phys(vh, HandleKind.REQUEST) == 111  # separate fill
        assert t.cache_hits == 0
        with pytest.raises(InvalidHandleError, match="is a request"):
            t.phys(vh, HandleKind.COMM)

    def test_both_embedding_widths_cached(self):
        t, vh = _table(handle_bits=64)
        assert vh >= (1 << 32)
        t.phys(vh, HandleKind.REQUEST)
        t.phys(vh, HandleKind.REQUEST)
        assert t.cache_hits == 1


class TestInvalidation:
    def test_set_phys_never_serves_stale(self):
        t, vh = _table()
        assert t.phys(vh) == 111
        assert t.phys(vh) == 111  # cached
        t.set_phys(vh, 222)
        assert t.phys(vh) == 222
        t.set_phys(vh, None)
        with pytest.raises(InvalidHandleError, match="no physical binding"):
            t.phys(vh)

    def test_set_phys_invalidates_kinded_caches_too(self):
        t, vh = _table()
        t.phys(vh, HandleKind.REQUEST)
        t.phys(vh, HandleKind.REQUEST)
        t.set_phys(vh, 333)
        assert t.phys(vh, HandleKind.REQUEST) == 333

    def test_remove_evicts(self):
        t, vh = _table()
        t.phys(vh)
        t.lookup(vh)
        t.remove(vh)
        with pytest.raises(InvalidHandleError, match="unknown virtual id"):
            t.phys(vh)
        with pytest.raises(InvalidHandleError, match="unknown virtual id"):
            t.lookup(vh)

    def test_free_recreate_churn(self):
        """comm_free / comm-create churn: a recycled index must never
        resurrect the old physical id from the cache."""
        from repro.mana.records import CommRecord

        t = VirtualIdTable(handle_bits=32)
        seen = set()
        for round_ in range(50):
            rec = CommRecord(world_ranks=(0, 1), ggid=None, dup_seq=round_)
            vh = t.attach(HandleKind.COMM, rec, phys=10_000 + round_)
            assert t.phys(vh, HandleKind.COMM) == 10_000 + round_
            assert t.phys(vh, HandleKind.COMM) == 10_000 + round_
            seen.add(vh)
            t.remove(vh)
            with pytest.raises(InvalidHandleError):
                t.phys(vh, HandleKind.COMM)
        assert t.cache_hits >= 50  # the warm probes really were cached

    def test_handle_bits_change_is_a_full_fence(self):
        """Swapping the lower half (bootstrap/relaunch/cross-impl
        restart) reassigns the handle width — everything cached dies."""
        t, vh = _table()
        t.phys(vh)
        epoch = t.cache_epoch
        t.handle_bits = 64
        assert t.cache_epoch == epoch + 1
        assert t._fast == {}
        assert all(not c for c in t._physcache.values())
        assert t.phys(vh) == 111  # slow path still translates 32-bit vh

    def test_rebuild_reverse_fences(self):
        t, vh = _table()
        t.phys(vh)
        epoch = t.cache_epoch
        t.rebuild_reverse()
        assert t.cache_epoch == epoch + 1
        assert t.phys(vh) == 111

    def test_cache_never_pickled(self):
        t, vh = _table()
        t.phys(vh)
        t.lookup(vh)
        t2 = pickle.loads(pickle.dumps(t))
        assert t2._fast == {}
        assert all(not c for c in t2._physcache.values())
        # Physical ids died with the lower half, as always.
        with pytest.raises(InvalidHandleError, match="no physical binding"):
            t2.phys(vh)


class TestEntriesOrder:
    def test_insertion_order_is_creation_order(self):
        t = VirtualIdTable(handle_bits=32)
        vhs = [t.attach(HandleKind.REQUEST, object(), phys=i)
               for i in range(8)]
        t.remove(vhs[3])
        seqs = [e.creation_seq for e in t.entries()]
        assert seqs == sorted(seqs)

    def test_order_restored_after_pickle(self):
        t = VirtualIdTable(handle_bits=32)
        for i in range(8):
            t.attach(HandleKind.REQUEST, object(), phys=i)
        t2 = pickle.loads(pickle.dumps(t))
        seqs = [e.creation_seq for e in t2.entries()]
        assert seqs == sorted(seqs)


class TestCrossImplRestartInvalidation:
    def test_32_to_64_restart_reprimes_cache(self, tmp_path):
        """Checkpoint under MPICH (32-bit handles), restart under Open
        MPI (64-bit pointers): the restarted tables must have fenced the
        fast lane (fresh epoch, empty caches) and then re-prime it with
        the *new* lower half's physical ids."""
        ckdir = str(tmp_path / "ck")
        cfg = JobConfig(nranks=NRANKS, impl="mpich", mana=True,
                        ckpt_dir=ckdir)
        job = Launcher(cfg).launch(lambda r: RingApp(24))
        tk = job.checkpoint_at_iteration("main", 8, kind="loop",
                                         mode="exit")
        job.start()
        tk.wait(120)
        assert job.wait(120).status == "preempted"

        job2 = Launcher(cfg).restart(ckdir, impl_override="openmpi")
        res2 = job2.run(timeout=120)
        assert res2.status == "completed", res2.first_error()
        for mana in job2.manas:
            vids = mana.vids
            # Replay and the width switch fenced the cache at least once.
            assert vids.cache_epoch >= 1
            # The run after restart translated through the fast lane.
            assert vids.cache_hits > 0
            assert vids.lookup_count >= vids.cache_hits
            # Whatever is cached now agrees with the entries table.
            for vh, entry in vids._fast.items():
                assert vids.extract(vh) == entry.vid
                assert vids._entries[entry.vid] is entry
