"""Group set-algebra and ggid tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import constants as C
from repro.mpi.group import EMPTY_GROUP, GroupData, ggid_of
from repro.util.errors import MpiError


class TestBasics:
    def test_size_and_ranks(self):
        g = GroupData((4, 2, 7))
        assert g.size == 3
        assert g.world_rank(0) == 4
        assert g.rank_of(7) == 2
        assert g.rank_of(99) == C.UNDEFINED

    def test_duplicates_rejected(self):
        with pytest.raises(MpiError):
            GroupData((1, 1))

    def test_negative_rejected(self):
        with pytest.raises(MpiError):
            GroupData((0, -3))

    def test_world_rank_out_of_range(self):
        g = GroupData((0, 1))
        with pytest.raises(MpiError):
            g.world_rank(2)

    def test_empty_group(self):
        assert EMPTY_GROUP.size == 0
        assert EMPTY_GROUP.rank_of(0) == C.UNDEFINED


class TestConstructiveOps:
    def setup_method(self):
        self.g = GroupData((10, 20, 30, 40))

    def test_incl_reorders(self):
        assert self.g.incl([3, 0]).ranks == (40, 10)

    def test_excl_preserves_order(self):
        assert self.g.excl([1]).ranks == (10, 30, 40)

    def test_union_order(self):
        other = GroupData((30, 50))
        assert self.g.union(other).ranks == (10, 20, 30, 40, 50)

    def test_intersection_keeps_first_order(self):
        other = GroupData((40, 20))
        assert self.g.intersection(other).ranks == (20, 40)

    def test_difference(self):
        other = GroupData((20, 99))
        assert self.g.difference(other).ranks == (10, 30, 40)

    def test_translate_ranks(self):
        a = GroupData((5, 6, 7))
        b = GroupData((7, 5))
        assert a.translate_ranks([0, 1, 2], b) == [1, C.UNDEFINED, 0]

    def test_translate_proc_null_passthrough(self):
        a = GroupData((5,))
        b = GroupData((5,))
        assert a.translate_ranks([C.PROC_NULL, 0], b) == [C.PROC_NULL, 0]

    def test_compare(self):
        a = GroupData((1, 2, 3))
        assert a.compare(GroupData((1, 2, 3))) == C.IDENT
        assert a.compare(GroupData((3, 2, 1))) == C.SIMILAR
        assert a.compare(GroupData((1, 2))) == C.UNEQUAL


class TestGgid:
    def test_deterministic(self):
        assert ggid_of((0, 5, 9)) == ggid_of((0, 5, 9))

    def test_order_invariant(self):
        # ggid identifies membership, not ordering: every member rank
        # must compute the same ggid regardless of local ordering.
        assert ggid_of((9, 0, 5)) == ggid_of((0, 5, 9))

    def test_fits_29_bits(self):
        assert 0 <= ggid_of(tuple(range(500))) < (1 << 29)

    def test_distinct_memberships_distinct_ggids(self):
        seen = {ggid_of((i, i + 1)) for i in range(200)}
        assert len(seen) == 200  # no collisions in a small neighborhood

    def test_subset_differs(self):
        assert ggid_of((0, 1, 2)) != ggid_of((0, 1))


@given(st.sets(st.integers(0, 63), min_size=1, max_size=16))
@settings(max_examples=80, deadline=None)
def test_property_group_laws(ranks):
    ranks = tuple(sorted(ranks))
    g = GroupData(ranks)
    # union with itself is identity
    assert g.union(g).ranks == g.ranks
    # intersection with itself is identity
    assert g.intersection(g).ranks == g.ranks
    # difference with itself is empty
    assert g.difference(g).size == 0
    # incl of all indices reproduces the group
    assert g.incl(list(range(g.size))).ranks == g.ranks
    # excl of nothing reproduces the group
    assert g.excl([]).ranks == g.ranks


@given(
    st.sets(st.integers(0, 63), min_size=1, max_size=12),
    st.sets(st.integers(0, 63), min_size=1, max_size=12),
)
@settings(max_examples=80, deadline=None)
def test_property_translate_consistency(a_ranks, b_ranks):
    a = GroupData(tuple(sorted(a_ranks)))
    b = GroupData(tuple(sorted(b_ranks)))
    trans = a.translate_ranks(list(range(a.size)), b)
    for i, t in enumerate(trans):
        if t == C.UNDEFINED:
            assert a.world_rank(i) not in b.ranks
        else:
            assert b.world_rank(t) == a.world_rank(i)
