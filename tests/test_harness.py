"""Harness-layer tests: case runner, cache, renderers."""

import pytest

from repro.harness.report import (
    fmt_bytes,
    fmt_pct,
    render_bar_figure,
    render_table,
)
from repro.harness.runner import CaseCache, run_case, scaled_spec
from repro.util.errors import IncompatibleHandleError, ReproError


class TestRenderers:
    def test_table_alignment(self):
        text = render_table(
            "T", ("a", "long header"), [("x", 1), ("yy", 22)], note="n"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "long header" in lines[2]
        assert lines[-1] == "n"
        # all data rows equal width
        widths = {len(l) for l in lines[2:6]}
        assert len(widths) <= 2  # header + rows share column layout

    def test_table_empty_rows(self):
        text = render_table("T", ("a",), [])
        assert "a" in text

    def test_bar_figure_normalization(self):
        text = render_bar_figure(
            "F", ["g"], ["base", "double"],
            {"g": {"base": 10.0, "double": 20.0}},
            normalize_to="base",
        )
        assert "(1.00x)" in text and "(2.00x)" in text

    def test_bar_figure_none_is_na(self):
        text = render_bar_figure(
            "F", ["g"], ["works", "broken"],
            {"g": {"works": 5.0, "broken": None}},
        )
        assert "n/a" in text

    def test_fmt_helpers(self):
        assert fmt_pct(0.325) == "+32.5%"
        assert fmt_pct(None) == "n/a"
        assert fmt_pct(float("nan")) == "n/a"
        assert fmt_bytes(512) == "512B"
        assert fmt_bytes(42 * 1024 * 1024) == "42.0MB"


class TestScaledSpec:
    def test_blocks_scaled(self):
        full = scaled_spec("lammps", "discovery", 1.0, None)
        small = scaled_spec("lammps", "discovery", 0.1, None)
        assert small.blocks == max(4, round(full.blocks * 0.1))
        assert small.steps_per_block == full.steps_per_block  # K untouched

    def test_ranks_capped(self):
        spec = scaled_spec("lammps", "discovery", 1.0, 8)
        assert spec.nranks == 8

    def test_ranks_not_raised_by_cap(self):
        spec = scaled_spec("comd", "discovery", 1.0, 1000)
        assert spec.nranks == 27

    def test_minimum_blocks(self):
        spec = scaled_spec("comd", "discovery", 0.0001, 4)
        assert spec.blocks >= 4


class TestRunCase:
    def test_basic_case_result(self):
        r = run_case("lulesh", "mpich", False, scale=0.05, ranks_cap=4)
        assert r.status == "completed"
        assert r.runtime > 0
        assert r.total_cs == 0          # native
        assert r.label == "native/mpich"

    def test_mana_case_counts_crossings(self):
        r = run_case("lulesh", "mpich", True, scale=0.05, ranks_cap=4)
        assert r.total_cs > 0
        assert r.label == "mana+vid/mpich"
        assert run_case(
            "lulesh", "mpich", True, "legacy", scale=0.05, ranks_cap=4
        ).label == "mana/mpich"

    def test_overhead_vs(self):
        nat = run_case("lulesh", "mpich", False, scale=0.05, ranks_cap=4)
        man = run_case("lulesh", "mpich", True, scale=0.05, ranks_cap=4)
        assert man.overhead_vs(nat) > 0

    def test_legacy_on_openmpi_raises_typed_error(self):
        with pytest.raises(IncompatibleHandleError):
            run_case("lulesh", "openmpi", True, "legacy",
                     scale=0.05, ranks_cap=4)

    def test_unknown_app(self):
        with pytest.raises(KeyError):
            run_case("nope", "mpich", False)


class TestCaseCache:
    def test_memoizes(self):
        cache = CaseCache()
        kw = dict(app_name="lulesh", impl="mpich", mana=False,
                  vid_design="new", platform="discovery", scale=0.05,
                  ranks_cap=4)
        a = cache.get(**kw)
        b = cache.get(**kw)
        assert a is b

    def test_distinct_keys(self):
        cache = CaseCache()
        kw = dict(app_name="lulesh", impl="mpich", vid_design="new",
                  platform="discovery", scale=0.05, ranks_cap=4)
        a = cache.get(mana=False, **kw)
        b = cache.get(mana=True, **kw)
        assert a is not b
