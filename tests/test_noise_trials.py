"""OS-noise model and multi-trial methodology (paper figure error bars)."""

import pytest

from repro import JobConfig, Launcher, MpiApplication
from repro.harness.runner import run_case


class NoisyCompute(MpiApplication):
    def __init__(self, std=0.1):
        self.std = std

    def run(self, ctx):
        ctx.set_compute_noise(self.std)
        for _ in ctx.loop("main", 20):
            ctx.compute(0.1)


class TestNoiseModel:
    def test_noise_reproducible_per_seed(self):
        a = Launcher(JobConfig(nranks=2, impl="mpich", seed=1)).run(
            lambda r: NoisyCompute(), timeout=60
        )
        b = Launcher(JobConfig(nranks=2, impl="mpich", seed=1)).run(
            lambda r: NoisyCompute(), timeout=60
        )
        assert a.runtime == b.runtime

    def test_different_seeds_differ(self):
        a = Launcher(JobConfig(nranks=2, impl="mpich", seed=1)).run(
            lambda r: NoisyCompute(), timeout=60
        )
        b = Launcher(JobConfig(nranks=2, impl="mpich", seed=2)).run(
            lambda r: NoisyCompute(), timeout=60
        )
        assert a.runtime != b.runtime

    def test_zero_noise_is_exact(self):
        res = Launcher(JobConfig(nranks=1, impl="mpich", seed=1)).run(
            lambda r: NoisyCompute(std=0.0), timeout=60
        )
        # exactly 20 x 0.1 s of compute, plus microseconds of library cost
        assert res.runtime == pytest.approx(2.0, rel=1e-4)

    def test_noise_magnitude_reasonable(self):
        res = Launcher(JobConfig(nranks=1, impl="mpich", seed=3)).run(
            lambda r: NoisyCompute(std=0.1), timeout=60
        )
        assert res.runtime == pytest.approx(2.0, rel=0.25)

    def test_negative_std_rejected(self):
        res = Launcher(JobConfig(nranks=1, impl="mpich")).run(
            lambda r: NoisyCompute(std=-1), timeout=60
        )
        assert res.status == "failed"

    def test_noise_survives_cold_restart_deterministically(self, tmp_path):
        """Post-restart noise draws continue the same sequence (the
        compute-call counter rides in the loop-token dict)."""
        base = Launcher(
            JobConfig(nranks=2, impl="mpich", mana=True, seed=5)
        ).run(lambda r: NoisyCompute(), timeout=60)

        ckdir = str(tmp_path / "ck")
        cfg = JobConfig(nranks=2, impl="mpich", mana=True, seed=5,
                        ckpt_dir=ckdir, loop_lag_window=2)
        job = Launcher(cfg).launch(lambda r: NoisyCompute())
        tk = job.checkpoint_at_iteration("main", 5, kind="loop", mode="exit")
        job.start()
        info = tk.wait(60)
        assert job.wait(60).status == "preempted"
        res2 = Launcher(cfg).restart(ckdir).run(timeout=60)
        assert res2.status == "completed", res2.first_error()
        # compute-time portion must match the uninterrupted run exactly
        base_compute = base.ranks[0].accounts["compute"]
        got_compute = res2.ranks[0].accounts["compute"]
        assert got_compute == pytest.approx(base_compute, rel=1e-12)


class TestTrials:
    def test_median_and_std_reported(self):
        r = run_case("hpcg", "mpich", False, scale=0.1, ranks_cap=4,
                     trials=5)
        assert r.trials == 5
        assert r.runtime_std > 0  # hpcg has the paper's high variance

    def test_hpcg_noisier_than_lammps(self):
        """§6.1: HPCG/LULESH show much more native timing variation."""
        hpcg = run_case("hpcg", "mpich", False, scale=0.1, ranks_cap=4,
                        trials=5)
        lammps = run_case("lammps", "mpich", False, scale=0.1, ranks_cap=4,
                          trials=5)
        assert (hpcg.runtime_std / hpcg.runtime
                > 2 * lammps.runtime_std / lammps.runtime)

    def test_single_trial_zero_std(self):
        r = run_case("lulesh", "mpich", False, scale=0.05, ranks_cap=4)
        assert r.trials == 1 and r.runtime_std == 0.0
