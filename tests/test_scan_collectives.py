"""Scan / Exscan / Reduce_scatter_block semantics across implementations."""

import numpy as np
import pytest

from repro.util.errors import UnsupportedFunctionError
from tests.conftest import facade_world, run_ranks


class TestScan:
    @pytest.mark.parametrize("nranks", [1, 2, 5])
    def test_inclusive_prefix_sum(self, impl_name, nranks):
        if impl_name == "exampi":
            pass  # scan IS in ExaMPI's subset; exscan is not
        _, mpi_for = facade_world(nranks, impl_name)

        def body(r):
            MPI = mpi_for(r)
            out = np.zeros(1)
            MPI.scan(np.array([float(r + 1)]), out, 1, MPI.DOUBLE, MPI.SUM,
                     MPI.COMM_WORLD)
            return float(out[0])

        out = run_ranks(nranks, body)
        assert out == [sum(range(1, r + 2)) for r in range(nranks)]

    def test_scan_max(self, impl_name):
        _, mpi_for = facade_world(4, impl_name)

        def body(r):
            MPI = mpi_for(r)
            vals = [3.0, 1.0, 7.0, 2.0]
            out = np.zeros(1)
            MPI.scan(np.array([vals[r]]), out, 1, MPI.DOUBLE, MPI.MAX,
                     MPI.COMM_WORLD)
            return float(out[0])

        assert run_ranks(4, body) == [3.0, 3.0, 7.0, 7.0]

    def test_exscan(self):
        _, mpi_for = facade_world(4, "mpich")

        def body(r):
            MPI = mpi_for(r)
            out = np.full(1, -99.0)
            MPI.exscan(np.array([float(r + 1)]), out, 1, MPI.DOUBLE,
                       MPI.SUM, MPI.COMM_WORLD)
            return float(out[0])

        out = run_ranks(4, body)
        assert out[0] == -99.0  # undefined on rank 0: untouched
        assert out[1:] == [1.0, 3.0, 6.0]

    def test_exscan_unsupported_on_exampi(self):
        _, mpi_for = facade_world(2, "exampi")

        def body(r):
            MPI = mpi_for(r)
            with pytest.raises(UnsupportedFunctionError):
                MPI.exscan(np.zeros(1), np.zeros(1), 1, MPI.DOUBLE,
                           MPI.SUM, MPI.COMM_WORLD)
            return True

        assert all(run_ranks(2, body))


class TestReduceScatterBlock:
    def test_blocks_delivered_per_rank(self):
        _, mpi_for = facade_world(3, "mpich")

        def body(r):
            MPI = mpi_for(r)
            send = np.arange(6, dtype=np.float64) * (r + 1)
            recv = np.zeros(2)
            MPI.reduce_scatter_block(send, recv, 2, MPI.DOUBLE, MPI.SUM,
                                     MPI.COMM_WORLD)
            return recv.tolist()

        out = run_ranks(3, body)
        # elementwise sum of k*[0..5] for k=1..3 is 6*[0..5]
        total = (np.arange(6) * 6.0)
        for r in range(3):
            assert out[r] == total[2 * r : 2 * r + 2].tolist()


from repro import JobConfig, Launcher, MpiApplication


class ScanApp(MpiApplication):
    def __init__(self):
        self.history = []

    def run(self, ctx):
        MPI = ctx.MPI
        for it in ctx.loop("main", 12):
            out = np.zeros(1)
            MPI.scan(np.array([float(ctx.rank + it)]), out, 1,
                     MPI.DOUBLE, MPI.SUM, MPI.COMM_WORLD)
            self.history.append(float(out[0]))


class TestUnderMana:
    def test_scan_through_wrappers_and_checkpoint(self):
        base = Launcher(JobConfig(nranks=4, impl="mpich", mana=True)).run(
            lambda r: ScanApp(), timeout=60
        )
        assert base.status == "completed", base.first_error()
        job = Launcher(JobConfig(nranks=4, impl="mpich", mana=True)).launch(
            lambda r: ScanApp()
        )
        tk = job.checkpoint_at_iteration("main", 5, mode="relaunch")
        job.start()
        tk.wait(60)
        res = job.wait(60)
        assert res.status == "completed", res.first_error()
        assert [a.history for a in res.apps()] == [
            a.history for a in base.apps()
        ]
