"""MPI_Pack/Unpack/Pack_size and Waitany/Testany semantics."""

import numpy as np
import pytest

from repro import JobConfig, Launcher, MpiApplication
from repro.util.errors import MpiError
from tests.conftest import facade_world, run_ranks


class TestPackUnpack:
    def test_roundtrip_basic(self, impl_name):
        _, mpi_for = facade_world(1, impl_name)
        MPI = mpi_for(0)
        src = np.arange(5, dtype=np.float64)
        buf = np.zeros(64, dtype=np.uint8)
        pos = MPI.pack(src, 5, MPI.DOUBLE, buf, 0)
        assert pos == 40
        dst = np.zeros(5)
        end = MPI.unpack(buf, 0, dst, 5, MPI.DOUBLE)
        assert end == 40
        assert np.array_equal(src, dst)

    def test_heterogeneous_pack(self, impl_name):
        """The classic use: pack an int header + double payload into one
        message buffer."""
        _, mpi_for = facade_world(1, impl_name)
        MPI = mpi_for(0)
        need = MPI.pack_size(1, MPI.INT) + MPI.pack_size(3, MPI.DOUBLE)
        buf = np.zeros(need, dtype=np.uint8)
        pos = MPI.pack(np.array([7], dtype=np.int32), 1, MPI.INT, buf, 0)
        pos = MPI.pack(np.array([1.0, 2.0, 3.0]), 3, MPI.DOUBLE, buf, pos)
        assert pos == need
        header = np.zeros(1, dtype=np.int32)
        body = np.zeros(3)
        pos = MPI.unpack(buf, 0, header, 1, MPI.INT)
        MPI.unpack(buf, pos, body, 3, MPI.DOUBLE)
        assert header[0] == 7 and body.tolist() == [1.0, 2.0, 3.0]

    def test_pack_with_derived_type(self, impl_name):
        _, mpi_for = facade_world(1, impl_name)
        MPI = mpi_for(0)
        vt = MPI.type_vector(3, 1, 2, MPI.DOUBLE)
        MPI.type_commit(vt)
        src = np.arange(6, dtype=np.float64)
        buf = np.zeros(MPI.pack_size(1, vt), dtype=np.uint8)
        MPI.pack(src, 1, vt, buf, 0)
        assert np.frombuffer(buf.tobytes(), np.float64).tolist() == [0.0, 2.0, 4.0]

    def test_pack_overflow_rejected(self, impl_name):
        _, mpi_for = facade_world(1, impl_name)
        MPI = mpi_for(0)
        with pytest.raises(MpiError, match="too small"):
            MPI.pack(np.zeros(8), 8, MPI.DOUBLE, np.zeros(8, np.uint8), 0)

    def test_packed_bytes_sendable(self, impl_name):
        _, mpi_for = facade_world(2, impl_name)

        def body(r):
            MPI = mpi_for(r)
            w = MPI.COMM_WORLD
            if r == 0:
                buf = np.zeros(12, dtype=np.uint8)
                MPI.pack(np.array([5], dtype=np.int32), 1, MPI.INT, buf, 0)
                MPI.pack(np.array([2.5], dtype=np.float32), 1, MPI.FLOAT, buf, 4)
                MPI.send(buf, 12, MPI.BYTE, 1, 44, w)
                return None
            buf = np.zeros(12, dtype=np.uint8)
            MPI.recv(buf, 12, MPI.BYTE, 0, 44, w)
            h = np.zeros(1, dtype=np.int32)
            v = np.zeros(1, dtype=np.float32)
            pos = MPI.unpack(buf, 0, h, 1, MPI.INT)
            MPI.unpack(buf, pos, v, 1, MPI.FLOAT)
            return int(h[0]), float(v[0])

        assert run_ranks(2, body)[1] == (5, 2.5)


class TestWaitanyTestany:
    def test_waitany_returns_first_complete(self, impl_name):
        _, mpi_for = facade_world(2, impl_name)

        def body(r):
            MPI = mpi_for(r)
            w = MPI.COMM_WORLD
            if r == 1:
                MPI.send(np.array([9.0]), 1, MPI.DOUBLE, 0, 2, w)
                return None
            bufs = [np.zeros(1) for _ in range(3)]
            reqs = [
                MPI.irecv(bufs[i], 1, MPI.DOUBLE, 1, i + 1, w)
                for i in range(3)
            ]
            idx, st = MPI.waitany(reqs)
            # only tag 2 (index 1) ever gets a message
            return idx, float(bufs[idx][0])

        assert run_ranks(2, body)[0] == (1, 9.0)

    def test_testany_no_completion(self, impl_name):
        _, mpi_for = facade_world(2, impl_name)

        def body(r):
            MPI = mpi_for(r)
            if r == 1:
                return None
            w = MPI.COMM_WORLD
            req = MPI.irecv(np.zeros(1), 1, MPI.DOUBLE, 1, 3, w)
            flag, idx, _ = MPI.testany([req])
            return flag, idx

        flag, idx = run_ranks(2, body)[0]
        assert not flag and idx == -32766  # MPI_UNDEFINED


class WaitanyApp(MpiApplication):
    """Uses waitany in a master/worker pattern across a checkpoint."""

    def __init__(self):
        self.collected = []

    def run(self, ctx):
        MPI = ctx.MPI
        w = MPI.COMM_WORLD
        for it in ctx.loop("main", 12):
            if ctx.rank == 0:
                bufs = [np.zeros(1) for _ in range(ctx.nranks - 1)]
                reqs = [
                    MPI.irecv(bufs[i], 1, MPI.DOUBLE, i + 1, 50, w)
                    for i in range(ctx.nranks - 1)
                ]
                remaining = list(range(len(reqs)))
                while remaining:
                    idx, st = MPI.waitany([reqs[i] for i in remaining])
                    self.collected.append(float(bufs[remaining[idx]][0]))
                    remaining.pop(idx)
            else:
                MPI.send(np.array([float(ctx.rank * 100 + it)]), 1,
                         MPI.DOUBLE, 0, 50, w)
            MPI.barrier(w)


def test_waitany_across_checkpoint():
    base = Launcher(JobConfig(nranks=4, impl="mpich", mana=True)).run(
        lambda r: WaitanyApp(), timeout=60
    )
    assert base.status == "completed", base.first_error()
    job = Launcher(JobConfig(nranks=4, impl="mpich", mana=True)).launch(
        lambda r: WaitanyApp()
    )
    tk = job.checkpoint_at_iteration("main", 5, mode="relaunch")
    job.start()
    tk.wait(60)
    res = job.wait(60)
    assert res.status == "completed", res.first_error()
    assert sorted(res.apps()[0].collected) == sorted(base.apps()[0].collected)
