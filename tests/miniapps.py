"""Small applications used by the integration tests."""

from __future__ import annotations

import numpy as np

from repro.runtime import MpiApplication
from repro.util.registry import user_op


@user_op("mini-weighted-sum")
def weighted_sum(invec, inoutvec):
    inoutvec += 2.0 * invec  # deliberately not plain SUM


class RingApp(MpiApplication):
    """Send/recv ring + allreduce per iteration; uses a sub-communicator,
    a committed vector type, and a user op — one of everything MANA must
    virtualize."""

    name = "ring"

    def __init__(self, niters: int = 40, compute: float = 0.001):
        self.niters = niters
        self.compute = compute
        self.acc = np.zeros(1)
        self.trace = []

    def setup(self, ctx):
        MPI = ctx.MPI
        self.sub = MPI.comm_split(MPI.COMM_WORLD, ctx.rank % 2, ctx.rank)
        self.vt = MPI.type_vector(2, 1, 2, MPI.DOUBLE)
        MPI.type_commit(self.vt)
        self.wsum = MPI.op_create(weighted_sum, True)

    def run(self, ctx):
        MPI = ctx.MPI
        w = MPI.COMM_WORLD
        size, rank = ctx.nranks, ctx.rank
        for it in ctx.loop("main", self.niters):
            ctx.compute(self.compute)
            sb = np.array([float(rank + it)])
            MPI.send(sb, 1, MPI.DOUBLE, (rank + 1) % size, 5, w)
            rb = np.zeros(1)
            MPI.recv(rb, 1, MPI.DOUBLE, (rank - 1) % size, 5, w)
            out = np.zeros(1)
            MPI.allreduce(rb, out, 1, MPI.DOUBLE, MPI.SUM, w)
            self.acc[0] += out[0]
            sout = np.zeros(1)
            MPI.allreduce(sb, sout, 1, MPI.DOUBLE, self.wsum, self.sub)
            self.acc[0] += sout[0]
            if it % 4 == 0:
                # exercise the committed derived type
                src = np.arange(4, dtype=np.float64) + it
                dst = np.zeros(4)
                MPI.sendrecv(src, 1, self.vt, (rank + 1) % size, 6,
                             dst, 1, self.vt, (rank - 1) % size, 6, w)
                self.acc[0] += dst[2]
            self.trace.append(float(self.acc[0]))


class SkewedSendersApp(MpiApplication):
    """Rank 0 sends eagerly and runs ahead; receivers lag — guarantees
    user messages are in flight whenever a checkpoint fires."""

    name = "skewed"

    def __init__(self, niters: int = 30, burst: int = 3):
        self.niters = niters
        self.burst = burst
        self.received = []

    def run(self, ctx):
        MPI = ctx.MPI
        w = MPI.COMM_WORLD
        for it in ctx.loop("main", self.niters):
            if ctx.rank == 0:
                for b in range(self.burst):
                    for dst in range(1, ctx.nranks):
                        MPI.send(
                            np.array([it * 100.0 + b]), 1, MPI.DOUBLE,
                            dst, 20, w,
                        )
            else:
                # Lag: consume only one message per iteration; the rest
                # pile up in the network.
                ctx.compute(0.001)
                if it >= 1:
                    buf = np.zeros(1)
                    MPI.recv(buf, 1, MPI.DOUBLE, 0, 20, w)
                    self.received.append(float(buf[0]))
        # drain the backlog at the end
        if ctx.rank != 0:
            remaining = self.niters * self.burst - len(self.received)
            for _ in range(remaining):
                buf = np.zeros(1)
                MPI.recv(buf, 1, MPI.DOUBLE, 0, 20, w)
                self.received.append(float(buf[0]))

    def validate(self, ctx):
        if self.received and self.received != sorted(self.received):
            return "message order violated (non-overtaking broken)"
        return None


class PendingIrecvApp(MpiApplication):
    """Posts receives for messages that are sent much later: pending
    nonblocking requests must survive checkpoint/restart."""

    name = "pending-irecv"

    def __init__(self, niters: int = 24):
        self.niters = niters
        self.early = np.zeros(2)
        self.got_early = False

    def run(self, ctx):
        MPI = ctx.MPI
        w = MPI.COMM_WORLD
        peer = (ctx.rank + 1) % ctx.nranks
        prev = (ctx.rank - 1) % ctx.nranks
        req = MPI.irecv(self.early, 2, MPI.DOUBLE, prev, 77, w)
        for it in ctx.loop("main", self.niters):
            ctx.compute(0.001)
            MPI.barrier(w)
            if it == self.niters - 3:
                # only now does the matching send happen
                MPI.send(np.array([1.5, 2.5]), 2, MPI.DOUBLE, peer, 77, w)
        st = MPI.wait(req)
        self.got_early = bool(st.count_bytes == 16)

    def validate(self, ctx):
        if not self.got_early:
            return "pending irecv never completed"
        if self.early.tolist() != [1.5, 2.5]:
            return f"pending irecv corrupted: {self.early}"
        return None


class CommChurnApp(MpiApplication):
    """Creates and frees communicators every iteration (§9's motivating
    pattern for the lazy ggid policy)."""

    name = "churn"

    def __init__(self, niters: int = 20):
        self.niters = niters
        self.sum_of_sizes = 0

    def run(self, ctx):
        MPI = ctx.MPI
        for it in ctx.loop("main", self.niters):
            sub = MPI.comm_split(MPI.COMM_WORLD, it % 2 == ctx.rank % 2, ctx.rank)
            self.sum_of_sizes += MPI.comm_size(sub)
            MPI.barrier(sub)
            MPI.comm_free(sub)
