"""Paper-scale rank counts: 27- and 56-rank jobs, with checkpoints.

Everything else in the suite runs at 2-8 ranks for speed; these tests
exercise the thread scaling, the 3x3x3 / 56-rank decompositions of
Table 1, and a full drain/replay at those sizes.
"""

from dataclasses import replace

import pytest

from repro import JobConfig, Launcher
from repro.apps import CoMDProxy, LammpsLJProxy
from repro.mana.constants import all_constant_names, constant_kind


def test_comd_27_ranks_native_and_mana():
    spec = replace(CoMDProxy.paper_config(), blocks=3)  # 27 ranks
    assert spec.nranks == 27
    nat = Launcher(JobConfig(nranks=27, impl="mpich")).run(
        lambda r: CoMDProxy(spec), timeout=240
    )
    assert nat.status == "completed", nat.first_error()
    man = Launcher(JobConfig(nranks=27, impl="mpich", mana=True)).run(
        lambda r: CoMDProxy(spec), timeout=240
    )
    assert man.status == "completed", man.first_error()
    assert [a.checksum for a in man.apps()] == [
        a.checksum for a in nat.apps()
    ]


def test_lammps_56_ranks_checkpoint_relaunch():
    spec = replace(LammpsLJProxy.paper_config(), blocks=4)  # 56 ranks
    assert spec.nranks == 56
    base = Launcher(JobConfig(nranks=56, impl="mpich", mana=True)).run(
        lambda r: LammpsLJProxy(spec), timeout=300
    )
    assert base.status == "completed", base.first_error()

    job = Launcher(JobConfig(nranks=56, impl="mpich", mana=True)).launch(
        lambda r: LammpsLJProxy(spec)
    )
    tk = job.checkpoint_at_iteration("main", 2, mode="relaunch")
    job.start()
    info = tk.wait(300)
    res = job.wait(300)
    assert res.status == "completed", res.first_error()
    assert len(info["bytes_per_rank"]) == 56
    assert [a.checksum for a in res.apps()] == [
        a.checksum for a in base.apps()
    ]


def test_constant_kind_covers_all_names():
    for name in all_constant_names():
        assert constant_kind(name) is not None
    assert constant_kind("MPI_BOGUS") is None
