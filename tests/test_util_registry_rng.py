"""Tests for the op registry and the checkpointable RNG."""

import numpy as np
import pytest

from repro.util.registry import FunctionRegistry, OpRegistry, USER_OPS, user_op
from repro.util.rng import DeterministicRng


class TestFunctionRegistry:
    def test_register_and_lookup(self):
        reg = FunctionRegistry("thing")
        fn = lambda: 1  # noqa: E731
        reg.register("one", fn)
        assert reg.lookup("one") is fn

    def test_reregister_same_fn_ok(self):
        reg = FunctionRegistry("thing")
        fn = lambda: 1  # noqa: E731
        reg.register("x", fn)
        reg.register("x", fn)  # idempotent

    def test_reregister_different_fn_rejected(self):
        reg = FunctionRegistry("thing")
        reg.register("x", lambda: 1)
        with pytest.raises(ValueError, match="already has"):
            reg.register("x", lambda: 2)

    def test_replace_flag(self):
        reg = FunctionRegistry("thing")
        reg.register("x", lambda: 1)
        g = lambda: 2  # noqa: E731
        reg.register("x", g, replace=True)
        assert reg.lookup("x") is g

    def test_lookup_missing_is_helpful(self):
        reg = FunctionRegistry("user reduction op")
        with pytest.raises(KeyError, match="registered before restart"):
            reg.lookup("ghost")

    def test_name_of(self):
        reg = FunctionRegistry("thing")
        fn = lambda: 1  # noqa: E731
        reg.register("found", fn)
        assert reg.name_of(fn) == "found"
        assert reg.name_of(lambda: 3) is None

    def test_contains_and_iter(self):
        reg = FunctionRegistry("thing")
        reg.register("b", lambda: 1)
        reg.register("a", lambda: 2)
        assert "a" in reg and "c" not in reg
        assert list(reg) == ["a", "b"]


class TestUserOpDecorator:
    def test_decorator_registers_globally(self):
        @user_op("test-op-registry-decorator")
        def my_red(invec, inoutvec):
            np.add(invec, inoutvec, out=inoutvec)

        assert USER_OPS.lookup("test-op-registry-decorator") is my_red
        assert isinstance(USER_OPS, OpRegistry)


class TestDeterministicRng:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(5, "x")
        b = DeterministicRng(5, "x")
        assert [a.uniform() for _ in range(5)] == [
            b.uniform() for _ in range(5)
        ]

    def test_different_streams_differ(self):
        a = DeterministicRng(5, "x")
        b = DeterministicRng(5, "y")
        assert a.uniform() != b.uniform()

    def test_state_roundtrip_mid_stream(self):
        rng = DeterministicRng(9, "s")
        rng.uniform()
        state = rng.get_state()
        expect = [rng.uniform() for _ in range(4)]
        restored = DeterministicRng.from_state(state)
        assert [restored.uniform() for _ in range(4)] == expect

    def test_state_is_plain_data(self):
        import pickle

        state = DeterministicRng(1, "a").get_state()
        pickle.loads(pickle.dumps(state))  # must be serializable

    def test_array_draws_shapes(self):
        rng = DeterministicRng(3)
        assert rng.array_uniform((4, 3)).shape == (4, 3)
        assert rng.array_normal((7,)).shape == (7,)

    def test_integers_range(self):
        rng = DeterministicRng(3)
        draws = {rng.integers(0, 4) for _ in range(200)}
        assert draws == {0, 1, 2, 3}
