"""Generation pruning racing a restart: pinned generations survive.

``Launcher.restart``/``elastic_restart`` pin the generation they are
reading; a concurrent ``prune_generations`` + chunk GC (the
``ckpt_keep_generations`` janitor of another job sharing the checkpoint
directory) must not delete images or chunks out from under the restore —
even when the restore targets an *older* generation than the prune would
keep (the supervised-fallback case).
"""

from dataclasses import replace

import pytest

from repro import JobConfig, Launcher
from repro.apps.elastic import ElasticHaloApp
from repro.mana.checkpoint import (
    gc_chunks,
    pin_generation,
    pinned_generations,
    prune_generations,
    restorable_generations,
    unpin_generation,
)

SEED = 7


def _two_generations(ckpt_dir: str, nranks: int = 4) -> JobConfig:
    spec = replace(
        ElasticHaloApp.paper_config(), nranks=nranks, seed=SEED, blocks=8,
    )
    cfg = JobConfig(
        nranks=nranks, impl="mpich", mana=True, seed=SEED,
        ckpt_dir=ckpt_dir, loop_lag_window=2, deadline=60.0,
    )
    job = Launcher(cfg).launch(lambda r: ElasticHaloApp(spec))
    job.checkpoint_at_iteration("main", 2, kind="loop")  # gen 1 (iter 4)
    job.checkpoint_at_iteration("main", 4, kind="loop")  # gen 2 (iter 6)
    res = job.run(60.0)
    assert res.status == "completed", res.first_error()
    assert restorable_generations(ckpt_dir) == [1, 2]
    return cfg


def test_prune_skips_pinned_generations(tmp_path):
    ckpt = str(tmp_path / "ckpt")
    _two_generations(ckpt)
    pin_generation(ckpt, 1)
    try:
        prune_generations(ckpt, keep=1)
        gc_chunks(ckpt)
        # keep=1 would have doomed gen 1; the pin protected it.
        assert restorable_generations(ckpt) == [1, 2]
    finally:
        unpin_generation(ckpt, 1)
    prune_generations(ckpt, keep=1)
    gc_chunks(ckpt)
    assert restorable_generations(ckpt) == [2]


def test_pins_are_refcounted(tmp_path):
    ckpt = str(tmp_path / "ckpt")
    _two_generations(ckpt)
    pin_generation(ckpt, 1)
    pin_generation(ckpt, 1)
    unpin_generation(ckpt, 1)
    assert 1 in pinned_generations(ckpt)   # still held once
    prune_generations(ckpt, keep=1)
    assert 1 in restorable_generations(ckpt)
    unpin_generation(ckpt, 1)
    assert 1 not in pinned_generations(ckpt)


@pytest.mark.parametrize("elastic", [False, True])
def test_restore_survives_concurrent_prune(tmp_path, monkeypatch, elastic):
    """A prune+GC fired in the middle of image loading (after the first
    rank's image is read, before the rest) cannot tear the restore: the
    restart pinned its generation first."""
    import repro.runtime.launcher as launcher_mod

    ckpt = str(tmp_path / "ckpt")
    cfg = _two_generations(ckpt)
    real_load = launcher_mod.load_image
    fired = {}

    def racing_load(path, expect_nranks=None):
        if not fired:
            # The restore targets gen 1; an unpinned prune with keep=1
            # would delete it right here.
            fired["prune"] = prune_generations(ckpt, keep=1)
            fired["gc"] = gc_chunks(ckpt)
            assert 1 in pinned_generations(ckpt)
        return real_load(path, expect_nranks=expect_nranks)

    monkeypatch.setattr(launcher_mod, "load_image", racing_load)
    launcher = Launcher(cfg)
    if elastic:
        job = launcher.elastic_restart(ckpt, new_nranks=2, generation=1)
    else:
        job = launcher.restart(ckpt, generation=1)
    assert fired, "racing prune never fired"
    res = job.run(60.0)
    assert res.status == "completed", res.first_error()
    # The pin was released once the images were in memory...
    assert pinned_generations(ckpt) == set()
    # ...and generation 1 survived the mid-restore prune.
    assert 1 in restorable_generations(ckpt)
    # With no restore in flight the same prune now collects it.
    prune_generations(ckpt, keep=1)
    gc_chunks(ckpt)
    assert 1 not in restorable_generations(ckpt)
