"""Every shipped example must run green (they are executable docs)."""

import os
import runpy
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name, argv=None):
    path = os.path.join(EXAMPLES, name)
    old_argv = sys.argv
    sys.argv = [path] + (argv or [])
    try:
        runpy.run_path(path, run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart():
    run_example("quickstart.py")


def test_preemptible_job():
    run_example("preemptible_job.py")


def test_choose_your_mpi():
    run_example("choose_your_mpi.py")


def test_cross_impl_restart():
    run_example("cross_impl_restart.py")


def test_interval_checkpointing():
    run_example("interval_checkpointing.py")


def test_vasp_style_workflow():
    run_example("vasp_style_workflow.py")


def test_reproduce_paper_single_experiment():
    run_example("reproduce_paper.py", ["--only", "table1"])
