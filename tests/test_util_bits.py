"""Unit + property tests for the bit-field packing helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bits import BitField, mask


class TestMask:
    def test_small_masks(self):
        assert mask(0) == 0
        assert mask(1) == 1
        assert mask(4) == 0xF
        assert mask(32) == 0xFFFFFFFF

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            mask(-1)


class TestBitFieldConstruction:
    def test_widths_must_sum(self):
        with pytest.raises(ValueError, match="field widths sum"):
            BitField(32, [("a", 4), ("b", 4)])

    def test_zero_width_field_rejected(self):
        with pytest.raises(ValueError):
            BitField(8, [("a", 8), ("b", 0)])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            BitField(8, [("a", 4), ("a", 4)])

    def test_field_names_in_order(self):
        bf = BitField(16, [("hi", 8), ("lo", 8)])
        assert bf.field_names == ("hi", "lo")

    def test_capacity(self):
        bf = BitField(32, [("kind", 3), ("index", 29)])
        assert bf.capacity("kind") == 8
        assert bf.capacity("index") == 1 << 29


class TestPackUnpack:
    def setup_method(self):
        self.bf = BitField(32, [("category", 2), ("kind", 4), ("payload", 26)])

    def test_roundtrip(self):
        w = self.bf.pack(category=2, kind=5, payload=12345)
        assert self.bf.unpack(w) == {
            "category": 2, "kind": 5, "payload": 12345,
        }

    def test_msb_first_layout(self):
        w = self.bf.pack(category=1, kind=0, payload=0)
        assert w == 1 << 30

    def test_extract_single_field(self):
        w = self.bf.pack(category=2, kind=3, payload=99)
        assert self.bf.extract(w, "kind") == 3
        assert self.bf.extract(w, "payload") == 99

    def test_replace(self):
        w = self.bf.pack(category=1, kind=2, payload=7)
        w2 = self.bf.replace(w, payload=8)
        assert self.bf.unpack(w2) == {"category": 1, "kind": 2, "payload": 8}

    def test_value_too_large_rejected(self):
        with pytest.raises(ValueError, match="does not fit"):
            self.bf.pack(category=4, kind=0, payload=0)

    def test_missing_field_rejected(self):
        with pytest.raises(ValueError, match="bad fields"):
            self.bf.pack(category=1, kind=0)

    def test_extra_field_rejected(self):
        with pytest.raises(ValueError, match="bad fields"):
            self.bf.pack(category=1, kind=0, payload=0, zap=1)

    def test_unpack_out_of_range(self):
        with pytest.raises(ValueError):
            self.bf.unpack(1 << 32)
        with pytest.raises(ValueError):
            self.bf.unpack(-1)

    def test_replace_rejects_oversized(self):
        w = self.bf.pack(category=0, kind=0, payload=0)
        with pytest.raises(ValueError):
            self.bf.replace(w, kind=16)


@given(
    category=st.integers(0, 3),
    kind=st.integers(0, 15),
    payload=st.integers(0, (1 << 26) - 1),
)
def test_property_roundtrip(category, kind, payload):
    bf = BitField(32, [("category", 2), ("kind", 4), ("payload", 26)])
    w = bf.pack(category=category, kind=kind, payload=payload)
    assert 0 <= w < (1 << 32)
    assert bf.unpack(w) == {
        "category": category, "kind": kind, "payload": payload,
    }


@given(st.integers(0, (1 << 32) - 1))
def test_property_unpack_pack_identity(word):
    bf = BitField(32, [("a", 7), ("b", 11), ("c", 14)])
    assert bf.pack(**bf.unpack(word)) == word
