"""Restart replay: datatype decode/rebuild and object reconstruction.

decode_datatype/create_datatype use only the §5 standard-call subset, so
they must work identically on every implementation.
"""

import numpy as np
import pytest

from repro.mana.replay import allgather_blob, create_datatype, decode_datatype
from repro.mpi import datatypes as dt
from repro.mpi.api import HandleKind
from tests.conftest import ALL_IMPLS, make_world, run_ranks


class TestDecodeDatatype:
    def test_named(self, impl_name):
        _, lib_for = make_world(1, impl_name)
        lib = lib_for(0)
        desc = decode_datatype(lib, lib.constant("MPI_DOUBLE"))
        assert isinstance(desc, dt.NamedType)
        assert desc.np_dtype == np.dtype("f8")

    def test_vector(self, impl_name):
        _, lib_for = make_world(1, impl_name)
        lib = lib_for(0)
        h = lib.type_vector(3, 2, 5, lib.constant("MPI_INT"))
        desc = decode_datatype(lib, h)
        assert desc == dt.VectorType(
            3, 2, 5, dt.NamedType("MPI_INT", "i4")
        )

    def test_nested_contiguous_of_vector(self, impl_name):
        _, lib_for = make_world(1, impl_name)
        lib = lib_for(0)
        inner = lib.type_vector(2, 1, 3, lib.constant("MPI_DOUBLE"))
        outer = lib.type_contiguous(4, inner)
        desc = decode_datatype(lib, outer)
        expect = dt.ContiguousType(
            4, dt.VectorType(2, 1, 3, dt.NamedType("MPI_DOUBLE", "f8"))
        )
        assert desc == expect

    def test_struct(self, impl_name):
        _, lib_for = make_world(1, impl_name)
        lib = lib_for(0)
        h = lib.type_create_struct(
            [1, 2], [0, 8],
            [lib.constant("MPI_DOUBLE"), lib.constant("MPI_INT")],
        )
        desc = decode_datatype(lib, h)
        assert isinstance(desc, dt.StructType)
        assert desc.byte_displacements == (0, 8)

    def test_decode_does_not_leak_handles(self, impl_name):
        """get_contents creates inner handles; decode must free them."""
        _, lib_for = make_world(1, impl_name)
        lib = lib_for(0)
        inner = lib.type_vector(2, 1, 3, lib.constant("MPI_DOUBLE"))
        outer = lib.type_contiguous(4, inner)
        if impl_name in ("mpich", "craympi"):
            before = len(lib.handles._pages[HandleKind.DATATYPE].get(1, []) or [])
        decode_datatype(lib, outer)
        # decoding twice must not error (stale/dangling handles would)
        decode_datatype(lib, outer)

    def test_exampi_aliased_type_decodes(self):
        _, lib_for = make_world(1, "exampi")
        lib = lib_for(0)
        h = lib.constant("MPI_INT8_T")  # aliases MPI_CHAR
        desc = decode_datatype(lib, h)
        assert desc.is_named()
        assert desc.np_dtype.itemsize == 1


class TestCreateDatatype:
    @pytest.mark.parametrize(
        "desc",
        [
            dt.ContiguousType(3, dt.NamedType("MPI_DOUBLE", "f8")),
            dt.VectorType(2, 2, 4, dt.NamedType("MPI_INT", "i4")),
            dt.StructType(
                [1, 1], [0, 8],
                [dt.NamedType("MPI_DOUBLE", "f8"), dt.NamedType("MPI_INT", "i4")],
            ),
            dt.ContiguousType(
                2, dt.VectorType(2, 1, 2, dt.NamedType("MPI_BYTE", "u1"))
            ),
        ],
    )
    def test_rebuild_then_decode_roundtrip(self, impl_name, desc):
        _, lib_for = make_world(1, impl_name)
        lib = lib_for(0)
        h = create_datatype(lib, desc)
        assert decode_datatype(lib, h) == desc

    def test_indexed_on_full_impls(self):
        desc = dt.IndexedType([1, 2], [0, 4], dt.NamedType("MPI_INT", "i4"))
        for impl in ("mpich", "openmpi", "craympi"):
            _, lib_for = make_world(1, impl)
            lib = lib_for(0)
            h = create_datatype(lib, desc)
            assert decode_datatype(lib, h) == desc

    def test_named_returns_constant(self, impl_name):
        _, lib_for = make_world(1, impl_name)
        lib = lib_for(0)
        h = create_datatype(lib, dt.NamedType("MPI_INT", "i4"))
        assert h == lib.constant("MPI_INT")


class TestAllgatherBlob:
    @pytest.mark.parametrize("nranks", [1, 2, 5])
    def test_gathers_in_rank_order(self, impl_name, nranks):
        _, lib_for = make_world(nranks, impl_name)

        def body(r):
            lib = lib_for(r)
            return allgather_blob(lib, {"rank": r, "data": list(range(r))})

        out = run_ranks(nranks, body)
        expect = [{"rank": r, "data": list(range(r))} for r in range(nranks)]
        assert all(o == expect for o in out)

    def test_large_objects(self):
        _, lib_for = make_world(3, "mpich")

        def body(r):
            lib = lib_for(r)
            return allgather_blob(lib, np.full(10_000, r))

        out = run_ranks(3, body)
        for gathered in out:
            for r, arr in enumerate(gathered):
                assert np.all(arr == r)
