"""Crash-point injector and the syscall-level crash-injection sweep.

The ISSUE-8 acceptance bar lives here: the mutation batch must expose
at least 40 distinct named syscall boundaries across the save / drain /
gc / prune operation contexts, and killing the writer at **any** of
them must leave the store restorable (or fsck-repairable to restorable)
with zero leaked state.  The bounded subset runs in tier-1; the
exhaustive all-points sweep is ``slow``-marked (same code path as
``python -m repro crash-smoke --points 0``).
"""

import pytest

from repro.faults.crashpoints import CrashPointInjector
from repro.faults.crashsweep import (
    enumerate_crash_points,
    run_sweep,
    select_subset,
)
from repro.mana import storeio
from repro.util.errors import InjectedCrash


# ----------------------------------------------------------------------
# injector unit behavior
# ----------------------------------------------------------------------
class TestCrashPointInjector:
    def test_record_mode_counts_without_crashing(self):
        inj = CrashPointInjector()
        inj.hit("save.image.rename.before")
        inj.hit("save.image.rename.before")
        inj.hit("gc.chunk.unlink.after")
        assert inj.points == [
            "save.image.rename.before", "gc.chunk.unlink.after",
        ]
        assert inj.counts["save.image.rename.before"] == 2

    def test_armed_injector_dies_at_its_point(self):
        inj = CrashPointInjector(arm_at="b")
        inj.hit("a")
        with pytest.raises(InjectedCrash):
            inj.hit("b")
        assert inj.dead

    def test_dead_injector_poisons_every_later_operation(self):
        """SIGKILL semantics: after the crash fires, *every* shimmed
        operation raises — ``finally`` blocks cannot tidy up."""
        inj = CrashPointInjector(arm_at="a")
        with pytest.raises(InjectedCrash):
            inj.hit("a")
        with pytest.raises(InjectedCrash):
            inj.hit("completely.different.point")
        inj.resurrect()
        inj.hit("completely.different.point")  # alive again

    def test_occurrence_selects_the_nth_hit(self):
        inj = CrashPointInjector(arm_at="a", occurrence=3)
        inj.hit("a")
        inj.hit("a")
        with pytest.raises(InjectedCrash):
            inj.hit("a")

    def test_shim_consults_installed_injector(self, tmp_path):
        inj = CrashPointInjector(arm_at="save.probe.write.before")
        storeio.set_injector(inj)
        try:
            with pytest.raises(InjectedCrash):
                storeio.write_file(str(tmp_path / "f"), b"x", site="probe")
        finally:
            storeio.set_injector(None)
        assert not (tmp_path / "f").exists()


# ----------------------------------------------------------------------
# enumeration
# ----------------------------------------------------------------------
class TestEnumeration:
    def test_mutation_batch_exposes_the_required_surface(self, tmp_path):
        points = enumerate_crash_points(str(tmp_path))
        # Acceptance: >= 40 distinct named syscall boundaries...
        assert len(points) == len(set(points))
        assert len(points) >= 40
        # ...spanning all four operation contexts...
        contexts = {p.split(".")[0] for p in points}
        assert contexts == {"save", "drain", "gc", "prune"}
        # ...and every before point has its after twin.
        befores = {p[: -len(".before")] for p in points
                   if p.endswith(".before")}
        afters = {p[: -len(".after")] for p in points
                  if p.endswith(".after")}
        assert befores == afters

    def test_enumeration_is_deterministic(self, tmp_path):
        a = enumerate_crash_points(str(tmp_path / "a"))
        b = enumerate_crash_points(str(tmp_path / "b"))
        assert a == b

    def test_subset_selection_is_deterministic_and_spread(self, tmp_path):
        points = enumerate_crash_points(str(tmp_path))
        sub = select_subset(points, 12)
        assert len(sub) == 12
        assert sub == select_subset(points, 12)
        assert sub[0] == points[0]
        # The spread reaches past the first context's points.
        assert len({p.split(".")[0] for p in sub}) >= 2
        assert select_subset(points, 10_000) == points


# ----------------------------------------------------------------------
# the sweep: restore-or-repair at every boundary
# ----------------------------------------------------------------------
class TestCrashSweep:
    def test_bounded_sweep_passes(self, tmp_path):
        summary = run_sweep(str(tmp_path), limit=12)
        assert summary["points_total"] >= 40
        assert summary["contexts"] == ["drain", "gc", "prune", "save"]
        assert summary["points_checked"] == 12
        assert summary["ok"], summary["failures"]
        # Every armed point actually crashed the mutation batch.
        assert all(r["crashed"] for r in summary["results"])

    def test_sweep_verdicts_are_deterministic(self, tmp_path):
        one = run_sweep(str(tmp_path / "one"), limit=6)
        two = run_sweep(str(tmp_path / "two"), limit=6)
        assert one["results"] == two["results"]

    @pytest.mark.slow
    def test_exhaustive_sweep_every_syscall_boundary(self, tmp_path):
        """All ~100 points; ``-m 'not slow'`` skips this in quick runs."""
        summary = run_sweep(str(tmp_path))
        assert summary["points_checked"] == summary["points_total"]
        assert summary["ok"], summary["failures"]
