"""Sweep: checkpoints injected at many points must never change results.

This is the drain/replay conservation property, exercised across
checkpoint positions, modes, and applications — the closest practical
analogue to a property-based test over the nondeterministic interleaving
space (the position sweep samples different in-flight message sets).
"""

import pytest

from repro import JobConfig, Launcher
from tests.miniapps import PendingIrecvApp, RingApp, SkewedSendersApp

NRANKS = 4


def baseline(app_factory):
    res = Launcher(JobConfig(nranks=NRANKS, impl="mpich", mana=True)).run(
        app_factory, timeout=120
    )
    assert res.status == "completed", res.first_error()
    return res


def summarize(res):
    out = []
    for a in res.apps():
        if hasattr(a, "acc"):
            out.append(("acc", float(a.acc[0])))
        if hasattr(a, "received"):
            out.append(("recv", tuple(a.received)))
        if hasattr(a, "early"):
            out.append(("early", tuple(a.early.tolist())))
    return out


@pytest.mark.parametrize("at_iter", [1, 5, 9, 13, 17])
def test_ring_checkpoint_position_sweep(at_iter):
    base = summarize(baseline(lambda r: RingApp(20)))
    job = Launcher(JobConfig(nranks=NRANKS, impl="mpich", mana=True)).launch(
        lambda r: RingApp(20)
    )
    tk = job.checkpoint_at_iteration("main", at_iter, mode="relaunch")
    job.start()
    tk.wait(120)
    res = job.wait(120)
    assert res.status == "completed", res.first_error()
    assert summarize(res) == base


@pytest.mark.parametrize("at_iter", [2, 6, 11])
def test_skewed_senders_sweep(at_iter):
    """Different positions capture different numbers of in-flight
    messages; all must drain and replay exactly."""
    base = summarize(baseline(lambda r: SkewedSendersApp(14)))
    job = Launcher(JobConfig(nranks=NRANKS, impl="mpich", mana=True)).launch(
        lambda r: SkewedSendersApp(14)
    )
    tk = job.checkpoint_at_iteration("main", at_iter, mode="relaunch")
    job.start()
    info = tk.wait(120)
    res = job.wait(120)
    assert res.status == "completed", res.first_error()
    assert summarize(res) == base
    assert info["bytes_per_rank"]


@pytest.mark.parametrize("at_iter", [3, 12, 20])
def test_pending_irecv_sweep(at_iter):
    """Checkpoints before/around/after the late send that completes the
    early-posted irecv."""
    job = Launcher(JobConfig(nranks=NRANKS, impl="mpich", mana=True)).launch(
        lambda r: PendingIrecvApp(24)
    )
    tk = job.checkpoint_at_iteration("main", at_iter, mode="relaunch")
    job.start()
    tk.wait(120)
    res = job.wait(120)
    assert res.status == "completed", res.first_error()
    for app in res.apps():
        assert app.validate(None) is None


@pytest.mark.parametrize("mode", ["continue", "relaunch"])
@pytest.mark.parametrize("impl", ["mpich", "openmpi"])
def test_back_to_back_checkpoints(mode, impl):
    """Two checkpoints four iterations apart: the second must cope with
    whatever state the first left (drain buffers, rebound handles)."""
    base = summarize(baseline(lambda r: RingApp(24)))
    job = Launcher(JobConfig(nranks=NRANKS, impl=impl, mana=True)).launch(
        lambda r: RingApp(24)
    )
    t1 = job.checkpoint_at_iteration("main", 5, mode=mode)
    job.start()
    t1.wait(120)
    t2 = job.coordinator.checkpoint_at_iteration("main", 9, mode=mode)
    t2.wait(120)
    res = job.wait(120)
    assert res.status == "completed", res.first_error()
    # openmpi baseline differs only in timing, not results
    if impl == "mpich":
        assert summarize(res) == base


def test_checkpoint_during_comm_churn():
    """Checkpoint while the app creates/frees communicators every
    iteration: replay must rebuild exactly the live set."""
    from tests.miniapps import CommChurnApp

    job = Launcher(JobConfig(nranks=NRANKS, impl="mpich", mana=True)).launch(
        lambda r: CommChurnApp(16)
    )
    tk = job.checkpoint_at_iteration("main", 7, mode="relaunch")
    job.start()
    tk.wait(120)
    res = job.wait(120)
    assert res.status == "completed", res.first_error()
    assert all(a.sum_of_sizes > 0 for a in res.apps())
