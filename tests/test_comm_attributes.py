"""Communicator attributes: native semantics + MANA record caching."""

import numpy as np
import pytest

from repro import JobConfig, Launcher, MpiApplication
from repro.util.errors import MpiError
from tests.conftest import facade_world, run_ranks


class TestNativeAttributes:
    def test_set_get_delete(self, impl_name):
        _, mpi_for = facade_world(1, impl_name)
        MPI = mpi_for(0)
        w = MPI.COMM_WORLD
        kv = MPI.comm_create_keyval()
        flag, _ = MPI.comm_get_attr(w, kv)
        assert not flag
        MPI.comm_set_attr(w, kv, {"tile": 16})
        flag, val = MPI.comm_get_attr(w, kv)
        assert flag and val == {"tile": 16}
        MPI.comm_delete_attr(w, kv)
        flag, _ = MPI.comm_get_attr(w, kv)
        assert not flag
        MPI.comm_free_keyval(kv)

    def test_unknown_keyval_rejected(self, impl_name):
        _, mpi_for = facade_world(1, impl_name)
        MPI = mpi_for(0)
        with pytest.raises(MpiError, match="keyval"):
            MPI.comm_set_attr(MPI.COMM_WORLD, 424242, 1)

    def test_attrs_are_per_communicator(self, impl_name):
        _, mpi_for = facade_world(1, impl_name)
        MPI = mpi_for(0)
        w = MPI.COMM_WORLD
        d = MPI.comm_dup(w)
        kv = MPI.comm_create_keyval()
        MPI.comm_set_attr(w, kv, "on world")
        flag, _ = MPI.comm_get_attr(d, kv)
        assert not flag  # NULL copy function: dup does not inherit


class AttrApp(MpiApplication):
    """Stores solver configuration as comm attributes (a common real-world
    pattern, e.g. PETSc) and keeps using them across checkpoints."""

    def __init__(self):
        self.observed = []

    def setup(self, ctx):
        MPI = ctx.MPI
        self.sub = MPI.comm_split(MPI.COMM_WORLD, 0, ctx.rank)
        self.kv = MPI.comm_create_keyval()
        MPI.comm_set_attr(self.sub, self.kv, {"levels": 3, "rank": ctx.rank})

    def run(self, ctx):
        MPI = ctx.MPI
        for it in ctx.loop("main", 16):
            flag, val = MPI.comm_get_attr(self.sub, self.kv)
            assert flag, "attribute lost!"
            self.observed.append((it, val["levels"], val["rank"]))
            MPI.barrier(MPI.COMM_WORLD)

    def validate(self, ctx):
        if len(self.observed) != 16:
            return f"observed {len(self.observed)}/16 attribute reads"
        if any(levels != 3 for _, levels, _ in self.observed):
            return "attribute value corrupted"
        return None


class TestManaAttributes:
    def test_attrs_survive_relaunch(self):
        job = Launcher(JobConfig(nranks=4, impl="mpich", mana=True)).launch(
            lambda r: AttrApp()
        )
        tk = job.checkpoint_at_iteration("main", 6, mode="relaunch")
        job.start()
        tk.wait(60)
        res = job.wait(60)
        assert res.status == "completed", res.first_error()
        for app in res.apps():
            assert app.validate(None) is None

    def test_attrs_survive_cold_cross_impl_restart(self, tmp_path):
        ckdir = str(tmp_path / "ck")
        cfg = JobConfig(nranks=4, impl="mpich", mana=True, ckpt_dir=ckdir,
                        loop_lag_window=2)
        job = Launcher(cfg).launch(lambda r: AttrApp())
        tk = job.checkpoint_at_iteration("main", 4, kind="loop", mode="exit")
        job.start()
        tk.wait(60)
        assert job.wait(60).status == "preempted"
        job2 = Launcher(cfg).restart(ckdir, impl_override="openmpi")
        res2 = job2.run(timeout=60)
        assert res2.status == "completed", res2.first_error()
        for app in res2.apps():
            assert app.validate(None) is None

    def test_keyvals_survive_cold_restart(self, tmp_path):
        """A keyval created before the checkpoint must accept new
        attributes after the restart (counter persisted in the table)."""

        ckdir = str(tmp_path / "ck")
        cfg = JobConfig(nranks=2, impl="mpich", mana=True, ckpt_dir=ckdir,
                        loop_lag_window=2)
        job = Launcher(cfg).launch(lambda r: KeyvalReuseApp())
        tk = job.checkpoint_at_iteration("main", 3, kind="loop", mode="exit")
        job.start()
        tk.wait(60)
        assert job.wait(60).status == "preempted"
        res = Launcher(cfg).restart(ckdir).run(timeout=60)
        assert res.status == "completed", res.first_error()
        for app in res.apps():
            assert app.post_restart_kv_ok


class KeyvalReuseApp(MpiApplication):
    def __init__(self):
        self.post_restart_kv_ok = False

    def setup(self, ctx):
        self.kv = ctx.MPI.comm_create_keyval()

    def run(self, ctx):
        MPI = ctx.MPI
        w = MPI.COMM_WORLD
        for it in ctx.loop("main", 10):
            MPI.comm_set_attr(w, self.kv, it)
            MPI.barrier(w)
        # after any restart: old keyval still valid, new ones distinct
        kv2 = MPI.comm_create_keyval()
        assert kv2 != self.kv
        MPI.comm_set_attr(w, kv2, "fresh")
        flag, val = MPI.comm_get_attr(w, self.kv)
        self.post_restart_kv_ok = bool(flag and val == 9 and kv2 != self.kv)
