"""Format-5 chunked images: incremental saves, back-compat, caches, GC."""

import os
import warnings

import numpy as np
import pytest

from repro.mana.checkpoint import (
    CheckpointImage,
    generation_dir,
    image_chunk_refs,
    invalidate_checkpoint_caches,
    latest_generations,
    latest_restorable_generation,
    load_image,
    prune_generations,
    rank_image_path,
    read_manifest,
    referenced_chunks,
    restorable_generations,
    save_chunked_image,
    save_image,
    validate_generation,
    verify_image,
    write_manifest,
)
from repro.mana.chunkstore import store_for
from repro.mana.drain import DrainBuffer
from repro.mana.virtid import VirtualIdTable
from repro.util.errors import IntegrityError


def make_image(rank=0, generation=1, app=None, nranks=2):
    if app is None:
        rng = np.random.default_rng(99)
        app = {"state": rng.integers(0, 256, size=200_000, dtype=np.uint8)}
    return CheckpointImage(
        rank=rank,
        nranks=nranks,
        impl="mpich",
        kind="loop",
        generation=generation,
        app=app,
        loops={"main": generation},
        vid_table=VirtualIdTable(32),
        drain_buffer=DrainBuffer(),
        clock_state={"now": float(generation), "accounts": {}},
        rng_state=None,
        cs_count=7,
        epoch=generation - 1,
    )


def save_gen(base, generation, app=None, nranks=2):
    """Chunk-save every rank of one generation + its manifest."""
    store = store_for(base)
    stats = []
    for r in range(nranks):
        path = rank_image_path(base, generation, r)
        stats.append(
            save_chunked_image(
                path, make_image(r, generation, app, nranks), store
            )
        )
    write_manifest(base, generation, nranks=nranks, impl="mpich",
                   kind="loop", cold_restartable=True, loop_target=0)
    return stats


class TestFormat5Roundtrip:
    def test_save_load(self, tmp_path):
        base = str(tmp_path)
        path = rank_image_path(base, 1, 0)
        stats = save_chunked_image(path, make_image(), store_for(base))
        assert stats["format"] == 5
        assert stats["chunks_written"] == stats["chunks_total"] > 1
        assert stats["payload_bytes"] > 200_000
        # The image file itself is header-only — tiny next to the payload.
        assert os.path.getsize(path) < stats["payload_bytes"] / 10
        img = load_image(path)
        assert img.rank == 0 and img.generation == 1
        assert np.array_equal(img.app["state"], make_image().app["state"])
        assert verify_image(path)["format_version"] == 5

    def test_warm_save_writes_only_changed_chunks(self, tmp_path):
        base = str(tmp_path)
        cold = save_gen(base, 1)
        warm = save_gen(base, 2)  # identical app state
        cold_bytes = sum(s["bytes_written"] for s in cold)
        warm_bytes = sum(s["bytes_written"] for s in warm)
        assert sum(s["chunks_reused"] for s in warm) > 0
        # The acceptance bar from the issue: >= 5x fewer bytes warm.
        assert cold_bytes >= 5 * warm_bytes
        img = load_image(rank_image_path(base, 2, 0))
        assert img.generation == 2

    def test_cross_rank_dedup(self, tmp_path):
        """Two ranks with identical app payloads share store chunks."""
        base = str(tmp_path)
        app = {"state": np.zeros(150_000, dtype=np.uint8)}
        stats = save_gen(base, 1, app=app)
        assert sum(s["chunks_reused"] for s in stats) > 0


class TestFormat4BackCompat:
    def test_v4_image_still_loads(self, tmp_path):
        base = str(tmp_path)
        path = rank_image_path(base, 1, 0)
        nbytes = save_image(path, make_image())
        assert os.path.getsize(path) == nbytes
        header = verify_image(path)
        assert header["format_version"] == 4
        img = load_image(path)
        assert np.array_equal(img.app["state"], make_image().app["state"])
        assert image_chunk_refs(path) == []

    def test_mixed_format_dir_validates(self, tmp_path):
        """A dir holding a v4 generation and a v5 generation — the
        upgrade-in-place scenario — validates both."""
        base = str(tmp_path)
        for r in range(2):
            save_image(rank_image_path(base, 1, r), make_image(r, 1))
        write_manifest(base, 1, nranks=2, impl="mpich", kind="loop",
                       cold_restartable=True, loop_target=0)
        save_gen(base, 2)
        assert restorable_generations(base) == [1, 2]


class TestChunkCorruption:
    def _corrupt_first_chunk(self, base, generation, rank=0):
        refs = image_chunk_refs(rank_image_path(base, generation, rank))
        digest = refs[0][0]
        path = store_for(base).chunk_path(digest)
        with open(path, "r+b") as f:
            f.seek(30)
            b = f.read(1)
            f.seek(30)
            f.write(bytes([b[0] ^ 0xFF]))
        return digest

    def test_load_names_the_corrupt_chunk(self, tmp_path):
        base = str(tmp_path)
        save_gen(base, 1)
        digest = self._corrupt_first_chunk(base, 1)
        with pytest.raises(IntegrityError, match=r"chunk 0/"):
            load_image(rank_image_path(base, 1, 0))
        with pytest.raises(IntegrityError, match=digest[:12]):
            verify_image(rank_image_path(base, 1, 0))

    def test_validation_marks_generation_unrestorable(self, tmp_path):
        base = str(tmp_path)
        save_gen(base, 1)
        rng = np.random.default_rng(5)
        save_gen(base, 2, app={
            "state": rng.integers(0, 256, size=200_000, dtype=np.uint8)
        })
        assert restorable_generations(base) == [1, 2]
        self._corrupt_first_chunk(base, 2)
        problems = validate_generation(base, 2)
        assert problems and any("chunk" in p for p in problems)
        # Fallback: the older intact generation is still the restore
        # target (what Launcher.supervise picks after a bad gen).
        assert restorable_generations(base) == [1]
        assert latest_restorable_generation(base) == 1

    def test_missing_chunk_detected(self, tmp_path):
        base = str(tmp_path)
        save_gen(base, 1)
        refs = image_chunk_refs(rank_image_path(base, 1, 0))
        os.remove(store_for(base).chunk_path(refs[0][0]))
        invalidate_checkpoint_caches(base)
        assert validate_generation(base, 1)


class TestCaches:
    def test_validation_result_is_cached_until_disk_changes(self, tmp_path):
        base = str(tmp_path)
        save_gen(base, 1)
        assert validate_generation(base, 1) == []
        # Cached verdict: identical list on an unchanged dir.
        assert validate_generation(base, 1) == []
        # An on-disk change (corruption) invalidates via stat signature.
        refs = image_chunk_refs(rank_image_path(base, 1, 0))
        path = store_for(base).chunk_path(refs[0][0])
        with open(path, "r+b") as f:
            f.seek(10)
            b = f.read(1)
            f.seek(10)
            f.write(bytes([b[0] ^ 0xFF]))
        assert validate_generation(base, 1)

    def test_latest_generations_tracks_new_writes(self, tmp_path):
        base = str(tmp_path)
        save_gen(base, 1)
        assert latest_generations(base) == [1]
        save_gen(base, 2)
        assert latest_generations(base) == [1, 2]

    def test_unrecognized_entry_warns_once(self, tmp_path):
        base = str(tmp_path)
        save_gen(base, 1)
        os.mkdir(os.path.join(base, "stray"))
        with pytest.warns(UserWarning, match="stray"):
            latest_generations(base)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            os.mkdir(os.path.join(base, "later"))  # bump dir mtime
            try:
                latest_generations(base)
            except UserWarning as w:
                assert "stray" not in str(w)  # only the new entry warns


class TestPruneAndGC:
    def test_prune_reclaims_unreferenced_chunks(self, tmp_path):
        base = str(tmp_path)
        rng = np.random.default_rng(3)
        for g in (1, 2, 3):
            save_gen(base, g, app={
                "state": rng.integers(0, 256, size=200_000, dtype=np.uint8)
            })
        store = store_for(base)
        before = store.stored_bytes()
        summary = prune_generations(base, keep=1)
        assert summary["pruned_generations"] == [1, 2]
        assert summary["kept_generations"] == [3]
        assert summary["chunks_removed"] > 0
        assert store.stored_bytes() < before
        assert latest_generations(base) == [3]
        # The kept generation still fully restores.
        assert validate_generation(base, 3) == []
        assert load_image(rank_image_path(base, 3, 0)).generation == 3
        # Every surviving chunk is referenced; no leaks either way.
        assert store.digests() == referenced_chunks(base)

    def test_manifest_records_dedup_stats(self, tmp_path):
        base = str(tmp_path)
        stats = save_gen(base, 1)
        agg = {
            "format": 5,
            "chunks_total": sum(s["chunks_total"] for s in stats),
            "chunks_written": sum(s["chunks_written"] for s in stats),
            "chunks_reused": sum(s["chunks_reused"] for s in stats),
            "bytes_written": sum(s["bytes_written"] for s in stats),
        }
        write_manifest(base, 1, nranks=2, impl="mpich", kind="loop",
                       cold_restartable=True, loop_target=0, dedup=agg)
        doc = read_manifest(base, 1)
        assert doc["dedup"]["chunks_written"] == agg["chunks_written"]
        assert doc["dedup"]["bytes_written"] == agg["bytes_written"]


class TestPipelinedSave:
    """The chunk-run TaskPool fan-out must be invisible in the output:
    pipeline-written images are bit-identical to serial ones."""

    def test_pooled_image_bit_identical_to_serial(self, tmp_path):
        from repro.harness.parallel import TaskPool

        rng = np.random.default_rng(11)
        app = {"state": rng.integers(0, 256, size=2_000_000,
                                     dtype=np.uint8)}
        serial_base = str(tmp_path / "serial")
        pooled_base = str(tmp_path / "pooled")
        pool = TaskPool(4, name="t5-save")
        try:
            for base, use_pool in ((serial_base, None), (pooled_base, pool)):
                store = store_for(base)
                img = make_image(rank=0, generation=1, app=app)
                save_chunked_image(
                    rank_image_path(base, 1, 0), img, store, pool=use_pool
                )
        finally:
            pool.shutdown()
        with open(rank_image_path(serial_base, 1, 0), "rb") as f:
            serial_bytes = f.read()
        with open(rank_image_path(pooled_base, 1, 0), "rb") as f:
            pooled_bytes = f.read()
        assert serial_bytes == pooled_bytes
        # Same chunk set on disk, and the pooled image restores.
        assert (store_for(serial_base).digests()
                == store_for(pooled_base).digests())
        restored = load_image(rank_image_path(pooled_base, 1, 0))
        assert np.array_equal(restored.app["state"], app["state"])

    def test_pooled_save_stats_match_serial(self, tmp_path):
        from repro.harness.parallel import TaskPool

        rng = np.random.default_rng(12)
        app = {"state": rng.integers(0, 256, size=1_000_000,
                                     dtype=np.uint8)}
        pool = TaskPool(3, name="t5-stats")
        try:
            stats = {}
            for name, use_pool in (("serial", None), ("pooled", pool)):
                base = str(tmp_path / name)
                stats[name] = save_chunked_image(
                    rank_image_path(base, 1, 0),
                    make_image(rank=0, generation=1, app=app),
                    store_for(base), pool=use_pool,
                )
        finally:
            pool.shutdown()
        assert stats["serial"] == stats["pooled"]


class TestGenerationPins:
    def test_pinned_generation_survives_prune(self, tmp_path):
        from repro.mana.checkpoint import (
            pin_generation,
            pinned_generations,
            unpin_generation,
        )

        base = str(tmp_path)
        for gen in (1, 2, 3, 4):
            save_gen(base, gen)
        pin_generation(base, 1)
        try:
            summary = prune_generations(base, keep=1)
            # Generation 1 is in-flight: exempt from both the doomed set
            # and the keep count.
            assert 1 not in summary["pruned_generations"]
            assert 1 in summary["kept_generations"]
            assert 4 in summary["kept_generations"]
            assert os.path.isdir(generation_dir(base, 1))
        finally:
            unpin_generation(base, 1)
        assert pinned_generations(base) == set()
        summary = prune_generations(base, keep=1)
        assert 1 in summary["pruned_generations"]
        assert summary["kept_generations"] == [4]

    def test_pin_refcounts(self, tmp_path):
        from repro.mana.checkpoint import (
            pin_generation,
            pinned_generations,
            unpin_generation,
        )

        base = str(tmp_path)
        pin_generation(base, 7)
        pin_generation(base, 7)
        unpin_generation(base, 7)
        assert pinned_generations(base) == {7}
        unpin_generation(base, 7)
        assert pinned_generations(base) == set()
