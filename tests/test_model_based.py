"""Model-based property tests: the fabric and the virtual-id table are
driven with random operation sequences and compared against simple
reference models (hypothesis stateful-style, expressed as rule lists so
shrinking stays fast)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric.network import ANY_SOURCE, ANY_TAG, Fabric
from repro.mana.legacy import LegacyVirtualIdMaps
from repro.mana.records import ConstantRecord, GroupRecord
from repro.mana.virtid import VirtualIdTable
from repro.mpi.api import HandleKind
from repro.simtime.cost import CostModel
from repro.util.errors import InvalidHandleError


# ----------------------------------------------------------------------
# fabric vs reference model
# ----------------------------------------------------------------------

class FabricModel:
    """Reference semantics: per-destination ordered list; match = oldest
    message agreeing on (ctx, src?, tag?)."""

    def __init__(self, nranks):
        self.queues = {r: [] for r in range(nranks)}
        self.seq = 0

    def post(self, src, dst, tag, ctx, payload):
        self.queues[dst].append((self.seq, src, tag, ctx, payload))
        self.seq += 1

    def match(self, dst, src, tag, ctx):
        for i, (s, msrc, mtag, mctx, payload) in enumerate(self.queues[dst]):
            if mctx != ctx:
                continue
            if src != ANY_SOURCE and msrc != src:
                continue
            if tag != ANY_TAG and mtag != tag:
                continue
            return self.queues[dst].pop(i)[4]
        return None


op_strategy = st.lists(
    st.one_of(
        st.tuples(
            st.just("post"),
            st.integers(0, 2),        # src
            st.integers(0, 2),        # dst
            st.integers(0, 3),        # tag
            st.integers(0, 1),        # ctx
        ),
        st.tuples(
            st.just("match"),
            st.integers(0, 2),        # dst
            st.sampled_from([0, 1, 2, ANY_SOURCE]),
            st.sampled_from([0, 1, 2, 3, ANY_TAG]),
            st.integers(0, 1),
        ),
    ),
    max_size=60,
)


@given(op_strategy)
@settings(max_examples=120, deadline=None)
def test_property_fabric_matches_reference_model(ops):
    fab = Fabric(3, CostModel.discovery())
    model = FabricModel(3)
    counter = 0
    for op in ops:
        if op[0] == "post":
            _, src, dst, tag, ctx = op
            payload = bytes([counter % 256, counter // 256 % 256])
            counter += 1
            fab.post_send(src, dst, tag, ctx, payload, 0.0)
            model.post(src, dst, tag, ctx, payload)
        else:
            _, dst, src, tag, ctx = op
            got = fab.try_match(dst, src, tag, ctx)
            want = model.match(dst, src, tag, ctx)
            if want is None:
                assert got is None
            else:
                assert got is not None and got.payload == want
    # final drain must agree completely
    for dst in range(3):
        assert fab.in_flight(dst) == len(model.queues[dst])


# ----------------------------------------------------------------------
# virtual-id designs vs reference model (and vs each other)
# ----------------------------------------------------------------------

vid_ops = st.lists(
    st.one_of(
        st.tuples(st.just("attach"),
                  st.sampled_from([HandleKind.GROUP, HandleKind.DATATYPE,
                                   HandleKind.OP, HandleKind.REQUEST])),
        st.tuples(st.just("remove"), st.integers(0, 30)),
        st.tuples(st.just("rebind"), st.integers(0, 30)),
        st.tuples(st.just("lookup"), st.integers(0, 30)),
    ),
    max_size=80,
)


@given(vid_ops)
@settings(max_examples=100, deadline=None)
@pytest.mark.parametrize("design", ["new", "legacy"])
def test_property_vid_table_reference_model(design, ops):
    table = VirtualIdTable(32) if design == "new" else LegacyVirtualIdMaps(32)
    model = {}          # vhandle -> (kind, phys)
    handles = []        # attach order
    next_phys = 100
    for op in ops:
        if op[0] == "attach":
            kind = op[1]
            rec = (GroupRecord((len(handles),))
                   if kind == HandleKind.GROUP
                   else ConstantRecord("MPI_INT"))
            vh = table.attach(kind, rec, next_phys)
            assert vh not in model  # uniqueness
            model[vh] = (kind, next_phys)
            handles.append(vh)
            next_phys += 1
        elif op[0] == "remove" and handles:
            vh = handles[op[1] % len(handles)]
            if vh in model:
                table.remove(vh)
                del model[vh]
            else:
                with pytest.raises(InvalidHandleError):
                    table.remove(vh)
        elif op[0] == "rebind" and handles:
            vh = handles[op[1] % len(handles)]
            if vh in model:
                kind, _ = model[vh]
                table.set_phys(vh, next_phys)
                model[vh] = (kind, next_phys)
                next_phys += 1
        elif op[0] == "lookup" and handles:
            vh = handles[op[1] % len(handles)]
            if vh in model:
                kind, phys = model[vh]
                e = table.lookup(vh, kind)
                assert e.phys == phys
                assert table.vid_of_phys(kind, phys) == vh
            else:
                with pytest.raises(InvalidHandleError):
                    table.lookup(vh)
    assert len(table) == len(model)


@given(st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=20))
@settings(max_examples=60, deadline=None)
def test_property_incarnations_monotonic(memberships):
    """The dup_seq incarnation counter never repeats for one membership —
    the invariant behind trivial-barrier key uniqueness."""
    table = VirtualIdTable(32)
    ranks = {"a": (0, 1), "b": (0, 2), "c": (1, 2)}
    seen = set()
    for m in memberships:
        world = ranks[m]
        n = table.membership_incarnations.get(world, 0)
        table.membership_incarnations[world] = n + 1
        key = (world, n)
        assert key not in seen
        seen.add(key)
