"""The VASP-like multi-phase proxy — the paper's motivating use case.

"VASP supports multiple algorithms ... its multi-algorithm execution
model conflicts with the model of a single main-loop often assumed by
library-based packages" (§1).  Transparent checkpoints must land in ANY
phase and preemptions must resume mid-workflow.
"""

from dataclasses import replace

import pytest

from repro import JobConfig, Launcher
from repro.apps import VaspLikeProxy


def spec(blocks=5, nranks=8):
    return replace(VaspLikeProxy.paper_config(), nranks=nranks, blocks=blocks)


def baseline(blocks=5):
    res = Launcher(JobConfig(nranks=8, impl="mpich", mana=True)).run(
        lambda r: VaspLikeProxy(spec(blocks)), timeout=120
    )
    assert res.status == "completed", res.first_error()
    return res


def phases(app):
    return (app.scf_energies, app.relax_forces, app.md_temps)


@pytest.mark.parametrize("loop,at_iter", [
    ("scf", 2), ("relax", 2), ("md", 2),
])
def test_in_session_checkpoint_in_every_phase(loop, at_iter):
    base = baseline()
    job = Launcher(JobConfig(nranks=8, impl="mpich", mana=True)).launch(
        lambda r: VaspLikeProxy(spec())
    )
    tk = job.checkpoint_at_iteration(loop, at_iter, mode="relaunch")
    job.start()
    tk.wait(120)
    res = job.wait(120)
    assert res.status == "completed", res.first_error()
    assert [phases(a) for a in res.apps()] == [
        phases(a) for a in base.apps()
    ]


@pytest.mark.parametrize("loop", ["scf", "relax", "md"])
def test_preempt_and_cold_restart_in_every_phase(loop, tmp_path):
    """The headline scenario: preempted mid-SCF / mid-relax / mid-MD,
    resumed in a fresh session, workflow completes identically."""
    base = baseline()
    ckdir = str(tmp_path / "ck")
    cfg = JobConfig(nranks=8, impl="mpich", mana=True, ckpt_dir=ckdir,
                    loop_lag_window=2)
    job = Launcher(cfg).launch(lambda r: VaspLikeProxy(spec()))
    tk = job.checkpoint_at_iteration(loop, 1, kind="loop", mode="exit")
    job.start()
    info = tk.wait(120)
    res = job.wait(120)
    assert res.status == "preempted"
    assert info["loop_target"] is not None

    res2 = Launcher(cfg).restart(ckdir).run(timeout=120)
    assert res2.status == "completed", res2.first_error()
    assert [phases(a) for a in res2.apps()] == [
        phases(a) for a in base.apps()
    ]


def test_later_phases_untouched_by_early_preemption(tmp_path):
    """Preempted during SCF: the relax/md phases must not have run at
    preemption time, and must run exactly once after restart."""
    ckdir = str(tmp_path / "ck")
    cfg = JobConfig(nranks=8, impl="mpich", mana=True, ckpt_dir=ckdir,
                    loop_lag_window=2)
    job = Launcher(cfg).launch(lambda r: VaspLikeProxy(spec()))
    tk = job.checkpoint_at_iteration("scf", 1, kind="loop", mode="exit")
    job.start()
    tk.wait(120)
    res = job.wait(120)
    assert res.status == "preempted"
    for a in res.apps():
        assert a.relax_forces == [] and a.md_temps == []

    res2 = Launcher(cfg).restart(ckdir).run(timeout=120)
    assert res2.status == "completed", res2.first_error()
    for a in res2.apps():
        assert len(a.relax_forces) == 5 and len(a.md_temps) == 5


def test_cross_impl_restart_mid_workflow(tmp_path):
    """Preempted mid-relax under MPICH, finished under ExaMPI."""
    base = baseline()
    ckdir = str(tmp_path / "ck")
    cfg = JobConfig(nranks=8, impl="mpich", mana=True, ckpt_dir=ckdir,
                    loop_lag_window=2)
    job = Launcher(cfg).launch(lambda r: VaspLikeProxy(spec()))
    tk = job.checkpoint_at_iteration("relax", 1, kind="loop", mode="exit")
    job.start()
    tk.wait(120)
    assert job.wait(120).status == "preempted"
    res2 = Launcher(cfg).restart(ckdir, impl_override="exampi").run(timeout=120)
    assert res2.status == "completed", res2.first_error()
    assert [phases(a) for a in res2.apps()] == [
        phases(a) for a in base.apps()
    ]
