"""The legacy virtual-id design — the §4.1 drawbacks must be faithful."""

import pickle

import pytest

from repro.mana.legacy import LegacyVirtualIdMaps
from repro.mana.records import CommRecord, ConstantRecord, GroupRecord
from repro.mpi.api import HandleKind
from repro.mpi.group import ggid_of
from repro.util.errors import IncompatibleHandleError, InvalidHandleError


class TestInterfaceParity:
    """The wrapper layer runs unmodified on either design."""

    def test_attach_lookup(self):
        t = LegacyVirtualIdMaps(32)
        rec = GroupRecord((0, 1))
        vh = t.attach(HandleKind.GROUP, rec, 17)
        e = t.lookup(vh, HandleKind.GROUP)
        assert e.record is rec and e.phys == 17

    def test_lookup_without_kind_scans(self):
        t = LegacyVirtualIdMaps(32)
        vh = t.attach(HandleKind.OP, ConstantRecord("MPI_SUM"), 3)
        assert t.lookup(vh).kind == HandleKind.OP

    def test_ids_disjoint_across_kinds(self):
        t = LegacyVirtualIdMaps(32)
        vh_c = t.attach(HandleKind.COMM, CommRecord((0,), None, 0), 1)
        vh_g = t.attach(HandleKind.GROUP, GroupRecord((0,)), 1)
        vh_r = t.attach(HandleKind.REQUEST, ConstantRecord("MPI_INT"), 1)
        assert len({vh_c, vh_g, vh_r}) == 3
        t.remove(vh_r)  # must not disturb the comm entry
        assert t.lookup(vh_c, HandleKind.COMM).phys == 1

    def test_set_phys_and_remove(self):
        t = LegacyVirtualIdMaps(32)
        vh = t.attach(HandleKind.GROUP, GroupRecord((0,)), 5)
        t.set_phys(vh, 6)
        assert t.phys(vh) == 6
        t.remove(vh)
        with pytest.raises(InvalidHandleError):
            t.lookup(vh)
        with pytest.raises(InvalidHandleError):
            t.remove(vh)

    def test_constant_vid(self):
        t = LegacyVirtualIdMaps(32)
        vh = t.attach(HandleKind.DATATYPE, ConstantRecord("MPI_INT"), 2,
                      constant_name="MPI_INT")
        assert t.constant_vid("MPI_INT") == vh

    def test_entries_in_creation_order(self):
        t = LegacyVirtualIdMaps(32)
        t.attach(HandleKind.GROUP, GroupRecord((0,)), 0)
        t.attach(HandleKind.COMM, CommRecord((0,), None, 0), 1)
        seqs = [e.creation_seq for e in t.entries()]
        assert seqs == sorted(seqs)

    def test_eager_ggid_always(self):
        t = LegacyVirtualIdMaps(32)
        rec = CommRecord((0, 4), None, 0)
        t.attach(HandleKind.COMM, rec, 1)
        assert rec.ggid == ggid_of((0, 4))
        assert t.finalize_ggids() == 0


class TestDrawbacks:
    def test_64_bit_handles_incompatible(self):
        """§4.1 drawback 1 — the paper's headline failure."""
        t = LegacyVirtualIdMaps(64)
        with pytest.raises(IncompatibleHandleError, match="pointer"):
            t.attach(HandleKind.COMM, CommRecord((0,), None, 0), 2 ** 48)

    def test_reverse_translation_scans(self):
        """§4.1 drawback 4 — O(n), but correct."""
        t = LegacyVirtualIdMaps(32)
        handles = [
            t.attach(HandleKind.GROUP, GroupRecord((i,)), 100 + i)
            for i in range(20)
        ]
        assert t.vid_of_phys(HandleKind.GROUP, 119) == handles[-1]
        assert t.vid_of_phys(HandleKind.GROUP, 999) is None

    def test_string_keys_in_maps(self):
        """§4.1 drawback 2 — macro-encoded string keys, observable."""
        t = LegacyVirtualIdMaps(32)
        vh = t.attach(HandleKind.COMM, CommRecord((0,), None, 0), 1)
        assert any(
            isinstance(k, str) and k.startswith("comm:")
            for k in t._id_maps[HandleKind.COMM]
        )
        assert vh in [int(k.split(":")[1]) for k in t._id_maps["comm"]]

    def test_metadata_in_separate_maps(self):
        """§4.1 drawback 3."""
        t = LegacyVirtualIdMaps(32)
        t.attach(HandleKind.GROUP, GroupRecord((0,)), 9)
        assert t._id_maps is not t._record_maps
        assert len(t._record_maps[HandleKind.GROUP]) == 1


class TestPickling:
    def test_phys_dropped(self):
        t = LegacyVirtualIdMaps(32)
        vh = t.attach(HandleKind.GROUP, GroupRecord((0, 1)), 77)
        t2 = pickle.loads(pickle.dumps(t))
        assert t2.lookup(vh).phys is None
        assert t2.lookup(vh).record.world_ranks == (0, 1)

    def test_counters_continue_after_restore(self):
        t = LegacyVirtualIdMaps(32)
        vh1 = t.attach(HandleKind.GROUP, GroupRecord((0,)), 1)
        t2 = pickle.loads(pickle.dumps(t))
        vh2 = t2.attach(HandleKind.GROUP, GroupRecord((1,)), 2)
        assert vh2 != vh1
