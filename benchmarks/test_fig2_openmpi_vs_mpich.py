"""Figure 2 — application runtimes, MPICH vs Open MPI (Discovery).

Shape claims under test (paper §6.1):

1. runtime overhead tracks MPI-call rate: LAMMPS worst, then SW4, then
   CoMD/HPCG, LULESH least;
2. the overhead under Open MPI exceeds the overhead under MPICH for the
   high-rate applications (LAMMPS +32% -> +37%, SW4 +15% -> +18%);
3. MANA+virtId on MPICH is at least as fast as legacy MANA (up to 1.6%
   better);
4. LAMMPS lands in the paper's overhead band.
"""

import pytest

from benchmarks.conftest import RANKS_CAP, SCALE, save_result
from repro.harness import experiments as E


@pytest.fixture(scope="module")
def fig2(case_cache):
    return E.figure2(scale=SCALE, ranks_cap=RANKS_CAP, cache=case_cache)


def _overhead(values, app, case, base="native/mpich"):
    return values[app][case] / values[app][base] - 1.0


def test_figure2_runs_and_saves(benchmark, case_cache):
    out = benchmark.pedantic(
        E.figure2,
        kwargs=dict(scale=SCALE, ranks_cap=RANKS_CAP, cache=case_cache),
        rounds=1, iterations=1,
    )
    save_result("figure2", out["text"])
    assert set(out["values"]) == set(E.FIG2_APPS)
    # Key paper shapes, validated inside the benchmark run itself:
    v = out["values"]
    ov = {a: _overhead(v, a, "mana+vid/mpich") for a in E.FIG2_APPS}
    assert ov["lammps"] > ov["sw4"] > ov["comd"] > ov["lulesh"]
    assert 0.20 < ov["lammps"] < 0.45            # paper: +32%
    for app in ("lammps", "sw4"):
        o_ompi = _overhead(v, app, "mana+vid/openmpi", "native/openmpi")
        assert o_ompi > _overhead(v, app, "mana+vid/mpich"), app


def test_overhead_tracks_call_rate(fig2):
    v = fig2["values"]
    ov = {a: _overhead(v, a, "mana+vid/mpich") for a in E.FIG2_APPS}
    assert ov["lammps"] > ov["sw4"] > ov["comd"] > ov["lulesh"]
    assert ov["lammps"] > ov["hpcg"]


def test_openmpi_overhead_exceeds_mpich(fig2):
    v = fig2["values"]
    for app in ("lammps", "sw4", "comd"):
        o_mpich = _overhead(v, app, "mana+vid/mpich", "native/mpich")
        o_ompi = _overhead(v, app, "mana+vid/openmpi", "native/openmpi")
        assert o_ompi > o_mpich, app


def test_lammps_overheads_in_paper_band(fig2):
    v = fig2["values"]
    o_mpich = _overhead(v, "lammps", "mana+vid/mpich", "native/mpich")
    o_ompi = _overhead(v, "lammps", "mana+vid/openmpi", "native/openmpi")
    # paper: +32% / +37%; allow a generous band around the shape
    assert 0.20 < o_mpich < 0.45
    assert 0.25 < o_ompi < 0.55


def test_sw4_overheads_in_paper_band(fig2):
    v = fig2["values"]
    o_mpich = _overhead(v, "sw4", "mana+vid/mpich", "native/mpich")
    o_ompi = _overhead(v, "sw4", "mana+vid/openmpi", "native/openmpi")
    # paper: +15% / +18%
    assert 0.08 < o_mpich < 0.25
    assert o_mpich < o_ompi < 0.30


def test_low_rate_apps_have_low_overhead(fig2):
    v = fig2["values"]
    for app in ("lulesh", "hpcg"):
        assert _overhead(v, app, "mana+vid/mpich") < 0.10, app


def test_virtid_not_slower_than_legacy_on_mpich(fig2):
    v = fig2["values"]
    for app in E.FIG2_APPS:
        legacy = v[app]["mana/mpich"]
        new = v[app]["mana+vid/mpich"]
        assert new <= legacy * 1.002, app  # up-to-1.6% improvement claim


def test_native_runtimes_equal_across_impls(fig2):
    # Native runtimes are compute-dominated; MPICH vs Open MPI must be
    # within noise of each other (the paper normalizes per-impl anyway).
    v = fig2["values"]
    for app in E.FIG2_APPS:
        assert v[app]["native/openmpi"] == pytest.approx(
            v[app]["native/mpich"], rel=0.02
        )
