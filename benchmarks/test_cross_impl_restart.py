"""Cross-implementation restart ([GPC19] §3.6 + paper §9 future work).

Stage 1: the primitives-only GROMACS proxy (the historically demonstrated
case).  Stage 2: CoMD with user communicators and datatypes — the full
interoperability the implementation-oblivious virtual ids enable.
"""

import pytest

from benchmarks.conftest import save_result
from repro.harness import experiments as E


@pytest.fixture(scope="module")
def cross():
    return E.cross_impl_restart(scale=0.25)


def test_cross_impl_runs_and_saves(benchmark):
    out = benchmark.pedantic(
        E.cross_impl_restart, kwargs=dict(scale=0.25), rounds=1, iterations=1
    )
    save_result("cross_impl_restart", out["text"])
    assert all(r["match"] for r in out["data"])


def test_primitives_only_case(cross):
    gromacs = next(r for r in cross["data"] if r["app"] == "gromacs")
    assert gromacs["chain"] == ["mpich", "openmpi"]
    assert gromacs["match"]


def test_full_featured_chain(cross):
    comd = next(r for r in cross["data"] if r["app"] == "comd")
    assert comd["chain"] == ["mpich", "openmpi", "exampi"]
    assert comd["match"]


def test_results_bitwise_identical(cross):
    # Deterministic numerics: the cross-restart results are not merely
    # close — they are the same floats.
    assert all(r["bitwise_equal"] for r in cross["data"])
