"""Section 6.3 — context switches per second per application.

The paper's measured rates (job aggregate): CoMD 3.7M @27r, HPCG 4.7M
@56r, LAMMPS 22.9M @56r, LULESH 1.3M @27r, SW4 12.5M @56r.  The shape
claims: the per-rank rate ordering, and quantitative agreement with the
calibration targets (the mechanism driving every overhead figure).
"""

import pytest

from benchmarks.conftest import RANKS_CAP, SCALE, save_result
from repro.harness import experiments as E


@pytest.fixture(scope="module")
def sec63(case_cache):
    return E.section63(scale=SCALE, ranks_cap=RANKS_CAP, cache=case_cache)


def test_section63_runs_and_saves(benchmark, case_cache):
    out = benchmark.pedantic(
        E.section63,
        kwargs=dict(scale=SCALE, ranks_cap=RANKS_CAP, cache=case_cache),
        rounds=1, iterations=1,
    )
    save_result("section63", out["text"])
    r = {a: d["measured_cs_per_rank_s"] for a, d in out["data"].items()}
    assert r["lammps"] > r["sw4"] > r["comd"] > r["hpcg"] > r["lulesh"]
    for app, d in out["data"].items():
        ratio = d["measured_cs_per_rank_s"] / d["paper_cs_per_rank_s"]
        assert 0.65 < ratio < 1.35, (app, ratio)


def test_rate_ordering_matches_paper(sec63):
    r = {a: d["measured_cs_per_rank_s"] for a, d in sec63["data"].items()}
    assert r["lammps"] > r["sw4"] > r["comd"] > r["hpcg"] > r["lulesh"]


def test_rates_match_paper_within_35_percent(sec63):
    for app, d in sec63["data"].items():
        ratio = d["measured_cs_per_rank_s"] / d["paper_cs_per_rank_s"]
        assert 0.65 < ratio < 1.35, (app, ratio)


def test_order_of_magnitude_spread(sec63):
    """§6.3: 'the quantity of switches differs by as much as an order of
    magnitude between applications.'"""
    rates = [d["measured_cs_per_rank_s"] for d in sec63["data"].values()]
    assert max(rates) / min(rates) > 6
