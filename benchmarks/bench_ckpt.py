"""Checkpoint-pipeline bench: format-5 chunked dedup + compression.

Writes ``benchmarks/results/BENCH_ckpt.json`` (the baseline that
``python -m repro ckpt-smoke`` regresses against) and prints the
acceptance numbers: warm incremental saves must write >= 100x fewer
payload bytes than a cold format-5 save, and the rank-observed
warm-save wall-clock in the async configuration (the snapshot; the
drain overlaps compute) must be <= 2x a format-4 save.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_ckpt.py [--payload-mb M]
        [--compress-level 1,3,6,9]
"""

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.harness.bench import default_ckpt_baseline_path, run_ckpt_bench


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--payload-mb", type=float, default=4.0,
                    help="per-rank payload size in MB")
    ap.add_argument("--ranks", type=int, default=4)
    ap.add_argument("--compress-level", default=None, metavar="L1,L2,...",
                    help="comma-separated zlib levels to sweep in "
                         "addition to the default run (e.g. 1,3,6,9)")
    ap.add_argument("--out", default=default_ckpt_baseline_path())
    args = ap.parse_args()

    levels = None
    if args.compress_level:
        levels = [int(v) for v in args.compress_level.split(",") if v]
    result = run_ckpt_bench(
        out_path=args.out, payload_mb=args.payload_mb, nranks=args.ranks,
        compress_levels=levels,
    )
    print(json.dumps(result, indent=2, sort_keys=True))
    b = result["ckpt"]
    print(
        f"\ncold save     : {b['cold']['mb_per_s']:.1f} MB/s "
        f"({b['cold']['bytes_written']:,} bytes, "
        f"{b['cold']['chunks_written']} chunks)"
    )
    if b.get("cold_pooled"):
        print(
            f"cold (pooled) : {b['cold_pooled']['mb_per_s']:.1f} MB/s "
            f"({b['save_workers']} workers, ~256 KiB chunk runs)"
        )
    print(
        f"warm save     : {b['warm_identical']['mb_per_s']:.1f} MB/s "
        f"({b['warm_identical']['bytes_written']:,} bytes, "
        f"{b['warm_identical']['chunks_reused']} chunks reused)"
    )
    a = b["async_save"]
    print(
        f"async save    : {a['snapshot_seconds']*1000:.1f} ms blocked "
        f"(snapshot), {a['drain_seconds']*1000:.1f} ms drained behind "
        f"compute ({a['compute_iters_during_drain']} iterations "
        f"overlapped)"
    )
    print(
        f"vs format 4   : sync warm {b['warm_vs_format4_wallclock']:.2f}x, "
        f"async blocked {b['blocked_vs_format4_wallclock']:.2f}x wall-clock"
    )
    print(
        f"restore       : {b['restore']['mb_per_s']:.1f} MB/s "
        f"(chunk-verified reassembly)"
    )
    print(
        f"dedup factor  : {b['bytes_dedup_factor']:.1f}x fewer bytes "
        f"(identical state), {b['mutated_dedup_factor']:.1f}x "
        f"(2% mutated)"
    )
    for lvl, s in sorted(
        result.get("compress_level_sweep", {}).items(),
        key=lambda kv: int(kv[0]),
    ):
        print(
            f"level {lvl}       : cold {s['cold']['mb_per_s']:.1f} MB/s, "
            f"{s['cold']['bytes_written']:,} bytes on disk"
        )
    print(f"baseline      : {args.out}")
    # The acceptance bars: warm >= 100x fewer bytes than cold, ranks
    # blocked <= 2x a format-4 save.
    ok = (b["bytes_dedup_factor"] >= 100.0
          and b["blocked_vs_format4_wallclock"] <= 2.0)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
