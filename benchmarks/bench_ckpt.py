"""Checkpoint-pipeline bench: format-5 chunked dedup + compression.

Writes ``benchmarks/results/BENCH_ckpt.json`` (the baseline that
``python -m repro ckpt-smoke`` regresses against) and prints the
acceptance number: warm incremental saves must write >= 5x fewer
payload bytes than a cold format-5 save.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_ckpt.py [--payload-mb M]
"""

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.harness.bench import default_ckpt_baseline_path, run_ckpt_bench


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--payload-mb", type=float, default=4.0,
                    help="per-rank payload size in MB")
    ap.add_argument("--ranks", type=int, default=4)
    ap.add_argument("--out", default=default_ckpt_baseline_path())
    args = ap.parse_args()

    result = run_ckpt_bench(
        out_path=args.out, payload_mb=args.payload_mb, nranks=args.ranks
    )
    print(json.dumps(result, indent=2, sort_keys=True))
    b = result["ckpt"]
    print(
        f"\ncold save     : {b['cold']['mb_per_s']:.1f} MB/s "
        f"({b['cold']['bytes_written']:,} bytes, "
        f"{b['cold']['chunks_written']} chunks)"
    )
    print(
        f"warm save     : {b['warm_identical']['mb_per_s']:.1f} MB/s "
        f"({b['warm_identical']['bytes_written']:,} bytes, "
        f"{b['warm_identical']['chunks_reused']} chunks reused)"
    )
    print(
        f"restore       : {b['restore']['mb_per_s']:.1f} MB/s "
        f"(chunk-verified reassembly)"
    )
    print(
        f"dedup factor  : {b['bytes_dedup_factor']:.1f}x fewer bytes "
        f"(identical state), {b['mutated_dedup_factor']:.1f}x "
        f"(2% mutated)"
    )
    print(f"baseline      : {args.out}")
    # The acceptance bar: warm incremental >= 5x fewer bytes than cold.
    return 0 if b["bytes_dedup_factor"] >= 5.0 else 1


if __name__ == "__main__":
    sys.exit(main())
