"""Table 3 — checkpoint sizes, times, and per-rank bandwidth (NFSv3).

Shape claims: image sizes span CoMD's 32 MB to HPCG's 934 MB; checkpoint
time grows with image size; **MB/s/rank rises with image size** (the
fixed per-checkpoint cost amortizes) — the trend the paper highlights.
"""

import pytest

from benchmarks.conftest import RANKS_CAP, SCALE, save_result
from repro.harness import experiments as E


@pytest.fixture(scope="module")
def table3():
    return E.table3(
        scale=min(SCALE, 0.15),
        ranks_cap=min(RANKS_CAP or 12, 12),
    )


def test_table3_runs_and_saves(benchmark):
    out = benchmark.pedantic(
        E.table3,
        kwargs=dict(scale=min(SCALE, 0.15), ranks_cap=min(RANKS_CAP or 12, 12)),
        rounds=1, iterations=1,
    )
    save_result("table3", out["text"])
    rows = sorted(out["data"].values(), key=lambda d: d["size_mb"])
    rates = [d["mb_per_s_per_rank"] for d in rows]
    assert rates == sorted(rates)  # MB/s/rank rises with image size


def test_image_sizes_match_paper(table3):
    for app, d in table3["data"].items():
        paper_mb = d["paper"]["size_mb"]
        assert d["size_mb"] == pytest.approx(paper_mb, rel=0.06), app


def test_checkpoint_times_in_paper_band(table3):
    for app, d in table3["data"].items():
        assert d["ckpt_time"] == pytest.approx(
            d["paper"]["ckpt_time"], rel=0.6
        ), (app, d["ckpt_time"])


def test_mbps_per_rank_rises_with_size(table3):
    rows = sorted(table3["data"].values(), key=lambda d: d["size_mb"])
    rates = [d["mb_per_s_per_rank"] for d in rows]
    assert rates == sorted(rates)


def test_extremes_match_paper_direction(table3):
    d = table3["data"]
    assert d["comd"]["mb_per_s_per_rank"] < 6       # paper: 3.6
    assert d["hpcg"]["mb_per_s_per_rank"] > 9       # paper: 12.8
    assert d["hpcg"]["ckpt_time"] > 4 * d["comd"]["ckpt_time"]
