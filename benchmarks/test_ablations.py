"""Ablations: ggid policy (§9) and virtual-id lookup cost (§4.1/§6.1)."""

import pytest

from benchmarks.conftest import save_result
from repro.harness import experiments as E


class TestGgidPolicy:
    @pytest.fixture(scope="class")
    def ggid(self):
        return E.ablation_ggid(churn=200, nranks=8)

    def test_runs_and_saves(self, benchmark):
        out = benchmark.pedantic(
            E.ablation_ggid, kwargs=dict(churn=200, nranks=8),
            rounds=1, iterations=1,
        )
        save_result("ablation_ggid", out["text"])

    def test_lazy_avoids_per_create_hashing(self, ggid):
        d = ggid["data"]
        assert d["lazy"]["ggid_seconds"] == 0.0
        assert d["eager"]["ggid_seconds"] > 0.0

    def test_hybrid_hashes_at_most_once_per_membership(self, ggid):
        d = ggid["data"]
        # churn reuses two memberships; hybrid without a checkpoint never
        # finalizes, so like lazy it pays nothing during the run.
        assert d["hybrid"]["ggid_seconds"] <= d["eager"]["ggid_seconds"]

    def test_lazy_not_slower_than_eager(self, ggid):
        d = ggid["data"]
        assert d["lazy"]["runtime"] <= d["eager"]["runtime"] * 1.01


class TestVidLookup:
    @pytest.fixture(scope="class")
    def vid(self):
        return E.ablation_vid_lookup(n=20000)

    def test_runs_and_saves(self, benchmark):
        out = benchmark.pedantic(
            E.ablation_vid_lookup, kwargs=dict(n=20000),
            rounds=1, iterations=1,
        )
        save_result("ablation_vid_lookup", out["text"])

    def test_new_design_measurably_faster(self, vid):
        d = vid["data"]
        assert (
            d["new"]["wall_per_lookup_ns"] < d["legacy"]["wall_per_lookup_ns"]
        )

    def test_new_reverse_faster(self, vid):
        d = vid["data"]
        assert (
            d["new"]["wall_per_reverse_ns"]
            < d["legacy"]["wall_per_reverse_ns"]
        )

    def test_modeled_gain_matches_paper(self, vid):
        # §6.1: "the new virtId feature can improve performance by up to
        # 1.6% (in the case of LAMMPS)"
        gain = vid["data"]["modeled"]["lammps_runtime_gain"]
        assert 0.008 < gain < 0.025


class TestMicroBenchmarks:
    """Real wall-clock microbenchmarks of the hot paths (pytest-benchmark
    used conventionally here)."""

    def test_bench_new_vid_lookup(self, benchmark):
        from repro.mana.records import GroupRecord
        from repro.mana.virtid import VirtualIdTable
        from repro.mpi.api import HandleKind

        t = VirtualIdTable(32)
        vh = t.attach(HandleKind.GROUP, GroupRecord((0, 1)), 7)
        benchmark(lambda: t.lookup(vh, HandleKind.GROUP))

    def test_bench_legacy_vid_lookup(self, benchmark):
        from repro.mana.legacy import LegacyVirtualIdMaps
        from repro.mana.records import GroupRecord
        from repro.mpi.api import HandleKind

        t = LegacyVirtualIdMaps(32)
        vh = t.attach(HandleKind.GROUP, GroupRecord((0, 1)), 7)
        benchmark(lambda: t.lookup(vh, HandleKind.GROUP))

    def test_bench_datatype_pack_vector(self, benchmark):
        import numpy as np

        from repro.mpi.datatypes import NamedType, VectorType

        t = VectorType(64, 1, 2, NamedType("MPI_DOUBLE", "f8"))
        buf = np.arange(64 * 2, dtype=np.float64)
        benchmark(lambda: t.pack(buf, 1))

    def test_bench_fabric_post_match(self, benchmark):
        from repro.fabric.network import Fabric
        from repro.simtime.cost import CostModel

        fab = Fabric(2, CostModel.discovery())
        payload = b"x" * 1024

        def roundtrip():
            fab.post_send(0, 1, 1, 10, payload, 0.0)
            fab.try_match(1, 0, 1, 10)

        benchmark(roundtrip)

    def test_bench_ggid(self, benchmark):
        from repro.mpi.group import ggid_of

        ranks = tuple(range(64))
        benchmark(lambda: ggid_of(ranks))
