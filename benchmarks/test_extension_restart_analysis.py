"""Extension bench: restart time vs image size (DESIGN.md ablation list).

Not a paper table — the paper reports checkpoint times only (Table 3);
this measures the symmetric restart cost under the same NFSv3 model.
"""

import pytest

from benchmarks.conftest import save_result
from repro.harness import experiments as E


def test_restart_analysis(benchmark):
    out = benchmark.pedantic(
        E.restart_analysis, kwargs=dict(scale=0.15, ranks_cap=8),
        rounds=1, iterations=1,
    )
    save_result("extension_restart_analysis", out["text"])
    data = out["data"]
    # restart time grows with image size, same amortization shape
    rows = sorted(data.values(), key=lambda d: d["size_mb"])
    times = [d["restart_time"] for d in rows]
    assert times == sorted(times)
    assert all(d["restart_time"] > 0 for d in data.values())
    # big images: restart within 2x of checkpoint (read ~ write model)
    big = data["hpcg"]
    assert 0.5 < big["restart_time"] / big["ckpt_time"] < 2.0
