"""Tables 1 and 2 — the input configuration tables."""

from benchmarks.conftest import save_result
from repro.harness import experiments as E


def test_table1_inputs(benchmark):
    out = benchmark.pedantic(E.table1, rounds=1, iterations=1)
    save_result("table1", out["text"])
    rows = {r[0]: (r[1], r[2]) for r in out["data"]}
    assert rows["CoMD"] == (27, "-N 10000")
    assert rows["HPCG"][0] == 56
    assert rows["LAMMPS"] == (56, "-in bench/in.lj (run=50000)")
    assert rows["LULESH"] == (27, "-p -i 100 -s 100")
    assert rows["SW4"] == (56, "tests/curvimr/energy-1.in")


def test_table2_inputs(benchmark):
    out = benchmark.pedantic(E.table2, rounds=1, iterations=1)
    save_result("table2", out["text"])
    rows = {r[0]: (r[1], r[2]) for r in out["data"]}
    assert rows["CoMD"] == (64, "-N 30000")
    assert rows["LAMMPS"][0] == 64
    assert rows["SW4"][0] == 64
