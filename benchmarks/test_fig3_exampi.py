"""Figure 3 — ExaMPI runtimes on Discovery.

Shape claims (paper §6.2): MANA+virtId makes ExaMPI checkpointable at
all (point of novelty #1); overheads are comparable to MPICH with a
slightly higher tendency; only the ExaMPI-compatible application subset
runs (HPCG and SW4 are excluded by ExaMPI's missing functions).
"""

import pytest

from benchmarks.conftest import RANKS_CAP, SCALE, save_result
from repro.harness import experiments as E


@pytest.fixture(scope="module")
def fig3(case_cache):
    return E.figure3(scale=SCALE, ranks_cap=RANKS_CAP, cache=case_cache)


def test_figure3_runs_and_saves(benchmark, case_cache):
    out = benchmark.pedantic(
        E.figure3,
        kwargs=dict(scale=SCALE, ranks_cap=RANKS_CAP, cache=case_cache),
        rounds=1, iterations=1,
    )
    save_result("figure3", out["text"])
    assert set(out["values"]) == set(E.FIG3_APPS) == {"comd", "lammps", "lulesh"}
    v = out["values"]
    for app in E.FIG3_APPS:
        assert v[app]["mana+vid/exampi"] is not None  # novelty #1


def test_exampi_apps_are_the_compatible_subset(fig3):
    assert set(fig3["values"]) == {"comd", "lammps", "lulesh"}


def test_mana_virtid_completes_on_exampi(fig3):
    for app in E.FIG3_APPS:
        assert fig3["values"][app]["mana+vid/exampi"] is not None


def test_exampi_overhead_at_least_mpich(fig3):
    v = fig3["values"]
    for app in E.FIG3_APPS:
        o_mpich = v[app]["mana+vid/mpich"] / v[app]["native/mpich"] - 1
        o_exa = v[app]["mana+vid/exampi"] / v[app]["native/exampi"] - 1
        assert o_exa >= o_mpich * 0.95, app


def test_lammps_highest_overhead_on_exampi(fig3):
    v = fig3["values"]
    ov = {
        a: v[a]["mana+vid/exampi"] / v[a]["native/exampi"] - 1
        for a in E.FIG3_APPS
    }
    assert ov["lammps"] > ov["comd"] > ov["lulesh"]


def test_incompatible_apps_cannot_run_on_exampi():
    from repro.harness.runner import run_case
    from repro.util.errors import ReproError

    with pytest.raises(ReproError, match="does not implement"):
        run_case("sw4", "exampi", False, scale=0.05, ranks_cap=4)
