"""Benchmark configuration.

Every benchmark regenerates one table or figure of the paper
(DESIGN.md §3 maps experiment -> bench file).  Scale knobs:

* ``REPRO_BENCH_SCALE`` — fraction of the paper's loop blocks
  (default 0.12; 1.0 = the paper's full iteration counts);
* ``REPRO_BENCH_RANKS`` — rank cap (default 8; set 0/empty for the
  paper's full rank counts, e.g. 56).

Shapes (who wins, orderings, crossovers) are scale-invariant because the
workload calibration targets per-rank *rates*; full scale only tightens
the absolute numbers.

Rendered tables/figures are written to ``benchmarks/results/*.txt`` so
the regenerated artifacts survive the pytest run.
"""

import os

import pytest

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.12"))
_ranks = os.environ.get("REPRO_BENCH_RANKS", "8")
RANKS_CAP = int(_ranks) if _ranks and int(_ranks) > 0 else None

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def save_result(name: str, text: str) -> None:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as f:
        f.write(text + "\n")


@pytest.fixture(scope="session")
def case_cache():
    """Shared across benches: native baselines are reused by several
    figures."""
    from repro.harness.runner import CaseCache

    return CaseCache()
