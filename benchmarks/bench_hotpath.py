"""Hot-path bench: translation fast lane + parallel harness speedups.

Writes ``benchmarks/results/BENCH_hotpath.json`` (the baseline that
``python -m repro bench-smoke`` regresses against).

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_hotpath.py [--jobs N]

Knobs mirror the figure benches: ``REPRO_BENCH_SCALE`` and
``REPRO_BENCH_RANKS`` size the Figure 2 sweep.
"""

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.harness.bench import default_baseline_path, run_hotpath_bench


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--jobs", type=int, default=4,
                    help="workers for the parallel figure2 sweep")
    ap.add_argument("--n", type=int, default=200_000,
                    help="lookups per vid-microbenchmark timing")
    ap.add_argument("--out", default=default_baseline_path())
    args = ap.parse_args()

    scale = float(os.environ.get("REPRO_BENCH_SCALE", "0.12"))
    ranks = os.environ.get("REPRO_BENCH_RANKS", "8")
    ranks_cap = int(ranks) if ranks and int(ranks) > 0 else None

    result = run_hotpath_bench(
        out_path=args.out, n=args.n, scale=scale, ranks_cap=ranks_cap,
        jobs=args.jobs,
    )
    print(json.dumps(result, indent=2, sort_keys=True))
    vid = result["vid"]
    fig = result["figure2"]
    print(
        f"\nvid fast lane : {vid['fast_lookups_per_sec'] / 1e6:.2f} M/s "
        f"({vid['speedup_vs_legacy']:.1f}x legacy design, "
        f"{vid['speedup_vs_slow']:.1f}x uncached path)"
    )
    print(
        f"figure2 sweep : {fig['serial_seconds']:.1f}s serial -> "
        f"{fig['parallel_seconds']:.1f}s with --jobs {fig['jobs']} "
        f"({fig['speedup']:.1f}x), identical={fig['identical']}"
    )
    print(f"baseline      : {args.out}")
    return 0 if fig["identical"] else 1


if __name__ == "__main__":
    sys.exit(main())
