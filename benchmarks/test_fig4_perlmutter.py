"""Figure 4 — Cray MPI on Perlmutter (userspace FSGSBASE).

Shape claims (paper §6.4): the large Discovery overheads disappear when
FSGSBASE is available (~5% or less; LAMMPS 32.2% -> 5.4%); virtId can
still improve on standard MANA (SW4 5.5% -> 4.2%).
"""

import pytest

from benchmarks.conftest import RANKS_CAP, SCALE, save_result
from repro.harness import experiments as E


@pytest.fixture(scope="module")
def fig4(case_cache):
    return E.figure4(scale=SCALE, ranks_cap=RANKS_CAP, cache=case_cache)


def _ov(values, app, case):
    return values[app][case] / values[app]["native/craympi"] - 1


def test_figure4_runs_and_saves(benchmark, case_cache):
    out = benchmark.pedantic(
        E.figure4,
        kwargs=dict(scale=SCALE, ranks_cap=RANKS_CAP, cache=case_cache),
        rounds=1, iterations=1,
    )
    save_result("figure4", out["text"])
    assert set(out["values"]) == set(E.FIG4_APPS)
    v = out["values"]
    for app in E.FIG4_APPS:
        assert _ov(v, app, "mana+vid/craympi") < 0.09, app
        assert v[app]["mana+vid/craympi"] <= v[app]["mana/craympi"], app


def test_fsgsbase_overheads_small(fig4):
    for app in E.FIG4_APPS:
        assert _ov(fig4["values"], app, "mana+vid/craympi") < 0.09, app
        assert _ov(fig4["values"], app, "mana/craympi") < 0.13, app


def test_lammps_dramatic_reduction_vs_discovery(fig4, case_cache):
    """LAMMPS: 32% on Discovery vs ~5% on Perlmutter."""
    disc_nat = case_cache.get(
        app_name="lammps", impl="mpich", mana=False, vid_design="new",
        platform="discovery", scale=SCALE, ranks_cap=RANKS_CAP,
    )
    disc_mana = case_cache.get(
        app_name="lammps", impl="mpich", mana=True, vid_design="new",
        platform="discovery", scale=SCALE, ranks_cap=RANKS_CAP,
    )
    o_disc = disc_mana.runtime / disc_nat.runtime - 1
    o_perl = _ov(fig4["values"], "lammps", "mana/craympi")
    assert o_perl < o_disc / 3


def test_virtid_improves_on_standard_mana(fig4):
    """SW4's 5.5% -> 4.2% improvement: virtId strictly faster here."""
    v = fig4["values"]
    for app in E.FIG4_APPS:
        assert v[app]["mana+vid/craympi"] <= v[app]["mana/craympi"], app


def test_perlmutter_native_faster_than_discovery(fig4, case_cache):
    disc = case_cache.get(
        app_name="comd", impl="mpich", mana=False, vid_design="new",
        platform="discovery", scale=SCALE, ranks_cap=RANKS_CAP,
    )
    perl = fig4["values"]["comd"]["native/craympi"]
    assert perl < disc.runtime  # EPYC 7763 vs Cascade Lake
