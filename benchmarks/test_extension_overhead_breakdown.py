"""Extension bench: MANA runtime decomposition per application.

Quantifies the paper's §6.3 argument: the mana-overhead share of runtime
orders exactly like the measured context-switch rates.
"""

from benchmarks.conftest import save_result
from repro.harness import experiments as E


def test_overhead_breakdown(benchmark):
    out = benchmark.pedantic(
        E.overhead_breakdown, kwargs=dict(scale=0.12, ranks_cap=8),
        rounds=1, iterations=1,
    )
    save_result("extension_overhead_breakdown", out["text"])
    d = out["data"]

    def share(app):
        return d[app]["mana_overhead"] / d[app]["total"]

    # overhead share orders like the §6.3 CS rates
    assert share("lammps") > share("sw4") > share("comd")
    assert share("comd") > share("hpcg") > share("lulesh")
    # compute dominates everywhere (these are real HPC workloads)
    for app in d:
        assert d[app]["compute"] / d[app]["total"] > 0.6
        # accounts decompose the runtime completely
        parts = sum(v for k, v in d[app].items() if k != "total")
        assert abs(parts - d[app]["total"]) < 1e-6 * d[app]["total"]
