"""Bit-field packing helpers.

Both the MPICH-style physical handles (kind bits | level-1 index |
level-2 index) and MANA's new 32-bit virtual ids (kind tag | ggid/index)
are dense bit-packed integers.  This module provides one declarative
encoder/decoder used by both, so the encodings are tested once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


def mask(nbits: int) -> int:
    """Return an ``nbits``-wide all-ones mask (``mask(4) == 0xF``)."""
    if nbits < 0:
        raise ValueError(f"negative field width: {nbits}")
    return (1 << nbits) - 1


@dataclass(frozen=True)
class _Field:
    name: str
    width: int
    shift: int


class BitField:
    """A fixed-width integer laid out as named contiguous bit fields.

    Fields are declared most-significant first, e.g.::

        layout = BitField(32, [("kind", 4), ("index", 28)])
        word = layout.pack(kind=2, index=77)
        layout.unpack(word)  # {"kind": 2, "index": 77}

    The total field width must equal the declared word width, so layouts
    are self-checking.
    """

    def __init__(self, width: int, fields: Sequence[Tuple[str, int]]):
        total = sum(w for _, w in fields)
        if total != width:
            raise ValueError(
                f"field widths sum to {total}, expected word width {width}"
            )
        self.width = width
        self._fields: List[_Field] = []
        shift = width
        for name, w in fields:
            if w <= 0:
                raise ValueError(f"field {name!r} has non-positive width {w}")
            shift -= w
            self._fields.append(_Field(name, w, shift))
        self._by_name: Dict[str, _Field] = {f.name: f for f in self._fields}
        if len(self._by_name) != len(self._fields):
            raise ValueError("duplicate field names")

    @property
    def field_names(self) -> Tuple[str, ...]:
        return tuple(f.name for f in self._fields)

    def capacity(self, name: str) -> int:
        """Number of distinct values field ``name`` can hold."""
        return 1 << self._by_name[name].width

    def pack(self, **values: int) -> int:
        """Pack named field values into a single integer.

        Every declared field must be given; values must fit their width.
        """
        if set(values) != set(self._by_name):
            missing = set(self._by_name) - set(values)
            extra = set(values) - set(self._by_name)
            raise ValueError(f"bad fields: missing={missing}, extra={extra}")
        word = 0
        for f in self._fields:
            v = values[f.name]
            if not 0 <= v <= mask(f.width):
                raise ValueError(
                    f"value {v} does not fit field {f.name!r} ({f.width} bits)"
                )
            word |= v << f.shift
        return word

    def unpack(self, word: int) -> Dict[str, int]:
        """Decode an integer into its named fields."""
        if not 0 <= word <= mask(self.width):
            raise ValueError(f"word {word:#x} exceeds {self.width} bits")
        return {f.name: (word >> f.shift) & mask(f.width) for f in self._fields}

    def extract(self, word: int, name: str) -> int:
        """Extract a single field without decoding the rest."""
        f = self._by_name[name]
        return (word >> f.shift) & mask(f.width)

    def replace(self, word: int, **values: int) -> int:
        """Return ``word`` with the given fields overwritten."""
        for name, v in values.items():
            f = self._by_name[name]
            if not 0 <= v <= mask(f.width):
                raise ValueError(
                    f"value {v} does not fit field {name!r} ({f.width} bits)"
                )
            word = (word & ~(mask(f.width) << f.shift)) | (v << f.shift)
        return word


def pack_fields(layout: BitField, **values: int) -> int:
    """Functional alias for :meth:`BitField.pack`."""
    return layout.pack(**values)


def unpack_fields(layout: BitField, word: int) -> Dict[str, int]:
    """Functional alias for :meth:`BitField.unpack`."""
    return layout.unpack(word)
