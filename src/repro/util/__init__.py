"""Utility layer: errors, bit-field helpers, op registry, deterministic RNG.

These are the foundation pieces shared by every other subpackage.  Nothing
in here knows about MPI; the MPI-shaped errors live here only so that the
fabric, the simulated implementations, and MANA can all raise the same
exception types without import cycles.
"""

from repro.util.errors import (
    ReproError,
    MpiError,
    MpiAbort,
    InvalidHandleError,
    IncompatibleHandleError,
    UnsupportedFunctionError,
    TruncationError,
    CheckpointError,
    RestartError,
)
from repro.util.bits import BitField, pack_fields, unpack_fields, mask
from repro.util.registry import OpRegistry, FunctionRegistry
from repro.util.rng import DeterministicRng

__all__ = [
    "ReproError",
    "MpiError",
    "MpiAbort",
    "InvalidHandleError",
    "IncompatibleHandleError",
    "UnsupportedFunctionError",
    "TruncationError",
    "CheckpointError",
    "RestartError",
    "BitField",
    "pack_fields",
    "unpack_fields",
    "mask",
    "OpRegistry",
    "FunctionRegistry",
    "DeterministicRng",
]
