"""Exception hierarchy for the whole reproduction.

The hierarchy mirrors the failure classes the paper's system cares about:

* ``MpiError`` — errors raised by a simulated MPI library itself
  (the moral equivalent of a nonzero MPI error class).
* ``InvalidHandleError`` / ``IncompatibleHandleError`` — handle-translation
  failures.  ``IncompatibleHandleError`` is the failure mode of MANA's
  *legacy* virtual-id design when pointed at a pointer-handle MPI
  implementation (Open MPI, ExaMPI); the new design never raises it.
* ``UnsupportedFunctionError`` — a call outside an implementation's
  declared subset (Section 5 of the paper).
* ``CheckpointError`` / ``RestartError`` — failures in the MANA
  checkpoint/restart pipeline.
"""


class ReproError(Exception):
    """Base class for every error raised by this package."""


class MpiError(ReproError):
    """An error reported by a simulated MPI implementation.

    ``error_class`` carries a coarse MPI-style error class string, e.g.
    ``"MPI_ERR_COMM"``, ``"MPI_ERR_TYPE"``, ``"MPI_ERR_TRUNCATE"``.
    """

    def __init__(self, message: str, error_class: str = "MPI_ERR_OTHER"):
        super().__init__(message)
        self.error_class = error_class


class MpiAbort(MpiError):
    """Raised by ``MPI_Abort``; tears down the whole simulated job."""

    def __init__(self, errorcode: int = 1, message: str = "MPI_Abort called"):
        super().__init__(message, error_class="MPI_ABORT")
        self.errorcode = errorcode


class InvalidHandleError(MpiError):
    """A handle that does not name any live MPI object."""

    def __init__(self, message: str):
        super().__init__(message, error_class="MPI_ERR_ARG")


class IncompatibleHandleError(ReproError):
    """A virtual-id scheme cannot represent this implementation's handles.

    This is the concrete failure the paper's Section 4.1 describes: 32-bit
    integer virtual ids conflict with implementations whose MPI object
    types are 64-bit pointers.
    """


class UnsupportedFunctionError(MpiError):
    """The MPI implementation does not provide this function (subset impls)."""

    def __init__(self, impl_name: str, func_name: str):
        super().__init__(
            f"{impl_name} does not implement {func_name}",
            error_class="MPI_ERR_UNSUPPORTED_OPERATION",
        )
        self.impl_name = impl_name
        self.func_name = func_name


class TruncationError(MpiError):
    """Receive buffer smaller than the matched message (MPI_ERR_TRUNCATE)."""

    def __init__(self, message: str):
        super().__init__(message, error_class="MPI_ERR_TRUNCATE")


class CheckpointError(ReproError):
    """A failure while quiescing, draining, or writing a checkpoint."""


class CheckpointRoundAborted(CheckpointError):
    """The current checkpoint round was aborted (a rank failed mid-round
    or a stall was detected); the coordinator may retry the round.  Ranks
    catch this inside ``checkpoint_participate`` and re-park."""


class InjectedFault(ReproError):
    """A fault deliberately injected by a :class:`repro.faults.FaultPlan`.

    Distinct from organic failures so recovery traces can label it and
    tests can assert the fault — not some accident — fired."""


class InjectedCrash(InjectedFault):
    """A simulated *process death* at a named store-mutation syscall
    boundary (:class:`repro.faults.CrashPointInjector`).

    Unlike a plain :class:`InjectedFault` — which a live process may
    catch and clean up after — an ``InjectedCrash`` marks its injector
    *dead*: every subsequent shimmed store operation raises too, so
    ``finally`` blocks cannot tidy the store the way a real kill -9
    never would.  Recovery is ``repro fsck``'s job, not the writer's."""


class RestartError(ReproError):
    """A failure while reconstructing MPI objects or upper-half state."""


class IntegrityError(RestartError):
    """A checkpoint image failed its integrity check: truncated file,
    checksum mismatch, or unrecognized header."""


class ElasticRestartError(RestartError):
    """An N-rank checkpoint cannot be restored onto M ranks.

    Raised when the upper-half state pins the old world size in a way
    the elastic-restore protocol (PROTOCOLS.md §12) cannot remap: live
    sub-communicators, cartesian topologies, or pending nonblocking
    requests whose endpoints would move."""


class JobPreempted(ReproError):
    """Raised inside every rank when a checkpoint was requested with
    mode="exit": the job saved its state and is being torn down (the
    preemptible-job scenario of the paper's introduction)."""

    def __init__(self, generation: int):
        super().__init__(
            f"job preempted after writing checkpoint generation {generation}"
        )
        self.generation = generation
