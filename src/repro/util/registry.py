"""Registries for named, picklable callables.

Checkpoint images must be self-describing: a user-defined reduction
operation (``MPI_Op_create``) cannot be pickled as a raw closure and
still be reconstructible in a *new* session.  MANA therefore records the
*name* of the registered function, and restart looks the name up again —
exactly how the real MANA replays ``MPI_Op_create`` with the function
pointer that the restored upper-half memory still contains.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Iterator, Optional


class FunctionRegistry:
    """A process-wide name → callable registry.

    Names are stable across sessions (they are chosen by the caller), so a
    checkpoint image can reference registry entries by name.
    """

    def __init__(self, kind: str):
        self.kind = kind
        self._lock = threading.Lock()
        self._by_name: Dict[str, Callable] = {}

    def register(self, name: str, fn: Callable, *, replace: bool = False) -> Callable:
        """Register ``fn`` under ``name``; returns ``fn`` for decorator use."""
        with self._lock:
            if name in self._by_name and not replace:
                if self._by_name[name] is not fn:
                    raise ValueError(
                        f"{self.kind} registry already has {name!r} "
                        f"bound to a different function"
                    )
            self._by_name[name] = fn
        return fn

    def lookup(self, name: str) -> Callable:
        with self._lock:
            try:
                return self._by_name[name]
            except KeyError:
                raise KeyError(
                    f"no {self.kind} registered under {name!r}; "
                    f"user functions must be registered before restart"
                ) from None

    def name_of(self, fn: Callable) -> Optional[str]:
        """Reverse lookup; returns None when ``fn`` was never registered."""
        with self._lock:
            for name, f in self._by_name.items():
                if f is fn:
                    return name
        return None

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._by_name

    def __iter__(self) -> Iterator[str]:
        with self._lock:
            return iter(sorted(self._by_name))


class OpRegistry(FunctionRegistry):
    """Registry for user-defined MPI reduction functions.

    A reduction function has the signature ``fn(invec, inoutvec)`` and
    reduces elementwise into ``inoutvec`` (numpy semantics), mirroring the
    ``MPI_User_function`` contract.
    """

    def __init__(self) -> None:
        super().__init__("user reduction op")


# The single global op registry used by all simulated jobs.  User apps
# register their reduction functions here once per process.
USER_OPS = OpRegistry()


def user_op(name: str) -> Callable[[Callable], Callable]:
    """Decorator: ``@user_op("my_sum")`` registers a reduction function."""

    def deco(fn: Callable) -> Callable:
        return USER_OPS.register(name, fn)

    return deco
