"""Deterministic, checkpointable random number generation.

Every stochastic choice in the simulation (heap-base randomization,
latency jitter, app initial conditions) flows through a
:class:`DeterministicRng` so that (a) runs are reproducible from a seed
and (b) the RNG state is part of the upper-half checkpoint image and is
restored bit-exactly on restart.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np


class DeterministicRng:
    """A seeded numpy Generator whose state can be captured and restored."""

    def __init__(self, seed: int, stream: str = ""):
        # Mixing the stream name into the seed gives independent,
        # reproducible streams per rank / per subsystem.
        self.seed = seed
        self.stream = stream
        mixed = np.random.SeedSequence([seed, _stable_hash(stream)])
        self._gen = np.random.Generator(np.random.PCG64(mixed))

    # -- draws ---------------------------------------------------------
    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return float(self._gen.uniform(low, high))

    def integers(self, low: int, high: int) -> int:
        return int(self._gen.integers(low, high))

    def normal(self, loc: float = 0.0, scale: float = 1.0) -> float:
        return float(self._gen.normal(loc, scale))

    def array_uniform(self, shape, low: float = 0.0, high: float = 1.0) -> np.ndarray:
        return self._gen.uniform(low, high, size=shape)

    def array_normal(self, shape, loc: float = 0.0, scale: float = 1.0) -> np.ndarray:
        return self._gen.normal(loc, scale, size=shape)

    def shuffle(self, seq) -> None:
        self._gen.shuffle(seq)

    # -- checkpoint support ---------------------------------------------
    def get_state(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "stream": self.stream,
            "bit_generator": self._gen.bit_generator.state,
        }

    def set_state(self, state: Dict[str, Any]) -> None:
        self.seed = state["seed"]
        self.stream = state["stream"]
        self._gen = np.random.Generator(np.random.PCG64())
        self._gen.bit_generator.state = state["bit_generator"]

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "DeterministicRng":
        rng = cls(0)
        rng.set_state(state)
        return rng


def _stable_hash(text: str) -> int:
    """A hash of ``text`` stable across processes (unlike ``hash``)."""
    h = 2166136261
    for ch in text.encode("utf-8"):
        h = (h ^ ch) * 16777619 & 0xFFFFFFFF
    return h
