"""Cost models: kernel profile, network profile, and the combined model.

Calibration philosophy (DESIGN.md §4.6): parameters are set from the
paper's *observable aggregates* —

* the ``prctl(ARCH_SET_FS, ...)`` switch-pair cost is chosen so that an
  application making ~400k lower-half entries per rank-second (LAMMPS'
  22.9M CS/s over 56 ranks) sees ~32% runtime overhead, matching
  Figure 2 and Section 6.3;
* the user-space FSGSBASE switch cost is chosen so the same application
  sees ~5% overhead, matching Figure 4;
* the legacy-vs-new virtual-id lookup gap is chosen so the highest-rate
  application gains up to ~1.6%, matching Section 6.1.

Overheads in the figures then *emerge* from (call rate x per-call cost);
they are not per-application fudge factors.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict


@dataclass(frozen=True)
class KernelProfile:
    """How expensive it is to cross the upper/lower half boundary.

    ``fsgsbase`` selects between the modern user-space instruction
    (Perlmutter, Linux >= 5.9) and the legacy ``prctl`` system call
    (Discovery, Linux 3.10).  ``switch_pair_cost`` is the cost in seconds
    of one entry+exit pair into the lower half.
    """

    name: str
    fsgsbase: bool
    switch_pair_cost: float

    @staticmethod
    def fsgsbase_profile() -> "KernelProfile":
        # ~40 ns per call pair: wrfsbase is single-digit ns, the rest is
        # wrapper bookkeeping.  Together with the lightweight Slingshot
        # software path this yields the ~5% Figure 4 overheads.
        return KernelProfile("fsgsbase", True, 0.025e-6)

    @staticmethod
    def prctl_profile() -> "KernelProfile":
        # ~0.26 us per call pair (two prctl syscalls).  Combined with the
        # wrapper's extra internal MPI calls this yields LAMMPS' +32%
        # (MPICH) / +37% (Open MPI) at its 409k calls/rank/s (Figure 2).
        return KernelProfile("prctl", False, 0.32e-6)


@dataclass(frozen=True)
class NetworkProfile:
    """Latency/bandwidth of the simulated interconnect plus the software
    overhead a given MPI implementation adds per network call.

    ``per_call_overhead`` models the implementation's internal software
    path (progress engine, matching).  The paper observes Open MPI's
    network calls to be slightly slower on the Discovery TCP setup, which
    lengthens MANA's ``MPI_Test`` polling loops and hence its measured
    overhead (Section 6.1); this is the knob that reproduces it.
    """

    name: str
    latency: float            # seconds, first byte
    bandwidth: float          # bytes/second
    per_call_overhead: float  # seconds of library software path per call

    @staticmethod
    def discovery_tcp(per_call_overhead: float = 0.55e-6) -> "NetworkProfile":
        # TCP on the Northeastern "Discovery" cluster: tens of us latency.
        return NetworkProfile("discovery-tcp", 25e-6, 1.2e9, per_call_overhead)

    @staticmethod
    def perlmutter_ss11(per_call_overhead: float = 0.06e-6) -> "NetworkProfile":
        # Slingshot-11 on Perlmutter: ~2 us latency, ~24 GB/s per NIC.
        return NetworkProfile("perlmutter-ss11", 2e-6, 24e9, per_call_overhead)


@dataclass(frozen=True)
class FilesystemProfile:
    """Checkpoint target filesystem (Table 3).

    Checkpoint time for a job is modelled as::

        time = fixed_overhead + total_bytes / aggregate_bandwidth

    capped below by ``per_rank_bandwidth`` for any single rank.  The fixed
    overhead (coordinator barrier + drain + image headers) dominates for
    small images — which is why Table 3's MB/s/rank *rises* with image
    size (CoMD 3.6 MB/s/rank at 32 MB vs HPCG 12.8 MB/s/rank at 934 MB).
    """

    name: str
    fixed_overhead: float       # seconds per checkpoint
    aggregate_bandwidth: float  # bytes/second for the whole job
    per_rank_bandwidth: float   # bytes/second ceiling per rank

    @staticmethod
    def discovery_nfsv3() -> "FilesystemProfile":
        return FilesystemProfile("discovery-nfsv3", 7.0, 800e6, 16e6)

    @staticmethod
    def perlmutter_lustre() -> "FilesystemProfile":
        return FilesystemProfile("perlmutter-lustre", 1.5, 80e9, 2e9)


@dataclass(frozen=True)
class ManaCostProfile:
    """Per-call costs inside MANA's wrapper layer.

    ``vid_cost_new`` is the direct table-index translation of the new
    virtual-id architecture; ``vid_cost_legacy`` is the old design's
    macro-encoded string comparison plus per-type singleton-map lookup
    (Section 4.1).  ``poll_cycle`` is the period of MANA's internal
    ``MPI_Test`` polling loop when wrapping blocking/nonblocking
    completion; each poll is one extra lower-half crossing.
    """

    vid_cost_new: float = 15e-9
    vid_cost_legacy: float = 55e-9
    poll_cycle: float = 20e-6


@dataclass(frozen=True)
class CostModel:
    """The complete timing model for one experimental platform."""

    kernel: KernelProfile
    network: NetworkProfile
    filesystem: FilesystemProfile
    mana: ManaCostProfile = field(default_factory=ManaCostProfile)
    # Relative CPU speed (Discovery Cascade Lake = 1.0); compute segments
    # declared by apps are divided by this.
    cpu_speed: float = 1.0

    # -- derived costs ---------------------------------------------------
    def message_cost(self, nbytes: int) -> float:
        """Time for one point-to-point message of ``nbytes`` on the wire."""
        return self.network.latency + nbytes / self.network.bandwidth

    def library_call_cost(self) -> float:
        """Software cost of entering the MPI library itself (native path)."""
        return self.network.per_call_overhead

    def wrapper_crossing_cost(self, vid_design: str) -> float:
        """Extra cost MANA adds to one wrapped MPI call.

        One entry+exit pair into the lower half plus one virtual-id
        translation.  ``vid_design`` is ``"new"`` or ``"legacy"``.
        """
        vid = (
            self.mana.vid_cost_new
            if vid_design == "new"
            else self.mana.vid_cost_legacy
        )
        return self.kernel.switch_pair_cost + vid

    def compute_cost(self, seconds_at_reference_speed: float) -> float:
        return seconds_at_reference_speed / self.cpu_speed

    def with_kernel(self, kernel: KernelProfile) -> "CostModel":
        return replace(self, kernel=kernel)

    def with_network(self, network: NetworkProfile) -> "CostModel":
        return replace(self, network=network)

    # -- canned platforms -------------------------------------------------
    @staticmethod
    def discovery(per_call_overhead: float = 1.0e-6) -> "CostModel":
        """The local Northeastern cluster of Sections 6.1-6.3 (no FSGSBASE)."""
        return CostModel(
            kernel=KernelProfile.prctl_profile(),
            network=NetworkProfile.discovery_tcp(per_call_overhead),
            filesystem=FilesystemProfile.discovery_nfsv3(),
        )

    @staticmethod
    def perlmutter() -> "CostModel":
        """Perlmutter (Section 6.4): FSGSBASE available, fast network/FS."""
        return CostModel(
            kernel=KernelProfile.fsgsbase_profile(),
            network=NetworkProfile.perlmutter_ss11(),
            filesystem=FilesystemProfile.perlmutter_lustre(),
            cpu_speed=1.35,  # EPYC 7763 vs Cascade Lake, per-core throughput
        )


def checkpoint_time(
    fs: FilesystemProfile, nranks: int, bytes_per_rank: int
) -> float:
    """Job-wide checkpoint time under the Table 3 filesystem model."""
    total = nranks * bytes_per_rank
    agg_time = total / fs.aggregate_bandwidth
    rank_time = bytes_per_rank / fs.per_rank_bandwidth
    return fs.fixed_overhead + max(agg_time, rank_time)


@dataclass(frozen=True)
class CheckpointCostModel:
    """Virtual-time model of the format-5 incremental save pipeline.

    Format 4 pays the full Table 3 I/O cost every generation
    (:func:`checkpoint_time`).  Format 5 splits the cost into the parts
    that scale with the *logical* payload (chunking + hashing: every
    byte is still scanned) and the parts that scale with the bytes
    *actually written* (compression + filesystem I/O, which dedup
    shrinks).  All terms are analytic functions of byte counts — never
    wall-clock — so recovery traces stay bit-identical across runs and
    hosts regardless of worker-pool scheduling.

    ``save_time`` mirrors :func:`checkpoint_time`'s shape: a fixed
    coordinator overhead plus the max of aggregate- and per-rank-bound
    I/O, but on the written (post-dedup) bytes, plus scan+compress terms.

    **Asynchronous saves** split the same budget in two.  At the
    barrier each rank only *snapshots* — a cheap memory copy of its
    pickled state plus the synchronous share of the coordinator fixed
    overhead (:meth:`snapshot_time`) — and resumes computing; a
    background drainer pays the scan+compress+I/O remainder
    (:meth:`drain_time`).  The invariant
    ``snapshot_time + drain_time == save_time + logical/snapshot_bw``
    makes the snapshot copy the *only* extra cost of going async: all
    other terms are conserved, they just move off the critical path.
    Both terms stay analytic functions of byte counts, so async virtual
    time is exactly as deterministic as synchronous virtual time.
    """

    #: Rolling hash + sha256 over every logical payload byte.
    hash_bandwidth: float = 2e9
    #: zlib over the bytes that actually get stored.
    compress_bandwidth: float = 450e6
    #: memcpy of the pickled view taken at the async snapshot barrier.
    snapshot_bandwidth: float = 8e9
    #: Share of the filesystem fixed overhead paid synchronously at the
    #: barrier (quiesce + drain + coordination); the I/O share rides in
    #: the background drain.
    snapshot_overhead_fraction: float = 0.4

    def save_time(
        self,
        fs: FilesystemProfile,
        nranks: int,
        logical_per_rank: int,
        written_per_rank: int,
    ) -> float:
        scan = logical_per_rank / self.hash_bandwidth
        compress = written_per_rank / self.compress_bandwidth
        total_written = nranks * written_per_rank
        io = max(
            total_written / fs.aggregate_bandwidth,
            written_per_rank / fs.per_rank_bandwidth,
        )
        return fs.fixed_overhead + scan + compress + io

    def snapshot_time(
        self,
        fs: FilesystemProfile,
        nranks: int,
        logical_per_rank: int,
    ) -> float:
        """Synchronous cost of an async checkpoint barrier: the ranks
        copy their pickled state and pay the coordination share of the
        fixed overhead, then resume computing."""
        return (
            fs.fixed_overhead * self.snapshot_overhead_fraction
            + logical_per_rank / self.snapshot_bandwidth
        )

    def drain_time(
        self,
        fs: FilesystemProfile,
        nranks: int,
        logical_per_rank: int,
        written_per_rank: int,
    ) -> float:
        """Background cost of draining one async generation: everything
        :meth:`save_time` charges that :meth:`snapshot_time` did not."""
        return self.save_time(
            fs, nranks, logical_per_rank, written_per_rank
        ) - fs.fixed_overhead * self.snapshot_overhead_fraction

    def restore_time(
        self,
        fs: FilesystemProfile,
        nranks: int,
        logical_per_rank: int,
    ) -> float:
        """Restore always reads the full logical payload back (chunk
        reads + decompress + per-chunk verify)."""
        return checkpoint_time(fs, nranks, logical_per_rank) + (
            logical_per_rank / self.hash_bandwidth
        )


def platform_table() -> Dict[str, CostModel]:
    """Named platforms used by the harness."""
    return {
        "discovery": CostModel.discovery(),
        "perlmutter": CostModel.perlmutter(),
    }
