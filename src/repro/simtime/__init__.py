"""Virtual time: per-rank clocks and the cost models that advance them.

The paper's timings were taken with SBATCH scripts and ``date``; ours are
deterministic virtual seconds.  Three cost sources advance a rank's clock:

* compute segments declared by the proxy applications,
* communication costs charged by the fabric (latency + bytes/bandwidth),
* MANA's per-call overhead (two half-boundary crossings whose cost is the
  :class:`KernelProfile` switch cost, plus virtual-id translation cost).

Causality is enforced at the fabric/collective layer: a receive completes
no earlier than the matching send's timestamp plus latency, and a
collective synchronizes all participants to the maximum entry time.
"""

from repro.simtime.clock import VirtualClock
from repro.simtime.cost import CostModel, KernelProfile, NetworkProfile

__all__ = ["VirtualClock", "CostModel", "KernelProfile", "NetworkProfile"]
