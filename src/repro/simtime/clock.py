"""Per-rank virtual clocks.

Each simulated rank owns one :class:`VirtualClock`.  The clock only moves
forward; ``advance`` adds a cost, ``merge`` implements the causal
max-merge used when a message or collective imposes a lower bound on the
local time (Lamport-style, but with real-valued durations).

The clock is part of the upper-half state: it is checkpointed and
restored so that runtimes measured across a checkpoint/restart remain
meaningful.
"""

from __future__ import annotations

from typing import Any, Dict


class VirtualClock:
    """Monotonic virtual time for one rank, in seconds."""

    __slots__ = ("now", "_accounts")

    def __init__(self, start: float = 0.0):
        self.now = float(start)
        # Per-category accounting (compute/comm/overhead/...), used by the
        # harness to decompose runtimes the way Section 6.3 reasons about
        # context-switch-driven overhead.
        self._accounts: Dict[str, float] = {}

    def advance(self, seconds: float, account: str = "other") -> float:
        """Advance by a non-negative duration; returns the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds}")
        self.now += seconds
        self._accounts[account] = self._accounts.get(account, 0.0) + seconds
        return self.now

    def merge(self, lower_bound: float) -> float:
        """Causal merge: ensure ``now >= lower_bound`` (waiting counts as idle)."""
        if lower_bound > self.now:
            wait = lower_bound - self.now
            self.now = lower_bound
            self._accounts["idle"] = self._accounts.get("idle", 0.0) + wait
        return self.now

    def account(self, name: str) -> float:
        """Total seconds charged to ``name`` so far."""
        return self._accounts.get(name, 0.0)

    def accounts(self) -> Dict[str, float]:
        return dict(self._accounts)

    # -- checkpoint support ---------------------------------------------
    def get_state(self) -> Dict[str, Any]:
        return {"now": self.now, "accounts": dict(self._accounts)}

    def set_state(self, state: Dict[str, Any]) -> None:
        self.now = float(state["now"])
        self._accounts = dict(state["accounts"])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VirtualClock(now={self.now:.6f})"
