"""Per-rank execution context.

The context is what an application's ``setup``/``run`` receive: the MPI
facade, compute regions (which advance the virtual clock and double as
checkpoint-signal delivery points, like MANA's SIGUSR2), and resumable
loops (the cold-restart program counter).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.mana.coordinator import CheckpointKind
from repro.simtime.clock import VirtualClock
from repro.simtime.cost import CostModel


class RankContext:
    """Everything one rank's application interacts with."""

    def __init__(
        self,
        rank: int,
        nranks: int,
        MPI,
        clock: VirtualClock,
        cost_model: CostModel,
        mana=None,
        restarting: bool = False,
        injector=None,
    ):
        self.rank = rank
        self.nranks = nranks
        self.MPI = MPI
        self.clock = clock
        self.cost_model = cost_model
        self.mana = mana
        self.restarting = restarting
        # Optional repro.faults.FaultInjector; None on the hot path.
        self.injector = injector
        self._loops: Dict[str, int] = {}
        self._noise_std = 0.0

    # ------------------------------------------------------------------
    def compute(self, seconds: float, account: str = "compute") -> None:
        """Declare a compute region of ``seconds`` (reference-CPU time).

        Advances the virtual clock and checks for checkpoint intent —
        the stand-in for MANA interrupting computation with a signal.
        With a noise model set (see :meth:`set_compute_noise`), the
        duration is perturbed deterministically per (rank, call index):
        the same seed reproduces the same "OS noise" even across a cold
        restart (the call counter rides in the loop-token dict).
        """
        if self._noise_std > 0.0:
            n = self._loops.get("__compute_calls__", 0)
            self._loops["__compute_calls__"] = n + 1
            seconds *= max(0.2, 1.0 + self._noise_std * self._noise_draw(n))
        self.clock.advance(self.cost_model.compute_cost(seconds), account)
        if self.mana is not None:
            self.mana._maybe_checkpoint()

    def set_compute_noise(self, std: float) -> None:
        """Enable OS/system-noise perturbation of compute regions
        (fractional standard deviation).  Deterministic per seed."""
        if std < 0:
            raise ValueError(f"noise std must be >= 0, got {std}")
        self._noise_std = float(std)

    def _noise_draw(self, n: int) -> float:
        """A stateless ~N(0,1) draw keyed by (seed, rank, call index)."""
        from repro.util.rng import _stable_hash

        seed = getattr(self, "noise_seed", 0)
        total = 0.0
        # Irwin-Hall: sum of 6 uniforms, shifted — cheap and smooth enough.
        for k in range(6):
            h = _stable_hash(f"{seed}/{self.rank}/{n}/{k}")
            total += h / 0xFFFFFFFF
        return (total - 3.0) * (2.0 ** 0.5)

    def loop(self, name: str, n: int) -> Iterator[int]:
        """A resumable loop: ``for it in ctx.loop("main", n): ...``.

        The current iteration is tracked in the context (saved in every
        checkpoint image); a cold restart resumes exactly at the
        iteration where the LOOP-kind checkpoint parked.  Loop bounds
        must be identical on every rank.
        """
        i = self._loops.get(name, 0)
        while i < n:
            self._loops[name] = i
            self._checkpoint_poll(name, i)
            if self.injector is not None:
                self.injector.on_loop(self.rank, name, i, self.clock.now)
            yield i
            i += 1
            self._loops[name] = i
        # If a LOOP-kind checkpoint elected a target beyond the end of
        # this loop, it can never be honored: cancel it (uniform bounds
        # mean every rank takes this same path).
        if self.mana is not None and self.mana.coordinator is not None:
            coord = self.mana.coordinator
            if coord.intent_kind() == CheckpointKind.LOOP:
                target = coord.loop_target()
                if target is not None and target >= n:
                    coord.loop_cancel(
                        f"loop {name!r} ended at {n} before reaching "
                        f"elected checkpoint iteration {target}"
                    )

    def _checkpoint_poll(self, name: str, iteration: int) -> None:
        mana = self.mana
        if mana is None or mana.coordinator is None:
            return
        coord = mana.coordinator
        coord.note_loop_progress(name, iteration, self.clock.now)
        kind = coord.intent_kind()
        if kind == CheckpointKind.LOOP:
            if coord.loop_poll(name, iteration):
                mana.checkpoint_participate()
        elif kind is not None:
            mana._maybe_checkpoint()

    # ------------------------------------------------------------------
    def set_call_weight(self, weight: int) -> None:
        """Declare the workload coarse-graining factor: one simulated MPI
        call in this application stands for ``weight`` real calls (one
        loop iteration = a block of real timesteps).  No-op natively.
        Call at the top of ``run`` (it must be re-applied after a cold
        restart)."""
        if weight < 1:
            raise ValueError(f"call weight must be >= 1, got {weight}")
        if self.mana is not None:
            self.mana.call_weight = int(weight)

    def barrier(self) -> None:
        """Convenience: barrier on COMM_WORLD through the facade."""
        self.MPI.barrier(self.MPI.COMM_WORLD)

    @property
    def wtime(self) -> float:
        return self.clock.now
