"""The application contract.

An application is a class whose instances hold *all* state in plain
attributes (numpy arrays, numbers, dicts — picklable data).  That state
is the "upper-half memory": MANA serializes the whole object generically;
applications contain **no checkpoint code** — no save()/restore(), no
field lists.

Structure:

* ``setup(ctx)`` runs once, on a fresh start only (never after a cold
  restart): create communicators, datatypes, allocate arrays.
* ``run(ctx)`` does the work.  Long loops use ``ctx.loop(name, n)`` so
  a cold restart can resume at the recorded iteration; everything else
  about resumption is automatic.

This split is the documented substitution for stack-snapshotting (see
DESIGN.md §5): in-session checkpoints park at *any* MPI call; images that
must survive the process park at loop boundaries.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class MpiApplication:
    """Base class for simulated MPI applications."""

    #: short identifier used in manifests and harness tables
    name: str = "app"
    #: the resumable loop that checkpoint triggers should target
    primary_loop: str = "main"

    def setup(self, ctx) -> None:
        """One-time initialization (fresh starts only)."""

    def run(self, ctx) -> None:
        """The application body; re-entered after cold restarts."""
        raise NotImplementedError

    # -- optional hooks ---------------------------------------------------
    def validate(self, ctx) -> Optional[str]:
        """Return an error string if final state is inconsistent, else
        None.  Called by the harness after a job completes."""
        return None

    def progress_summary(self) -> Dict[str, Any]:
        """Small picklable dict describing progress (used in tests to
        compare checkpointed vs uninterrupted executions)."""
        return {}
