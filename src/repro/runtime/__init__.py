"""Split-process runtime: launching simulated MPI jobs, with or without MANA.

* :mod:`repro.runtime.app` — the application contract (setup/run over a
  rank context; state lives in plain attributes = "upper-half memory");
* :mod:`repro.runtime.context` — per-rank context: the MPI facade, the
  virtual clock, compute regions, resumable loops;
* :mod:`repro.runtime.platforms` — named platform/implementation cost
  models (Discovery vs Perlmutter, per-implementation network profiles);
* :mod:`repro.runtime.launcher` — :class:`JobConfig`, :class:`Launcher`,
  :class:`Job`: thread-per-rank execution, checkpoint requests, restart
  (same session, new session, or a *different MPI implementation*).
"""

from repro.runtime.app import MpiApplication
from repro.runtime.context import RankContext
from repro.runtime.launcher import (
    Job,
    JobConfig,
    JobResult,
    Launcher,
    RestartPolicy,
)
from repro.runtime.platforms import cost_model_for

__all__ = [
    "MpiApplication",
    "RankContext",
    "Job",
    "JobConfig",
    "JobResult",
    "Launcher",
    "RestartPolicy",
    "cost_model_for",
]
