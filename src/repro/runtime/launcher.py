"""Job launching: thread-per-rank execution of simulated MPI programs.

:class:`Launcher` plays the role of ``srun``/SBATCH: it builds the
fabric, instantiates one library (or one MANA agent) per rank, runs the
application on one thread per rank, and — for MANA jobs — wires up the
checkpoint coordinator.

Restart paths:

* :meth:`Job.request_checkpoint` + mode ``relaunch`` — in-session restart
  (lower halves replaced live, any-MPI-call granularity);
* :meth:`Launcher.restart` — cold restart: a brand-new job adopts the
  images of a previous one, optionally under a **different MPI
  implementation** (the §9 "future work" interoperability this
  simulation can actually demonstrate).
"""

from __future__ import annotations

import copy
import os
import pickle
import tempfile
import threading
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.fabric.network import Fabric
from repro.impls import make_lib
from repro.impls.facade import NativeFacade
from repro.mana.checkpoint import (
    CheckpointImage,
    latest_generations,
    latest_restorable_generation,
    load_image,
    pin_generation,
    read_manifest,
    rank_image_path,
    restorable_generations,
    unpin_generation,
    validate_generation,
)
from repro.mana.coordinator import CheckpointCoordinator, CheckpointTicket
from repro.mana.fsck import auto_repair
from repro.mana.drain import redistribute_drain_buffers
from repro.mana.virtid import remap_world
from repro.mana.wrappers import ManaFacade, ManaRank
from repro.runtime.context import RankContext
from repro.runtime.platforms import cost_model_for
from repro.simtime.clock import VirtualClock
from repro.util.errors import (
    ElasticRestartError,
    JobPreempted,
    ReproError,
    RestartError,
)


@dataclass
class JobConfig:
    """Everything needed to run one simulated job."""

    nranks: int
    impl: str = "mpich"
    platform: str = "discovery"
    mana: bool = False
    vid_design: str = "new"          # "new" | "legacy"
    ggid_policy: str = "eager"       # "eager" | "lazy" | "hybrid"
    seed: int = 12345
    ckpt_dir: Optional[str] = None   # default: fresh temp dir
    loop_lag_window: int = 8
    ckpt_interval: Optional[float] = None  # periodic ckpt, virtual seconds
    epoch: int = 0                   # bumped by restarts
    deadline: float = 300.0          # real-time safety net
    # Fault injection: a repro.faults.FaultPlan (or the FaultInjector the
    # Job wrapped it into — shared across supervised restarts so fired
    # one-shot faults never re-fire).  None keeps every hook off the
    # hot path.
    faults: Optional[object] = None
    # Coordinator hardening knobs (None/default = coordinator defaults).
    ckpt_phase_timeout: Optional[float] = None
    ckpt_round_retries: int = 2
    # Checkpoint image format: 5 = incremental chunked/deduped/compressed
    # (the default pipeline); 4 = monolithic pickle (the legacy writer;
    # old images stay loadable regardless).
    ckpt_format: int = 5
    ckpt_compress_level: int = 3     # zlib level for format-5 chunks
    ckpt_save_workers: int = 0       # >1 pools chunk-run encodes/writes
    ckpt_keep_generations: Optional[int] = None  # prune + GC after saves
    # Asynchronous saves (format 5 only): ranks snapshot their pickled
    # state at the barrier and resume; a background drainer encodes and
    # writes the generation while the application computes
    # (PROTOCOLS.md §11).  Virtual time is charged snapshot + any
    # drain-overrun instead of the full save cost.
    ckpt_async: bool = False

    def resolved_ckpt_dir(self) -> str:
        if self.ckpt_dir is None:
            self.ckpt_dir = tempfile.mkdtemp(prefix="repro-ckpt-")
        return self.ckpt_dir


@dataclass
class RestartPolicy:
    """Supervised-restart policy for :meth:`Launcher.supervise`: on a
    rank failure, restore the latest restorable generation and resume,
    at most ``max_restarts`` times.

    ``elastic`` selects the restore shape:

    * ``None`` (default) — restore at the checkpointed rank count; the
      recovery trace is byte-identical to pre-elastic behaviour;
    * ``"shrink_on_node_loss"`` — restore onto
      ``min(capacity, checkpointed nranks)`` ranks (survive losing
      nodes by packing the surviving capacity);
    * ``"grow_to_capacity"`` — restore onto exactly the capacity value
      (reclaim returned/spot nodes).

    ``capacity`` gives the ranks available at each restart attempt
    (attempt ``k`` uses ``capacity[min(k-1, len-1)]``; the last entry
    repeats).  ``target_impl`` additionally migrates the restore to a
    different MPI implementation (§9 interoperability), elastic or not.
    """

    max_restarts: int = 2
    elastic: Optional[str] = None    # None | "shrink_on_node_loss" |
                                     # "grow_to_capacity"
    capacity: Optional[Sequence[int]] = None
    target_impl: Optional[str] = None

    def __post_init__(self) -> None:
        if self.elastic not in (
            None, "shrink_on_node_loss", "grow_to_capacity"
        ):
            raise ValueError(
                f"unknown elastic mode {self.elastic!r}; expected "
                "'shrink_on_node_loss' or 'grow_to_capacity'"
            )
        if self.elastic is not None and not self.capacity:
            raise ValueError(
                f"elastic={self.elastic!r} requires a capacity schedule"
            )


@dataclass
class RankOutcome:
    rank: int
    app: object = None
    runtime: float = 0.0
    accounts: Dict[str, float] = field(default_factory=dict)
    cs_count: int = 0
    wrapped_calls: int = 0
    lib_call_counts: Dict[str, int] = field(default_factory=dict)
    error: Optional[str] = None


@dataclass
class JobResult:
    """Aggregated outcome of a finished job."""

    status: str                      # "completed" | "preempted" | "failed"
    ranks: List[RankOutcome]
    config: JobConfig
    # Filled by Launcher.supervise: the recovery story of this job
    # (rank-failure / restart / recovered events) and how many
    # supervised restarts it took.
    recovery_events: List[dict] = field(default_factory=list)
    restarts: int = 0

    @property
    def runtime(self) -> float:
        """Job runtime = slowest rank's virtual clock (SBATCH semantics)."""
        return max((r.runtime for r in self.ranks), default=0.0)

    @property
    def total_cs(self) -> int:
        return sum(r.cs_count for r in self.ranks)

    @property
    def cs_per_second(self) -> float:
        rt = self.runtime
        return self.total_cs / rt if rt > 0 else 0.0

    def apps(self) -> List[object]:
        return [r.app for r in self.ranks]

    def first_error(self) -> Optional[str]:
        for r in self.ranks:
            if r.error:
                return f"rank {r.rank}: {r.error}"
        return None


class Job:
    """A running (or finished) simulated MPI job."""

    def __init__(
        self,
        config: JobConfig,
        app_factory: Optional[Callable[[int], object]] = None,
        images: Optional[List[CheckpointImage]] = None,
    ):
        if (app_factory is None) == (images is None):
            raise ValueError("provide exactly one of app_factory / images")
        if images is not None:
            if len(images) != config.nranks:
                raise RestartError(
                    f"{len(images)} checkpoint images for a "
                    f"{config.nranks}-rank job; restore at the original "
                    f"rank count or use elastic restart "
                    f"(Launcher.elastic_restart / `python -m repro "
                    f"restart --ranks N`) to repartition"
                )
            for img in images:
                if img.nranks != config.nranks:
                    raise RestartError(
                        f"rank {img.rank} image was checkpointed at "
                        f"nranks={img.nranks} but the job runs "
                        f"{config.nranks} ranks; restore at the original "
                        f"rank count or use elastic restart "
                        f"(Launcher.elastic_restart / `python -m repro "
                        f"restart --ranks N`) to repartition"
                    )
        self.config = config
        self.app_factory = app_factory
        self.images = images
        cm0 = cost_model_for(config.platform, config.impl)
        self.fabric = Fabric(config.nranks, cm0)
        # Fault injection: wrap a FaultPlan into its runtime injector
        # once, and write it back to the config so supervised restarts
        # (which reuse the config's faults) share the fired-spec set.
        self.injector = None
        if config.faults is not None:
            from repro.faults import FaultInjector, FaultPlan

            if isinstance(config.faults, FaultPlan):
                config.faults = FaultInjector(config.faults)
            self.injector = config.faults
            self.fabric.injector = self.injector
        self.coordinator: Optional[CheckpointCoordinator] = None
        if config.mana:
            store = None
            if config.ckpt_format >= 5:
                from repro.mana.chunkstore import store_for

                store = store_for(
                    config.resolved_ckpt_dir(),
                    compress_level=config.ckpt_compress_level,
                )
            self.coordinator = CheckpointCoordinator(
                config.nranks,
                config.resolved_ckpt_dir(),
                cm0.filesystem,
                loop_lag_window=config.loop_lag_window,
                phase_timeout=(
                    config.ckpt_phase_timeout
                    if config.ckpt_phase_timeout is not None else 300.0
                ),
                round_retries=config.ckpt_round_retries,
                chunk_store=store,
                save_workers=config.ckpt_save_workers,
                keep_generations=config.ckpt_keep_generations,
                async_save=config.ckpt_async,
            )
            self.coordinator.injector = self.injector
            if config.ckpt_interval is not None:
                self.coordinator.enable_interval_checkpoints(
                    config.ckpt_interval
                )
            # Arming checkpoint intent must wake ranks blocked in the
            # fabric's event-driven waits (recv/wait/probe), or checkpoint
            # latency degrades to the waits' safety-net timeout.
            self.coordinator.waker = self.fabric.wake
        self._threads: List[threading.Thread] = []
        self._outcomes: List[RankOutcome] = [
            RankOutcome(r) for r in range(config.nranks)
        ]
        self._status = "created"
        self._preempted = False
        self.manas: List[Optional[ManaRank]] = [None] * config.nranks

    # ------------------------------------------------------------------
    def start(self) -> "Job":
        if self._status != "created":
            raise ReproError(f"job already {self._status}")
        self._status = "running"
        for r in range(self.config.nranks):
            t = threading.Thread(
                target=self._run_rank, args=(r,), name=f"rank-{r}",
                daemon=True,
            )
            self._threads.append(t)
            t.start()
        return self

    def wait(self, timeout: Optional[float] = None) -> JobResult:
        timeout = timeout or self.config.deadline
        for t in self._threads:
            t.join(timeout=timeout)
        if any(t.is_alive() for t in self._threads):
            self.fabric.abort(ReproError("job wait() timed out"))
            if self.coordinator:
                self.coordinator.abort()
            for t in self._threads:
                t.join(timeout=5.0)
            self._status = "failed"
        elif self._preempted:
            self._status = "preempted"
        elif any(o.error for o in self._outcomes):
            self._status = "failed"
        else:
            self._status = "completed"
        if self.coordinator is not None:
            self.coordinator.cancel_pending(f"job {self._status}")
        return JobResult(self._status, self._outcomes, self.config)

    def run(self, timeout: Optional[float] = None) -> JobResult:
        return self.start().wait(timeout)

    def request_checkpoint(self, kind: str = "in-session",
                           mode: str = "continue") -> CheckpointTicket:
        if self.coordinator is None:
            raise ReproError("checkpointing requires a MANA job (mana=True)")
        return self.coordinator.request_checkpoint(kind, mode)

    def checkpoint_at_iteration(
        self, loop_name: str, iteration: int,
        kind: str = "in-session", mode: str = "continue",
    ) -> CheckpointTicket:
        """Arm a checkpoint that fires deterministically when the named
        resumable loop reaches ``iteration`` (call before start())."""
        if self.coordinator is None:
            raise ReproError("checkpointing requires a MANA job (mana=True)")
        return self.coordinator.checkpoint_at_iteration(
            loop_name, iteration, kind, mode
        )

    # ------------------------------------------------------------------
    def _run_rank(self, rank: int) -> None:
        outcome = self._outcomes[rank]
        cfg = self.config
        cost_model = cost_model_for(cfg.platform, cfg.impl)
        clock = VirtualClock()
        mana: Optional[ManaRank] = None
        lib = None
        try:
            image = self.images[rank] if self.images is not None else None
            if cfg.mana:
                mana = ManaRank(
                    self.fabric, rank, clock, cost_model, cfg.impl,
                    coordinator=self.coordinator,
                    vid_design=cfg.vid_design,
                    ggid_policy=cfg.ggid_policy,
                    seed=cfg.seed,
                    ckpt_dir=cfg.resolved_ckpt_dir(),
                    epoch=cfg.epoch,
                    injector=self.injector,
                )
                self.manas[rank] = mana
                mana.bootstrap()
                MPI = ManaFacade(mana)
            else:
                lib = make_lib(
                    cfg.impl, self.fabric, rank, clock, cost_model,
                    epoch=cfg.epoch, seed=cfg.seed,
                )
                lib.init()
                MPI = NativeFacade(lib)

            ctx = RankContext(
                rank, cfg.nranks, MPI, clock, cost_model,
                mana=mana, restarting=image is not None,
                injector=self.injector,
            )
            ctx.noise_seed = cfg.seed

            if image is not None:
                clock.set_state(image.clock_state)
                app = image.app
                ctx._loops = dict(image.loops)
                mana.attach_upper(app, ctx)
                mana.restore_from_image(image)
                # Charge restart time: reading the image back (same
                # filesystem model as Table 3) plus replay already having
                # charged its MPI-call costs above.
                from repro.simtime.cost import checkpoint_time

                extra = getattr(app, "simulated_state_bytes", 0) or 0
                clock.advance(
                    checkpoint_time(
                        cost_model.filesystem, cfg.nranks,
                        image.stored_bytes + int(extra),
                    ),
                    "restart",
                )
            else:
                app = self.app_factory(rank)
                if mana is not None:
                    mana.attach_upper(app, ctx)
                    mana.init()
                app.setup(ctx)

            app.run(ctx)

            if mana is not None:
                mana.finalize()
            else:
                lib.finalize()
            outcome.app = app
        except JobPreempted:
            self._preempted = True
            outcome.app = mana._app if mana is not None else None
        except BaseException as exc:  # noqa: BLE001 - report any rank death
            outcome.error = "".join(
                traceback.format_exception(type(exc), exc, exc.__traceback__)
            )
            self.fabric.abort(exc)
            if self.coordinator is not None:
                self.coordinator.abort(exc)
        finally:
            outcome.runtime = clock.now
            outcome.accounts = clock.accounts()
            if mana is not None:
                outcome.cs_count = mana.cs_count
                outcome.wrapped_calls = mana.wrapped_calls
                if mana.lower is not None:
                    outcome.lib_call_counts = dict(mana.lower.call_counts)
            elif lib is not None:
                outcome.lib_call_counts = dict(lib.call_counts)


class Launcher:
    """Builds jobs; the SBATCH of this simulation."""

    def __init__(self, config: JobConfig,
                 restart_policy: Optional[RestartPolicy] = None):
        self.config = config
        self.restart_policy = restart_policy

    def launch(self, app_factory: Callable[[int], object]) -> Job:
        return Job(self.config, app_factory=app_factory)

    def run(self, app_factory: Callable[[int], object],
            timeout: Optional[float] = None) -> JobResult:
        return self.launch(app_factory).run(timeout)

    # ------------------------------------------------------------------
    # supervised (self-healing) execution
    # ------------------------------------------------------------------
    def supervise(self, app_factory: Callable[[int], object],
                  timeout: Optional[float] = None,
                  on_launch: Optional[Callable[[Job], None]] = None,
                  ) -> JobResult:
        """Run under supervision: when the job fails (rank crash, torn
        image, deadline), restore the latest restorable checkpoint
        generation and resume, up to ``restart_policy.max_restarts``
        times.  The returned :class:`JobResult` carries the recovery
        events (rank-failure / restart / recovered) and restart count.

        ``on_launch`` is invoked with the *initial* job before it starts
        (e.g. to arm deterministic ``checkpoint_at_iteration`` triggers);
        restarted jobs resume from images and are not re-armed.
        """
        policy = self.restart_policy or RestartPolicy()
        events: List[dict] = []
        restarts = 0
        job = self.launch(app_factory)
        if on_launch is not None:
            on_launch(job)
        res = job.run(timeout)
        while res.status == "failed":
            events.append(self._failure_event(res))
            ckpt_dir = self.config.resolved_ckpt_dir()
            # A failed run may have died mid-mutation (pending journal
            # records, stray temp files).  Repair before choosing a
            # restore point so the fallback never lands on a
            # half-written generation; a clean directory adds no event.
            report = auto_repair(ckpt_dir)
            if report is not None:
                events.append({
                    "event": "fsck",
                    "rolled_back_generations":
                        report.rolled_back_generations,
                })
            gen = latest_restorable_generation(ckpt_dir)
            if gen is None:
                events.append({
                    "event": "no-restorable-generation",
                    "ckpt_dir": ckpt_dir,
                })
                break
            if restarts >= policy.max_restarts:
                events.append({
                    "event": "restart-budget-exhausted",
                    "max_restarts": policy.max_restarts,
                })
                break
            restarts += 1
            skipped = [g for g in latest_generations(ckpt_dir) if g > gen]
            event = {
                "event": "restart",
                "attempt": restarts,
                "generation": gen,
                # Generations newer than the chosen one exist but were
                # not restorable (torn/incomplete); record the fallback.
                "skipped_generations": skipped,
            }
            if skipped:
                # Why each newer generation was passed over — with the
                # base dir relativized so the trace stays bit-identical
                # across runs in different temp directories.
                event["skip_reasons"] = {
                    g: [
                        p.replace(ckpt_dir, "<ckpt>")
                        for p in validate_generation(ckpt_dir, g)
                    ]
                    for g in skipped
                }
            if policy.elastic is None:
                events.append(event)
                res = self.restart(
                    ckpt_dir, gen, impl_override=policy.target_impl
                ).run(timeout)
            else:
                cap = policy.capacity[
                    min(restarts - 1, len(policy.capacity) - 1)
                ]
                old_nranks = read_manifest(ckpt_dir, gen)["nranks"]
                if policy.elastic == "shrink_on_node_loss":
                    target = min(cap, old_nranks)
                else:  # grow_to_capacity
                    target = cap
                event["elastic"] = policy.elastic
                event["from_nranks"] = old_nranks
                event["to_nranks"] = target
                events.append(event)
                res = self.elastic_restart(
                    ckpt_dir, new_nranks=target, generation=gen,
                    impl_override=policy.target_impl,
                ).run(timeout)
            if res.status in ("completed", "preempted"):
                events.append({
                    "event": "recovered",
                    "attempt": restarts,
                    "vtime": res.runtime,
                })
        res.recovery_events = events
        res.restarts = restarts
        return res

    @staticmethod
    def _failure_event(res: JobResult) -> dict:
        """Summarize a failed run into one deterministic event.

        The victim is the rank whose traceback names an injected fault
        or crash (its virtual clock at the crash is seed-deterministic);
        other ranks observe the abort at scheduling-dependent times, so
        their clocks must not leak into the recovery trace.
        """
        victim = None
        for r in res.ranks:
            if r.error and ("InjectedFault" in r.error
                            or "InjectedCrash" in r.error):
                victim = r
                break
        if victim is None:
            victim = next((r for r in res.ranks if r.error), None)
        if victim is None:
            return {"event": "rank-failure", "rank": None, "vtime": 0.0,
                    "error": "job failed with no rank error recorded"}
        lines = [ln for ln in victim.error.strip().splitlines()
                 if ln.strip()]
        return {
            "event": "rank-failure",
            "rank": victim.rank,
            "vtime": victim.runtime,
            "error": lines[-1] if lines else "unknown",
        }

    # ------------------------------------------------------------------
    def restart(
        self,
        ckpt_dir: str,
        generation: Optional[int] = None,
        impl_override: Optional[str] = None,
    ) -> Job:
        """Cold restart from a checkpoint directory.

        With ``generation=None`` the newest *restorable* generation is
        chosen: complete manifest, an integrity-verified image for every
        rank, cold-restartable kind.  An explicit ``generation`` is
        strict — it restarts that generation or raises.

        ``impl_override`` restarts the job under a different MPI
        implementation — the full-interoperability extension of §9
        (checkpoint under one MPI, restart under another).
        """
        manifest = self._resolve_manifest(ckpt_dir, generation)
        gen = manifest["generation"]
        nranks = manifest["nranks"]
        # Pin the generation while images stream in: a concurrent prune
        # (keep_generations GC racing a supervised fallback restore)
        # must not delete images under our feet.
        pin_generation(ckpt_dir, gen)
        try:
            images = [
                load_image(
                    rank_image_path(ckpt_dir, gen, r), expect_nranks=nranks
                )
                for r in range(nranks)
            ]
        finally:
            unpin_generation(ckpt_dir, gen)
        cfg = self._restart_config(
            ckpt_dir, nranks, impl_override or manifest["impl"],
            epoch=max(img.epoch for img in images) + 1,
        )
        job = Job(cfg, images=images)
        self._floor_generation(job, ckpt_dir)
        return job

    def elastic_restart(
        self,
        ckpt_dir: str,
        new_nranks: Optional[int] = None,
        generation: Optional[int] = None,
        impl_override: Optional[str] = None,
    ) -> Job:
        """Cold restart an N-rank checkpoint onto M ranks
        (PROTOCOLS.md §12).

        The upper halves of all N checkpointed ranks are loaded,
        repartitioned by the application's :meth:`repartition` contract,
        virtual-id tables are remapped to the M-rank world, drained
        messages are redistributed, and a fresh M-rank job adopts the
        synthetic images.  The first checkpoint the restored job writes
        is stamped with elastic provenance (from/to nranks and impl,
        source generation).

        ``new_nranks=None`` or the checkpointed count delegates to plain
        :meth:`restart` — equal-size restores keep byte-identical
        recovery traces.  ``impl_override`` composes with resizing
        (checkpoint under one MPI at N ranks, restart under another at
        M).  Raises :class:`ElasticRestartError` when the checkpointed
        state pins the old world size (sub-communicators, cartesian
        topologies, pending requests, or a non-elastic application).
        """
        manifest = self._resolve_manifest(ckpt_dir, generation)
        gen = manifest["generation"]
        old_nranks = manifest["nranks"]
        if new_nranks is None or new_nranks == old_nranks:
            return self.restart(
                ckpt_dir, generation=gen, impl_override=impl_override
            )
        if new_nranks < 1:
            raise ElasticRestartError(
                f"cannot restore onto {new_nranks} ranks"
            )
        vid_design = (manifest.get("extra") or {}).get("vid_design")
        if vid_design != "new":
            raise ElasticRestartError(
                f"generation {gen} was checkpointed with "
                f"vid_design={vid_design!r}; elastic restore requires "
                f"the 'new' (MANA) virtual-id design to remap tables"
            )
        pin_generation(ckpt_dir, gen)
        try:
            images = [
                load_image(
                    rank_image_path(ckpt_dir, gen, r),
                    expect_nranks=old_nranks,
                )
                for r in range(old_nranks)
            ]
        finally:
            unpin_generation(ckpt_dir, gen)

        # Step 1: repartition application state N → M.
        app_cls = type(images[0].app)
        repartition = getattr(app_cls, "repartition", None)
        if repartition is None or not getattr(app_cls, "elastic", False):
            raise ElasticRestartError(
                f"application {app_cls.__name__} does not support "
                f"elastic repartitioning (elastic=False or no "
                f"repartition contract)"
            )
        new_apps, plan = repartition(
            [img.app for img in images], new_nranks
        )
        rank_map = plan.rank_map()

        # Step 2 + 3: remap virtual-id tables and redistribute drained
        # messages to the M-rank world.
        target_impl = impl_override or manifest["impl"]
        buffers = {img.rank: img.drain_buffer for img in images}
        new_buffers = redistribute_drain_buffers(
            buffers, rank_map, new_nranks
        )
        new_images: List[CheckpointImage] = []
        for r in range(new_nranks):
            src = plan.src_of(r)
            seed_img = images[src]
            # Deep-copy the seed table: the originals stay pristine so
            # every new rank can fold ledgers from the *unmodified*
            # tables of the old ranks it inherits (and grow clones can
            # share one seed).
            table = pickle.loads(pickle.dumps(seed_img.vid_table))
            remap_world(
                table,
                old_nranks=old_nranks,
                new_nranks=new_nranks,
                old_rank=src,
                new_rank=r,
                rank_map=rank_map,
                merge_tables=[
                    images[o].vid_table for o in plan.merged_into(r)
                ],
            )
            new_images.append(CheckpointImage(
                rank=r,
                nranks=new_nranks,
                impl=target_impl,
                kind=seed_img.kind,
                generation=gen,
                app=new_apps[r],
                loops=dict(seed_img.loops),
                vid_table=table,
                drain_buffer=new_buffers[r],
                clock_state=copy.deepcopy(seed_img.clock_state),
                rng_state=copy.deepcopy(seed_img.rng_state),
                cs_count=seed_img.cs_count,
                epoch=seed_img.epoch,
                stored_bytes=seed_img.stored_bytes,
            ))

        # Step 4: a fresh M-rank job adopts the synthetic images; its
        # first checkpoint is stamped with elastic provenance.
        cfg = self._restart_config(
            ckpt_dir, new_nranks, target_impl,
            epoch=max(img.epoch for img in images) + 1,
        )
        job = Job(cfg, images=new_images)
        self._floor_generation(job, ckpt_dir)
        if job.coordinator is not None:
            job.coordinator.stamp_elastic({
                "from_nranks": old_nranks,
                "to_nranks": new_nranks,
                "from_impl": manifest["impl"],
                "to_impl": target_impl,
                "source_generation": gen,
            })
        return job

    # -- restart plumbing ----------------------------------------------
    @staticmethod
    def _resolve_manifest(ckpt_dir: str, generation: Optional[int]) -> dict:
        """Resolve a restart target to its manifest.

        ``generation=None`` picks the newest restorable generation (or
        raises with per-generation diagnostics); an explicit generation
        is strict.  Either way the result must be cold-restartable.
        """
        if generation is None:
            generation = latest_restorable_generation(ckpt_dir)
            if generation is None:
                gens = latest_generations(ckpt_dir)
                if not gens:
                    raise RestartError(f"no checkpoints under {ckpt_dir}")
                problems = [
                    f"generation {g}: {p}"
                    for g in gens
                    for p in validate_generation(ckpt_dir, g)
                ]
                raise RestartError(
                    "no restorable checkpoint generation under "
                    f"{ckpt_dir}: " + "; ".join(problems)
                )
        manifest = read_manifest(ckpt_dir, generation)
        if not manifest["cold_restartable"]:
            raise RestartError(
                f"generation {manifest['generation']} was an in-session "
                f"checkpoint (kind={manifest['kind']}); only LOOP-kind "
                f"images are cold-restartable (DESIGN.md §5)"
            )
        return manifest

    def _restart_config(
        self, ckpt_dir: str, nranks: int, impl: str, *, epoch: int
    ) -> JobConfig:
        return JobConfig(
            nranks=nranks,
            impl=impl,
            platform=self.config.platform,
            mana=True,
            vid_design=self.config.vid_design,
            ggid_policy=self.config.ggid_policy,
            seed=self.config.seed,
            ckpt_dir=ckpt_dir,
            loop_lag_window=self.config.loop_lag_window,
            ckpt_interval=self.config.ckpt_interval,
            epoch=epoch,
            deadline=self.config.deadline,
            faults=self.config.faults,
            ckpt_phase_timeout=self.config.ckpt_phase_timeout,
            ckpt_round_retries=self.config.ckpt_round_retries,
            ckpt_format=self.config.ckpt_format,
            ckpt_compress_level=self.config.ckpt_compress_level,
            ckpt_save_workers=self.config.ckpt_save_workers,
            ckpt_keep_generations=self.config.ckpt_keep_generations,
            ckpt_async=self.config.ckpt_async,
        )

    @staticmethod
    def _floor_generation(job: Job, ckpt_dir: str) -> None:
        # New checkpoints must not clobber generations newer than the
        # one being restored (e.g. an incomplete one we skipped).
        if job.coordinator is not None:
            existing = latest_generations(ckpt_dir)
            if existing:
                job.coordinator.generation = existing[-1]

    @staticmethod
    def available_generations(ckpt_dir: str) -> List[int]:
        return latest_generations(ckpt_dir)

    @staticmethod
    def restorable(ckpt_dir: str) -> List[int]:
        return restorable_generations(ckpt_dir)
