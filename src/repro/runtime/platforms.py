"""Named experimental platforms and per-implementation network profiles.

Section 6's two testbeds:

* **discovery** — Northeastern's local cluster: Linux 3.10 (no userspace
  FSGSBASE, so MANA pays the ``prctl`` switch cost), TCP interconnect,
  NFSv3 filesystem.  Per-implementation TCP software paths differ
  slightly; Open MPI's network calls were observed to be a bit slower on
  this setup, which (via MANA's polling loops) is the paper's explanation
  for Open MPI's higher MANA overhead (§6.1).
* **perlmutter** — NERSC's Perlmutter: Linux 5.14 with FSGSBASE,
  Slingshot-11, Lustre; Cray MPI.

``cost_model_for`` is the single knob-table for the whole harness.
"""

from __future__ import annotations

import functools
from dataclasses import replace

from repro.simtime.cost import CostModel, NetworkProfile

# (latency seconds, per-call library software cost seconds) on Discovery TCP.
_DISCOVERY_TCP = {
    "mpich": (25e-6, 0.55e-6),
    "craympi": (25e-6, 0.55e-6),  # MPICH-family stand-in when run locally
    "openmpi": (31e-6, 0.75e-6),  # slower TCP BTL path (observed, §6.1)
    "exampi": (34e-6, 0.90e-6),   # experimental C++ stack, least tuned
}

PLATFORMS = ("discovery", "perlmutter")


@functools.lru_cache(maxsize=None)
def cost_model_for(platform: str, impl: str) -> CostModel:
    """The complete cost model for one (platform, implementation) pair.

    Memoized: every profile dataclass is frozen, so one instance is
    safely shared by every rank, fabric, and coordinator of every job
    (it used to be rebuilt twice per rank per job)."""
    if platform == "discovery":
        base = CostModel.discovery()
        try:
            latency, per_call = _DISCOVERY_TCP[impl]
        except KeyError:
            raise ValueError(
                f"unknown implementation {impl!r}; "
                f"choose from {sorted(_DISCOVERY_TCP)}"
            ) from None
        net = NetworkProfile(
            name=f"discovery-tcp/{impl}",
            latency=latency,
            bandwidth=base.network.bandwidth,
            per_call_overhead=per_call,
        )
        return base.with_network(net)
    if platform == "perlmutter":
        base = CostModel.perlmutter()
        net = replace(base.network, name=f"perlmutter-ss11/{impl}")
        return base.with_network(net)
    raise ValueError(
        f"unknown platform {platform!r}; choose from {PLATFORMS}"
    )
