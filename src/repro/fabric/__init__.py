"""The simulated interconnect.

This package stands in for the real network (TCP on Discovery,
Slingshot-11 on Perlmutter) plus the MPI progress engine's matching
logic.  It deliberately has the one property that forces MANA's design:
its state (messages in flight) *cannot be checkpointed* — a checkpoint
must first drain it, exactly as Section 5's required-function list
(``MPI_Iprobe``/``MPI_Recv``/``MPI_Test``) implies.
"""

from repro.fabric.network import Fabric, Message, ProbeResult

__all__ = ["Fabric", "Message", "ProbeResult"]
