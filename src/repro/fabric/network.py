"""In-memory message fabric with MPI matching semantics.

Design notes
------------
* One :class:`Fabric` is shared by all ranks of a simulated job.  Each
  rank's MPI library instance talks to it through plain method calls.
* Matching follows MPI's rules: a receive posted for
  ``(context_id, source, tag)`` matches the *oldest* enqueued message
  whose fields agree, where ``source``/``tag`` may be wildcards.
  Messages between a fixed (source, destination) pair are non-overtaking.
* Sends are *eager*: ``post_send`` buffers the payload at the destination
  immediately and completes locally.  (The real MANA also forces pending
  sends to completion before checkpointing; eager delivery lets the drain
  logic concentrate on the receive side, which is where the counting
  protocol operates.)
* Virtual time: a message carries its send timestamp; the matching
  receive completes no earlier than ``send_time + latency + bytes/bw``.
  Wall-clock thread scheduling never influences reported times.
* ``in_flight(dst)`` reports messages buffered but not yet received —
  the quantity MANA's drain must bring to zero before a checkpoint.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.simtime.cost import CostModel
from repro.util.errors import MpiAbort, ReproError

# Wildcards, kept numeric like the real mpi.h constants.
ANY_SOURCE = -1
ANY_TAG = -1


@dataclass
class Message:
    """One point-to-point message buffered in the fabric."""

    seq: int                 # global, strictly increasing post order
    src: int                 # world rank of sender
    dst: int                 # world rank of receiver
    tag: int
    context_id: int          # communicator context of the send
    payload: bytes           # packed bytes (datatype-flattened)
    send_time: float         # sender's virtual clock at post time
    arrive_time: float       # send_time + network cost

    @property
    def nbytes(self) -> int:
        return len(self.payload)


@dataclass(frozen=True)
class ProbeResult:
    """What ``iprobe`` reports about a matchable message."""

    src: int
    tag: int
    context_id: int
    nbytes: int
    arrive_time: float


@dataclass
class _Counters:
    """Per-destination delivery accounting (used by tests and the drain)."""

    posted: int = 0
    received: int = 0


class Fabric:
    """Shared interconnect for one simulated MPI job."""

    def __init__(self, nranks: int, cost_model: CostModel,
                 latency_jitter: float = 0.0, jitter_seed: int = 0):
        if nranks <= 0:
            raise ValueError(f"nranks must be positive, got {nranks}")
        if latency_jitter < 0:
            raise ValueError(f"latency_jitter must be >= 0")
        self.nranks = nranks
        self.cost_model = cost_model
        # Deterministic per-message latency jitter (fraction of the base
        # network cost), keyed by the message sequence number: simulates
        # congestion noise without sacrificing reproducibility.
        self.latency_jitter = latency_jitter
        self.jitter_seed = jitter_seed
        # Optional repro.faults.FaultInjector (set by the Job when a
        # FaultPlan is installed); None on the hot path.
        self.injector = None
        self._lock = threading.Lock()
        self._cv = threading.Condition(self._lock)
        self._queues: List[List[Message]] = [[] for _ in range(nranks)]
        self._counters: List[_Counters] = [_Counters() for _ in range(nranks)]
        self._seq = itertools.count()
        self._aborted: Optional[BaseException] = None
        # Monotonic activity counter: bumped (with a broadcast wakeup) on
        # every event that could complete someone's blocking wait — a new
        # message, an abort, or an external waker such as the checkpoint
        # coordinator arming intent.  Wrapper poll loops sleep on it
        # instead of busy-waiting; virtual-time poll costs are still
        # charged analytically, so results are unchanged (see
        # mana/wrappers.py).
        self._activity = 0
        # pairwise_sent[(src, dst)] — the count MANA's drain exchanges.
        self._pairwise_sent: Dict[Tuple[int, int], int] = {}
        self._pairwise_recvd: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def post_send(
        self,
        src: int,
        dst: int,
        tag: int,
        context_id: int,
        payload: bytes,
        send_time: float,
    ) -> Message:
        """Buffer a message at the destination (eager protocol)."""
        self._check_rank(src)
        self._check_rank(dst)
        cost = self.cost_model.message_cost(len(payload))
        if self.latency_jitter > 0.0:
            cost *= 1.0 + self.latency_jitter * self._jitter_draw()
        if self.injector is not None:
            verdict = self.injector.on_message(src, dst, tag, len(payload))
            if verdict is not None:
                what, seconds = verdict
                if what == "drop":
                    # The message is lost on the wire: never enqueued,
                    # counters untouched.  The receiver blocks until the
                    # job's deadline abort fires (then the supervisor
                    # takes over).
                    return Message(
                        seq=next(self._seq), src=src, dst=dst, tag=tag,
                        context_id=context_id, payload=payload,
                        send_time=send_time, arrive_time=send_time + cost,
                    )
                cost += seconds  # "delay": extra virtual latency
        msg = Message(
            seq=next(self._seq),
            src=src,
            dst=dst,
            tag=tag,
            context_id=context_id,
            payload=payload,
            send_time=send_time,
            arrive_time=send_time + cost,
        )
        with self._cv:
            self._raise_if_aborted()
            self._queues[dst].append(msg)
            self._counters[dst].posted += 1
            key = (src, dst)
            self._pairwise_sent[key] = self._pairwise_sent.get(key, 0) + 1
            self._activity += 1
            self._cv.notify_all()
        return msg

    # ------------------------------------------------------------------
    # event-driven waiting
    # ------------------------------------------------------------------
    def wake(self) -> None:
        """Signal that something a waiter might care about happened.

        Called internally on message posts and aborts, and externally by
        the checkpoint coordinator when intent is armed (a parked-for-
        checkpoint rank must notice without waiting out the safety-net
        timeout).
        """
        with self._cv:
            self._activity += 1
            self._cv.notify_all()

    def activity_token(self) -> int:
        """Snapshot the activity counter.  Capture BEFORE checking your
        completion condition: if the event fires between the check and
        ``wait_activity``, the stale token makes the wait return at once
        (no lost-wakeup race)."""
        with self._lock:
            return self._activity

    def wait_activity(self, token: int, timeout: float = 0.05) -> int:
        """Block (real time) until activity advances past ``token``, the
        fabric aborts, or ``timeout`` elapses.  Returns the current
        counter.  The timeout is a safety net only — correctness never
        depends on it, because every completion source calls wake()."""
        with self._cv:
            if self._activity == token and self._aborted is None:
                self._cv.wait(timeout=timeout)
            return self._activity

    # ------------------------------------------------------------------
    # matching / receiving
    # ------------------------------------------------------------------
    def try_match(
        self,
        dst: int,
        src: int,
        tag: int,
        context_id: int,
    ) -> Optional[Message]:
        """Dequeue the oldest matching message, or None.

        ``src`` may be ``ANY_SOURCE`` and ``tag`` may be ``ANY_TAG``.
        """
        self._check_rank(dst)
        with self._cv:
            self._raise_if_aborted()
            idx = self._find(dst, src, tag, context_id)
            if idx is None:
                return None
            msg = self._queues[dst].pop(idx)
            self._counters[dst].received += 1
            key = (msg.src, dst)
            self._pairwise_recvd[key] = self._pairwise_recvd.get(key, 0) + 1
            return msg

    def wait_match(
        self,
        dst: int,
        src: int,
        tag: int,
        context_id: int,
        *,
        should_stop: Optional[Callable[[], bool]] = None,
        poll_timeout: float = 0.05,
        deadline: Optional[float] = None,
    ) -> Optional[Message]:
        """Block (in real time) until a matching message is available.

        ``should_stop`` lets a caller (MANA's wrapper polling loop, or a
        teardown path) break out; in that case None is returned.
        ``deadline`` is a real-time safety net against simulated
        deadlocks in tests.
        """
        import time as _time

        end = None if deadline is None else _time.monotonic() + deadline
        with self._cv:
            while True:
                self._raise_if_aborted()
                idx = self._find(dst, src, tag, context_id)
                if idx is not None:
                    msg = self._queues[dst].pop(idx)
                    self._counters[dst].received += 1
                    key = (msg.src, dst)
                    self._pairwise_recvd[key] = (
                        self._pairwise_recvd.get(key, 0) + 1
                    )
                    return msg
                if should_stop is not None and should_stop():
                    return None
                if end is not None and _time.monotonic() > end:
                    raise ReproError(
                        f"rank {dst}: receive (src={src}, tag={tag}, "
                        f"ctx={context_id}) timed out — simulated deadlock?"
                    )
                self._cv.wait(timeout=poll_timeout)

    def iprobe(
        self, dst: int, src: int, tag: int, context_id: int
    ) -> Optional[ProbeResult]:
        """Non-destructively report the oldest matching message."""
        self._check_rank(dst)
        with self._cv:
            self._raise_if_aborted()
            idx = self._find(dst, src, tag, context_id)
            if idx is None:
                return None
            m = self._queues[dst][idx]
            return ProbeResult(m.src, m.tag, m.context_id, m.nbytes, m.arrive_time)

    # ------------------------------------------------------------------
    # checkpoint-facing introspection
    # ------------------------------------------------------------------
    def in_flight(self, dst: Optional[int] = None) -> int:
        """Messages buffered but not yet received (for ``dst``, or total)."""
        with self._lock:
            if dst is None:
                return sum(len(q) for q in self._queues)
            self._check_rank(dst)
            return len(self._queues[dst])

    def pairwise_sent(self, src: int, dst: int) -> int:
        with self._lock:
            return self._pairwise_sent.get((src, dst), 0)

    def pairwise_received(self, src: int, dst: int) -> int:
        with self._lock:
            return self._pairwise_recvd.get((src, dst), 0)

    # ------------------------------------------------------------------
    # failure handling
    # ------------------------------------------------------------------
    def abort(self, exc: Optional[BaseException] = None) -> None:
        """Tear the job down: every blocked and future call raises."""
        with self._cv:
            self._aborted = exc or MpiAbort()
            self._activity += 1
            self._cv.notify_all()

    @property
    def aborted(self) -> bool:
        with self._lock:
            return self._aborted is not None

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _find(self, dst: int, src: int, tag: int, context_id: int) -> Optional[int]:
        for i, m in enumerate(self._queues[dst]):
            if m.context_id != context_id:
                continue
            if src != ANY_SOURCE and m.src != src:
                continue
            if tag != ANY_TAG and m.tag != tag:
                continue
            return i
        return None

    def _jitter_draw(self) -> float:
        """Uniform [0, 1) draw keyed by (seed, next message seq)."""
        from repro.util.rng import _stable_hash

        # Peek the counter without consuming it (itertools.count has no
        # peek; hash the object id-free state via a shadow counter).
        self._jitter_n = getattr(self, "_jitter_n", 0) + 1
        return _stable_hash(f"{self.jitter_seed}/{self._jitter_n}") / 0xFFFFFFFF

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.nranks:
            raise ReproError(f"rank {rank} out of range [0, {self.nranks})")

    def _raise_if_aborted(self) -> None:
        if self._aborted is not None:
            raise self._aborted
