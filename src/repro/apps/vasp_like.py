"""VASP-like proxy — the paper's motivating application class.

VASP accounted for ~20% of all CPU time at NERSC (paper §1) and is the
paper's argument *for* transparent checkpointing: it "supports multiple
algorithms and data structures that are continually evolving" and its
"multi-algorithm execution model conflicts with the model of a single
main-loop often assumed by library-based packages."

This proxy reproduces that structure: three *different* algorithm phases
with different communication patterns, run back to back — there is no
single globally synchronized main loop a library-based checkpointer
could hook:

1. **SCF phase** — electronic self-consistency: FFT-like
   ``MPI_Alltoall`` transposes + energy ``MPI_Allreduce`` per iteration;
2. **relaxation phase** — ionic steps: force halo exchange
   (``MPI_Sendrecv``) + MAXLOC convergence checks;
3. **MD phase** — short Born-Oppenheimer dynamics: nonblocking neighbor
   exchanges + temperature reductions.

Each phase is its own resumable loop, so transparent checkpoints (and
preemptions) can land inside *any* phase.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import BlockApp, WorkloadSpec, face_neighbors, grid_dims
from repro.util.rng import DeterministicRng


class VaspLikeProxy(BlockApp):
    name = "vasp"
    primary_loop = "relax"  # checkpoint triggers target the middle phase

    partition_attrs = ("wavefunction", "positions", "velocities")
    replicated_attrs = ("scf_energies", "relax_forces", "md_temps")

    def post_repartition(self, rank, nranks, plan) -> None:
        self.dims = grid_dims(nranks)
        self.halo_pairs = face_neighbors(rank, self.dims, periodic=True)
        # Clamp the halo count so every phase's slice (positions rows in
        # relax, velocity elements in md) fits the repartitioned arrays.
        self.n_halo = min(
            self.spec.halo_bytes // 8,
            self.wavefunction.size,
            self.positions.shape[0] * 3,
            self.velocities.size * 4,
        )

    @staticmethod
    def paper_config(platform: str = "discovery") -> WorkloadSpec:
        # Not one of the paper's five benchmark applications (it is the
        # *motivation*); modest defaults for examples and tests.
        return WorkloadSpec(
            nranks=8,
            blocks=8,                 # per phase
            steps_per_block=12000,
            compute_per_block=2.8,
            halo_bytes=24 * 1024,
            input_label="INCAR (SCF + relax + MD)",
            simulated_state_bytes=512 * 1024 * 1024,
        )

    # ------------------------------------------------------------------
    def init_state(self, ctx) -> None:
        MPI = ctx.MPI
        spec = self.spec
        self.dims = grid_dims(spec.nranks)
        self.halo_pairs = face_neighbors(ctx.rank, self.dims, periodic=True)
        rng = DeterministicRng(spec.seed, f"vasp/{ctx.rank}")
        n = max(256, spec.halo_bytes // 8)
        self.wavefunction = rng.array_normal((n,), 0.0, 1.0)
        self.positions = rng.array_uniform((n // 4, 3), 0.0, 8.0)
        self.velocities = np.zeros((n // 4, 3))
        self.n_halo = spec.halo_bytes // 8
        self.scf_energies = []
        self.relax_forces = []
        self.md_temps = []

    # -- phase 1: SCF -------------------------------------------------------
    def _scf_iteration(self, ctx, it: int) -> None:
        MPI = ctx.MPI
        w = MPI.COMM_WORLD
        ctx.compute(self.spec.compute_per_block)
        p = ctx.nranks
        chunk = 32
        send = np.ascontiguousarray(np.tile(self.wavefunction[:chunk], p))
        recv = np.zeros(p * chunk)
        MPI.alltoall(send, chunk, MPI.DOUBLE, recv, chunk, MPI.DOUBLE, w)
        self.wavefunction[:chunk] += recv[:chunk] * 1e-6
        self.checksum += self._mix(self.wavefunction)
        local = np.array([float(np.abs(self.wavefunction).sum())])
        total = np.zeros(1)
        MPI.allreduce(local, total, 1, MPI.DOUBLE, MPI.SUM, w)
        self.scf_energies.append(float(total[0]))

    # -- phase 2: ionic relaxation -------------------------------------------
    def _relax_step(self, ctx, it: int) -> None:
        MPI = ctx.MPI
        w = MPI.COMM_WORLD
        ctx.compute(self.spec.compute_per_block * 1.4)
        payload = np.ascontiguousarray(self.positions[: self.n_halo // 3])
        recvbuf = np.zeros_like(payload)
        for face, (dst, src) in enumerate(self.halo_pairs):
            MPI.sendrecv(
                payload, payload.size, MPI.DOUBLE, dst, 800 + face,
                recvbuf, recvbuf.size, MPI.DOUBLE, src, 800 + face, w,
            )
            self.positions[: self.n_halo // 3] += recvbuf * 1e-7
        self.checksum += self._mix(self.positions)
        pair = np.zeros(1, dtype=[("value", "f8"), ("index", "i4")])
        pair["value"] = float(np.abs(self.positions).max())
        pair["index"] = ctx.rank
        out = np.zeros_like(pair)
        MPI.allreduce(pair, out, 1, MPI.DOUBLE_INT, MPI.MAXLOC, w)
        self.relax_forces.append(float(out["value"][0]))

    # -- phase 3: molecular dynamics -----------------------------------------
    def _md_step(self, ctx, it: int) -> None:
        MPI = ctx.MPI
        w = MPI.COMM_WORLD
        ctx.compute(self.spec.compute_per_block * 0.8)
        n = self.n_halo // 4
        payload = np.ascontiguousarray(self.velocities.ravel()[:n])
        recvs, reqs = [], []
        for face, (dst, src) in enumerate(self.halo_pairs[:4]):
            rbuf = np.zeros(n)
            recvs.append(rbuf)
            reqs.append(MPI.irecv(rbuf, n, MPI.DOUBLE, src, 900 + face, w))
        for face, (dst, src) in enumerate(self.halo_pairs[:4]):
            reqs.append(MPI.isend(payload, n, MPI.DOUBLE, dst, 900 + face, w))
        MPI.waitall(reqs)
        for rbuf in recvs:
            self.velocities.ravel()[:n] += rbuf * 1e-7
        self.positions += self.velocities * 1e-3
        self.checksum += self._mix(self.velocities)
        local = np.array([float((self.velocities ** 2).sum())])
        total = np.zeros(1)
        MPI.allreduce(local, total, 1, MPI.DOUBLE, MPI.SUM, w)
        self.md_temps.append(float(total[0]))

    # ------------------------------------------------------------------
    def run(self, ctx) -> None:
        ctx.set_call_weight(self.spec.steps_per_block)
        n = self.spec.blocks
        # Three distinct algorithm phases — no single main loop.
        for it in ctx.loop("scf", n):
            self._scf_iteration(ctx, it)
            self.blocks_done += 1
        for it in ctx.loop("relax", n):
            self._relax_step(ctx, it)
            self.blocks_done += 1
        for it in ctx.loop("md", n):
            self._md_step(ctx, it)
            self.blocks_done += 1

    def validate(self, ctx):
        n = self.spec.blocks
        if len(self.scf_energies) != n:
            return f"scf phase incomplete: {len(self.scf_energies)}/{n}"
        if len(self.relax_forces) != n:
            return f"relax phase incomplete: {len(self.relax_forces)}/{n}"
        if len(self.md_temps) != n:
            return f"md phase incomplete: {len(self.md_temps)}/{n}"
        return None
