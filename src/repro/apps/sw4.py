"""SW4 proxy — seismic wave propagation with curvilinear mesh refinement.

SW4 (``tests/curvimr/energy-1.in``) runs a 4th-order finite-difference
wave solver on a 2-D processor grid with a curvilinear mesh-refinement
interface.  Communication skeleton:

* a **cartesian communicator** (``MPI_Cart_create`` on a 2-D grid) with
  per-step ``MPI_Cart_shift`` + ``MPI_Sendrecv`` ghost-line exchanges in
  both axes (strided lines: committed ``MPI_Type_vector``);
* every 5th block an ``MPI_Alltoallv`` — the curvilinear/cartesian
  interface redistribution;
* one energy ``MPI_Allreduce(SUM)`` per block (the energy-conservation
  check the input's name refers to).

Cartesian topology + alltoallv make this proxy **not ExaMPI-compatible**.

Crossings per block ~= 4 sendrecv -> 8 + cart_shift 4 + allreduce 2 +
alltoallv amortized 0.4 ~= 14.4.
Calibration (Table 1: 56 ranks): 12.5M/56 = 223k/rank/s; K calibrated
empirically to 59400.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import BlockApp, WorkloadSpec
from repro.util.rng import DeterministicRng


class Sw4Proxy(BlockApp):
    name = "sw4"

    # The cartesian communicator pins the world size: MPI_Cart_create
    # embeds the 2-D process grid in the topology, and the elastic
    # protocol refuses to remap cartesian comms (PROTOCOLS.md §12).
    elastic = False

    @staticmethod
    def paper_config(platform: str = "discovery") -> WorkloadSpec:
        nranks = 64 if platform == "perlmutter" else 56
        return WorkloadSpec(
            nranks=nranks,
            blocks=40,
            steps_per_block=59400,
            compute_per_block=3.6,
            halo_bytes=40 * 1024,
            input_label="tests/curvimr/energy-1.in",
            simulated_state_bytes=49 * 1024 * 1024,
        )

    # ------------------------------------------------------------------
    def init_state(self, ctx) -> None:
        MPI = ctx.MPI
        spec = self.spec
        dims = MPI.dims_create(spec.nranks, 2)
        self.cart = MPI.cart_create(
            MPI.COMM_WORLD, dims, [False, False], reorder=False
        )
        self.dims = tuple(dims)
        rng = DeterministicRng(spec.seed, f"sw4/{ctx.rank}")
        side = max(64, int((spec.halo_bytes // 8) ** 0.5) * 2)
        self.u = rng.array_normal((side, side), 0.0, 1.0)  # displacement
        self.v = np.zeros((side, side))                     # velocity
        self.side = side
        # Ghost line: a strided column of the field.
        self.linetype = MPI.type_vector(side, 1, side, MPI.DOUBLE)
        MPI.type_commit(self.linetype)
        self.n_line = side
        self.energy_history = []

    def block(self, ctx, it: int) -> None:
        MPI = ctx.MPI
        ctx.compute(self.spec.compute_per_block)

        # Ghost exchange along both axes of the cartesian grid.
        recv_line = np.zeros(self.side * self.side)
        for axis in range(2):
            src, dst = MPI.cart_shift(self.cart, axis, 1)
            for direction, (d, s) in enumerate(((dst, src), (src, dst))):
                MPI.sendrecv(
                    self.u, 1, self.linetype, d, 600 + axis * 2 + direction,
                    recv_line, 1, self.linetype, s, 600 + axis * 2 + direction,
                    self.cart,
                )

        # 4th-order-ish wave update.
        lap = (
            -4 * self.u
            + np.roll(self.u, 1, 0) + np.roll(self.u, -1, 0)
            + np.roll(self.u, 1, 1) + np.roll(self.u, -1, 1)
        )
        self.v += 0.01 * lap
        self.u += 0.01 * self.v
        self.checksum += self._mix(self.u)

        # Curvilinear interface redistribution every 5th block.
        if it % 5 == 0:
            p = ctx.nranks
            chunk = 64
            sendbuf = np.ascontiguousarray(
                np.tile(self.u.ravel()[:chunk], p)
            )
            recvbuf = np.zeros(p * chunk)
            counts = [chunk] * p
            displs = [i * chunk for i in range(p)]
            MPI.alltoallv(
                sendbuf, counts, displs, MPI.DOUBLE,
                recvbuf, counts, displs, MPI.DOUBLE,
                MPI.COMM_WORLD,
            )
            self.u.ravel()[:chunk] += recvbuf[:chunk] * 1e-9

        # Energy conservation check.
        local = np.array([float((self.u ** 2).sum() + (self.v ** 2).sum())])
        total = np.zeros(1)
        MPI.allreduce(local, total, 1, MPI.DOUBLE, MPI.SUM, MPI.COMM_WORLD)
        self.energy_history.append(float(total[0]))

    def validate(self, ctx) -> str:
        if self.blocks_done != self.spec.blocks:
            return f"sw4 finished {self.blocks_done}/{self.spec.blocks}"
        if len(self.energy_history) != self.spec.blocks:
            return "sw4 energy history incomplete"
        if not np.all(np.isfinite(self.energy_history)):
            return "sw4 energy diverged"
        return None
