"""GROMACS-primitives proxy — the [GPC19, §3.6] cross-restart workload.

The original MANA paper demonstrated checkpoint-under-Cray-MPI /
restart-under-Open-MPI for exactly one application: a version of GROMACS
*restricted to MPI primitives* — MPI_COMM_WORLD, predefined datatypes,
no user-created MPI objects of any kind (not even a communicator).

This proxy honors that restriction to the letter: its only MPI surface
is Send/Recv/Allreduce/Barrier on MPI_COMM_WORLD with MPI_DOUBLE.  The
cross-implementation restart benchmark runs it first (the historically
demonstrated case), then runs the full-featured proxies (the §9
future-work case the new virtual-id design makes possible).
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import BlockApp, WorkloadSpec
from repro.util.rng import DeterministicRng


class GromacsPrimitivesProxy(BlockApp):
    name = "gromacs"

    # MPI primitives only — no decomposition metadata to rebuild, and
    # the block reads ``self.coords.size`` each time, so the default
    # repartition is fully sufficient.
    partition_attrs = ("coords",)
    replicated_attrs = ("energy_history",)

    @staticmethod
    def paper_config(platform: str = "discovery") -> WorkloadSpec:
        return WorkloadSpec(
            nranks=8,
            blocks=30,
            steps_per_block=1000,
            compute_per_block=1.0,
            halo_bytes=8 * 1024,
            input_label="gromacs (MPI primitives only)",
            simulated_state_bytes=24 * 1024 * 1024,
        )

    # ------------------------------------------------------------------
    def init_state(self, ctx) -> None:
        rng = DeterministicRng(self.spec.seed, f"gromacs/{ctx.rank}")
        n = self.spec.halo_bytes // 8
        self.coords = rng.array_uniform((n,), 0.0, 1.0)
        self.energy_history = []
        # Deliberately NO MPI object creation here.

    def block(self, ctx, it: int) -> None:
        MPI = ctx.MPI
        world = MPI.COMM_WORLD
        ctx.compute(self.spec.compute_per_block)
        n = self.coords.size

        # Ring exchange of coordinates with bare Send/Recv.
        nxt = (ctx.rank + 1) % ctx.nranks
        prv = (ctx.rank - 1) % ctx.nranks
        MPI.send(self.coords, n, MPI.DOUBLE, nxt, 700, world)
        incoming = np.zeros(n)
        MPI.recv(incoming, n, MPI.DOUBLE, prv, 700, world)
        self.coords += incoming * 1e-6
        self.checksum += self._mix(self.coords)

        local = np.array([float(self.coords.sum())])
        total = np.zeros(1)
        MPI.allreduce(local, total, 1, MPI.DOUBLE, MPI.SUM, world)
        self.energy_history.append(float(total[0]))
        if it % 10 == 9:
            MPI.barrier(world)

    def validate(self, ctx) -> str:
        if self.blocks_done != self.spec.blocks:
            return f"gromacs finished {self.blocks_done}/{self.spec.blocks}"
        return None
