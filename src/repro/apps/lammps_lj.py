"""LAMMPS proxy — the ``bench/in.lj`` Lennard-Jones benchmark.

LAMMPS is the paper's highest MPI-call-rate application (22.9M CS/s at
56 ranks, §6.3) because every timestep performs *two* neighbor
communication phases (forward position comm, reverse force comm), each
a nonblocking exchange with the six face neighbors.

Per block (= ``steps_per_block`` timesteps):

* forward comm: 6x isend + 6x irecv + waitall;
* reverse comm: 6x isend + 6x irecv + waitall;
* one ``MPI_Allreduce(SUM)`` (pressure/energy tally);
* every 5th block a thermo ``MPI_Bcast`` from rank 0.

ExaMPI-compatible.  Crossings per block ~= 2*(6+6+1) + (1+1) + 0.4 ~= 28.
Calibration (Table 1: 56 ranks, run=50000): 22.9M/56 = 409k/rank/s;
K calibrated empirically to 33050 (cs/rank/s == 409k measured).
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import BlockApp, WorkloadSpec, face_neighbors, grid_dims
from repro.util.rng import DeterministicRng


class LammpsLJProxy(BlockApp):
    name = "lammps"

    partition_attrs = ("x", "f")
    replicated_attrs = ("thermo",)

    def post_repartition(self, rank, nranks, plan) -> None:
        self.dims = grid_dims(nranks)
        self.halo_pairs = face_neighbors(rank, self.dims, periodic=True)
        self.n_halo = min(self.spec.halo_bytes // 8, len(self.x))

    @staticmethod
    def paper_config(platform: str = "discovery") -> WorkloadSpec:
        nranks = 64 if platform == "perlmutter" else 56
        return WorkloadSpec(
            nranks=nranks,
            blocks=40,
            steps_per_block=33050,
            compute_per_block=3.2,
            halo_bytes=24 * 1024,
            input_label="-in bench/in.lj (run=50000)",
            simulated_state_bytes=42 * 1024 * 1024,
        )

    # ------------------------------------------------------------------
    def init_state(self, ctx) -> None:
        spec = self.spec
        self.dims = grid_dims(spec.nranks)
        self.halo_pairs = face_neighbors(ctx.rank, self.dims, periodic=True)
        rng = DeterministicRng(spec.seed, f"lammps/{ctx.rank}")
        n_local = max(128, spec.halo_bytes // 8)
        self.x = rng.array_uniform((n_local,), -1.0, 1.0)
        self.f = np.zeros(n_local)
        self.n_halo = spec.halo_bytes // 8
        self.thermo = []

    def _exchange(self, ctx, payload: np.ndarray, tag0: int) -> np.ndarray:
        """One neighbor-communication phase: isend/irecv all faces, waitall."""
        MPI = ctx.MPI
        world = MPI.COMM_WORLD
        n = self.n_halo
        recvs = [np.zeros(n) for _ in self.halo_pairs]
        reqs = []
        for face, (dst, src) in enumerate(self.halo_pairs):
            reqs.append(
                MPI.irecv(recvs[face], n, MPI.DOUBLE, src, tag0 + face, world)
            )
        for face, (dst, src) in enumerate(self.halo_pairs):
            reqs.append(
                MPI.isend(payload, n, MPI.DOUBLE, dst, tag0 + face, world)
            )
        MPI.waitall(reqs)
        acc = np.zeros(n)
        for r in recvs:
            acc += r
        return acc

    def block(self, ctx, it: int) -> None:
        MPI = ctx.MPI
        world = MPI.COMM_WORLD
        ctx.compute(self.spec.compute_per_block)

        # Forward comm (positions out), force computation, reverse comm.
        ghosts = self._exchange(ctx, self.x[: self.n_halo], 200)
        self.f[: self.n_halo] = np.tanh(ghosts) * 1e-3
        back = self._exchange(ctx, self.f[: self.n_halo], 300)
        self.x[: self.n_halo] += back * 1e-6
        self.checksum += self._mix(self.x)

        local = np.array([float(np.abs(self.x).sum())])
        total = np.zeros(1)
        MPI.allreduce(local, total, 1, MPI.DOUBLE, MPI.SUM, world)

        if it % 5 == 0:
            thermo = np.array([total[0], float(it), 0.0])
            MPI.bcast(thermo, 3, MPI.DOUBLE, 0, world)
            self.thermo.append(float(thermo[0]))

    def validate(self, ctx) -> str:
        if self.blocks_done != self.spec.blocks:
            return (
                f"lammps finished {self.blocks_done}/{self.spec.blocks} blocks"
            )
        expected_thermo = (self.spec.blocks + 4) // 5
        if len(self.thermo) != expected_thermo:
            return (
                f"lammps thermo entries {len(self.thermo)} != "
                f"{expected_thermo}"
            )
        return None
