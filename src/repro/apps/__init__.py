"""Proxy applications — the five real-world workloads of Section 6.

Each proxy keeps its namesake's *communication skeleton* (decomposition,
message pattern, collective mix) and is calibrated to the paper's
observable aggregates: per-rank MPI-call rates (the §6.3 context-switch
measurements), native runtimes, and checkpoint image sizes (Table 3).
The calibration mechanism is documented in :mod:`repro.apps.base`.

ExaMPI compatibility (Figure 3's "subset of applications known to be
compatible"): CoMD, LAMMPS, and LULESH restrict themselves to ExaMPI's
function subset; HPCG (allgatherv) and SW4 (cartesian topology +
alltoallv) do not.
"""

from repro.apps.base import (
    WorkloadSpec,
    Partitioner,
    RepartitionPlan,
    grid_dims,
    coords_of,
    rank_of,
    face_neighbors,
)
from repro.apps.comd import CoMDProxy
from repro.apps.elastic import ElasticHaloApp
from repro.apps.lammps_lj import LammpsLJProxy
from repro.apps.lulesh import LuleshProxy
from repro.apps.hpcg import HpcgProxy
from repro.apps.sw4 import Sw4Proxy
from repro.apps.gromacs_primitives import GromacsPrimitivesProxy
from repro.apps.vasp_like import VaspLikeProxy

APP_CLASSES = {
    "comd": CoMDProxy,
    "hpcg": HpcgProxy,
    "lammps": LammpsLJProxy,
    "lulesh": LuleshProxy,
    "sw4": Sw4Proxy,
    "gromacs": GromacsPrimitivesProxy,
    "vasp": VaspLikeProxy,
}

#: Applications runnable under ExaMPI's subset (Figure 3).
EXAMPI_COMPATIBLE = ("comd", "lammps", "lulesh", "gromacs", "vasp")

__all__ = [
    "WorkloadSpec",
    "Partitioner",
    "RepartitionPlan",
    "ElasticHaloApp",
    "grid_dims",
    "coords_of",
    "rank_of",
    "face_neighbors",
    "CoMDProxy",
    "LammpsLJProxy",
    "LuleshProxy",
    "HpcgProxy",
    "Sw4Proxy",
    "GromacsPrimitivesProxy",
    "VaspLikeProxy",
    "APP_CLASSES",
    "EXAMPI_COMPATIBLE",
]
