"""HPCG proxy — preconditioned conjugate gradient with halo exchange.

HPCG (the TOP500 companion benchmark) solves a 27-point stencil system
with CG.  Its communication mix: per iteration one halo exchange
(nonblocking neighbor p2p) inside SpMV plus *three* dot-product
``MPI_Allreduce`` calls; setup exchanges row partitioning with
``MPI_Allgatherv`` — which is why this proxy is **not** ExaMPI-compatible
(Figure 3 omits it).

It also has the paper's largest checkpoint image: 934 MB/rank (Table 3)
— the matrix + preconditioner dominate.

Crossings per block ~= (6 isend + 6 irecv + waitall) + 3*(1+1) = 19.
Calibration (Table 1: 56 ranks, nx=ny=nz=104, it=50): 4.7M/56 =
84k/rank/s; block compute 4.2 s => K calibrated empirically to 11700 (cs/rank/s == 84k measured).
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import BlockApp, WorkloadSpec, face_neighbors, grid_dims
from repro.util.rng import DeterministicRng


class HpcgProxy(BlockApp):
    name = "hpcg"

    partition_attrs = ("x", "r", "p")
    # ``rr`` and the residual history are allreduce results, identical
    # on every rank after the first block.
    replicated_attrs = ("rr", "residual_history")

    def post_repartition(self, rank, nranks, plan) -> None:
        self.dims = grid_dims(nranks)
        self.halo_pairs = face_neighbors(rank, self.dims, periodic=False)
        self.n_local = len(self.x)
        self.n_halo = min(self.spec.halo_bytes // 8, self.n_local)
        lengths = [hi - lo for lo, hi in plan.new_bounds]
        self.row_offsets = np.concatenate([[0], np.cumsum(lengths)])

    @staticmethod
    def paper_config(platform: str = "discovery") -> WorkloadSpec:
        return WorkloadSpec(
            nranks=56,
            blocks=40,
            steps_per_block=11700,
            compute_per_block=4.2,
            halo_bytes=16 * 1024,
            input_label="nx=104 ny=104 nz=104 it=50",
            simulated_state_bytes=934 * 1024 * 1024,
            os_noise=0.05,
        )

    # ------------------------------------------------------------------
    def init_state(self, ctx) -> None:
        MPI = ctx.MPI
        spec = self.spec
        self.dims = grid_dims(spec.nranks)
        self.halo_pairs = face_neighbors(ctx.rank, self.dims, periodic=False)
        rng = DeterministicRng(spec.seed, f"hpcg/{ctx.rank}")
        self.n_local = max(512, spec.halo_bytes // 8 * 4)
        self.n_halo = spec.halo_bytes // 8

        # Row-partition exchange: every rank learns every rank's local
        # row count (MPI_Allgatherv over variable-size name blobs in the
        # real code; counts here).
        counts = np.zeros(ctx.nranks, dtype=np.int64)
        mine = np.array([self.n_local], dtype=np.int64)
        MPI.allgatherv(
            mine, 1, MPI.INT64_T,
            counts, [1] * ctx.nranks, list(range(ctx.nranks)), MPI.INT64_T,
            MPI.COMM_WORLD,
        )
        self.row_offsets = np.concatenate([[0], np.cumsum(counts)])

        # CG state: x (solution), r (residual), p (search direction).
        self.x = np.zeros(self.n_local)
        self.r = rng.array_uniform((self.n_local,), -1.0, 1.0)
        self.p = self.r.copy()
        self.rr = float(self.r @ self.r)
        self.residual_history = []

    def _spmv_halo(self, ctx, v: np.ndarray) -> np.ndarray:
        """SpMV with neighbor halo exchange (27-point stencil proxy)."""
        MPI = ctx.MPI
        world = MPI.COMM_WORLD
        n = self.n_halo
        recvs = [np.zeros(n) for _ in self.halo_pairs]
        reqs = []
        for face, (dst, src) in enumerate(self.halo_pairs):
            reqs.append(MPI.irecv(recvs[face], n, MPI.DOUBLE, src, 500 + face, world))
        payload = np.ascontiguousarray(v[:n])
        for face, (dst, src) in enumerate(self.halo_pairs):
            reqs.append(MPI.isend(payload, n, MPI.DOUBLE, dst, 500 + face, world))
        MPI.waitall(reqs)
        # Local stencil: tridiagonal-ish apply, plus ghost contributions.
        out = 2.5 * v
        out[1:] -= v[:-1] * 0.5
        out[:-1] -= v[1:] * 0.5
        for face, r in enumerate(recvs):
            if self.halo_pairs[face][1] != MPI.PROC_NULL:
                out[:n] -= 0.01 * r
        return out

    def _dot(self, ctx, a: np.ndarray, b: np.ndarray) -> float:
        MPI = ctx.MPI
        local = np.array([float(a @ b)])
        total = np.zeros(1)
        MPI.allreduce(local, total, 1, MPI.DOUBLE, MPI.SUM, MPI.COMM_WORLD)
        return float(total[0])

    def block(self, ctx, it: int) -> None:
        ctx.compute(self.spec.compute_per_block)
        ap = self._spmv_halo(ctx, self.p)
        pap = self._dot(ctx, self.p, ap)
        alpha = self.rr / pap if pap != 0 else 0.0
        self.x += alpha * self.p
        self.r -= alpha * ap
        rr_new = self._dot(ctx, self.r, self.r)
        beta = rr_new / self.rr if self.rr != 0 else 0.0
        self.p = self.r + beta * self.p
        self.rr = rr_new
        # The third reduction: residual norm for the convergence report.
        norm = self._dot(ctx, self.r, self.r) ** 0.5
        self.residual_history.append(norm)
        self.checksum += norm

    def validate(self, ctx) -> str:
        if self.blocks_done != self.spec.blocks:
            return f"hpcg finished {self.blocks_done}/{self.spec.blocks}"
        hist = self.residual_history
        if len(hist) != self.spec.blocks:
            return "hpcg residual history incomplete"
        if not all(np.isfinite(hist)):
            return "hpcg residual diverged"
        # CG on an SPD stencil must make progress.
        if hist[-1] > hist[0]:
            return f"hpcg residual grew: {hist[0]} -> {hist[-1]}"
        return None
