"""Shared machinery for the proxy applications.

Calibration (DESIGN.md §4.6)
----------------------------
A real run of, say, LAMMPS makes ~10^10 MPI calls; simulating each is
impossible and unnecessary.  Each proxy iterates over *blocks*: one
resumable-loop iteration stands for ``steps_per_block`` real timesteps.
The proxy performs the skeleton's MPI calls once per block (real
messages, real collectives — these exercise the full MANA machinery),
declares the block's compute time, and sets the MANA call-weight to
``steps_per_block`` so wrapper-crossing *rates* (context switches per
second, §6.3) match the paper's measurements.

The numbers in each app's ``paper_config`` derive from:

* §6.3 context-switch rates (CoMD 3.7M, HPCG 4.7M, LAMMPS 22.9M,
  LULESH 1.3M, SW4 12.5M CS/s, job-aggregate, Table 1 rank counts);
* Table 3 checkpoint image sizes per rank;
* native runtimes of Figure 2's scale (hundreds of seconds).

Given crossings-per-block ``c`` (from the skeleton), block compute
``t``, and the target per-rank rate ``r``: ``steps_per_block = r*t/c``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.runtime.app import MpiApplication


@dataclass
class WorkloadSpec:
    """One application configuration (a row of Table 1 or Table 2)."""

    nranks: int
    blocks: int                    # simulated loop iterations
    steps_per_block: int           # call-weight K (real steps per block)
    compute_per_block: float       # seconds at reference CPU speed
    halo_bytes: int                # per-face message payload
    input_label: str               # the paper's input column
    simulated_state_bytes: int     # Table 3 image size per rank
    seed: int = 7
    # OS/system noise: fractional std of per-block compute time.  The
    # paper notes HPCG and LULESH showed "substantially more timing
    # variation ... which appeared to fall into clusters" even natively;
    # per-app noise levels reproduce that methodology artifact when the
    # harness runs multiple trials.
    os_noise: float = 0.004

    def scaled(self, blocks: int) -> "WorkloadSpec":
        """Same workload with a different number of blocks (for tests)."""
        from dataclasses import replace

        return replace(self, blocks=blocks)


def grid_dims(nranks: int, ndims: int = 3) -> Tuple[int, ...]:
    """Near-cubic process grid (MPI_Dims_create semantics)."""
    from repro.mpi.api import BaseMpiLib

    return tuple(BaseMpiLib.dims_create(nranks, ndims))


def coords_of(rank: int, dims: Tuple[int, ...]) -> Tuple[int, ...]:
    coords = []
    for extent in reversed(dims):
        coords.append(rank % extent)
        rank //= extent
    return tuple(reversed(coords))


def rank_of(coords: Tuple[int, ...], dims: Tuple[int, ...]) -> int:
    rank = 0
    for extent, c in zip(dims, coords):
        rank = rank * extent + (c % extent)
    return rank


def face_neighbors(
    rank: int, dims: Tuple[int, ...], periodic: bool = True
) -> List[Tuple[int, int]]:
    """(send_to, recv_from) world-rank pairs, one per face (2*ndims).

    With ``periodic=False``, edges map to PROC_NULL (-2), matching
    MPI_Cart_shift at open boundaries.
    """
    from repro.mpi.constants import PROC_NULL

    coords = coords_of(rank, dims)
    pairs: List[Tuple[int, int]] = []
    for axis in range(len(dims)):
        for direction in (+1, -1):
            def shifted(delta: int) -> int:
                c = list(coords)
                c[axis] += delta
                if not periodic and not 0 <= c[axis] < dims[axis]:
                    return PROC_NULL
                return rank_of(tuple(c), dims)

            pairs.append((shifted(direction), shifted(-direction)))
    return pairs


class BlockApp(MpiApplication):
    """Base class for the block-structured proxies.

    Subclasses implement ``init_state(ctx)`` (allocate arrays, create MPI
    objects) and ``block(ctx, it)`` (one block of work).  Everything
    else — the resumable loop, call-weight application, progress
    accounting — is shared.
    """

    loop_name = "main"

    def __init__(self, spec: WorkloadSpec):
        self.spec = spec
        self.simulated_state_bytes = spec.simulated_state_bytes
        self.blocks_done = 0
        self.checksum = 0.0

    # -- subclass surface ------------------------------------------------
    def init_state(self, ctx) -> None:
        raise NotImplementedError

    def block(self, ctx, it: int) -> None:
        raise NotImplementedError

    # -- framework ---------------------------------------------------------
    def setup(self, ctx) -> None:
        self.init_state(ctx)

    def run(self, ctx) -> None:
        ctx.set_call_weight(self.spec.steps_per_block)
        ctx.set_compute_noise(self.spec.os_noise)
        for it in ctx.loop(self.loop_name, self.spec.blocks):
            self.block(ctx, it)
            self.blocks_done = it + 1

    def progress_summary(self) -> Dict:
        return {
            "app": self.name,
            "blocks_done": self.blocks_done,
            "checksum": float(self.checksum),
        }

    # -- shared numerics -----------------------------------------------------
    @staticmethod
    def _mix(state: np.ndarray) -> float:
        """A cheap, deterministic state-evolution kernel: every block
        advances the array and returns a scalar contribution so results
        are sensitive to lost/duplicated work."""
        state *= 0.999
        state += np.sin(state) * 1e-3
        return float(state.ravel()[:16].sum())
