"""Shared machinery for the proxy applications.

Calibration (DESIGN.md §4.6)
----------------------------
A real run of, say, LAMMPS makes ~10^10 MPI calls; simulating each is
impossible and unnecessary.  Each proxy iterates over *blocks*: one
resumable-loop iteration stands for ``steps_per_block`` real timesteps.
The proxy performs the skeleton's MPI calls once per block (real
messages, real collectives — these exercise the full MANA machinery),
declares the block's compute time, and sets the MANA call-weight to
``steps_per_block`` so wrapper-crossing *rates* (context switches per
second, §6.3) match the paper's measurements.

The numbers in each app's ``paper_config`` derive from:

* §6.3 context-switch rates (CoMD 3.7M, HPCG 4.7M, LAMMPS 22.9M,
  LULESH 1.3M, SW4 12.5M CS/s, job-aggregate, Table 1 rank counts);
* Table 3 checkpoint image sizes per rank;
* native runtimes of Figure 2's scale (hundreds of seconds).

Given crossings-per-block ``c`` (from the skeleton), block compute
``t``, and the target per-rank rate ``r``: ``steps_per_block = r*t/c``.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field, replace
from typing import Dict, List, Tuple

import numpy as np

from repro.runtime.app import MpiApplication
from repro.util.errors import ElasticRestartError


@dataclass
class WorkloadSpec:
    """One application configuration (a row of Table 1 or Table 2)."""

    nranks: int
    blocks: int                    # simulated loop iterations
    steps_per_block: int           # call-weight K (real steps per block)
    compute_per_block: float       # seconds at reference CPU speed
    halo_bytes: int                # per-face message payload
    input_label: str               # the paper's input column
    simulated_state_bytes: int     # Table 3 image size per rank
    seed: int = 7
    # OS/system noise: fractional std of per-block compute time.  The
    # paper notes HPCG and LULESH showed "substantially more timing
    # variation ... which appeared to fall into clusters" even natively;
    # per-app noise levels reproduce that methodology artifact when the
    # harness runs multiple trials.
    os_noise: float = 0.004

    def scaled(self, blocks: int) -> "WorkloadSpec":
        """Same workload with a different number of blocks (for tests)."""
        from dataclasses import replace

        return replace(self, blocks=blocks)


def grid_dims(nranks: int, ndims: int = 3) -> Tuple[int, ...]:
    """Near-cubic process grid (MPI_Dims_create semantics)."""
    from repro.mpi.api import BaseMpiLib

    return tuple(BaseMpiLib.dims_create(nranks, ndims))


def coords_of(rank: int, dims: Tuple[int, ...]) -> Tuple[int, ...]:
    coords = []
    for extent in reversed(dims):
        coords.append(rank % extent)
        rank //= extent
    return tuple(reversed(coords))


def rank_of(coords: Tuple[int, ...], dims: Tuple[int, ...]) -> int:
    rank = 0
    for extent, c in zip(dims, coords):
        rank = rank * extent + (c % extent)
    return rank


def face_neighbors(
    rank: int, dims: Tuple[int, ...], periodic: bool = True
) -> List[Tuple[int, int]]:
    """(send_to, recv_from) world-rank pairs, one per face (2*ndims).

    With ``periodic=False``, edges map to PROC_NULL (-2), matching
    MPI_Cart_shift at open boundaries.
    """
    from repro.mpi.constants import PROC_NULL

    coords = coords_of(rank, dims)
    pairs: List[Tuple[int, int]] = []
    for axis in range(len(dims)):
        for direction in (+1, -1):
            def shifted(delta: int) -> int:
                c = list(coords)
                c[axis] += delta
                if not periodic and not 0 <= c[axis] < dims[axis]:
                    return PROC_NULL
                return rank_of(tuple(c), dims)

            pairs.append((shifted(direction), shifted(-direction)))
    return pairs


# ----------------------------------------------------------------------
# elastic repartitioning (PROTOCOLS.md §12)
# ----------------------------------------------------------------------
class Partitioner:
    """Contiguous 1-D block partitioning of ``total`` items over ranks.

    The shape follows nengo_mpi's ``partition``/``verify_assignments``:
    a pure assignment function plus an explicit verifier that every item
    is owned exactly once.  All proxies decompose their per-rank domain
    arrays along axis 0, so a 1-D item partition is sufficient to move
    upper-half state between world sizes.
    """

    @staticmethod
    def bounds(total: int, nranks: int) -> List[Tuple[int, int]]:
        """Near-equal ``[lo, hi)`` slice per rank (first ranks get the
        remainder), covering ``[0, total)`` exactly."""
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        base, rem = divmod(total, nranks)
        out: List[Tuple[int, int]] = []
        lo = 0
        for r in range(nranks):
            hi = lo + base + (1 if r < rem else 0)
            out.append((lo, hi))
            lo = hi
        return out

    @staticmethod
    def owner_of(index: int, bounds: List[Tuple[int, int]]) -> int:
        """The rank whose ``[lo, hi)`` slice contains ``index``."""
        for r, (lo, hi) in enumerate(bounds):
            if lo <= index < hi:
                return r
        raise ValueError(f"index {index} outside every bound in {bounds}")

    @staticmethod
    def verify(bounds: List[Tuple[int, int]], total: int) -> None:
        """Every item owned exactly once, in rank order, no gaps."""
        lo = 0
        for r, (b_lo, b_hi) in enumerate(bounds):
            if b_lo != lo or b_hi < b_lo:
                raise ValueError(
                    f"rank {r} bound [{b_lo}, {b_hi}) leaves a gap or "
                    f"overlap at item {lo}"
                )
            lo = b_hi
        if lo != total:
            raise ValueError(
                f"bounds cover {lo} items, expected {total}"
            )


@dataclass
class RepartitionPlan:
    """How upper-half state moves from ``old_nranks`` to ``new_nranks``.

    ``old_bounds``/``new_bounds`` partition the same ``total`` items
    (the rows of the app's primary domain array).  Two derived maps
    drive the rest of the elastic-restore protocol:

    * :meth:`src_of` — which old rank seeds new rank ``r``'s virtual-id
      table, clock, and loop tokens (the old owner of ``r``'s first
      item);
    * :meth:`rank_map` — the unique inheritor of each old rank's
      identity (drain ledgers, buffered messages): the new owner of the
      old rank's first item.  Every old rank maps to exactly one new
      rank, so pairwise sent/received ledgers stay consistent.
    """

    total: int
    old_nranks: int
    new_nranks: int
    old_bounds: List[Tuple[int, int]]
    new_bounds: List[Tuple[int, int]]

    def __post_init__(self) -> None:
        Partitioner.verify(self.old_bounds, self.total)
        Partitioner.verify(self.new_bounds, self.total)

    @classmethod
    def build(cls, old_lengths: List[int], new_nranks: int) -> "RepartitionPlan":
        total = int(sum(old_lengths))
        old_bounds: List[Tuple[int, int]] = []
        lo = 0
        for n in old_lengths:
            old_bounds.append((lo, lo + int(n)))
            lo += int(n)
        return cls(
            total=total,
            old_nranks=len(old_lengths),
            new_nranks=new_nranks,
            old_bounds=old_bounds,
            new_bounds=Partitioner.bounds(total, new_nranks),
        )

    def src_of(self, new_rank: int) -> int:
        lo, hi = self.new_bounds[new_rank]
        if hi <= lo:  # empty slice: fall back proportionally
            return min(
                self.old_nranks - 1,
                new_rank * self.old_nranks // self.new_nranks,
            )
        return Partitioner.owner_of(lo, self.old_bounds)

    def rank_map(self) -> Dict[int, int]:
        """old rank -> the single new rank inheriting its identity."""
        out: Dict[int, int] = {}
        for o, (lo, hi) in enumerate(self.old_bounds):
            if hi <= lo:
                out[o] = min(
                    self.new_nranks - 1,
                    o * self.new_nranks // self.old_nranks,
                )
            else:
                out[o] = Partitioner.owner_of(lo, self.new_bounds)
        return out

    def merged_into(self, new_rank: int) -> List[int]:
        """Old ranks whose identity new rank ``new_rank`` inherits."""
        rm = self.rank_map()
        return [o for o in range(self.old_nranks) if rm[o] == new_rank]


class BlockApp(MpiApplication):
    """Base class for the block-structured proxies.

    Subclasses implement ``init_state(ctx)`` (allocate arrays, create MPI
    objects) and ``block(ctx, it)`` (one block of work).  Everything
    else — the resumable loop, call-weight application, progress
    accounting — is shared.
    """

    loop_name = "main"

    # -- elastic-restart contract (PROTOCOLS.md §12) ---------------------
    # ``elastic = False`` refuses repartitioning outright (e.g. SW4's
    # cartesian topology pins the world size).  ``partition_attrs`` are
    # per-rank domain arrays split by rows across the new world;
    # ``replicated_attrs`` hold values identical on every rank (global
    # reduction results, committed-datatype handles — virtual ids are
    # identical across ranks by collective creation order) and are
    # copied from the seeding old rank.  ``checksum_mode`` says whether
    # ``checksum`` is a per-rank partial sum ("ledger": conserved by
    # summing each old rank's value into its unique inheritor) or a
    # globally agreed value ("replicated").
    elastic = True
    partition_attrs: Tuple[str, ...] = ()
    replicated_attrs: Tuple[str, ...] = ()
    checksum_mode = "ledger"

    def __init__(self, spec: WorkloadSpec):
        self.spec = spec
        self.simulated_state_bytes = spec.simulated_state_bytes
        self.blocks_done = 0
        self.checksum = 0.0

    # -- subclass surface ------------------------------------------------
    def init_state(self, ctx) -> None:
        raise NotImplementedError

    def block(self, ctx, it: int) -> None:
        raise NotImplementedError

    # -- framework ---------------------------------------------------------
    def setup(self, ctx) -> None:
        self.init_state(ctx)

    def run(self, ctx) -> None:
        ctx.set_call_weight(self.spec.steps_per_block)
        ctx.set_compute_noise(self.spec.os_noise)
        for it in ctx.loop(self.loop_name, self.spec.blocks):
            self.block(ctx, it)
            self.blocks_done = it + 1

    # -- elastic repartitioning ---------------------------------------------
    @classmethod
    def repartition(
        cls, old_apps: List["BlockApp"], new_nranks: int
    ) -> Tuple[List["BlockApp"], RepartitionPlan]:
        """Rebuild per-rank app state for a different world size.

        Returns ``(new_apps, plan)`` with ``len(new_apps) == new_nranks``.
        The default implementation concatenates each ``partition_attrs``
        array across old ranks in rank order and re-slices it by the
        plan's new bounds, copies ``replicated_attrs`` (and loop
        progress) from the seeding old rank, and conserves ``checksum``
        per ``checksum_mode``.  Subclasses with irregular state override
        :meth:`post_repartition` (decomposition metadata) or this method
        entirely.
        """
        if not cls.elastic:
            raise ElasticRestartError(
                f"{cls.name}: application state pins the world size "
                f"(elastic=False); restore at the original rank count"
            )
        old_nranks = len(old_apps)
        if new_nranks < 1:
            raise ElasticRestartError(
                f"cannot repartition onto {new_nranks} ranks"
            )
        spec = replace(old_apps[0].spec, nranks=new_nranks)

        # The primary partition attr (first listed) defines the item
        # space of the plan; without one, old ranks themselves are the
        # items (pure identity inheritance).
        if cls.partition_attrs:
            primary = cls.partition_attrs[0]
            lengths = [
                int(np.asarray(getattr(a, primary)).shape[0])
                for a in old_apps
            ]
        else:
            lengths = [1] * old_nranks
        plan = RepartitionPlan.build(lengths, new_nranks)

        # Each attr may have its own row count per rank; partition each
        # by its own totals so every row lands exactly once.
        globals_: Dict[str, np.ndarray] = {}
        bounds_: Dict[str, List[Tuple[int, int]]] = {}
        for name in cls.partition_attrs:
            parts = [np.asarray(getattr(a, name)) for a in old_apps]
            globals_[name] = np.concatenate(parts, axis=0)
            bounds_[name] = Partitioner.bounds(
                int(globals_[name].shape[0]), new_nranks
            )

        new_apps: List["BlockApp"] = []
        for r in range(new_nranks):
            src = old_apps[plan.src_of(r)]
            app = cls(spec)
            for name in cls.partition_attrs:
                lo, hi = bounds_[name][r]
                setattr(app, name, globals_[name][lo:hi].copy())
            for name in cls.replicated_attrs:
                setattr(app, name, copy.deepcopy(getattr(src, name)))
            app.blocks_done = src.blocks_done
            if cls.checksum_mode == "replicated":
                app.checksum = src.checksum
            else:
                app.checksum = float(sum(
                    old_apps[o].checksum for o in plan.merged_into(r)
                ))
            app.post_repartition(r, new_nranks, plan)
            new_apps.append(app)
        return new_apps, plan

    def post_repartition(self, rank: int, nranks: int,
                         plan: RepartitionPlan) -> None:
        """Recompute decomposition metadata for the new world size
        (grid dims, halo neighbor pairs, clamped halo item counts).
        Called on each freshly repartitioned app; default is a no-op."""

    def progress_summary(self) -> Dict:
        return {
            "app": self.name,
            "blocks_done": self.blocks_done,
            "checksum": float(self.checksum),
        }

    # -- shared numerics -----------------------------------------------------
    @staticmethod
    def _mix(state: np.ndarray) -> float:
        """A cheap, deterministic state-evolution kernel: every block
        advances the array and returns a scalar contribution so results
        are sensitive to lost/duplicated work."""
        state *= 0.999
        state += np.sin(state) * 1e-3
        return float(state.ravel()[:16].sum())
