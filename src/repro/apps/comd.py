"""CoMD proxy — Lennard-Jones molecular dynamics (ExaSky co-design app).

Skeleton: 3-D domain decomposition on a periodic cell grid.  Per block
(= ``steps_per_block`` velocity-Verlet steps of the real code):

* six face halo exchanges (atom positions crossing boundaries), done
  with ``MPI_Sendrecv`` of a committed contiguous "vec3" datatype;
* one ``MPI_Allreduce(SUM)`` for the potential/kinetic energy tally;
* every 10th block an ``MPI_Allreduce(MAXLOC)`` on (max force, rank) —
  CoMD's hot-atom diagnostic — exercising the DOUBLE_INT pair type.

ExaMPI-compatible: manual decomposition (no cartesian topology), only
subset functions.  Crossings per block: 6 sendrecv -> 12, allreduce
1 + 1 trivial barrier (+0.2 amortized maxloc) ~= 14.

Calibration (Table 1: 27 ranks, ``-N 10000``): §6.3 measured 3.7M CS/s
aggregate = 137k/rank/s; with block compute 2.2 s,
K calibrated empirically to 15600 (cs/rank/s == 137k measured).
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import BlockApp, WorkloadSpec, face_neighbors, grid_dims
from repro.util.rng import DeterministicRng


class CoMDProxy(BlockApp):
    name = "comd"

    partition_attrs = ("positions", "velocities")
    replicated_attrs = ("vec3", "energy_history")

    def post_repartition(self, rank, nranks, plan) -> None:
        self.dims = grid_dims(nranks)
        self.halo_pairs = face_neighbors(rank, self.dims, periodic=True)
        self.n_halo = min(self.spec.halo_bytes // 24, len(self.positions))

    @staticmethod
    def paper_config(platform: str = "discovery") -> WorkloadSpec:
        if platform == "perlmutter":
            # Table 2: 64 ranks, -N 30000.
            return WorkloadSpec(
                nranks=64,
                blocks=40,
                steps_per_block=15600,
                compute_per_block=2.2,
                halo_bytes=48 * 1024,
                input_label="-N 30000",
                simulated_state_bytes=32 * 1024 * 1024,
            )
        return WorkloadSpec(
            nranks=27,
            blocks=40,
            steps_per_block=15600,
            compute_per_block=2.2,
            halo_bytes=32 * 1024,
            input_label="-N 10000",
            simulated_state_bytes=32 * 1024 * 1024,
        )

    # ------------------------------------------------------------------
    def init_state(self, ctx) -> None:
        MPI = ctx.MPI
        spec = self.spec
        self.dims = grid_dims(spec.nranks)
        self.halo_pairs = face_neighbors(ctx.rank, self.dims, periodic=True)
        rng = DeterministicRng(spec.seed, f"comd/{ctx.rank}")
        n_local = max(64, spec.halo_bytes // 24)
        self.positions = rng.array_uniform((n_local, 3), 0.0, 10.0)
        self.velocities = rng.array_normal((n_local, 3), 0.0, 0.1)
        # vec3: the committed derived type used for halo payloads.
        self.vec3 = MPI.type_contiguous(3, MPI.DOUBLE)
        MPI.type_commit(self.vec3)
        self.n_halo = spec.halo_bytes // 24  # vec3 elements per face
        self.energy_history = []

    def block(self, ctx, it: int) -> None:
        MPI = ctx.MPI
        world = MPI.COMM_WORLD
        ctx.compute(self.spec.compute_per_block)

        # Face halo exchange: boundary atom positions.
        sendbuf = np.ascontiguousarray(self.positions[: self.n_halo])
        recvbuf = np.zeros_like(sendbuf)
        for face, (dst, src) in enumerate(self.halo_pairs):
            MPI.sendrecv(
                sendbuf, self.n_halo, self.vec3, dst, 100 + face,
                recvbuf, self.n_halo, self.vec3, src, 100 + face,
                world,
            )
            # Ghost contributions nudge the local state deterministically.
            self.positions[: self.n_halo] += recvbuf * 1e-6

        self.checksum += self._mix(self.positions)
        self.velocities *= 0.9995

        # Energy tally.
        local = np.array([self.positions.sum() + self.velocities.sum()])
        total = np.zeros(1)
        MPI.allreduce(local, total, 1, MPI.DOUBLE, MPI.SUM, world)
        self.energy_history.append(float(total[0]))

        # Hot-atom diagnostic: MAXLOC over (max |force|, rank).
        if it % 10 == 0:
            pair = np.zeros(1, dtype=[("value", "f8"), ("index", "i4")])
            pair["value"] = np.abs(self.velocities).max()
            pair["index"] = ctx.rank
            out = np.zeros_like(pair)
            MPI.allreduce(pair, out, 1, MPI.DOUBLE_INT, MPI.MAXLOC, world)
            self.checksum += float(out["value"][0])

    def validate(self, ctx) -> str:
        if self.blocks_done != self.spec.blocks:
            return (
                f"comd finished {self.blocks_done}/{self.spec.blocks} blocks"
            )
        if len(self.energy_history) < self.spec.blocks:
            return "comd lost energy history entries"
        return None
