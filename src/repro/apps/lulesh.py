"""LULESH-2.0 proxy — Sedov blast hydrodynamics on a 3-D hex mesh.

LULESH is the paper's *lowest* call-rate application (1.3M CS/s at 27
ranks = 48k/rank/s): long compute phases per timestep, few messages.
Per Section 6.1 the paper builds it without OpenMP (the MPICH/Slurm
thrashing workaround); the proxy models the MPI-only build.

Per block:

* six face halo exchanges (nodal masses/forces) via ``MPI_Sendrecv``
  with a committed ``MPI_Type_vector`` (strided mesh faces — LULESH
  really does communicate strided slabs);
* three ``MPI_Allreduce(MIN)`` calls: the dt-courant / dt-hydro /
  dt-final reductions of the real code.

ExaMPI-compatible.  Crossings per block ~= 12 + 3*2 = 18.
Calibration (Table 1: 27 ranks, ``-p -i 100 -s 100``): 1.3M/27 =
48k/rank/s; K calibrated empirically to 8840.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import BlockApp, WorkloadSpec, face_neighbors, grid_dims
from repro.util.rng import DeterministicRng


class LuleshProxy(BlockApp):
    name = "lulesh"

    partition_attrs = ("nodal",)
    # ``facetype`` (a committed vector type of ``face_elems`` strided
    # elements) keeps its extent across repartitioning; the smallest
    # elastic slice (grow to 2x ranks) still holds 2*face_elems rows,
    # enough for the stride-2 layout.
    replicated_attrs = ("facetype", "face_elems", "dt", "dt_history")

    def post_repartition(self, rank, nranks, plan) -> None:
        self.dims = grid_dims(nranks)
        self.halo_pairs = face_neighbors(rank, self.dims, periodic=False)

    @staticmethod
    def paper_config(platform: str = "discovery") -> WorkloadSpec:
        return WorkloadSpec(
            nranks=27,
            blocks=40,
            steps_per_block=8840,
            compute_per_block=3.8,
            halo_bytes=64 * 1024,
            input_label="-p -i 100 -s 100",
            simulated_state_bytes=207 * 1024 * 1024,
            os_noise=0.04,
        )

    # ------------------------------------------------------------------
    def init_state(self, ctx) -> None:
        MPI = ctx.MPI
        spec = self.spec
        self.dims = grid_dims(spec.nranks)
        self.halo_pairs = face_neighbors(ctx.rank, self.dims, periodic=False)
        rng = DeterministicRng(spec.seed, f"lulesh/{ctx.rank}")
        # A strided face: every other element of the nodal array, the
        # vector type describes the slab layout.
        self.face_elems = spec.halo_bytes // 16  # elements sent per face
        n_nodes = self.face_elems * 4
        self.nodal = rng.array_uniform((n_nodes,), 0.5, 1.5)
        self.facetype = MPI.type_vector(self.face_elems, 1, 2, MPI.DOUBLE)
        MPI.type_commit(self.facetype)
        self.dt = 1e-3
        self.dt_history = []

    def block(self, ctx, it: int) -> None:
        MPI = ctx.MPI
        world = MPI.COMM_WORLD
        ctx.compute(self.spec.compute_per_block)

        recvbuf = np.zeros(self.face_elems * 2)
        for face, (dst, src) in enumerate(self.halo_pairs):
            MPI.sendrecv(
                self.nodal, 1, self.facetype, dst, 400 + face,
                recvbuf, 1, self.facetype, src, 400 + face,
                world,
            )
            if src != MPI.PROC_NULL:
                self.nodal[: self.face_elems] += recvbuf[::2] * 1e-7

        self.checksum += self._mix(self.nodal)

        # The three timestep-constraint reductions of the real code.
        dt_local = np.array([self.dt * (1.0 + 1e-4 * np.sin(it + ctx.rank))])
        for _ in range(3):
            dt_min = np.zeros(1)
            MPI.allreduce(dt_local, dt_min, 1, MPI.DOUBLE, MPI.MIN, world)
            dt_local = dt_min.copy()
        self.dt = float(dt_local[0])
        self.dt_history.append(self.dt)

    def validate(self, ctx) -> str:
        if self.blocks_done != self.spec.blocks:
            return (
                f"lulesh finished {self.blocks_done}/{self.spec.blocks} blocks"
            )
        if len(self.dt_history) != self.spec.blocks:
            return "lulesh dt history incomplete"
        return None
