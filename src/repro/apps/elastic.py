"""ElasticHaloApp — the determinism oracle for N→M elastic restart.

The five proxy applications seed their state *per rank*, so an N-rank
and an M-rank run of the same workload hold different global state and
can only be compared through conservation laws.  This app is built the
other way around: a **globally seeded** 1-D periodic stencil whose
update is elementwise decomposition-independent, so the global field
after ``b`` blocks is a pure function of ``(seed, b)`` — bit-identical
no matter how many ranks computed it.

* the field of ``GLOBAL_CELLS`` doubles is drawn once from a global
  stream; each rank owns the contiguous slice ``Partitioner.bounds``
  assigns it;
* per block each rank exchanges one edge cell with each ring neighbor
  (``MPI_Sendrecv``), applies ``f = 0.998 f + 0.001 (left + right)``
  element by element (identical FP ops under any slicing), then
  ``MPI_Allgatherv``s the full field and accumulates
  ``checksum += sum(field)`` — a numpy sum over the same index-ordered
  global array on every rank;
* ``os_noise`` is zero, and the checksum is *replicated* (identical on
  every rank), so an M-rank elastic restore of an N-rank checkpoint
  must finish with results bit-identical to a cold M-rank run — the
  acceptance oracle of the elastic-restart scenarios.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import BlockApp, Partitioner, WorkloadSpec
from repro.util.rng import DeterministicRng

#: Global field size — independent of the rank count by design.
GLOBAL_CELLS = 240


class ElasticHaloApp(BlockApp):
    name = "elastic-halo"

    partition_attrs = ("field",)
    replicated_attrs = ("history",)
    checksum_mode = "replicated"

    @staticmethod
    def paper_config(platform: str = "discovery") -> WorkloadSpec:
        return WorkloadSpec(
            nranks=8,
            blocks=12,
            steps_per_block=500,
            compute_per_block=0.05,
            halo_bytes=1024,
            input_label=f"1-D periodic stencil, {GLOBAL_CELLS} cells",
            simulated_state_bytes=4 * 1024 * 1024,
            os_noise=0.0,
        )

    # ------------------------------------------------------------------
    def init_state(self, ctx) -> None:
        rng = DeterministicRng(self.spec.seed, "elastic/field")
        full = rng.array_uniform((GLOBAL_CELLS,), -1.0, 1.0)
        lo, hi = Partitioner.bounds(GLOBAL_CELLS, ctx.nranks)[ctx.rank]
        self.field = full[lo:hi].copy()
        self.history = []

    def block(self, ctx, it: int) -> None:
        MPI = ctx.MPI
        world = MPI.COMM_WORLD
        ctx.compute(self.spec.compute_per_block)

        left = (ctx.rank - 1) % ctx.nranks
        right = (ctx.rank + 1) % ctx.nranks
        # Ring edge exchange: my first cell travels left, my last cell
        # travels right; the ghosts complete the periodic stencil.
        edge_lo = np.array([self.field[0]])
        edge_hi = np.array([self.field[-1]])
        ghost_left = np.zeros(1)   # left neighbor's last cell
        ghost_right = np.zeros(1)  # right neighbor's first cell
        MPI.sendrecv(
            edge_lo, 1, MPI.DOUBLE, left, 40,
            ghost_right, 1, MPI.DOUBLE, right, 40, world,
        )
        MPI.sendrecv(
            edge_hi, 1, MPI.DOUBLE, right, 41,
            ghost_left, 1, MPI.DOUBLE, left, 41, world,
        )

        left_vals = np.concatenate([ghost_left, self.field[:-1]])
        right_vals = np.concatenate([self.field[1:], ghost_right])
        # Elementwise: every cell sees exactly its two neighbors, with
        # the same FP operations under any decomposition.
        self.field = 0.998 * self.field + 0.001 * (left_vals + right_vals)

        # Global result: allgatherv the full field, sum in index order.
        counts = [hi - lo for lo, hi in
                  Partitioner.bounds(GLOBAL_CELLS, ctx.nranks)]
        displs = [0] * ctx.nranks
        for r in range(1, ctx.nranks):
            displs[r] = displs[r - 1] + counts[r - 1]
        full = np.zeros(GLOBAL_CELLS)
        MPI.allgatherv(
            self.field, counts[ctx.rank], MPI.DOUBLE,
            full, counts, displs, MPI.DOUBLE, world,
        )
        self.checksum += float(full.sum())
        self.history.append(float(full.sum()))

    def validate(self, ctx) -> str:
        if self.blocks_done != self.spec.blocks:
            return (
                f"elastic-halo finished "
                f"{self.blocks_done}/{self.spec.blocks} blocks"
            )
        if len(self.history) != self.spec.blocks:
            return "elastic-halo history incomplete"
        return None
