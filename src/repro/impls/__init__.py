"""The four simulated MPI implementations (paper Section 3).

Each reproduces the *id-representation design choices* of its namesake —
the exact properties MANA's virtual-id architecture must absorb:

* :mod:`repro.impls.mpich` — 32-bit handles: kind bits + a two-level
  table index (like 2-level page tables); predefined constants are fixed
  compile-time integers, identical in upper/lower halves and across
  sessions.
* :mod:`repro.impls.craympi` — HPE Cray MPI, an MPICH-family derivative
  (shared handle scheme, different builtin constants and platform).
* :mod:`repro.impls.openmpi` — 64-bit pointer handles into a simulated
  heap whose base is randomized per session; global constants are
  *functions* resolved at library startup, so their values differ
  between the upper and lower halves and across restarts (paper §4.3).
* :mod:`repro.impls.exampi` — experimental subset implementation:
  primitive datatypes are enum values, other objects are pointers, and
  global constants are lazy shared pointers with aliasing
  (MPI_INT8_T and MPI_CHAR share one pointer).
"""

from repro.impls.mpich import MpichLib
from repro.impls.craympi import CrayMpiLib
from repro.impls.openmpi import OpenMpiLib
from repro.impls.exampi import ExaMpiLib
from repro.impls.facade import NativeFacade

IMPLS = {
    "mpich": MpichLib,
    "craympi": CrayMpiLib,
    "openmpi": OpenMpiLib,
    "exampi": ExaMpiLib,
}


def make_lib(impl_name: str, *args, **kwargs):
    """Instantiate one rank's library for the named implementation."""
    try:
        cls = IMPLS[impl_name]
    except KeyError:
        raise ValueError(
            f"unknown MPI implementation {impl_name!r}; "
            f"choose from {sorted(IMPLS)}"
        ) from None
    return cls(*args, **kwargs)


__all__ = [
    "MpichLib",
    "CrayMpiLib",
    "OpenMpiLib",
    "ExaMpiLib",
    "NativeFacade",
    "IMPLS",
    "make_lib",
]
