"""The "mpi.h" facade — what an application compiles against.

An application in this reproduction receives a single ``MPI`` object and
calls ``MPI.send(...)``, reads ``MPI.COMM_WORLD``, etc.  Two facades
exist with identical surface:

* :class:`NativeFacade` (here) routes straight to one implementation's
  library instance — a "native" run, no MANA;
* :class:`repro.mana.wrappers.ManaFacade` routes every call through
  MANA's wrapper functions, translating virtual and physical ids.

Crucially, ``MPI.COMM_WORLD`` on the native facade is evaluated on every
access (a macro expanding to a function call, Open MPI-style): whatever
instability the implementation has in its constants is fully visible to
native applications — and absorbed by MANA's facade.
"""

from __future__ import annotations

from typing import Any

from repro.mpi import constants as C
from repro.mpi.api import BaseMpiLib, HandleKind

# Facade attribute -> mpi.h constant name
_CONSTANT_ATTRS = {
    "COMM_WORLD": "MPI_COMM_WORLD",
    "COMM_SELF": "MPI_COMM_SELF",
    "GROUP_EMPTY": "MPI_GROUP_EMPTY",
    **{name[len("MPI_"):]: name for name in C.PREDEFINED_DATATYPES},
    **{name[len("MPI_"):]: name for name in C.PREDEFINED_OPS},
}

# Facade attribute -> null-handle kind
_NULL_ATTRS = {
    "COMM_NULL": HandleKind.COMM,
    "GROUP_NULL": HandleKind.GROUP,
    "DATATYPE_NULL": HandleKind.DATATYPE,
    "OP_NULL": HandleKind.OP,
    "REQUEST_NULL": HandleKind.REQUEST,
}

# Functions forwarded verbatim to the library.
_FORWARDED = (
    "init", "finalize", "initialized", "finalized", "abort", "wtime",
    "get_processor_name",
    "comm_rank", "comm_size", "comm_group", "comm_compare", "comm_dup",
    "comm_split", "comm_split_type", "comm_create", "comm_free",
    "group_size", "group_rank", "group_incl", "group_excl", "group_union",
    "group_intersection", "group_difference", "group_translate_ranks",
    "group_compare", "group_free",
    "send", "recv", "isend", "irecv", "test", "wait", "waitall", "testall",
    "iprobe", "probe", "sendrecv", "get_count",
    "send_init", "recv_init", "start", "startall", "request_free",
    "waitany", "testany", "pack", "unpack", "pack_size",
    "barrier", "bcast", "reduce", "allreduce", "alltoall", "alltoallv",
    "scan", "exscan", "reduce_scatter_block",
    "gather", "gatherv", "scatter", "scatterv", "allgather", "allgatherv",
    "type_contiguous", "type_vector", "type_indexed", "type_create_struct",
    "type_dup", "type_commit", "type_free", "type_size", "type_get_extent",
    "type_get_envelope", "type_get_contents",
    "op_create", "op_free",
    "cart_create", "cart_coords", "cart_rank", "cart_shift",
    "comm_create_keyval", "comm_free_keyval", "comm_set_attr",
    "comm_get_attr", "comm_delete_attr",
)


class FacadeBase:
    """Shared scalar constants and introspection for both facades."""

    COMM_TYPE_SHARED = C.COMM_TYPE_SHARED
    ANY_SOURCE = C.ANY_SOURCE
    ANY_TAG = C.ANY_TAG
    PROC_NULL = C.PROC_NULL
    UNDEFINED = C.UNDEFINED
    IDENT = C.IDENT
    CONGRUENT = C.CONGRUENT
    SIMILAR = C.SIMILAR
    UNEQUAL = C.UNEQUAL

    @staticmethod
    def dims_create(nnodes: int, ndims: int):
        return BaseMpiLib.dims_create(nnodes, ndims)


class NativeFacade(FacadeBase):
    """Direct binding of an application to one MPI implementation."""

    def __init__(self, lib: BaseMpiLib):
        self._lib = lib

    @property
    def impl_name(self) -> str:
        return self._lib.name

    @property
    def handle_bits(self) -> int:
        return self._lib.handles.handle_bits

    def __getattr__(self, attr: str) -> Any:
        # Called only when normal lookup fails: constants and functions.
        lib = object.__getattribute__(self, "_lib")
        const = _CONSTANT_ATTRS.get(attr)
        if const is not None:
            return lib.constant(const)
        kind = _NULL_ATTRS.get(attr)
        if kind is not None:
            return lib.null_handle(kind)
        if attr in _FORWARDED:
            return getattr(lib, attr)
        raise AttributeError(f"MPI facade has no attribute {attr!r}")
