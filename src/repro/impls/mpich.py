"""Simulated MPICH: 32-bit handles with a kind-tagged two-level table.

Handle layout (32 bits), modelled on real MPICH's ``MPIR_Handle``:

    [ category:2 | kind:4 | payload:26 ]

* category 1 = builtin (predefined object; payload is a builtin index;
  the resulting integers are **fixed at "compile time"** — identical in
  every session, upper or lower half, before or after restart);
* category 2 = dynamic; payload splits into a 10-bit first-level index
  (the "page") and a 16-bit second-level index (the slot), mirroring the
  2-layer table the paper compares to 2-level page tables;
* category 0 with payload 0 = the null handle of that kind.

Dynamic allocation starts at a page offset salted by the library epoch,
so a restarted lower half hands out *different* physical ids for the
same logical objects — the exact hazard MANA's virtual ids absorb.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.mpi.api import BaseMpiLib, HandleKind, HandleSpace
from repro.util.bits import BitField
from repro.util.errors import InvalidHandleError

# Fixed kind codes (part of the "ABI", shared by the whole MPICH family).
KIND_CODES = {
    HandleKind.COMM: 0x1,
    HandleKind.GROUP: 0x2,
    HandleKind.DATATYPE: 0x3,
    HandleKind.OP: 0x4,
    HandleKind.REQUEST: 0x5,
}
CODE_KINDS = {v: k for k, v in KIND_CODES.items()}

CATEGORY_NULL = 0
CATEGORY_BUILTIN = 1
CATEGORY_DYNAMIC = 2

HANDLE_LAYOUT = BitField(32, [("category", 2), ("kind", 4), ("payload", 26)])
DYNAMIC_LAYOUT = BitField(26, [("page", 10), ("slot", 16)])

PAGE_SLOTS = 1 << 16
NUM_PAGES = 1 << 10


class TwoLevelHandleSpace(HandleSpace):
    """The MPICH-family handle space: 32-bit ids, two-level object table."""

    handle_bits = 32

    def __init__(self, epoch: int = 0, builtin_salt: int = 0):
        # builtin_salt distinguishes family members (Cray MPI uses
        # different magic constants than stock MPICH) but is constant per
        # implementation, keeping builtins session-stable.
        self._builtin_salt = builtin_salt
        self._builtin_counts: Dict[str, int] = {k: 0 for k in HandleKind.ALL}
        self._builtins: Dict[int, object] = {}
        # pages[kind] -> {page_index: [slot objects or None]}
        self._pages: Dict[str, Dict[int, List[Optional[object]]]] = {
            k: {} for k in HandleKind.ALL
        }
        self._free: Dict[str, List[Tuple[int, int]]] = {
            k: [] for k in HandleKind.ALL
        }
        self._next: Dict[str, Tuple[int, int]] = {}
        # Restarted instances allocate from a different starting page.
        start_page = (epoch * 3 + 1) % (NUM_PAGES - 8)
        for k in HandleKind.ALL:
            self._next[k] = (start_page, 0)

    # -- builtin handles ---------------------------------------------------
    def _builtin_handle(self, kind: str, index: int) -> int:
        return HANDLE_LAYOUT.pack(
            category=CATEGORY_BUILTIN,
            kind=KIND_CODES[kind],
            payload=(index + self._builtin_salt) & ((1 << 26) - 1),
        )

    # -- HandleSpace contract ----------------------------------------------
    def insert(self, kind: str, obj, builtin_name: Optional[str] = None) -> int:
        if builtin_name is not None:
            idx = self._builtin_counts[kind]
            self._builtin_counts[kind] += 1
            handle = self._builtin_handle(kind, idx)
            self._builtins[handle] = obj
            return handle
        if self._free[kind]:
            page, slot = self._free[kind].pop()
        else:
            page, slot = self._next[kind]
            if slot + 1 >= PAGE_SLOTS:
                self._next[kind] = ((page + 1) % NUM_PAGES, 0)
            else:
                self._next[kind] = (page, slot + 1)
        table = self._pages[kind].setdefault(page, [None] * PAGE_SLOTS)
        table[slot] = obj
        return HANDLE_LAYOUT.pack(
            category=CATEGORY_DYNAMIC,
            kind=KIND_CODES[kind],
            payload=DYNAMIC_LAYOUT.pack(page=page, slot=slot),
        )

    def _decode(self, kind: str, handle: int) -> dict:
        if not 0 <= handle < (1 << 32):
            raise InvalidHandleError(
                f"{handle:#x} is not a 32-bit MPICH handle"
            )
        fields = HANDLE_LAYOUT.unpack(handle)
        code = fields["kind"]
        if code not in CODE_KINDS or CODE_KINDS[code] != kind:
            raise InvalidHandleError(
                f"handle {handle:#010x} is not a {kind} handle "
                f"(kind code {code})"
            )
        return fields

    def resolve(self, kind: str, handle: int):
        fields = self._decode(kind, handle)
        if fields["category"] == CATEGORY_BUILTIN:
            try:
                return self._builtins[handle]
            except KeyError:
                raise InvalidHandleError(
                    f"unknown builtin handle {handle:#010x}"
                ) from None
        if fields["category"] != CATEGORY_DYNAMIC:
            raise InvalidHandleError(f"null/invalid handle {handle:#010x}")
        d = DYNAMIC_LAYOUT.unpack(fields["payload"])
        table = self._pages[kind].get(d["page"])
        obj = table[d["slot"]] if table is not None else None
        if obj is None:
            raise InvalidHandleError(
                f"dangling {kind} handle {handle:#010x} "
                f"(page {d['page']}, slot {d['slot']})"
            )
        return obj

    def remove(self, kind: str, handle: int) -> None:
        fields = self._decode(kind, handle)
        if fields["category"] != CATEGORY_DYNAMIC:
            raise InvalidHandleError(
                f"cannot remove non-dynamic handle {handle:#010x}"
            )
        d = DYNAMIC_LAYOUT.unpack(fields["payload"])
        table = self._pages[kind].get(d["page"])
        if table is None or table[d["slot"]] is None:
            raise InvalidHandleError(f"double free of {handle:#010x}")
        table[d["slot"]] = None
        self._free[kind].append((d["page"], d["slot"]))

    def null_handle(self, kind: str) -> int:
        return HANDLE_LAYOUT.pack(
            category=CATEGORY_NULL, kind=KIND_CODES[kind], payload=0
        )


class MpichLib(BaseMpiLib):
    """Stock MPICH (the cluster-provided MPICH-3.3.2 of Section 6)."""

    name = "mpich"
    BUILTIN_SALT = 0x400  # distinguishes family members' magic constants

    def _make_handle_space(self) -> HandleSpace:
        return TwoLevelHandleSpace(
            epoch=self.epoch, builtin_salt=self.BUILTIN_SALT
        )

    def constant(self, name: str) -> int:
        # MPICH-family constants are compile-time integers: resolving one
        # does not require an initialized library (mpi.h literals).
        try:
            return self._constants[name]
        except KeyError:
            pass
        # Pre-init access: compute the literal the header would contain.
        # Builtin handles depend only on registration order, which is
        # fixed, so the value can be computed without creating objects.
        order = _builtin_registration_order()
        if name not in order:
            return super().constant(name)  # raises MpiError
        kind, idx = order[name]
        space: TwoLevelHandleSpace = self.handles  # type: ignore[assignment]
        return space._builtin_handle(kind, idx)


def _builtin_registration_order() -> Dict[str, Tuple[str, int]]:
    """name -> (kind, builtin index) in the fixed registration order used
    by BaseMpiLib._create_builtins (the simulated "mpi.h" ABI)."""
    from repro.mpi import constants as C

    order: Dict[str, Tuple[str, int]] = {}
    order["MPI_COMM_WORLD"] = (HandleKind.COMM, 0)
    order["MPI_COMM_SELF"] = (HandleKind.COMM, 1)
    order["MPI_GROUP_EMPTY"] = (HandleKind.GROUP, 0)
    for i, tname in enumerate(C.PREDEFINED_DATATYPES):
        order[tname] = (HandleKind.DATATYPE, i)
    for i, oname in enumerate(C.PREDEFINED_OPS):
        order[oname] = (HandleKind.OP, i)
    return order
