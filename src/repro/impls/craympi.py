"""Simulated HPE Cray MPI: an MPICH-family derivative.

Cray MPI shares MPICH's handle architecture (it is built from the MPICH
code base), so it reuses :class:`TwoLevelHandleSpace` — only its builtin
"magic numbers" differ, plus the platform it runs on (Perlmutter:
FSGSBASE available, Slingshot network, Lustre filesystem).

Having a second MPICH-family member matters to the reproduction: it is
what lets the harness treat MPICH as the local-site stand-in for Cray MPI
(Section 6.1's "rough comparison of trends") while running the Figure 4
experiments against the Cray member itself.
"""

from __future__ import annotations

from repro.impls.mpich import MpichLib, TwoLevelHandleSpace
from repro.mpi.api import HandleSpace


class CrayMpiLib(MpichLib):
    """HPE Cray MPI (MPICH family, Perlmutter's production MPI)."""

    name = "craympi"
    BUILTIN_SALT = 0xC40  # different magic constants than stock MPICH

    def _make_handle_space(self) -> HandleSpace:
        return TwoLevelHandleSpace(
            epoch=self.epoch, builtin_salt=self.BUILTIN_SALT
        )

    def get_processor_name(self) -> str:  # pragma: no cover - cosmetic
        return f"nid{self.world_rank // 64:06d}"
