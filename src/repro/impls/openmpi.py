"""Simulated Open MPI: 64-bit pointer handles, constants as functions.

An Open MPI handle *is* a pointer to the internal struct
(``ompi_communicator_t *`` etc.).  We model that with a simulated heap:
each library instance draws a randomized base address, and every object
insertion "allocates a struct" at the next address.  Consequences the
paper calls out, all reproduced here:

* handles do not fit in 32 bits (they are addresses) — this is what
  breaks MANA's legacy int-based virtual ids (Section 4.1, item 1);
* ``MPI_COMM_WORLD`` is a macro expanding to a *function call* whose
  return value is only known after library startup, differs between a
  dynamically-linked upper half and a statically-linked lower half, and
  differs before checkpoint vs after restart (Section 4.3) — here,
  ``constant()`` raises until ``init()`` has run, and the returned
  addresses change with every instance;
* freed structs leave dangling pointers — resolving one raises.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.mpi.api import BaseMpiLib, HandleKind, HandleSpace
from repro.util.errors import InvalidHandleError, MpiError
from repro.util.rng import DeterministicRng

# Simulated sizeof() of the internal structs, for address spacing.
STRUCT_SIZES = {
    HandleKind.COMM: 0x300,
    HandleKind.GROUP: 0x80,
    HandleKind.DATATYPE: 0x180,
    HandleKind.OP: 0x60,
    HandleKind.REQUEST: 0xC0,
}


class PointerHandleSpace(HandleSpace):
    """Handles are 64-bit addresses into a per-instance simulated heap."""

    handle_bits = 64

    def __init__(self, rng: DeterministicRng):
        # A fresh, ASLR-style heap base per library instance: the property
        # that makes physical ids unstable across sessions and restarts.
        self._base = 0x7F00_0000_0000 + (rng.integers(1, 1 << 20) << 12)
        self._brk = self._base
        self._live: Dict[int, Tuple[str, object]] = {}

    def insert(self, kind: str, obj, builtin_name: Optional[str] = None) -> int:
        addr = self._brk
        self._brk += STRUCT_SIZES[kind]
        # Keep 16-byte alignment like a real allocator would.
        self._brk = (self._brk + 0xF) & ~0xF
        self._live[addr] = (kind, obj)
        return addr

    def resolve(self, kind: str, handle: int):
        entry = self._live.get(handle)
        if entry is None:
            if self._base <= handle < self._brk:
                raise InvalidHandleError(
                    f"dangling pointer {handle:#x} (struct was freed)"
                )
            raise InvalidHandleError(
                f"{handle:#x} is not a pointer into this library's heap "
                f"[{self._base:#x}, {self._brk:#x})"
            )
        actual_kind, obj = entry
        if actual_kind != kind:
            raise InvalidHandleError(
                f"pointer {handle:#x} is a {actual_kind} struct, "
                f"not a {kind}"
            )
        return obj

    def remove(self, kind: str, handle: int) -> None:
        entry = self._live.get(handle)
        if entry is None:
            raise InvalidHandleError(f"double free of {handle:#x}")
        if entry[0] != kind:
            raise InvalidHandleError(
                f"freeing {handle:#x} as {kind}, but it is a {entry[0]}"
            )
        del self._live[handle]

    def null_handle(self, kind: str) -> int:
        return 0  # NULL pointer, shared by all kinds


class OpenMpiLib(BaseMpiLib):
    """Open MPI 4.1.x as configured in Section 6 (built locally, TCP)."""

    name = "openmpi"

    def _make_handle_space(self) -> HandleSpace:
        return PointerHandleSpace(
            DeterministicRng(self._heap_seed(), "openmpi-heap")
        )

    def _heap_seed(self) -> int:
        # Varies with epoch (session) and rank: every lower-half launch
        # sees different constant addresses.
        return (self.epoch << 16) ^ (self.world_rank + 1) ^ 0x0417

    def constant(self, name: str) -> int:
        """Open MPI constants are macros expanding to function calls.

        They can only be evaluated after library startup — accessing one
        before ``MPI_Init`` (in this simulation) raises, standing in for
        the upper-half/lower-half value mismatch a compiled program
        would experience.
        """
        if not self._initialized:
            raise MpiError(
                f"Open MPI constant {name} evaluated before library "
                f"startup (constants are functions, resolved at init)",
                "MPI_ERR_OTHER",
            )
        return super().constant(name)
