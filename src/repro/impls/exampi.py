"""Simulated ExaMPI: enum datatypes, lazy shared-pointer constants, subset.

ExaMPI (Skjellum et al.) is the experimental C++ MPI used for algorithm
research.  The properties the paper highlights, all reproduced:

* **Primitive datatypes are an enum class**: the handle of MPI_INT is a
  small integer enum value, not a pointer and not an MPICH-style tagged
  id.  Derived datatypes and the other object kinds are pointers.
* **Global constants are lazy**: ExaMPI builds constants from smart
  shared pointers with reinterpret casts, so "the address of a constant
  is known relatively late at runtime, on a lazy basis" (§4.3).  Here,
  resolving a constant *creates* its backing object on first touch.
* **Aliasing**: MPI_INT8_T and MPI_CHAR share one pointer (likewise
  MPI_UINT8_T and MPI_BYTE).  MANA must not assume distinct constants
  have distinct physical ids.
* **Subset implementation**: several MPI-3 functions are simply absent;
  calling one raises :class:`UnsupportedFunctionError`.  The paper's §5
  core subset (Iprobe/Recv/Test/Send/Alltoall/Comm_group/
  Group_translate_ranks/Type_get_envelope/Type_get_contents) is always
  present.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.impls.openmpi import PointerHandleSpace
from repro.mpi import constants as C
from repro.mpi.api import BaseMpiLib, HandleKind, HandleSpace
from repro.mpi.objects import DatatypeObject
from repro.util.errors import InvalidHandleError, MpiError
from repro.util.rng import DeterministicRng

# The enum class of primitive datatypes: name -> enum value.  Fixed order
# (it is part of ExaMPI's source), so enum values are session-stable —
# unlike the pointers backing them.  Values start at 1 so that 0 remains
# the null handle.
PRIMITIVE_ENUM = {
    name: i + 1 for i, name in enumerate(C.PREDEFINED_DATATYPES)
}
ENUM_PRIMITIVE = {v: k for k, v in PRIMITIVE_ENUM.items()}


class ExampiHandleSpace(PointerHandleSpace):
    """Pointers for everything *except* primitive datatypes, which are
    enum values below ``len(PRIMITIVE_ENUM)``."""

    handle_bits = 64

    def __init__(self, rng: DeterministicRng):
        super().__init__(rng)
        # enum value -> DatatypeObject, populated lazily by the library.
        self._enum_objects: Dict[int, object] = {}

    def insert_enum_datatype(self, enum_value: int, obj) -> int:
        self._enum_objects[enum_value] = obj
        return enum_value

    def resolve(self, kind: str, handle: int):
        if kind == HandleKind.DATATYPE and 1 <= handle <= len(PRIMITIVE_ENUM):
            obj = self._enum_objects.get(handle)
            if obj is None:
                raise InvalidHandleError(
                    f"primitive enum {handle} "
                    f"({ENUM_PRIMITIVE.get(handle, '?')}) not yet resolved "
                    f"(ExaMPI constants are lazy)"
                )
            return obj
        return super().resolve(kind, handle)

    def remove(self, kind: str, handle: int) -> None:
        if kind == HandleKind.DATATYPE and 1 <= handle <= len(PRIMITIVE_ENUM):
            raise InvalidHandleError(
                f"cannot free primitive enum datatype {handle}"
            )
        super().remove(kind, handle)


class ExaMpiLib(BaseMpiLib):
    """ExaMPI (git developer branch, August 2023, per Section 6)."""

    name = "exampi"

    # The functions ExaMPI does not provide.  Applications restricted to
    # the remaining surface are the "subset of applications known to be
    # compatible" that Section 6 tests (CoMD, LAMMPS, LULESH proxies).
    UNSUPPORTED = frozenset(
        {
            "cart_create",
            "cart_coords",
            "cart_rank",
            "cart_shift",
            "alltoallv",
            "exscan",
            "reduce_scatter_block",
            "gatherv",
            "scatterv",
            "allgatherv",
            "type_indexed",
            "type_dup",
        }
    )

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._lazy_resolved: Dict[str, int] = {}

    def _make_handle_space(self) -> HandleSpace:
        return ExampiHandleSpace(
            DeterministicRng((self.epoch << 16) ^ (self.world_rank + 1) ^ 0xE7A, "exampi-heap")
        )

    def _create_builtins(self) -> None:
        # ExaMPI resolves *nothing* at init: constants come into existence
        # on first touch.  Only the world/self communicators exist after
        # init (the runtime itself needs them).
        from repro.mpi.group import GroupData
        from repro.mpi.objects import CommObject

        world = CommObject(
            group=GroupData(tuple(range(self.nranks))),
            context_id=self._world_context_id(),
            my_world_rank=self.world_rank,
            name="MPI_COMM_WORLD",
        )
        selfc = CommObject(
            group=GroupData((self.world_rank,)),
            context_id=self._self_context_id(),
            my_world_rank=self.world_rank,
            name="MPI_COMM_SELF",
        )
        self._register_constant("MPI_COMM_WORLD", HandleKind.COMM, world)
        self._register_constant("MPI_COMM_SELF", HandleKind.COMM, selfc)

    def constant(self, name: str) -> int:
        """Lazy constant resolution with aliasing (§4.3)."""
        if not self._initialized:
            raise MpiError(
                f"ExaMPI constant {name} touched before init", "MPI_ERR_OTHER"
            )
        if name in self._constants:
            return self._constants[name]
        if name in self._lazy_resolved:
            return self._lazy_resolved[name]
        canonical = C.EXAMPI_ALIASES.get(name, name)
        handle = self._resolve_lazily(canonical)
        # Record under both the alias and the canonical name: the two
        # names now share one physical id.
        self._lazy_resolved[name] = handle
        self._lazy_resolved[canonical] = handle
        return handle

    def _resolve_lazily(self, name: str) -> int:
        if name in self._lazy_resolved:
            return self._lazy_resolved[name]
        space: ExampiHandleSpace = self.handles  # type: ignore[assignment]
        if name in C.PREDEFINED_DATATYPES:
            obj = DatatypeObject(
                descriptor=self._predefined_types[name],
                committed=True,
                predefined_name=name,
            )
            return space.insert_enum_datatype(PRIMITIVE_ENUM[name], obj)
        if name in C.PREDEFINED_OPS:
            from repro.mpi.api import _builtin_op_fn
            from repro.mpi.objects import OpObject

            obj = OpObject(
                fn=_builtin_op_fn(name), commute=True, predefined_name=name
            )
            return self.handles.insert(HandleKind.OP, obj)
        if name == "MPI_GROUP_EMPTY":
            from repro.mpi.group import EMPTY_GROUP
            from repro.mpi.objects import GroupObject

            return self.handles.insert(
                HandleKind.GROUP, GroupObject(EMPTY_GROUP)
            )
        raise MpiError(f"unknown ExaMPI constant {name!r}", "MPI_ERR_ARG")

    def resolved_constant_names(self):
        """Names touched so far (introspection for tests/benchmarks)."""
        return sorted(set(self._constants) | set(self._lazy_resolved))
