"""Syscall-boundary crash injection for the checkpoint store.

The :class:`CrashPointInjector` is the adversary of the durability
layer (PROTOCOLS.md §13).  Installed into :mod:`repro.mana.storeio`
via :func:`repro.mana.storeio.set_injector`, it sees every named
crash point — ``<context>.<site>.<before|after>`` around each
write/fsync/rename/link/unlink in the save, drain, gc, and prune
paths — and can either *record* them (enumeration mode) or *kill* the
mutation at one of them (armed mode).

Death is modeled faithfully: once the armed point fires, the injector
is **dead** and every subsequent shimmed operation raises
:class:`repro.util.errors.InjectedCrash` too.  ``finally`` blocks and
exception handlers therefore cannot clean the store up — exactly what
a real SIGKILL mid-``rename`` leaves behind.  The crash-point sweep
(:mod:`repro.faults.crashsweep`, ``python -m repro crash-smoke``)
asserts that for *every* such point the store either still restores
the previous generation bit-identically or ``repro fsck`` repairs it
to a restorable state with zero leaked chunks.

This injector is deliberately standalone — not wired through
:class:`repro.faults.FaultPlan` — because it mutates process-global
shim state; install/remove it explicitly around the mutation under
test (the sweep and the tests use ``try/finally``).
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from repro.util.errors import InjectedCrash


class CrashPointInjector:
    """Records, or crashes at, named store-mutation crash points.

    * ``CrashPointInjector()`` — record mode: every point that fires is
      counted and remembered in first-seen order (:attr:`points`).
    * ``CrashPointInjector(arm_at=name, occurrence=n)`` — armed mode:
      the ``n``-th firing of ``name`` raises :class:`InjectedCrash` and
      marks the injector dead; all later points raise immediately.
    """

    def __init__(self, arm_at: Optional[str] = None, occurrence: int = 1):
        if occurrence < 1:
            raise ValueError(f"occurrence must be >= 1, got {occurrence}")
        self.arm_at = arm_at
        self.occurrence = occurrence
        self.points: List[str] = []       # unique names, first-seen order
        self.counts: Dict[str, int] = {}  # name -> times fired
        self.dead = False
        self.crashed_at: Optional[str] = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def hit(self, name: str) -> None:
        """Called by the storeio shim at every crash point."""
        with self._lock:
            if self.dead:
                raise InjectedCrash(
                    f"store operation after simulated process death "
                    f"(crashed at {self.crashed_at})"
                )
            n = self.counts.get(name, 0) + 1
            self.counts[name] = n
            if n == 1:
                self.points.append(name)
            if name == self.arm_at and n == self.occurrence:
                self.dead = True
                self.crashed_at = name
                raise InjectedCrash(
                    f"injected crash at store point {name} "
                    f"(occurrence {n})"
                )

    # ------------------------------------------------------------------
    def resurrect(self) -> None:
        """Clear the dead flag — the 'reboot' before running fsck."""
        with self._lock:
            self.dead = False

    def reset(self) -> None:
        with self._lock:
            self.points.clear()
            self.counts.clear()
            self.dead = False
            self.crashed_at = None
