"""Deterministic fault injection and self-healing recovery.

* :mod:`repro.faults.plan` — :class:`FaultPlan` / :class:`FaultSpec`,
  the declarative, seeded description of what to break and when;
* :mod:`repro.faults.injector` — :class:`FaultInjector`, the runtime
  object consulted at the hook points (wrappers, fabric, coordinator,
  checkpoint writer);
* :mod:`repro.faults.scenarios` — end-to-end survival scenarios behind
  ``python -m repro faults`` / ``fault-smoke`` (imported lazily: it
  pulls in the whole runtime);
* :mod:`repro.faults.crashpoints` — :class:`CrashPointInjector`, the
  syscall-boundary process-death adversary of the durability layer;
* :mod:`repro.faults.crashsweep` — the crash-injection sweep behind
  ``python -m repro crash-smoke`` (imported lazily, like scenarios).

See docs/PROTOCOLS.md §9 for the fault model and recovery protocol,
§13 for the durability/crash model.
"""

from repro.faults.crashpoints import CrashPointInjector
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, FaultSpec

__all__ = ["FaultPlan", "FaultSpec", "FaultInjector", "CrashPointInjector"]
