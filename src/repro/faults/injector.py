"""Runtime fault injection.

The :class:`FaultInjector` is the live counterpart of a
:class:`repro.faults.plan.FaultPlan`: it is consulted at well-defined
hook points in the wrappers (`_enter`), the resumable-loop runner, the
fabric (`post_send`), the coordinator (round start), and the checkpoint
writer (`save_image`).  Every hook is a no-op unless the plan contains a
spec for that site — and jobs with ``faults=None`` never construct an
injector at all, so the hot path carries only a single ``is not None``
test.

One injector survives a whole *supervised session*: the fired-spec set
persists across auto-restarts, so a one-shot crash does not re-kill the
recovered job.  Every fired fault is appended to ``events`` with its
deterministic coordinates; :meth:`trace` returns them in canonical
(spec-index) order so two runs of the same plan + seed compare
bit-identically regardless of thread interleaving.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, List, Optional, Tuple

from repro.faults import plan as P
from repro.util.errors import InjectedFault
from repro.util.rng import _stable_hash


class FaultInjector:
    """Consults a :class:`FaultPlan` at the runtime hook points."""

    def __init__(self, fault_plan: P.FaultPlan):
        self.plan = fault_plan
        self._lock = threading.Lock()
        self.fired: set = set()            # indices into plan.specs
        self.events: List[dict] = []
        # Per-site spec indices, so a hook with no relevant specs is one
        # dict lookup + empty-list scan.
        self._by: Dict[str, List[int]] = {}
        for i, spec in enumerate(fault_plan.specs):
            key = spec.site if spec.kind == P.CRASH else spec.kind
            self._by.setdefault(key, []).append(i)
        # nth-message counters per (src, dst) pair.
        self._msg_counts: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    def _fire(self, idx: int, **info) -> None:
        spec = self.plan.specs[idx]
        self.fired.add(idx)
        self.events.append(
            {"fault": spec.kind, "spec": idx, "what": spec.describe(), **info}
        )

    def _candidates(self, key: str):
        specs = self._by.get(key)
        if not specs:
            return ()
        return [i for i in specs if i not in self.fired]

    def trace(self) -> List[dict]:
        """Fired-fault events in canonical (spec-index) order."""
        with self._lock:
            return sorted(self.events, key=lambda e: e["spec"])

    # ------------------------------------------------------------------
    # crash hooks
    # ------------------------------------------------------------------
    def on_mpi_call(self, rank: int, n: int, vtime: float) -> None:
        """Hook at the top of every wrapped MPI call (``n`` = the rank's
        running call count)."""
        with self._lock:
            for i in self._candidates(P.SITE_MPI_CALL):
                s = self.plan.specs[i]
                if s.rank == rank and s.at is not None and n >= s.at:
                    self._fire(i, rank=rank, call=n, vtime=vtime)
                    raise InjectedFault(
                        f"injected crash: rank {rank} at MPI call #{n}"
                    )

    def on_loop(self, rank: int, loop: str, iteration: int,
                vtime: float) -> None:
        """Hook at the top of every resumable-loop iteration."""
        with self._lock:
            for i in self._candidates(P.SITE_LOOP):
                s = self.plan.specs[i]
                if s.rank == rank and s.loop == loop and iteration == s.at:
                    self._fire(i, rank=rank, loop=loop, iteration=iteration,
                               vtime=vtime)
                    raise InjectedFault(
                        f"injected crash: rank {rank} at loop {loop!r} "
                        f"iteration {iteration}"
                    )

    def crash_point(self, site: str, rank: int, generation: int,
                    vtime: float) -> None:
        """Hook at the checkpoint-internal crash sites (pre-drain,
        post-drain, mid-save)."""
        with self._lock:
            for i in self._candidates(site):
                s = self.plan.specs[i]
                if s.rank == rank and s.generation in (None, generation):
                    self._fire(i, rank=rank, site=site, generation=generation,
                               vtime=vtime)
                    raise InjectedFault(
                        f"injected crash: rank {rank} at {site} of "
                        f"checkpoint generation {generation}"
                    )

    # ------------------------------------------------------------------
    # save_image hooks
    # ------------------------------------------------------------------
    def disk_full_hit(self, rank: int, generation: int) -> bool:
        with self._lock:
            for i in self._candidates(P.DISK_FULL):
                s = self.plan.specs[i]
                if s.rank == rank and s.generation in (None, generation):
                    self._fire(i, rank=rank, generation=generation)
                    return True
        return False

    def after_save(self, path: str, rank: int, generation: int) -> None:
        """Corrupt a just-written image in place (bit rot simulation)."""
        with self._lock:
            for i in self._candidates(P.CORRUPT_IMAGE):
                s = self.plan.specs[i]
                if s.rank == rank and s.generation == generation:
                    self._fire(i, rank=rank, generation=generation,
                               mode=s.mode, path=os.path.basename(path))
                    self._corrupt(path, s)

    def after_chunked_save(self, store, rank: int, generation: int,
                           new_digests: List[str],
                           all_digests: List[str]) -> None:
        """Corrupt the nth *fresh* chunk of a format-5 save (bit rot on
        new data).  Fresh = referenced by this rank's new image but by
        no generation older than it — those stay intact, so earlier
        generations remain restorable and fallback is deterministic.
        (``new_digests`` — who won the store write — is scheduling-
        dependent when ranks share chunks, so the target is chosen from
        the image's reference list against *prior* generations, both of
        which are deterministic.)"""
        with self._lock:
            candidates = self._candidates(P.CORRUPT_CHUNK)
            if not candidates:
                return
            from repro.mana.checkpoint import (
                latest_generations,
                referenced_chunks,
            )

            base = store.base_dir
            prior = referenced_chunks(
                base,
                [g for g in latest_generations(base) if g < generation],
            )
            fresh: List[str] = []
            for d in all_digests:
                if d not in prior and d not in fresh:
                    fresh.append(d)
            for i in candidates:
                s = self.plan.specs[i]
                if s.rank != rank or s.generation != generation:
                    continue
                if not fresh:
                    continue  # fully-deduped save: nothing fresh to rot
                digest = fresh[min(s.nth, len(fresh)) - 1]
                path = store.chunk_path(digest)
                size = os.path.getsize(path)
                # Seed-derived offset past the zlib magic so the flip
                # hits compressed payload, not just the 2-byte header.
                lo = min(2, size - 1)
                off = lo + _stable_hash(
                    f"{self.plan.seed}/corrupt-chunk/{generation}/{rank}"
                ) % max(1, size - lo)
                with open(path, "r+b") as f:
                    f.seek(off)
                    b = f.read(1)
                    f.seek(off)
                    f.write(bytes([b[0] ^ 0xFF]))
                self._fire(i, rank=rank, generation=generation,
                           chunk=digest[:12], nth=s.nth)

    def _corrupt(self, path: str, spec: P.FaultSpec) -> None:
        size = os.path.getsize(path)
        if spec.mode == P.CORRUPT_TRUNCATE:
            with open(path, "r+b") as f:
                f.truncate(max(1, size // 2))
            return
        # Bit-flip one payload byte at a seed-derived offset.  Skip the
        # first 512 bytes so the flip lands past the header and corrupts
        # the checksummed payload region.
        lo = min(512, size - 1)
        off = lo + _stable_hash(
            f"{self.plan.seed}/corrupt/{spec.generation}/{spec.rank}"
        ) % max(1, size - lo)
        with open(path, "r+b") as f:
            f.seek(off)
            b = f.read(1)
            f.seek(off)
            f.write(bytes([b[0] ^ 0xFF]))

    # ------------------------------------------------------------------
    # fabric hook
    # ------------------------------------------------------------------
    def on_message(self, src: int, dst: int, tag: int,
                   nbytes: int) -> Optional[Tuple[str, float]]:
        """Returns None (deliver normally), ("drop", 0) or
        ("delay", seconds) for the message being posted."""
        with self._lock:
            key = (src, dst)
            n = self._msg_counts.get(key, 0) + 1
            self._msg_counts[key] = n
            for kind in (P.MSG_DROP, P.MSG_DELAY):
                for i in self._candidates(kind):
                    s = self.plan.specs[i]
                    if s.src == src and s.dst == dst and s.nth == n:
                        self._fire(i, src=src, dst=dst, nth=n, tag=tag,
                                   nbytes=nbytes)
                        if kind == P.MSG_DROP:
                            return ("drop", 0.0)
                        return ("delay", s.delay)
        return None

    # ------------------------------------------------------------------
    # coordinator hook
    # ------------------------------------------------------------------
    def round_abort_requested(self, generation: int, attempt: int) -> bool:
        """True when the plan wants this (generation, attempt) checkpoint
        round aborted (fires once; the retry proceeds normally)."""
        with self._lock:
            for i in self._candidates(P.ROUND_ABORT):
                s = self.plan.specs[i]
                if s.generation == generation and s.attempt == attempt:
                    self._fire(i, generation=generation, attempt=attempt)
                    return True
        return False
