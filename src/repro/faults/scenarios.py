"""End-to-end fault/survival scenarios (``python -m repro faults``).

Each scenario builds a seeded :class:`FaultPlan`, runs a small ring
application under supervision, and checks that the job self-heals:
auto-restarts from the latest restorable checkpoint generation and
finishes with per-rank checksums equal to a fault-free run of the same
seed.  ``fault_smoke`` is the CI entry point: it runs the acceptance
scenario twice and asserts the recovery trace (events, fired faults,
virtual times) is bit-identical across runs.

Everything here is deterministic: checkpoints are armed at fixed loop
iterations (never wall-clock), crashes fire at loop/phase coordinates,
and corruption offsets derive from the plan seed.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.faults.plan import (
    CORRUPT_BITFLIP,
    CORRUPT_TRUNCATE,
    SITE_MID_SAVE,
    FaultPlan,
)
from repro.runtime import JobConfig, Launcher, MpiApplication
from repro.runtime.launcher import RestartPolicy

#: Iterations at which the LOOP-kind checkpoint triggers are armed.  With
#: ``loop_lag_window=2`` the ranks park at 4, 8, and 12 — generations
#: 1, 2, and 3.
TRIGGER_ITERS = (2, 6, 10)
NITERS = 16
NRANKS = 4
LAG_WINDOW = 2


class SurvivorApp(MpiApplication):
    """Ring exchange + allreduce with a per-rank running checksum.

    Module-level (picklable) so checkpoint images of it restore in a
    brand-new process; the checksum is a pure function of (rank, nranks,
    iterations completed), which is what lets scenarios compare a
    recovered run against a fault-free one.
    """

    name = "survivor"

    def __init__(self, niters: int = NITERS):
        self.niters = niters
        self.acc = np.zeros(1)

    def run(self, ctx):
        MPI = ctx.MPI
        w = MPI.COMM_WORLD
        nxt = (ctx.rank + 1) % ctx.nranks
        prv = (ctx.rank - 1) % ctx.nranks
        for it in ctx.loop("main", self.niters):
            ctx.compute(0.002)
            sb = np.array([float(ctx.rank + 1) * (it + 1)])
            MPI.send(sb, 1, MPI.DOUBLE, nxt, 9, w)
            rb = np.zeros(1)
            MPI.recv(rb, 1, MPI.DOUBLE, prv, 9, w)
            out = np.zeros(1)
            MPI.allreduce(rb, out, 1, MPI.DOUBLE, MPI.SUM, w)
            self.acc[0] += out[0] * (it + 1)

    @property
    def checksum(self) -> float:
        return float(self.acc[0])


def _arm_triggers(job) -> None:
    for it in TRIGGER_ITERS:
        job.checkpoint_at_iteration("main", it, kind="loop")


def _config(ckpt_dir: str, seed: int,
            plan: Optional[FaultPlan], **extra) -> JobConfig:
    return JobConfig(
        nranks=NRANKS, impl="mpich", mana=True, seed=seed,
        ckpt_dir=ckpt_dir, loop_lag_window=LAG_WINDOW,
        deadline=60.0, faults=plan, **extra,
    )


def _checksums(res) -> List[Optional[float]]:
    return [
        round(a.checksum, 9) if a is not None else None
        for a in res.apps()
    ]


def _injector_trace(cfg: JobConfig) -> List[dict]:
    # Job.__init__ wrapped the plan into its injector in-place.
    inj = cfg.faults
    return inj.trace() if inj is not None and hasattr(inj, "trace") else []


def baseline_checksums(seed: int) -> List[float]:
    """Per-rank checksums of a fault-free run (same seed, same armed
    checkpoints) — the reference every survival scenario must match."""
    tmp = tempfile.mkdtemp(prefix="repro-faults-base-")
    try:
        cfg = _config(tmp, seed, None)
        job = Launcher(cfg).launch(lambda r: SurvivorApp())
        _arm_triggers(job)
        res = job.run(60.0)
        if res.status != "completed":
            raise RuntimeError(
                f"fault-free baseline failed: {res.first_error()}"
            )
        return _checksums(res)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def _supervised(seed: int, plan: FaultPlan, workdir: Optional[str],
                max_restarts: int = 2) -> Dict:
    """Run SurvivorApp under supervision with ``plan`` installed and
    summarize the outcome against the fault-free baseline."""
    tmp = workdir or tempfile.mkdtemp(prefix="repro-faults-")
    own = workdir is None
    try:
        cfg = _config(tmp, seed, plan)
        launcher = Launcher(cfg, RestartPolicy(max_restarts=max_restarts))
        res = launcher.supervise(
            lambda r: SurvivorApp(), timeout=60.0, on_launch=_arm_triggers,
        )
        return {
            "status": res.status,
            "restarts": res.restarts,
            "events": res.recovery_events,
            "checksums": _checksums(res),
            "baseline": baseline_checksums(seed),
            "faults_fired": _injector_trace(cfg),
            "runtime": round(res.runtime, 9),
            "dedup": _dedup_summary(tmp),
        }
    finally:
        if own:
            shutil.rmtree(tmp, ignore_errors=True)


def _dedup_summary(ckpt_dir: str) -> Dict[int, Dict]:
    """Per-generation incremental-save stats from the on-disk manifests
    (chunks written / reused, bytes written) — the dedup effectiveness
    report ``python -m repro faults`` surfaces."""
    from repro.mana.checkpoint import latest_generations, read_manifest
    from repro.util.errors import RestartError

    out: Dict[int, Dict] = {}
    for g in latest_generations(ckpt_dir):
        try:
            dd = read_manifest(ckpt_dir, g).get("dedup")
        except RestartError:
            continue  # incomplete generation (e.g. crashed mid-save)
        if dd is not None:
            out[g] = {
                "chunks_written": dd["chunks_written"],
                "chunks_reused": dd["chunks_reused"],
                "bytes_written": dd["bytes_written"],
            }
    return out


# ----------------------------------------------------------------------
# scenarios
# ----------------------------------------------------------------------
def scenario_crash_restore(seed: int = 7,
                           workdir: Optional[str] = None) -> Dict:
    """A rank dies mid-loop after generation 2 exists; the supervisor
    restores generation 2 and the job completes."""
    plan = FaultPlan(seed=seed).crash_at_loop(rank=1, iteration=9)
    out = _supervised(seed, plan, workdir)
    out["ok"] = (
        out["status"] == "completed"
        and out["restarts"] == 1
        and out["checksums"] == out["baseline"]
    )
    return out


def scenario_self_heal(seed: int = 7,
                       workdir: Optional[str] = None) -> Dict:
    """The acceptance demo: a rank is killed mid-save of generation 3
    AND generation 2's rank-0 image is bit-flipped on disk — the
    supervisor must skip both and restore generation 1."""
    plan = (
        FaultPlan(seed=seed)
        .crash_in_checkpoint(rank=1, generation=3, site=SITE_MID_SAVE)
        .corrupt_image(generation=2, rank=0, mode=CORRUPT_BITFLIP)
    )
    out = _supervised(seed, plan, workdir)
    restored = [e["generation"] for e in out["events"]
                if e["event"] == "restart"]
    out["ok"] = (
        out["status"] == "completed"
        and restored == [1]
        and out["checksums"] == out["baseline"]
    )
    return out


def scenario_disk_full(seed: int = 7,
                       workdir: Optional[str] = None) -> Dict:
    """ENOSPC while rank 1 saves generation 2: the save fails cleanly
    (no torn image or stray temp file at the final path) and the
    supervisor resumes from generation 1."""
    plan = FaultPlan(seed=seed).disk_full(rank=1, generation=2)
    tmp = workdir or tempfile.mkdtemp(prefix="repro-faults-")
    try:
        out = _supervised(seed, plan, tmp)
        from repro.mana.checkpoint import generation_dir

        gen2 = generation_dir(tmp, 2)
        leftovers = (
            [n for n in os.listdir(gen2) if n.endswith(".tmp")]
            if os.path.isdir(gen2) else []
        )
        out["torn_files"] = leftovers
        out["ok"] = (
            out["status"] == "completed"
            and not leftovers
            and out["checksums"] == out["baseline"]
        )
        return out
    finally:
        if workdir is None:
            shutil.rmtree(tmp, ignore_errors=True)


def scenario_truncate_fallback(seed: int = 7,
                               workdir: Optional[str] = None) -> Dict:
    """Generation 2 is truncated on disk after its round completes plus
    a later crash: restart must fall back to generation 1."""
    plan = (
        FaultPlan(seed=seed)
        .corrupt_image(generation=2, rank=1, mode=CORRUPT_TRUNCATE)
        .crash_at_loop(rank=2, iteration=9)
    )
    out = _supervised(seed, plan, workdir)
    restored = [e["generation"] for e in out["events"]
                if e["event"] == "restart"]
    out["ok"] = (
        out["status"] == "completed"
        and restored == [1]
        and out["checksums"] == out["baseline"]
    )
    return out


def scenario_chunk_corrupt(seed: int = 7,
                           workdir: Optional[str] = None) -> Dict:
    """Format-5 chunk-level bit rot: a chunk newly stored by rank 0's
    generation-2 save is corrupted in the content store, plus a later
    crash.  Validation must pin the bad chunk on generation 2 (its
    chunks are content-shared with nothing older), and the supervisor
    must fall back to generation 1."""
    plan = (
        FaultPlan(seed=seed)
        .corrupt_chunk(generation=2, rank=0)
        .crash_at_loop(rank=2, iteration=9)
    )
    out = _supervised(seed, plan, workdir)
    restored = [e["generation"] for e in out["events"]
                if e["event"] == "restart"]
    out["ok"] = (
        out["status"] == "completed"
        and restored == [1]
        and out["checksums"] == out["baseline"]
    )
    return out


def scenario_round_abort(seed: int = 7,
                         workdir: Optional[str] = None) -> Dict:
    """An injected coordinator stall aborts checkpoint round 1 on its
    first attempt; the bounded retry completes it and the job never
    fails (zero supervised restarts)."""
    plan = FaultPlan(seed=seed).abort_round(generation=1, attempt=1)
    tmp = workdir or tempfile.mkdtemp(prefix="repro-faults-")
    try:
        cfg = _config(tmp, seed, plan)
        job = Launcher(cfg).launch(lambda r: SurvivorApp())
        _arm_triggers(job)
        res = job.run(60.0)
        out = {
            "status": res.status,
            "restarts": 0,
            "events": list(job.coordinator.round_events),
            "checksums": _checksums(res),
            "baseline": baseline_checksums(seed),
            "faults_fired": _injector_trace(cfg),
            "runtime": round(res.runtime, 9),
        }
        out["ok"] = (
            res.status == "completed"
            and any(e["event"] == "round-abort" and e["retrying"]
                    for e in out["events"])
            and out["checksums"] == out["baseline"]
        )
        return out
    finally:
        if workdir is None:
            shutil.rmtree(tmp, ignore_errors=True)


def scenario_msg_delay(seed: int = 7,
                       workdir: Optional[str] = None) -> Dict:
    """A delayed message slows the job in *virtual* time but never
    corrupts it: checksums still match the baseline."""
    plan = FaultPlan(seed=seed).delay_message(src=0, dst=1, seconds=5.0,
                                              nth=3)
    tmp = workdir or tempfile.mkdtemp(prefix="repro-faults-")
    try:
        cfg = _config(tmp, seed, plan)
        job = Launcher(cfg).launch(lambda r: SurvivorApp())
        _arm_triggers(job)
        res = job.run(60.0)
        out = {
            "status": res.status,
            "restarts": 0,
            "events": [],
            "checksums": _checksums(res),
            "baseline": baseline_checksums(seed),
            "faults_fired": _injector_trace(cfg),
            "runtime": round(res.runtime, 9),
        }
        out["ok"] = (
            res.status == "completed"
            and out["checksums"] == out["baseline"]
            and len(out["faults_fired"]) == 1
        )
        return out
    finally:
        if workdir is None:
            shutil.rmtree(tmp, ignore_errors=True)


def scenario_async_drain_fault(seed: int = 7,
                               workdir: Optional[str] = None) -> Dict:
    """A fault during the *background* drain of an asynchronous round
    (PROTOCOLS.md §11) fails that generation and nothing else: the
    ranks already resumed at the snapshot barrier, so the job completes
    with zero restarts and correct checksums, while restartability
    falls back to the previous durable generation."""
    from repro.mana.checkpoint import restorable_generations

    plan = FaultPlan(seed=seed).crash_in_checkpoint(
        rank=1, generation=2, site=SITE_MID_SAVE
    )
    tmp = workdir or tempfile.mkdtemp(prefix="repro-faults-")
    try:
        cfg = _config(tmp, seed, plan, ckpt_async=True)
        job = Launcher(cfg).launch(lambda r: SurvivorApp())
        _arm_triggers(job)
        res = job.run(60.0)
        events = list(job.coordinator.round_events)
        durable = restorable_generations(tmp)
        out = {
            "status": res.status,
            "restarts": 0,
            "events": events,
            "checksums": _checksums(res),
            "baseline": baseline_checksums(seed),
            "faults_fired": _injector_trace(cfg),
            "restorable_generations": durable,
            "runtime": round(res.runtime, 9),
        }
        out["ok"] = (
            res.status == "completed"
            and any(e["event"] == "async-drain-failed"
                    and e["generation"] == 2 for e in events)
            and 2 not in durable
            and len(durable) >= 1
            and out["checksums"] == out["baseline"]
        )
        return out
    finally:
        if workdir is None:
            shutil.rmtree(tmp, ignore_errors=True)


# ----------------------------------------------------------------------
# elastic restart scenarios (PROTOCOLS.md §12)
# ----------------------------------------------------------------------
#: Elastic scenarios arm only the first two triggers: with blocks=12 and
#: lag window 2 the ranks park at 4 and 8 — a crash at iteration 9 falls
#: back to the generation parked at 8.
ELASTIC_TRIGGERS = (2, 6)


def _arm_elastic_triggers(job) -> None:
    for it in ELASTIC_TRIGGERS:
        job.checkpoint_at_iteration("main", it, kind="loop")


def _elastic_factory(seed: int, nranks: int):
    from dataclasses import replace

    from repro.apps.elastic import ElasticHaloApp

    spec = replace(ElasticHaloApp.paper_config(), nranks=nranks, seed=seed)
    return lambda r: ElasticHaloApp(spec)


def _elastic_config(ckpt_dir: str, seed: int, plan: Optional[FaultPlan],
                    nranks: int, impl: str = "mpich") -> JobConfig:
    return JobConfig(
        nranks=nranks, impl=impl, mana=True, seed=seed,
        ckpt_dir=ckpt_dir, loop_lag_window=LAG_WINDOW,
        deadline=60.0, faults=plan,
    )


def _elastic_state(res) -> Dict:
    """App-level results of an ElasticHaloApp run: the replicated
    checksum and per-block global sums, raw floats (the equivalence
    oracle is *bit*-identity, so no rounding)."""
    return {
        "checksums": [
            a.checksum if a is not None else None for a in res.apps()
        ],
        "history": [
            list(a.history) if a is not None else None for a in res.apps()
        ],
    }


def elastic_cold_baseline(seed: int, nranks: int,
                          impl: str = "mpich") -> Dict:
    """App results of an uninterrupted ``nranks``-rank ElasticHaloApp
    run — what an elastic restore onto ``nranks`` ranks must reproduce
    bit-identically."""
    tmp = tempfile.mkdtemp(prefix="repro-elastic-base-")
    try:
        cfg = _elastic_config(tmp, seed, None, nranks, impl)
        res = Launcher(cfg).run(_elastic_factory(seed, nranks), 60.0)
        if res.status != "completed":
            raise RuntimeError(
                f"elastic cold baseline failed: {res.first_error()}"
            )
        return _elastic_state(res)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def _elastic_supervised(seed: int, workdir: Optional[str], *,
                        from_nranks: int, capacity: int, elastic: str,
                        impl: str = "mpich",
                        target_impl: Optional[str] = None) -> Dict:
    """Crash an ElasticHaloApp run after generation 2 exists, recover
    elastically onto ``capacity`` ranks, and compare the final app state
    bit-for-bit against a cold run at the post-restore size."""
    plan = FaultPlan(seed=seed).crash_at_loop(rank=1, iteration=9)
    tmp = workdir or tempfile.mkdtemp(prefix="repro-elastic-")
    own = workdir is None
    try:
        cfg = _elastic_config(tmp, seed, plan, from_nranks, impl)
        policy = RestartPolicy(
            max_restarts=2, elastic=elastic, capacity=[capacity],
            target_impl=target_impl,
        )
        res = Launcher(cfg, policy).supervise(
            _elastic_factory(seed, from_nranks), timeout=60.0,
            on_launch=_arm_elastic_triggers,
        )
        state = _elastic_state(res)
        to_nranks = len(res.ranks)
        baseline = elastic_cold_baseline(
            seed, to_nranks, target_impl or impl
        )
        restart_events = [e for e in res.recovery_events
                          if e["event"] == "restart"]
        out = {
            "status": res.status,
            "restarts": res.restarts,
            "events": res.recovery_events,
            "checksums": state["checksums"],
            "history": state["history"],
            "baseline": baseline,
            "from_nranks": from_nranks,
            "to_nranks": to_nranks,
            "faults_fired": _injector_trace(cfg),
            "runtime": round(res.runtime, 9),
        }
        out["ok"] = (
            res.status == "completed"
            and res.restarts == 1
            and state == baseline
            and all(e.get("elastic") for e in restart_events)
            and all("skipped_generations" in e for e in restart_events)
        )
        return out
    finally:
        if own:
            shutil.rmtree(tmp, ignore_errors=True)


def scenario_elastic_shrink(seed: int = 7,
                            workdir: Optional[str] = None) -> Dict:
    """Node loss: an 8-rank job crashes after generation 2; only 4
    ranks remain.  The supervisor repartitions the 8-rank images onto 4
    ranks and the finished state is bit-identical to a cold 4-rank
    run."""
    out = _elastic_supervised(
        seed, workdir, from_nranks=8, capacity=4,
        elastic="shrink_on_node_loss",
    )
    out["ok"] = out["ok"] and out["to_nranks"] == 4
    return out


def scenario_elastic_grow(seed: int = 7,
                          workdir: Optional[str] = None) -> Dict:
    """Spot capacity returns: a 4-rank job crashes after generation 2
    and restores onto 8 ranks, bit-identical to a cold 8-rank run."""
    out = _elastic_supervised(
        seed, workdir, from_nranks=4, capacity=8,
        elastic="grow_to_capacity",
    )
    out["ok"] = out["ok"] and out["to_nranks"] == 8
    return out


def scenario_elastic_migrate(seed: int = 7,
                             workdir: Optional[str] = None) -> Dict:
    """Cross-implementation elastic migration: checkpoint under Open MPI
    at 8 ranks, crash, restore under MPICH at 4 — resizing and the §9
    interoperability restart composed in one recovery."""
    out = _elastic_supervised(
        seed, workdir, from_nranks=8, capacity=4,
        elastic="shrink_on_node_loss", impl="openmpi",
        target_impl="mpich",
    )
    out["ok"] = out["ok"] and out["to_nranks"] == 4
    return out


SCENARIOS: Dict[str, Callable[..., Dict]] = {
    "crash-restore": scenario_crash_restore,
    "self-heal": scenario_self_heal,
    "disk-full": scenario_disk_full,
    "truncate-fallback": scenario_truncate_fallback,
    "chunk-corrupt": scenario_chunk_corrupt,
    "round-abort": scenario_round_abort,
    "msg-delay": scenario_msg_delay,
    "async-drain-fault": scenario_async_drain_fault,
    "elastic-shrink": scenario_elastic_shrink,
    "elastic-grow": scenario_elastic_grow,
    "elastic-migrate": scenario_elastic_migrate,
}


def run_scenario(name: str, seed: int = 7) -> Dict:
    if name not in SCENARIOS:
        raise KeyError(
            f"unknown scenario {name!r}; pick from {sorted(SCENARIOS)}"
        )
    return SCENARIOS[name](seed=seed)


def recovery_fingerprint(out: Dict) -> Dict:
    """The parts of a scenario outcome that must be bit-identical across
    two runs with the same plan + seed."""
    return {
        "status": out["status"],
        "restarts": out["restarts"],
        "events": out["events"],
        "checksums": out["checksums"],
        "faults_fired": out["faults_fired"],
        "runtime": out["runtime"],
    }


def fault_smoke(seed: int = 7) -> Dict:
    """CI smoke: the acceptance scenario, twice.

    Asserts (a) the job self-heals — restored from the latest valid
    generation with final checksums equal to a fault-free run — and
    (b) the recovery trace (events, fired faults, virtual times) is
    deterministic: bit-identical across both runs.
    """
    first = scenario_self_heal(seed=seed)
    second = scenario_self_heal(seed=seed)
    deterministic = (
        recovery_fingerprint(first) == recovery_fingerprint(second)
    )
    return {
        "ok": bool(first["ok"] and second["ok"] and deterministic),
        "self_heal_ok": bool(first["ok"]),
        "deterministic": deterministic,
        "run": first,
        "rerun": recovery_fingerprint(second),
    }


def elastic_smoke(seed: int = 7) -> Dict:
    """CI smoke for elastic restart (PROTOCOLS.md §12): one shrink
    (8→4), one grow (4→8), one cross-implementation migration
    (Open MPI 8 → MPICH 4), each checked bit-identical against a cold
    run at the post-restore size; the shrink runs twice to assert the
    recovery trace is deterministic."""
    shrink = scenario_elastic_shrink(seed=seed)
    shrink_again = scenario_elastic_shrink(seed=seed)
    grow = scenario_elastic_grow(seed=seed)
    migrate = scenario_elastic_migrate(seed=seed)
    deterministic = (
        recovery_fingerprint(shrink) == recovery_fingerprint(shrink_again)
    )
    return {
        "ok": bool(
            shrink["ok"] and grow["ok"] and migrate["ok"] and deterministic
        ),
        "shrink_ok": bool(shrink["ok"]),
        "grow_ok": bool(grow["ok"]),
        "migrate_ok": bool(migrate["ok"]),
        "deterministic": deterministic,
        "shrink": shrink,
        "grow": grow,
        "migrate": migrate,
        "rerun": recovery_fingerprint(shrink_again),
    }
