"""Declarative fault plans.

A :class:`FaultPlan` is a seeded list of :class:`FaultSpec` entries, each
naming one injectable fault and the exact event at which it fires.  The
plan is pure data: installing it via ``JobConfig(faults=plan)`` turns it
into a :class:`repro.faults.injector.FaultInjector`, the runtime object
consulted at the hook points.  Because every trigger is expressed in
deterministic coordinates — nth wrapped MPI call on a rank, a resumable
loop iteration, a checkpoint generation and phase, the nth message on a
(src, dst) pair — the same plan plus the same seed reproduces the
identical failure trace, run after run.

The seed additionally derives any randomness a fault needs (e.g. which
payload byte a bit-flip corrupts) via the repo's stable hash, never the
host RNG.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

# Fault kinds.
CRASH = "crash"
MSG_DROP = "msg-drop"
MSG_DELAY = "msg-delay"
CORRUPT_IMAGE = "corrupt-image"
CORRUPT_CHUNK = "corrupt-chunk"
DISK_FULL = "disk-full"
ROUND_ABORT = "round-abort"

# Crash sites.
SITE_MPI_CALL = "mpi-call"
SITE_LOOP = "loop"
SITE_PRE_DRAIN = "pre-drain"
SITE_POST_DRAIN = "post-drain"
SITE_MID_SAVE = "mid-save"

CRASH_SITES = (
    SITE_MPI_CALL, SITE_LOOP, SITE_PRE_DRAIN, SITE_POST_DRAIN, SITE_MID_SAVE,
)

# Image-corruption modes.
CORRUPT_BITFLIP = "bitflip"
CORRUPT_TRUNCATE = "truncate"


@dataclass
class FaultSpec:
    """One injectable fault and its (deterministic) firing condition."""

    kind: str
    rank: Optional[int] = None        # rank the fault targets
    site: Optional[str] = None        # crash site (see CRASH_SITES)
    at: Optional[int] = None          # nth MPI call / loop iteration
    loop: str = "main"                # loop name for SITE_LOOP crashes
    generation: Optional[int] = None  # checkpoint generation (ckpt faults)
    mode: str = CORRUPT_BITFLIP       # corrupt-image mode
    src: Optional[int] = None         # message faults: sender world rank
    dst: Optional[int] = None         # message faults: receiver world rank
    nth: int = 1                      # nth message on the (src, dst) pair
    delay: float = 0.0                # msg-delay: extra virtual seconds
    attempt: int = 1                  # round-abort: which attempt to hit

    def __post_init__(self):
        if self.kind == CRASH and self.site not in CRASH_SITES:
            raise ValueError(
                f"crash site must be one of {CRASH_SITES}, got {self.site!r}"
            )
        if self.kind == CORRUPT_IMAGE and self.mode not in (
            CORRUPT_BITFLIP, CORRUPT_TRUNCATE,
        ):
            raise ValueError(f"unknown corruption mode {self.mode!r}")

    def describe(self) -> str:
        if self.kind == CRASH:
            where = {
                SITE_MPI_CALL: f"MPI call #{self.at}",
                SITE_LOOP: f"loop {self.loop!r} iteration {self.at}",
                SITE_PRE_DRAIN: f"pre-drain of generation {self.generation}",
                SITE_POST_DRAIN: f"post-drain of generation {self.generation}",
                SITE_MID_SAVE: f"mid-save of generation {self.generation}",
            }[self.site]
            return f"crash rank {self.rank} at {where}"
        if self.kind == CORRUPT_IMAGE:
            return (f"{self.mode} image of rank {self.rank} "
                    f"generation {self.generation}")
        if self.kind == CORRUPT_CHUNK:
            return (f"corrupt store chunk #{self.nth} newly written by "
                    f"rank {self.rank} generation {self.generation}")
        if self.kind == DISK_FULL:
            return (f"disk full on rank {self.rank} saving "
                    f"generation {self.generation}")
        if self.kind == ROUND_ABORT:
            return (f"abort checkpoint round generation {self.generation} "
                    f"attempt {self.attempt}")
        if self.kind in (MSG_DROP, MSG_DELAY):
            what = "drop" if self.kind == MSG_DROP else f"delay {self.delay}s"
            return f"{what} message #{self.nth} {self.src}->{self.dst}"
        return self.kind


@dataclass
class FaultPlan:
    """A seeded, reproducible set of faults to inject into one job
    (and its supervised restarts — fired faults never re-fire).

    Build with the fluent helpers::

        plan = (FaultPlan(seed=7)
                .crash_at_loop(rank=1, iteration=9)
                .corrupt_image(generation=2, rank=0, mode="bitflip"))
    """

    seed: int = 0
    specs: List[FaultSpec] = field(default_factory=list)

    # -- fluent builders -------------------------------------------------
    def add(self, spec: FaultSpec) -> "FaultPlan":
        self.specs.append(spec)
        return self

    def crash_at_call(self, rank: int, n: int) -> "FaultPlan":
        """Kill ``rank`` at its ``n``-th wrapped MPI call."""
        return self.add(FaultSpec(CRASH, rank=rank, site=SITE_MPI_CALL, at=n))

    def crash_at_loop(self, rank: int, iteration: int,
                      loop: str = "main") -> "FaultPlan":
        """Kill ``rank`` at the top of loop ``loop`` iteration ``iteration``."""
        return self.add(
            FaultSpec(CRASH, rank=rank, site=SITE_LOOP, at=iteration, loop=loop)
        )

    def crash_in_checkpoint(self, rank: int, generation: int,
                            site: str = SITE_MID_SAVE) -> "FaultPlan":
        """Kill ``rank`` inside checkpoint ``generation`` at ``site``
        (pre-drain, post-drain, or mid-save)."""
        return self.add(
            FaultSpec(CRASH, rank=rank, site=site, generation=generation)
        )

    def corrupt_image(self, generation: int, rank: int,
                      mode: str = CORRUPT_BITFLIP) -> "FaultPlan":
        """Corrupt rank ``rank``'s image of ``generation`` on disk right
        after it is written (bit rot / torn write simulation)."""
        return self.add(
            FaultSpec(CORRUPT_IMAGE, rank=rank, generation=generation,
                      mode=mode)
        )

    def corrupt_chunk(self, generation: int, rank: int,
                      nth: int = 1) -> "FaultPlan":
        """Flip one byte of the ``nth`` chunk file rank ``rank``'s
        format-5 save of ``generation`` *newly wrote* to the content
        store.  Targeting new chunks only keeps earlier generations
        (whose chunks are all older) restorable, so fallback is
        well-defined."""
        return self.add(
            FaultSpec(CORRUPT_CHUNK, rank=rank, generation=generation,
                      nth=nth)
        )

    def disk_full(self, rank: int, generation: int) -> "FaultPlan":
        """Fail rank ``rank``'s ``save_image`` of ``generation`` with a
        disk-full error (partial temp file, final path untouched)."""
        return self.add(FaultSpec(DISK_FULL, rank=rank, generation=generation))

    def drop_message(self, src: int, dst: int, nth: int = 1) -> "FaultPlan":
        """Silently lose the ``nth`` message ``src`` sends to ``dst``."""
        return self.add(FaultSpec(MSG_DROP, src=src, dst=dst, nth=nth))

    def delay_message(self, src: int, dst: int, seconds: float,
                      nth: int = 1) -> "FaultPlan":
        """Add ``seconds`` of virtual latency to the ``nth`` message on
        the (src, dst) pair."""
        return self.add(
            FaultSpec(MSG_DELAY, src=src, dst=dst, nth=nth, delay=seconds)
        )

    def abort_round(self, generation: int, attempt: int = 1) -> "FaultPlan":
        """Abort checkpoint round ``generation`` on its ``attempt``-th
        try (simulates a coordinator stall detected by the backoff
        timeout); the coordinator retries the round."""
        return self.add(
            FaultSpec(ROUND_ABORT, generation=generation, attempt=attempt)
        )

    # -- seeded construction --------------------------------------------
    @classmethod
    def seeded_crash(cls, seed: int, nranks: int,
                     max_call: int = 200) -> "FaultPlan":
        """A one-crash plan whose victim rank and call index derive from
        ``seed`` alone (for randomized-but-reproducible sweeps)."""
        from repro.util.rng import _stable_hash

        rank = _stable_hash(f"{seed}/fault-rank") % nranks
        n = 1 + _stable_hash(f"{seed}/fault-call") % max_call
        return cls(seed=seed).crash_at_call(rank, n)

    def describe(self) -> List[str]:
        return [s.describe() for s in self.specs]
