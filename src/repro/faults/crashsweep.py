"""Syscall-level crash-injection sweep over the checkpoint store.

The durability claim of PROTOCOLS.md §13 is universally quantified:
*at every syscall boundary* of every store mutation, killing the writer
leaves the directory either still restorable from the previous
generation bit-for-bit, or repairable by ``repro fsck`` to a restorable
state with nothing leaked.  This module turns that claim into a sweep:

1. **Baseline.**  Build a small store with two complete generations
   (two ranks, seeded payloads with cross-generation overlap so chunk
   dedup is exercised).
2. **Enumerate.**  Run the full mutation batch — a synchronous
   generation save, an async-drain-style generation (``drain`` context,
   pinned chunks, ``drain-finalize`` journal record), a prune to
   ``keep=2``, and a chunk GC — under a recording
   :class:`repro.faults.CrashPointInjector` and collect every named
   crash point that fires (``<context>.<site>.<when>``; well over 40
   distinct names across the save/drain/gc/prune contexts).
3. **Sweep.**  For each point: fresh copy of the baseline, injector
   armed at that point, run the mutation until it dies
   (:class:`repro.util.errors.InjectedCrash`; all later store
   operations raise too, so no ``finally`` block can tidy up), then run
   :func:`repro.mana.fsck.fsck` and assert the invariants:

   * every generation fsck reports restorable reassembles
     **bit-identically** to the payload originally written;
   * the newest restorable generation is at least the pre-mutation
     head (the crash never loses already-durable state);
   * zero leaks: no ``*.tmp`` anywhere, no pending journal records, and
     the chunk store holds exactly the referenced digests;
   * a second fsck finds nothing to do (repair converged).

``python -m repro crash-smoke`` runs a deterministic bounded subset;
the exhaustive sweep runs as a ``slow``-marked test in
``tests/test_crashpoints.py``.
"""

from __future__ import annotations

import hashlib
import os
import shutil
from typing import Dict, List, Optional

from repro.faults.crashpoints import CrashPointInjector
from repro.mana import checkpoint as ckpt
from repro.mana import storeio
from repro.mana.chunkstore import store_for
from repro.mana.fsck import fsck
from repro.mana.journal import Journal
from repro.util.errors import InjectedCrash, IntegrityError, RestartError

NRANKS = 2
#: Generations present (and restorable) before the mutation batch runs.
BASELINE_GENS = (1, 2)
#: Generations the mutation batch adds (3 synchronously, 4 drain-style).
MUTATED_GENS = (3, 4)
#: prune keep= used by the mutation batch (dooms generations 1 and 2
#: once 3 and 4 are durable).
PRUNE_KEEP = 2


# ----------------------------------------------------------------------
# deterministic payloads
# ----------------------------------------------------------------------
def _blob(generation: int, rank: int) -> bytes:
    """~24 KiB seeded payload: a shared region that is identical across
    generations (dedup hits → chunk-publish early returns) plus a
    per-generation region (fresh chunks → the full publish path)."""
    def stream(tag: str, n: int) -> bytes:
        out = bytearray()
        counter = 0
        while len(out) < n:
            out += hashlib.sha256(f"{tag}/{counter}".encode()).digest()
            counter += 1
        return bytes(out[:n])

    shared = stream(f"shared/rank{rank}", 12 * 1024)
    unique = stream(f"gen{generation}/rank{rank}", 12 * 1024)
    return shared + unique


def _image(rank: int, generation: int) -> ckpt.CheckpointImage:
    return ckpt.CheckpointImage(
        rank=rank, nranks=NRANKS, impl="sim", kind="cold",
        generation=generation, app=None, loops={}, vid_table=None,
        drain_buffer=None, clock_state={}, rng_state=None,
        cs_count=0, epoch=0,
    )


def expected_blobs() -> Dict[int, Dict[int, bytes]]:
    """generation -> rank -> payload bytes, for every generation the
    sweep can encounter."""
    return {
        g: {r: _blob(g, r) for r in range(NRANKS)}
        for g in (*BASELINE_GENS, *MUTATED_GENS)
    }


# ----------------------------------------------------------------------
# store construction and mutation
# ----------------------------------------------------------------------
def _write_generation(base: str, generation: int, pin: bool = False) -> None:
    store = store_for(base)
    for rank in range(NRANKS):
        ckpt.save_chunked_blob(
            ckpt.rank_image_path(base, generation, rank),
            _image(rank, generation), _blob(generation, rank),
            store, pin=pin,
        )
    ckpt.write_manifest(
        base, generation, nranks=NRANKS, impl="sim", kind="cold",
        cold_restartable=True, loop_target=None,
    )


def build_baseline(base: str) -> None:
    """Two complete generations, no injector installed."""
    os.makedirs(base, exist_ok=True)
    for g in BASELINE_GENS:
        _write_generation(base, g)


def mutate(base: str) -> None:
    """The full batch of journaled store mutations the sweep kills.

    Mirrors one supervised job's store activity: a synchronous save
    round (generation 3), an async-drain finalize (generation 4, under
    the ``drain`` operation context with the drainer's ``drain-finalize``
    journal record and pinned chunk publishes), a prune to
    ``PRUNE_KEEP``, and a final chunk GC.
    """
    _write_generation(base, 3)
    with storeio.op_context("drain"):
        store = store_for(base)
        for rank in range(NRANKS):
            ckpt.save_chunked_blob(
                ckpt.rank_image_path(base, 4, rank),
                _image(rank, 4), _blob(4, rank), store, pin=True,
            )
        fin = Journal(base).begin("drain-finalize", generation=4)
        ckpt.write_manifest(
            base, 4, nranks=NRANKS, impl="sim", kind="cold",
            cold_restartable=True, loop_target=None,
        )
        ckpt.prune_generations(base, PRUNE_KEEP)
        Journal(base).retire(fin)
    ckpt.gc_chunks(base)


def enumerate_crash_points(workdir: str) -> List[str]:
    """Every crash-point name the mutation batch fires, first-seen
    order.  Deterministic: the payloads, chunking, and mutation order
    are all seeded/sorted."""
    base = os.path.join(workdir, "enum")
    build_baseline(base)
    inj = CrashPointInjector()  # record mode: never crashes
    storeio.set_injector(inj)
    try:
        mutate(base)
    finally:
        storeio.set_injector(None)
    return list(inj.points)


# ----------------------------------------------------------------------
# invariants
# ----------------------------------------------------------------------
def _find_tmp(base: str) -> List[str]:
    out = []
    for dirpath, _dirnames, filenames in os.walk(base):
        for name in filenames:
            if name.endswith(storeio.TMP_SUFFIX):
                out.append(os.path.join(dirpath, name))
    return sorted(out)


def _read_back(base: str, generation: int) -> Dict[int, bytes]:
    """Reassemble every rank's payload of a generation from the store
    (verifying chunk integrity on the way)."""
    store = store_for(base)
    out: Dict[int, bytes] = {}
    manifest = ckpt.read_manifest(base, generation)
    for rank in range(manifest["nranks"]):
        path = ckpt.rank_image_path(base, generation, rank)
        refs = ckpt.image_chunk_refs(path)
        out[rank] = b"".join(store.get(d, context=path) for d, _ in refs)
    return out


def check_point(point: str, baseline: str, workdir: str,
                expected: Dict[int, Dict[int, bytes]]) -> Dict:
    """Kill the mutation batch at ``point``, repair, and verify.

    Returns a result dict with ``ok`` plus enough detail to debug a
    failure (``problems``) and to fingerprint determinism
    (``restorable``, ``rolled_back``)."""
    sub = hashlib.sha256(point.encode()).hexdigest()[:16]
    work = os.path.join(workdir, f"pt-{sub}")
    shutil.copytree(baseline, work)
    ckpt.invalidate_checkpoint_caches(work)

    inj = CrashPointInjector(arm_at=point)
    storeio.set_injector(inj)
    crashed = False
    try:
        mutate(work)
    except InjectedCrash:
        crashed = True
    finally:
        storeio.set_injector(None)

    problems: List[str] = []
    report = fsck(work, repair=True)
    # 1. Bit-identical payloads for everything fsck calls restorable.
    for g in report.restorable_generations:
        try:
            got = _read_back(work, g)
        except (IntegrityError, RestartError) as exc:
            problems.append(f"generation {g} reported restorable but: {exc}")
            continue
        if got != expected[g]:
            problems.append(
                f"generation {g} payload differs from what was written"
            )
    # 2. Already-durable state is never lost: the pre-mutation head (or
    # something newer) survives every crash.
    if not report.restorable_generations:
        problems.append("no restorable generation after repair")
    elif max(report.restorable_generations) < max(BASELINE_GENS):
        problems.append(
            f"crash lost durable state: newest restorable is "
            f"{max(report.restorable_generations)}, baseline head was "
            f"{max(BASELINE_GENS)}"
        )
    # 3. Zero leaks.
    tmps = _find_tmp(work)
    if tmps:
        problems.append(f"leaked tmp files: {tmps}")
    still_pending = Journal(work).pending()
    if still_pending:
        problems.append(f"journal not drained: {still_pending}")
    on_disk = store_for(work).digests()
    referenced = ckpt.referenced_chunks(work)
    if on_disk - referenced:
        problems.append(
            f"{len(on_disk - referenced)} unreferenced chunk(s) leaked"
        )
    if referenced - on_disk:
        problems.append(
            f"{len(referenced - on_disk)} referenced chunk(s) missing"
        )
    # 4. Repair converged: a second fsck has nothing to do.
    second = fsck(work, repair=True)
    if second.dirty:
        problems.append("second fsck still found work (repair diverged)")

    result = {
        "point": point,
        "crashed": crashed,
        "restorable": list(report.restorable_generations),
        "rolled_back": list(report.rolled_back_generations),
        "ok": not problems,
        "problems": problems,
    }
    shutil.rmtree(work, ignore_errors=True)
    return result


# ----------------------------------------------------------------------
# the sweep
# ----------------------------------------------------------------------
def select_subset(points: List[str], limit: int) -> List[str]:
    """A deterministic, spread-out subset: every k-th point by
    first-seen order (hits all four operation contexts without a seeded
    RNG dependency)."""
    if limit >= len(points):
        return list(points)
    step = len(points) / limit
    return [points[int(i * step)] for i in range(limit)]


def run_sweep(workdir: str, limit: Optional[int] = None,
              points: Optional[List[str]] = None) -> Dict:
    """Run the crash sweep under ``workdir``; returns a summary dict.

    ``limit`` bounds the number of points checked (deterministic
    subset); ``points`` overrides the selection entirely.
    """
    all_points = enumerate_crash_points(workdir)
    baseline = os.path.join(workdir, "baseline")
    build_baseline(baseline)
    expected = expected_blobs()
    chosen = points if points is not None else (
        select_subset(all_points, limit) if limit else list(all_points)
    )
    results = [
        check_point(p, baseline, workdir, expected) for p in chosen
    ]
    failures = [r for r in results if not r["ok"]]
    contexts = sorted({p.split(".")[0] for p in all_points})
    return {
        "points_total": len(all_points),
        "contexts": contexts,
        "points_checked": len(results),
        "failures": failures,
        "ok": not failures,
        "results": results,
    }
