""":class:`BaseMpiLib` — the shared semantics of all simulated MPI libraries.

A concrete implementation (``repro.impls.*``) subclasses this and supplies
only the things the paper's Section 3 says differ between MPI
implementations:

* a :class:`HandleSpace` — how handles represent internal objects
  (32-bit two-level-table ids for the MPICH family; 64-bit pointers for
  Open MPI; enum + lazy pointers for ExaMPI);
* constant resolution (fixed integers vs init-time functions vs lazy
  shared pointers);
* the supported function subset.

Everything here operates on *handles* at the public surface — the same
opaque values a compiled application would hold — which is what MANA's
wrappers interpose on.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.fabric.network import Fabric, Message
from repro.mpi import constants as C
from repro.mpi import datatypes as dt
from repro.mpi.group import EMPTY_GROUP, GroupData
from repro.mpi.objects import (
    CartInfo,
    CommObject,
    DatatypeObject,
    GroupObject,
    OpObject,
    RequestObject,
    Status,
)
from repro.simtime.clock import VirtualClock
from repro.simtime.cost import CostModel
from repro.util.errors import (
    InvalidHandleError,
    MpiAbort,
    MpiError,
    UnsupportedFunctionError,
)
from repro.util.rng import DeterministicRng, _stable_hash


class HandleKind:
    """The five MPI object kinds MANA virtualizes (paper §1.2, point 3)."""

    COMM = "comm"
    GROUP = "group"
    DATATYPE = "datatype"
    OP = "op"
    REQUEST = "request"

    ALL = (COMM, GROUP, DATATYPE, OP, REQUEST)


class HandleSpace:
    """Implementation-specific mapping handle <-> internal object.

    Subclasses define the *representation*; this base class defines the
    contract.  ``handle_bits`` is the declared width of MPI object types
    in the implementation's ``mpi.h`` (32 for the MPICH family, 64 for
    pointer-based implementations).
    """

    handle_bits: int = 32

    def insert(self, kind: str, obj, builtin_name: Optional[str] = None) -> int:
        raise NotImplementedError

    def resolve(self, kind: str, handle: int):
        raise NotImplementedError

    def remove(self, kind: str, handle: int) -> None:
        raise NotImplementedError

    def null_handle(self, kind: str) -> int:
        raise NotImplementedError

    def is_null(self, kind: str, handle: int) -> bool:
        return handle == self.null_handle(kind)


def mpi_call(fn: Callable) -> Callable:
    """Decorator for every public MPI function.

    Enforces initialization and the implementation's declared subset,
    charges the library software cost, and counts the call (the counts
    feed the Section 6.3 context-switch analysis).
    """

    name = fn.__name__

    def wrapper(self: "BaseMpiLib", *args, **kwargs):
        if not self._initialized and name not in ("init", "initialized"):
            raise MpiError(
                f"{name} called before MPI_Init", "MPI_ERR_OTHER"
            )
        if self._finalized and name not in ("initialized", "finalized"):
            raise MpiError(
                f"{name} called after MPI_Finalize", "MPI_ERR_OTHER"
            )
        if name in self.UNSUPPORTED:
            raise UnsupportedFunctionError(self.name, name)
        self.call_counts[name] = self.call_counts.get(name, 0) + 1
        self.clock.advance(self.cost_model.library_call_cost(), "mpi-lib")
        return fn(self, *args, **kwargs)

    wrapper.__name__ = name
    wrapper.__doc__ = fn.__doc__
    wrapper.__wrapped__ = fn
    return wrapper


class BaseMpiLib:
    """One rank's instance of a simulated MPI library (a "lower half")."""

    #: implementation name, e.g. "mpich"
    name: str = "base"
    #: function names this implementation does NOT provide (subset impls)
    UNSUPPORTED: frozenset = frozenset()

    def __init__(
        self,
        fabric: Fabric,
        world_rank: int,
        clock: VirtualClock,
        cost_model: CostModel,
        epoch: int = 0,
        seed: int = 0,
    ):
        self.fabric = fabric
        self.world_rank = world_rank
        self.nranks = fabric.nranks
        self.clock = clock
        self.cost_model = cost_model
        # The epoch salts physical ids so restarts produce *different*
        # physical handles/contexts — the hazard virtual ids must absorb.
        self.epoch = epoch
        self.rng = DeterministicRng(seed, f"{self.name}/rank{world_rank}/e{epoch}")
        self.handles: HandleSpace = self._make_handle_space()
        self.call_counts: Dict[str, int] = {}
        self._initialized = False
        self._finalized = False
        self._constants: Dict[str, int] = {}
        self._predefined_types = dt.make_predefined_types()
        self._keyvals: set = set()
        self._next_keyval = 1000 + epoch * 131  # epoch-salted, like handles
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # subclass surface
    # ------------------------------------------------------------------
    def _make_handle_space(self) -> HandleSpace:
        raise NotImplementedError

    def constant(self, name: str) -> int:
        """Resolve a global constant name to this instance's handle.

        MPICH family: a fixed compile-time integer (same every session).
        Open MPI: resolved when the library initializes; value varies
        between sessions (paper §4.3).  ExaMPI: resolved lazily on first
        use.  The base implementation is the Open MPI-style eager map;
        subclasses override.
        """
        try:
            return self._constants[name]
        except KeyError:
            raise MpiError(
                f"unknown MPI constant {name!r}", "MPI_ERR_ARG"
            ) from None

    def null_handle(self, kind: str) -> int:
        return self.handles.null_handle(kind)

    # ------------------------------------------------------------------
    # environment management
    # ------------------------------------------------------------------
    @mpi_call
    def init(self) -> None:
        """MPI_Init: create the predefined objects and resolve constants."""
        if self._initialized:
            raise MpiError("MPI_Init called twice", "MPI_ERR_OTHER")
        self._initialized = True
        self._create_builtins()

    def _create_builtins(self) -> None:
        world_group = GroupData(tuple(range(self.nranks)))
        world = CommObject(
            group=world_group,
            context_id=self._world_context_id(),
            my_world_rank=self.world_rank,
            name="MPI_COMM_WORLD",
        )
        selfc = CommObject(
            group=GroupData((self.world_rank,)),
            context_id=self._self_context_id(),
            my_world_rank=self.world_rank,
            name="MPI_COMM_SELF",
        )
        self._register_constant(
            "MPI_COMM_WORLD", HandleKind.COMM, world
        )
        self._register_constant("MPI_COMM_SELF", HandleKind.COMM, selfc)
        self._register_constant(
            "MPI_GROUP_EMPTY", HandleKind.GROUP, GroupObject(EMPTY_GROUP)
        )
        for name, desc in self._predefined_types.items():
            obj = DatatypeObject(
                descriptor=desc, committed=True, predefined_name=name
            )
            self._register_constant(name, HandleKind.DATATYPE, obj)
        for opname in C.PREDEFINED_OPS:
            obj = OpObject(
                fn=_builtin_op_fn(opname),
                commute=True,
                predefined_name=opname,
            )
            self._register_constant(opname, HandleKind.OP, obj)

    def _register_constant(self, name: str, kind: str, obj) -> int:
        handle = self.handles.insert(kind, obj, builtin_name=name)
        self._constants[name] = handle
        return handle

    def _world_context_id(self) -> int:
        # All ranks derive the same pair of context ids for WORLD; the
        # epoch makes them differ across sessions/restarts.
        return 2 * _stable_hash(f"world/{self.name}/{self.epoch}") % (1 << 30)

    def _self_context_id(self) -> int:
        return (
            2
            * _stable_hash(
                f"self/{self.name}/{self.epoch}/{self.world_rank}"
            )
            % (1 << 30)
        )

    @mpi_call
    def initialized(self) -> bool:
        return self._initialized

    @mpi_call
    def finalized(self) -> bool:
        return self._finalized

    @mpi_call
    def finalize(self) -> None:
        self._finalized = True

    def shutdown(self) -> None:
        """Tear the instance down without MPI semantics (used when MANA
        discards a lower half at checkpoint time)."""
        self._finalized = True

    @mpi_call
    def abort(self, comm: int, errorcode: int) -> None:
        exc = MpiAbort(errorcode)
        self.fabric.abort(exc)
        raise exc

    @mpi_call
    def wtime(self) -> float:
        return self.clock.now

    @mpi_call
    def get_processor_name(self) -> str:
        # 56 cores/node on Discovery; nodes are filled rank-major.
        return f"node{self.world_rank // 56:03d}"

    # ------------------------------------------------------------------
    # handle resolution helpers
    # ------------------------------------------------------------------
    def _comm(self, handle: int) -> CommObject:
        obj = self.handles.resolve(HandleKind.COMM, handle)
        obj.check_live()
        return obj

    def _group(self, handle: int) -> GroupObject:
        obj = self.handles.resolve(HandleKind.GROUP, handle)
        obj.check_live()
        return obj

    def _dtype(self, handle: int) -> DatatypeObject:
        obj = self.handles.resolve(HandleKind.DATATYPE, handle)
        obj.check_live()
        return obj

    def _op(self, handle: int) -> OpObject:
        obj = self.handles.resolve(HandleKind.OP, handle)
        obj.check_live()
        return obj

    def _request(self, handle: int) -> RequestObject:
        obj = self.handles.resolve(HandleKind.REQUEST, handle)
        obj.check_live()
        return obj

    # ------------------------------------------------------------------
    # communicator management
    # ------------------------------------------------------------------
    @mpi_call
    def comm_rank(self, comm: int) -> int:
        return self._comm(comm).rank

    @mpi_call
    def comm_size(self, comm: int) -> int:
        return self._comm(comm).size

    @mpi_call
    def comm_group(self, comm: int) -> int:
        c = self._comm(comm)
        return self.handles.insert(HandleKind.GROUP, GroupObject(c.group))

    @mpi_call
    def comm_compare(self, comm1: int, comm2: int) -> int:
        c1, c2 = self._comm(comm1), self._comm(comm2)
        if c1 is c2 or c1.context_id == c2.context_id:
            return C.IDENT
        group_rel = c1.group.compare(c2.group)
        if group_rel == C.IDENT:
            return C.CONGRUENT  # same group, different context (e.g. dup)
        return group_rel

    @mpi_call
    def comm_dup(self, comm: int) -> int:
        c = self._comm(comm)
        seq = self._advance_comm_seq(c)
        from repro.mpi.collectives import barrier as _barrier

        _barrier(self, c)
        new = CommObject(
            group=c.group,
            context_id=self._derive_context(c.context_id, seq, 0),
            my_world_rank=self.world_rank,
            name=f"{c.name}+dup{seq}" if c.name else f"dup{seq}",
        )
        return self.handles.insert(HandleKind.COMM, new)

    @mpi_call
    def comm_split(self, comm: int, color: int, key: int) -> int:
        c = self._comm(comm)
        seq = self._advance_comm_seq(c)
        from repro.mpi.collectives import allgather_obj

        entries = allgather_obj(self, c, (color, key, self.world_rank))
        if color == C.UNDEFINED:
            return self.handles.null_handle(HandleKind.COMM)
        mine = sorted(
            (k, w) for (col, k, w) in entries if col == color
        )
        ranks = tuple(w for _, w in mine)
        new = CommObject(
            group=GroupData(ranks),
            context_id=self._derive_context(c.context_id, seq, color + 1),
            my_world_rank=self.world_rank,
            name=f"split({color})",
        )
        return self.handles.insert(HandleKind.COMM, new)

    @mpi_call
    def comm_split_type(self, comm: int, split_type: int, key: int) -> int:
        """MPI_Comm_split_type(COMM_TYPE_SHARED): one communicator per
        shared-memory node (ranks are packed 56 per node, Discovery's
        core count)."""
        if split_type != C.COMM_TYPE_SHARED:
            raise MpiError(
                f"unsupported split_type {split_type}", "MPI_ERR_ARG"
            )
        node = self.world_rank // C.CORES_PER_NODE
        return self.comm_split.__wrapped__(self, comm, node, key)

    @mpi_call
    def comm_create(self, comm: int, group: int) -> int:
        c = self._comm(comm)
        g = self._group(group)
        seq = self._advance_comm_seq(c)
        from repro.mpi.collectives import barrier as _barrier

        _barrier(self, c)
        if not g.data.contains(self.world_rank):
            return self.handles.null_handle(HandleKind.COMM)
        new = CommObject(
            group=g.data,
            context_id=self._derive_context(
                c.context_id, seq, _stable_hash(str(g.data.ranks))
            ),
            my_world_rank=self.world_rank,
            name="created",
        )
        return self.handles.insert(HandleKind.COMM, new)

    @mpi_call
    def comm_free(self, comm: int) -> None:
        c = self._comm(comm)
        if c.name in ("MPI_COMM_WORLD", "MPI_COMM_SELF"):
            raise MpiError("cannot free a predefined communicator", "MPI_ERR_COMM")
        c.freed = True
        self.handles.remove(HandleKind.COMM, comm)

    def _advance_comm_seq(self, c: CommObject) -> int:
        c.coll_seq += 1
        return c.coll_seq

    def _derive_context(self, parent_ctx: int, seq: int, salt: int) -> int:
        """Deterministic child context id (even; odd = collective ctx).

        Identical on every participating rank because (parent_ctx, seq,
        salt) agree; differs across epochs because parent_ctx does.
        """
        return 2 * (
            _stable_hash(f"{parent_ctx}/{seq}/{salt}/{self.epoch}")
            % (1 << 30)
        )

    # ------------------------------------------------------------------
    # group management
    # ------------------------------------------------------------------
    @mpi_call
    def group_size(self, group: int) -> int:
        return self._group(group).data.size

    @mpi_call
    def group_rank(self, group: int) -> int:
        return self._group(group).data.rank_of(self.world_rank)

    @mpi_call
    def group_incl(self, group: int, ranks: Sequence[int]) -> int:
        g = self._group(group)
        return self.handles.insert(
            HandleKind.GROUP, GroupObject(g.data.incl(ranks))
        )

    @mpi_call
    def group_excl(self, group: int, ranks: Sequence[int]) -> int:
        g = self._group(group)
        return self.handles.insert(
            HandleKind.GROUP, GroupObject(g.data.excl(ranks))
        )

    @mpi_call
    def group_union(self, g1: int, g2: int) -> int:
        a, b = self._group(g1), self._group(g2)
        return self.handles.insert(
            HandleKind.GROUP, GroupObject(a.data.union(b.data))
        )

    @mpi_call
    def group_intersection(self, g1: int, g2: int) -> int:
        a, b = self._group(g1), self._group(g2)
        return self.handles.insert(
            HandleKind.GROUP, GroupObject(a.data.intersection(b.data))
        )

    @mpi_call
    def group_difference(self, g1: int, g2: int) -> int:
        a, b = self._group(g1), self._group(g2)
        return self.handles.insert(
            HandleKind.GROUP, GroupObject(a.data.difference(b.data))
        )

    @mpi_call
    def group_translate_ranks(
        self, g1: int, ranks: Sequence[int], g2: int
    ) -> List[int]:
        a, b = self._group(g1), self._group(g2)
        return a.data.translate_ranks(ranks, b.data)

    @mpi_call
    def group_compare(self, g1: int, g2: int) -> int:
        return self._group(g1).data.compare(self._group(g2).data)

    @mpi_call
    def group_free(self, group: int) -> None:
        g = self._group(group)
        g.freed = True
        self.handles.remove(HandleKind.GROUP, group)

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------
    @mpi_call
    def send(
        self, buf: np.ndarray, count: int, datatype: int, dest: int,
        tag: int, comm: int,
    ) -> None:
        self._send_impl(buf, count, datatype, dest, tag, comm)

    def _send_impl(self, buf, count, datatype, dest, tag, comm) -> None:
        c = self._comm(comm)
        if dest == C.PROC_NULL:
            return
        d = self._dtype(datatype)
        d.check_committed()
        payload = d.descriptor.pack(buf, count)
        self.fabric.post_send(
            src=self.world_rank,
            dst=c.world_rank_of(dest),
            tag=tag,
            context_id=c.context_id,
            payload=payload,
            send_time=self.clock.now,
        )

    @mpi_call
    def recv(
        self, buf: np.ndarray, count: int, datatype: int, source: int,
        tag: int, comm: int,
    ) -> Status:
        c = self._comm(comm)
        if source == C.PROC_NULL:
            return Status(source=C.PROC_NULL, tag=C.ANY_TAG)
        d = self._dtype(datatype)
        d.check_committed()
        src_world = (
            C.ANY_SOURCE if source == C.ANY_SOURCE else c.world_rank_of(source)
        )
        msg = self.fabric.wait_match(
            self.world_rank, src_world, tag, c.context_id,
            deadline=self._deadline(),
        )
        return self._complete_recv(c, d, buf, count, msg)

    def _complete_recv(
        self, c: CommObject, d: DatatypeObject, buf, count, msg: Message
    ) -> Status:
        d.descriptor.unpack(msg.payload, buf, count)
        self.clock.merge(msg.arrive_time)
        return Status(
            source=c.group.rank_of(msg.src),
            tag=msg.tag,
            count_bytes=msg.nbytes,
        )

    @mpi_call
    def isend(
        self, buf, count: int, datatype: int, dest: int, tag: int, comm: int
    ) -> int:
        c = self._comm(comm)
        d = self._dtype(datatype)
        req = RequestObject(
            RequestObject.SEND, c, tag, dest, None, count, d
        )
        if dest != C.PROC_NULL:
            self._send_impl(buf, count, datatype, dest, tag, comm)
        # Eager fabric: a send request is complete as soon as it's posted.
        req.mark_complete(Status())
        return self.handles.insert(HandleKind.REQUEST, req)

    @mpi_call
    def irecv(
        self, buf, count: int, datatype: int, source: int, tag: int, comm: int
    ) -> int:
        c = self._comm(comm)
        d = self._dtype(datatype)
        d.check_committed()
        req = RequestObject(
            RequestObject.RECV, c, tag, source, buf, count, d
        )
        if source == C.PROC_NULL:
            req.mark_complete(Status(source=C.PROC_NULL))
        return self.handles.insert(HandleKind.REQUEST, req)

    @mpi_call
    def send_init(
        self, buf, count: int, datatype: int, dest: int, tag: int, comm: int
    ) -> int:
        """MPI_Send_init: a persistent send request (inactive)."""
        c = self._comm(comm)
        d = self._dtype(datatype)
        req = RequestObject(RequestObject.SEND, c, tag, dest, buf, count, d)
        req.persistent = True
        return self.handles.insert(HandleKind.REQUEST, req)

    @mpi_call
    def recv_init(
        self, buf, count: int, datatype: int, source: int, tag: int,
        comm: int,
    ) -> int:
        """MPI_Recv_init: a persistent receive request (inactive)."""
        c = self._comm(comm)
        d = self._dtype(datatype)
        d.check_committed()
        req = RequestObject(RequestObject.RECV, c, tag, source, buf, count, d)
        req.persistent = True
        return self.handles.insert(HandleKind.REQUEST, req)

    @mpi_call
    def start(self, request: int) -> None:
        """MPI_Start: activate a persistent request."""
        req = self._request(request)
        if not req.persistent:
            raise MpiError("MPI_Start on a non-persistent request",
                           "MPI_ERR_REQUEST")
        if req.active:
            raise MpiError("MPI_Start on an already-active request",
                           "MPI_ERR_REQUEST")
        req.active = True
        req.complete = False
        if req.kind == RequestObject.SEND:
            if req.peer != C.PROC_NULL:
                d = req.datatype
                d.check_committed()
                payload = d.descriptor.pack(req.buf, req.count)
                self.fabric.post_send(
                    src=self.world_rank,
                    dst=req.comm.world_rank_of(req.peer),
                    tag=req.tag,
                    context_id=req.comm.context_id,
                    payload=payload,
                    send_time=self.clock.now,
                )
            req.mark_complete(Status())
        elif req.peer == C.PROC_NULL:
            req.mark_complete(Status(source=C.PROC_NULL))

    @mpi_call
    def startall(self, requests: Sequence[int]) -> None:
        for r in requests:
            self.start.__wrapped__(self, r)

    @mpi_call
    def request_free(self, request: int) -> None:
        """MPI_Request_free (persistent requests only here)."""
        req = self._request(request)
        if req.active and not req.complete:
            raise MpiError("freeing an active persistent request",
                           "MPI_ERR_REQUEST")
        req.freed = True
        self.handles.remove(HandleKind.REQUEST, request)

    @mpi_call
    def test(self, request: int) -> Tuple[bool, Status]:
        req = self._request(request)
        if req.persistent and not req.active:
            return True, Status()  # inactive persistent: trivially done
        if req.complete:
            self._retire(request, req)
            return True, req.status
        assert req.kind == RequestObject.RECV
        c = req.comm
        src_world = (
            C.ANY_SOURCE
            if req.peer == C.ANY_SOURCE
            else c.world_rank_of(req.peer)
        )
        msg = self.fabric.try_match(
            self.world_rank, src_world, req.tag, c.context_id
        )
        if msg is None:
            return False, Status()
        status = self._complete_recv(c, req.datatype, req.buf, req.count, msg)
        req.mark_complete(status)
        self._retire(request, req)
        return True, status

    @mpi_call
    def wait(self, request: int) -> Status:
        req = self._request(request)
        if req.persistent and not req.active:
            return Status()
        if req.complete:
            self._retire(request, req)
            return req.status
        c = req.comm
        src_world = (
            C.ANY_SOURCE
            if req.peer == C.ANY_SOURCE
            else c.world_rank_of(req.peer)
        )
        msg = self.fabric.wait_match(
            self.world_rank, src_world, req.tag, c.context_id,
            deadline=self._deadline(),
        )
        status = self._complete_recv(c, req.datatype, req.buf, req.count, msg)
        req.mark_complete(status)
        self._retire(request, req)
        return status

    @mpi_call
    def waitall(self, requests: Sequence[int]) -> List[Status]:
        return [self.wait(r) for r in requests]

    @mpi_call
    def testall(self, requests: Sequence[int]) -> Tuple[bool, List[Status]]:
        # Nondestructive unless all complete, per the standard.
        pending = [self._request(r) for r in requests]
        if all(r.complete for r in pending):
            statuses = []
            for h, r in zip(requests, pending):
                statuses.append(r.status)
                self._retire(h, r)
            return True, statuses
        # Try to progress receives opportunistically.
        for r in pending:
            if not r.complete and r.kind == RequestObject.RECV:
                c = r.comm
                src_world = (
                    C.ANY_SOURCE
                    if r.peer == C.ANY_SOURCE
                    else c.world_rank_of(r.peer)
                )
                msg = self.fabric.try_match(
                    self.world_rank, src_world, r.tag, c.context_id
                )
                if msg is not None:
                    r.mark_complete(
                        self._complete_recv(c, r.datatype, r.buf, r.count, msg)
                    )
        if all(r.complete for r in pending):
            statuses = []
            for h, r in zip(requests, pending):
                statuses.append(r.status)
                self._retire(h, r)
            return True, statuses
        return False, []

    def _retire(self, handle: int, req: RequestObject) -> None:
        if req.persistent:
            # Persistent requests survive completion: they become
            # inactive and can be started again (MPI-3 3.9).
            req.active = False
            req.complete = False
            return
        if not req.freed:
            req.freed = True
            self.handles.remove(HandleKind.REQUEST, handle)

    @mpi_call
    def iprobe(
        self, source: int, tag: int, comm: int
    ) -> Tuple[bool, Status]:
        c = self._comm(comm)
        src_world = (
            C.ANY_SOURCE if source == C.ANY_SOURCE else c.world_rank_of(source)
        )
        res = self.fabric.iprobe(self.world_rank, src_world, tag, c.context_id)
        if res is None:
            return False, Status()
        return True, Status(
            source=c.group.rank_of(res.src),
            tag=res.tag,
            count_bytes=res.nbytes,
        )

    @mpi_call
    def probe(self, source: int, tag: int, comm: int) -> Status:
        # Blocking probe built on iprobe (keeps the fabric API minimal).
        # Event-driven: sleep on the fabric's activity counter instead of
        # spinning; the token is taken before the check so an arrival in
        # between makes the wait return immediately.
        while True:
            token = self.fabric.activity_token()
            flag, status = self.iprobe.__wrapped__(self, source, tag, comm)
            if flag:
                return status
            self.fabric.wait_activity(token)

    @mpi_call
    def sendrecv(
        self,
        sendbuf, sendcount: int, sendtype: int, dest: int, sendtag: int,
        recvbuf, recvcount: int, recvtype: int, source: int, recvtag: int,
        comm: int,
    ) -> Status:
        self._send_impl(sendbuf, sendcount, sendtype, dest, sendtag, comm)
        return self.recv.__wrapped__(
            self, recvbuf, recvcount, recvtype, source, recvtag, comm
        )

    @mpi_call
    def waitany(self, requests: Sequence[int]) -> Tuple[int, Status]:
        """MPI_Waitany: block until one request completes; returns its
        index and status."""
        if not requests:
            raise MpiError("waitany on empty request list", "MPI_ERR_REQUEST")
        while True:
            token = self.fabric.activity_token()
            for i, r in enumerate(requests):
                flag, st = self.test.__wrapped__(self, r)
                if flag:
                    return i, st
            self.fabric.wait_activity(token)
            if self.fabric.aborted:
                raise MpiError("job aborted during waitany", "MPI_ERR_OTHER")

    @mpi_call
    def testany(self, requests: Sequence[int]) -> Tuple[bool, int, Status]:
        """MPI_Testany: (flag, index, status) for the first completable."""
        for i, r in enumerate(requests):
            flag, st = self.test.__wrapped__(self, r)
            if flag:
                return True, i, st
        return False, C.UNDEFINED, Status()

    @mpi_call
    def pack(
        self, inbuf, incount: int, datatype: int, outbuf, position: int
    ) -> int:
        """MPI_Pack: append ``incount`` elements to ``outbuf`` at byte
        ``position``; returns the new position."""
        d = self._dtype(datatype)
        d.check_committed()
        payload = d.descriptor.pack(inbuf, incount)
        out = np.asarray(outbuf).view(np.uint8).reshape(-1)
        end = position + len(payload)
        if end > out.size:
            raise MpiError(
                f"pack buffer too small: need {end}, have {out.size}",
                "MPI_ERR_BUFFER",
            )
        out[position:end] = np.frombuffer(payload, dtype=np.uint8)
        return end

    @mpi_call
    def unpack(
        self, inbuf, position: int, outbuf, outcount: int, datatype: int
    ) -> int:
        """MPI_Unpack: read ``outcount`` elements from byte ``position``;
        returns the new position."""
        d = self._dtype(datatype)
        d.check_committed()
        raw = np.asarray(inbuf).view(np.uint8).reshape(-1)
        nbytes = outcount * d.descriptor.size()
        end = position + nbytes
        if end > raw.size:
            raise MpiError(
                f"unpack past end of buffer: need {end}, have {raw.size}",
                "MPI_ERR_BUFFER",
            )
        d.descriptor.unpack(raw[position:end].tobytes(), outbuf, outcount)
        return end

    @mpi_call
    def pack_size(self, incount: int, datatype: int) -> int:
        """MPI_Pack_size: bytes needed to pack ``incount`` elements."""
        return incount * self._dtype(datatype).descriptor.size()

    @mpi_call
    def get_count(self, status: Status, datatype: int) -> int:
        d = self._dtype(datatype)
        return d.descriptor.count_elements(status.count_bytes)

    # ------------------------------------------------------------------
    # collectives (implementations live in repro.mpi.collectives)
    # ------------------------------------------------------------------
    @mpi_call
    def barrier(self, comm: int) -> None:
        from repro.mpi import collectives as coll

        coll.barrier(self, self._comm(comm))

    @mpi_call
    def bcast(self, buf, count: int, datatype: int, root: int, comm: int):
        from repro.mpi import collectives as coll

        coll.bcast(self, self._comm(comm), buf, count, self._dtype(datatype), root)

    @mpi_call
    def reduce(
        self, sendbuf, recvbuf, count: int, datatype: int, op: int,
        root: int, comm: int,
    ):
        from repro.mpi import collectives as coll

        coll.reduce(
            self, self._comm(comm), sendbuf, recvbuf, count,
            self._dtype(datatype), self._op(op), root,
        )

    @mpi_call
    def allreduce(
        self, sendbuf, recvbuf, count: int, datatype: int, op: int, comm: int
    ):
        from repro.mpi import collectives as coll

        coll.allreduce(
            self, self._comm(comm), sendbuf, recvbuf, count,
            self._dtype(datatype), self._op(op),
        )

    @mpi_call
    def alltoall(
        self, sendbuf, sendcount: int, sendtype: int,
        recvbuf, recvcount: int, recvtype: int, comm: int,
    ):
        from repro.mpi import collectives as coll

        coll.alltoall(
            self, self._comm(comm), sendbuf, sendcount, self._dtype(sendtype),
            recvbuf, recvcount, self._dtype(recvtype),
        )

    @mpi_call
    def alltoallv(
        self, sendbuf, sendcounts, sdispls, sendtype: int,
        recvbuf, recvcounts, rdispls, recvtype: int, comm: int,
    ):
        from repro.mpi import collectives as coll

        coll.alltoallv(
            self, self._comm(comm), sendbuf, sendcounts, sdispls,
            self._dtype(sendtype), recvbuf, recvcounts, rdispls,
            self._dtype(recvtype),
        )

    @mpi_call
    def gather(
        self, sendbuf, sendcount: int, sendtype: int,
        recvbuf, recvcount: int, recvtype: int, root: int, comm: int,
    ):
        from repro.mpi import collectives as coll

        coll.gather(
            self, self._comm(comm), sendbuf, sendcount, self._dtype(sendtype),
            recvbuf, recvcount, self._dtype(recvtype), root,
        )

    @mpi_call
    def gatherv(
        self, sendbuf, sendcount: int, sendtype: int,
        recvbuf, recvcounts, displs, recvtype: int, root: int, comm: int,
    ):
        from repro.mpi import collectives as coll

        coll.gatherv(
            self, self._comm(comm), sendbuf, sendcount, self._dtype(sendtype),
            recvbuf, recvcounts, displs, self._dtype(recvtype), root,
        )

    @mpi_call
    def scatter(
        self, sendbuf, sendcount: int, sendtype: int,
        recvbuf, recvcount: int, recvtype: int, root: int, comm: int,
    ):
        from repro.mpi import collectives as coll

        coll.scatter(
            self, self._comm(comm), sendbuf, sendcount, self._dtype(sendtype),
            recvbuf, recvcount, self._dtype(recvtype), root,
        )

    @mpi_call
    def scatterv(
        self, sendbuf, sendcounts, displs, sendtype: int,
        recvbuf, recvcount: int, recvtype: int, root: int, comm: int,
    ):
        from repro.mpi import collectives as coll

        coll.scatterv(
            self, self._comm(comm), sendbuf, sendcounts, displs,
            self._dtype(sendtype), recvbuf, recvcount,
            self._dtype(recvtype), root,
        )

    @mpi_call
    def allgather(
        self, sendbuf, sendcount: int, sendtype: int,
        recvbuf, recvcount: int, recvtype: int, comm: int,
    ):
        from repro.mpi import collectives as coll

        coll.allgather(
            self, self._comm(comm), sendbuf, sendcount, self._dtype(sendtype),
            recvbuf, recvcount, self._dtype(recvtype),
        )

    @mpi_call
    def allgatherv(
        self, sendbuf, sendcount: int, sendtype: int,
        recvbuf, recvcounts, displs, recvtype: int, comm: int,
    ):
        from repro.mpi import collectives as coll

        coll.allgatherv(
            self, self._comm(comm), sendbuf, sendcount, self._dtype(sendtype),
            recvbuf, recvcounts, displs, self._dtype(recvtype),
        )

    @mpi_call
    def scan(
        self, sendbuf, recvbuf, count: int, datatype: int, op: int, comm: int
    ):
        from repro.mpi import collectives as coll

        coll.scan(
            self, self._comm(comm), sendbuf, recvbuf, count,
            self._dtype(datatype), self._op(op), inclusive=True,
        )

    @mpi_call
    def exscan(
        self, sendbuf, recvbuf, count: int, datatype: int, op: int, comm: int
    ):
        from repro.mpi import collectives as coll

        coll.scan(
            self, self._comm(comm), sendbuf, recvbuf, count,
            self._dtype(datatype), self._op(op), inclusive=False,
        )

    @mpi_call
    def reduce_scatter_block(
        self, sendbuf, recvbuf, recvcount: int, datatype: int, op: int,
        comm: int,
    ):
        from repro.mpi import collectives as coll

        coll.reduce_scatter_block(
            self, self._comm(comm), sendbuf, recvbuf, recvcount,
            self._dtype(datatype), self._op(op),
        )

    # ------------------------------------------------------------------
    # datatypes
    # ------------------------------------------------------------------
    @mpi_call
    def type_contiguous(self, count: int, oldtype: int) -> int:
        base = self._dtype(oldtype)
        base.check_live()
        desc = dt.ContiguousType(count, base.descriptor)
        return self.handles.insert(
            HandleKind.DATATYPE, DatatypeObject(desc, committed=False)
        )

    @mpi_call
    def type_vector(
        self, count: int, blocklength: int, stride: int, oldtype: int
    ) -> int:
        base = self._dtype(oldtype)
        desc = dt.VectorType(count, blocklength, stride, base.descriptor)
        return self.handles.insert(
            HandleKind.DATATYPE, DatatypeObject(desc, committed=False)
        )

    @mpi_call
    def type_indexed(
        self, blocklengths: Sequence[int], displacements: Sequence[int],
        oldtype: int,
    ) -> int:
        base = self._dtype(oldtype)
        desc = dt.IndexedType(blocklengths, displacements, base.descriptor)
        return self.handles.insert(
            HandleKind.DATATYPE, DatatypeObject(desc, committed=False)
        )

    @mpi_call
    def type_create_struct(
        self, blocklengths: Sequence[int], displacements: Sequence[int],
        types: Sequence[int],
    ) -> int:
        bases = [self._dtype(t).descriptor for t in types]
        desc = dt.StructType(blocklengths, displacements, bases)
        return self.handles.insert(
            HandleKind.DATATYPE, DatatypeObject(desc, committed=False)
        )

    @mpi_call
    def type_dup(self, oldtype: int) -> int:
        base = self._dtype(oldtype)
        return self.handles.insert(
            HandleKind.DATATYPE,
            DatatypeObject(base.descriptor, committed=base.committed),
        )

    @mpi_call
    def type_commit(self, datatype: int) -> None:
        self._dtype(datatype).committed = True

    @mpi_call
    def type_free(self, datatype: int) -> None:
        d = self._dtype(datatype)
        if d.predefined_name is not None:
            raise MpiError(
                f"cannot free predefined type {d.predefined_name}",
                "MPI_ERR_TYPE",
            )
        d.freed = True
        self.handles.remove(HandleKind.DATATYPE, datatype)

    @mpi_call
    def type_size(self, datatype: int) -> int:
        return self._dtype(datatype).descriptor.size()

    @mpi_call
    def type_get_extent(self, datatype: int) -> Tuple[int, int]:
        d = self._dtype(datatype).descriptor
        return d.lower_bound(), d.extent()

    @mpi_call
    def type_get_envelope(self, datatype: int) -> dt.Envelope:
        return self._dtype(datatype).descriptor.envelope()

    @mpi_call
    def type_get_contents(self, datatype: int) -> Tuple[
        Tuple[int, ...], Tuple[int, ...], List[int]
    ]:
        """Returns (integers, addresses, datatype handles).

        New handles are created for the inner datatypes, matching the
        standard (the caller must free non-predefined ones).
        """
        d = self._dtype(datatype)
        contents = d.descriptor.contents()
        inner_handles: List[int] = []
        for desc in contents.datatypes:
            if isinstance(desc, dt.NamedType):
                inner_handles.append(self.constant(desc.name))
            else:
                inner_handles.append(
                    self.handles.insert(
                        HandleKind.DATATYPE,
                        DatatypeObject(desc, committed=False),
                    )
                )
        return contents.integers, contents.addresses, inner_handles

    # ------------------------------------------------------------------
    # reduction operations
    # ------------------------------------------------------------------
    @mpi_call
    def op_create(self, fn: Callable, commute: bool) -> int:
        from repro.util.registry import USER_OPS

        obj = OpObject(
            fn=fn, commute=commute, registry_name=USER_OPS.name_of(fn)
        )
        return self.handles.insert(HandleKind.OP, obj)

    @mpi_call
    def op_free(self, op: int) -> None:
        o = self._op(op)
        if o.predefined_name is not None:
            raise MpiError(
                f"cannot free predefined op {o.predefined_name}", "MPI_ERR_OP"
            )
        o.freed = True
        self.handles.remove(HandleKind.OP, op)

    # ------------------------------------------------------------------
    # communicator attributes (keyval caching, MPI-3 6.7)
    # ------------------------------------------------------------------
    @mpi_call
    def comm_create_keyval(self) -> int:
        """MPI_Comm_create_keyval (NULL copy/delete callbacks)."""
        kv = self._next_keyval
        self._next_keyval += 1
        self._keyvals.add(kv)
        return kv

    @mpi_call
    def comm_free_keyval(self, keyval: int) -> None:
        if keyval not in self._keyvals:
            raise MpiError(f"unknown keyval {keyval}", "MPI_ERR_KEYVAL")
        self._keyvals.discard(keyval)

    @mpi_call
    def comm_set_attr(self, comm: int, keyval: int, value) -> None:
        if keyval not in self._keyvals:
            raise MpiError(f"unknown keyval {keyval}", "MPI_ERR_KEYVAL")
        self._comm(comm).attributes[keyval] = value

    @mpi_call
    def comm_get_attr(self, comm: int, keyval: int) -> Tuple[bool, object]:
        attrs = self._comm(comm).attributes
        if keyval in attrs:
            return True, attrs[keyval]
        return False, None

    @mpi_call
    def comm_delete_attr(self, comm: int, keyval: int) -> None:
        self._comm(comm).attributes.pop(keyval, None)

    # ------------------------------------------------------------------
    # cartesian topology
    # ------------------------------------------------------------------
    @mpi_call
    def cart_create(
        self, comm: int, dims: Sequence[int], periods: Sequence[bool],
        reorder: bool = False,
    ) -> int:
        c = self._comm(comm)
        n = 1
        for d in dims:
            n *= d
        if n > c.size:
            raise MpiError(
                f"cartesian grid {tuple(dims)} larger than comm size {c.size}",
                "MPI_ERR_DIMS",
            )
        seq = self._advance_comm_seq(c)
        from repro.mpi.collectives import barrier as _barrier

        _barrier(self, c)
        if c.rank >= n:
            return self.handles.null_handle(HandleKind.COMM)
        ranks = tuple(c.world_rank_of(i) for i in range(n))
        new = CommObject(
            group=GroupData(ranks),
            context_id=self._derive_context(c.context_id, seq, n),
            my_world_rank=self.world_rank,
            name="cart",
            topo=CartInfo(tuple(dims), tuple(bool(p) for p in periods)),
        )
        return self.handles.insert(HandleKind.COMM, new)

    @mpi_call
    def cart_coords(self, comm: int, rank: int) -> Tuple[int, ...]:
        c = self._comm(comm)
        if c.topo is None:
            raise MpiError("communicator has no cartesian topology", "MPI_ERR_TOPOLOGY")
        return c.topo.coords_of(rank)

    @mpi_call
    def cart_rank(self, comm: int, coords: Sequence[int]) -> int:
        c = self._comm(comm)
        if c.topo is None:
            raise MpiError("communicator has no cartesian topology", "MPI_ERR_TOPOLOGY")
        return c.topo.rank_of(tuple(coords))

    @mpi_call
    def cart_shift(
        self, comm: int, direction: int, disp: int
    ) -> Tuple[int, int]:
        c = self._comm(comm)
        if c.topo is None:
            raise MpiError("communicator has no cartesian topology", "MPI_ERR_TOPOLOGY")
        return c.topo.shift(c.rank, direction, disp)

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def _deadline(self) -> float:
        """Real-time deadline for blocking operations (deadlock guard)."""
        return 120.0

    @staticmethod
    def dims_create(nnodes: int, ndims: int) -> List[int]:
        """MPI_Dims_create: balanced factorization of nnodes."""
        dims = [1] * ndims
        remaining = nnodes
        f = 2
        factors = []
        while f * f <= remaining:
            while remaining % f == 0:
                factors.append(f)
                remaining //= f
            f += 1
        if remaining > 1:
            factors.append(remaining)
        for factor in sorted(factors, reverse=True):
            dims[dims.index(min(dims))] *= factor
        return sorted(dims, reverse=True)


# ----------------------------------------------------------------------
# predefined reduction functions
# ----------------------------------------------------------------------

def _maxloc(invec: np.ndarray, inoutvec: np.ndarray) -> None:
    take = (invec["value"] > inoutvec["value"]) | (
        (invec["value"] == inoutvec["value"])
        & (invec["index"] < inoutvec["index"])
    )
    inoutvec[take] = invec[take]


def _minloc(invec: np.ndarray, inoutvec: np.ndarray) -> None:
    take = (invec["value"] < inoutvec["value"]) | (
        (invec["value"] == inoutvec["value"])
        & (invec["index"] < inoutvec["index"])
    )
    inoutvec[take] = invec[take]


_BUILTIN_OPS: Dict[str, Callable[[np.ndarray, np.ndarray], None]] = {
    "MPI_SUM": lambda a, b: np.add(a, b, out=b),
    "MPI_PROD": lambda a, b: np.multiply(a, b, out=b),
    "MPI_MAX": lambda a, b: np.maximum(a, b, out=b),
    "MPI_MIN": lambda a, b: np.minimum(a, b, out=b),
    "MPI_LAND": lambda a, b: np.copyto(
        b, (a.astype(bool) & b.astype(bool)).astype(b.dtype)
    ),
    "MPI_LOR": lambda a, b: np.copyto(
        b, (a.astype(bool) | b.astype(bool)).astype(b.dtype)
    ),
    "MPI_BAND": lambda a, b: np.bitwise_and(a, b, out=b),
    "MPI_BOR": lambda a, b: np.bitwise_or(a, b, out=b),
    "MPI_MAXLOC": _maxloc,
    "MPI_MINLOC": _minloc,
}


def _builtin_op_fn(name: str) -> Callable[[np.ndarray, np.ndarray], None]:
    try:
        return _BUILTIN_OPS[name]
    except KeyError:
        raise MpiError(f"unknown predefined op {name}", "MPI_ERR_OP") from None
