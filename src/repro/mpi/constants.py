"""Names and numeric constants of the simulated MPI standard surface.

These are the *standard-level* constants (wildcards, combiners,
comparison results) plus the canonical name lists for predefined
datatypes and reduction operations.  The *handle values* bound to those
names are implementation-specific and live in :mod:`repro.impls`.
"""

from __future__ import annotations

# Wildcards / sentinels (values mirror MPICH's mpi.h where meaningful).
ANY_SOURCE = -1
ANY_TAG = -1
PROC_NULL = -2
UNDEFINED = -32766
ROOT_TAG_BASE = 1 << 20  # tags above this are reserved for internal use

# MPI_Comm_split_type types
COMM_TYPE_SHARED = 1
CORES_PER_NODE = 56  # Discovery's dual-socket Cascade Lake nodes

# MPI_Comm_compare results
IDENT = 0
CONGRUENT = 1
SIMILAR = 2
UNEQUAL = 3

# Datatype envelope combiners (MPI-3 §4.1.13 subset we support)
COMBINER_NAMED = "MPI_COMBINER_NAMED"
COMBINER_CONTIGUOUS = "MPI_COMBINER_CONTIGUOUS"
COMBINER_VECTOR = "MPI_COMBINER_VECTOR"
COMBINER_INDEXED = "MPI_COMBINER_INDEXED"
COMBINER_STRUCT = "MPI_COMBINER_STRUCT"

# Predefined datatype names → numpy dtype strings.
# DOUBLE_INT / FLOAT_INT are the MAXLOC/MINLOC pair types, modelled as
# structured dtypes.
PREDEFINED_DATATYPES = {
    "MPI_BYTE": "u1",
    "MPI_CHAR": "i1",
    "MPI_INT8_T": "i1",
    "MPI_UINT8_T": "u1",
    "MPI_INT16_T": "i2",
    "MPI_UINT16_T": "u2",
    "MPI_INT": "i4",
    "MPI_INT32_T": "i4",
    "MPI_UINT32_T": "u4",
    "MPI_LONG": "i8",
    "MPI_INT64_T": "i8",
    "MPI_UINT64_T": "u8",
    "MPI_FLOAT": "f4",
    "MPI_DOUBLE": "f8",
    "MPI_C_BOOL": "u1",
    "MPI_DOUBLE_INT": [("value", "f8"), ("index", "i4")],
    "MPI_FLOAT_INT": [("value", "f4"), ("index", "i4")],
}

# ExaMPI aliasing (Section 4.3): INT8_T and CHAR share one internal
# pointer, as do BYTE and UINT8_T.
EXAMPI_ALIASES = {
    "MPI_INT8_T": "MPI_CHAR",
    "MPI_UINT8_T": "MPI_BYTE",
}

# Predefined reduction operations.
PREDEFINED_OPS = (
    "MPI_SUM",
    "MPI_PROD",
    "MPI_MAX",
    "MPI_MIN",
    "MPI_LAND",
    "MPI_LOR",
    "MPI_BAND",
    "MPI_BOR",
    "MPI_MAXLOC",
    "MPI_MINLOC",
)

# Predefined communicators / groups.
PREDEFINED_COMMS = ("MPI_COMM_WORLD", "MPI_COMM_SELF")
PREDEFINED_GROUPS = ("MPI_GROUP_EMPTY",)

# Every constant name an "mpi.h" facade must expose.
ALL_CONSTANT_NAMES = (
    PREDEFINED_COMMS
    + PREDEFINED_GROUPS
    + tuple(PREDEFINED_DATATYPES)
    + PREDEFINED_OPS
)
