"""Group set-algebra over world ranks.

A group is an ordered tuple of *world* ranks (the ranks of
MPI_COMM_WORLD).  All the MPI group operations are pure functions here;
the per-implementation ``GroupObject`` simply wraps a :class:`GroupData`.

Ordering rules follow the standard: ``union`` keeps the first group's
order then appends new members in the second group's order;
``intersection`` and ``difference`` keep the first group's order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.mpi import constants as C
from repro.util.errors import MpiError


@dataclass(frozen=True)
class GroupData:
    """An ordered set of world ranks; group rank i is ``ranks[i]``."""

    ranks: Tuple[int, ...]

    def __post_init__(self):
        if len(set(self.ranks)) != len(self.ranks):
            raise MpiError(
                f"group has duplicate ranks: {self.ranks}", "MPI_ERR_RANK"
            )
        if any(r < 0 for r in self.ranks):
            raise MpiError(
                f"group has negative ranks: {self.ranks}", "MPI_ERR_RANK"
            )

    # -- queries ----------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self.ranks)

    def rank_of(self, world_rank: int) -> int:
        """Group rank of a world rank, or MPI_UNDEFINED."""
        try:
            return self.ranks.index(world_rank)
        except ValueError:
            return C.UNDEFINED

    def world_rank(self, group_rank: int) -> int:
        if not 0 <= group_rank < self.size:
            raise MpiError(
                f"group rank {group_rank} out of range (size {self.size})",
                "MPI_ERR_RANK",
            )
        return self.ranks[group_rank]

    def translate_ranks(
        self, ranks: Sequence[int], other: "GroupData"
    ) -> List[int]:
        """MPI_Group_translate_ranks: map our group ranks into ``other``."""
        out = []
        for r in ranks:
            if r == C.PROC_NULL:
                out.append(C.PROC_NULL)
                continue
            out.append(other.rank_of(self.world_rank(r)))
        return out

    # -- constructive operations -------------------------------------------
    def incl(self, ranks: Sequence[int]) -> "GroupData":
        return GroupData(tuple(self.world_rank(r) for r in ranks))

    def excl(self, ranks: Sequence[int]) -> "GroupData":
        drop = set(ranks)
        for r in drop:
            self.world_rank(r)  # validate range
        return GroupData(
            tuple(w for i, w in enumerate(self.ranks) if i not in drop)
        )

    def union(self, other: "GroupData") -> "GroupData":
        seen = set(self.ranks)
        extra = tuple(r for r in other.ranks if r not in seen)
        return GroupData(self.ranks + extra)

    def intersection(self, other: "GroupData") -> "GroupData":
        keep = set(other.ranks)
        return GroupData(tuple(r for r in self.ranks if r in keep))

    def difference(self, other: "GroupData") -> "GroupData":
        drop = set(other.ranks)
        return GroupData(tuple(r for r in self.ranks if r not in drop))

    def compare(self, other: "GroupData") -> int:
        """MPI_Group_compare: IDENT, SIMILAR, or UNEQUAL."""
        if self.ranks == other.ranks:
            return C.IDENT
        if set(self.ranks) == set(other.ranks):
            return C.SIMILAR
        return C.UNEQUAL

    def contains(self, world_rank: int) -> bool:
        return world_rank in self.ranks


EMPTY_GROUP = GroupData(())


def ggid_of(ranks: Sequence[int]) -> int:
    """The paper's *ggid* (global group id): a deterministic 29-bit id of
    a group's world-rank membership, stable across sessions and restarts.

    MANA's new virtual ids embed this for communicators and groups
    (Section 4.2), which makes the virtual id of a communicator identical
    on every rank of that communicator — a property MANA uses when ranks
    gossip about communicator state during drain.
    """
    h = 0x811C9DC5
    for r in sorted(ranks):
        for b in int(r).to_bytes(4, "little", signed=False):
            h = ((h ^ b) * 0x01000193) & 0xFFFFFFFF
    # Mix in the size to separate e.g. {0} from {0} with different sizes
    # of padding; fold to 29 bits (virtual-id index field width).
    h ^= len(ranks) * 0x9E3779B1
    return h & ((1 << 29) - 1)
