"""Collective algorithms implemented over the point-to-point fabric.

Every collective runs in the communicator's *collective context*
(``context_id + 1``), tagged with the communicator's collective sequence
number, so user point-to-point traffic on the same communicator can never
match collective traffic — the same separation real implementations get
from their hidden collective context id.

Algorithms: binomial trees for bcast, dissemination for barrier, pairwise
exchange for alltoall, linear for the rooted collectives.  With <= 64
ranks, algorithmic sophistication is not what the paper's figures measure
(overhead comes from per-call costs), so the simple, deterministic
versions are preferred.

A key invariant for MANA: when every rank has *returned* from a
collective, no message of that collective is still in flight (each
message is consumed before its receiver can return).  MANA's quiesce
therefore only has to drain user point-to-point traffic.
"""

from __future__ import annotations

import pickle
from typing import List, Sequence

import numpy as np

from repro.mpi import constants as C
from repro.mpi.datatypes import NamedType, ContiguousType, TypeDescriptor, _as_bytes
from repro.mpi.objects import CommObject, DatatypeObject, OpObject
from repro.util.errors import MpiError


def _coll_ctx(comm: CommObject) -> int:
    # Context ids are allocated even; odd ids are the collective contexts.
    return comm.context_id + 1


def _send_raw(lib, comm: CommObject, dst: int, tag: int, payload: bytes) -> None:
    lib.fabric.post_send(
        src=lib.world_rank,
        dst=comm.world_rank_of(dst),
        tag=tag,
        context_id=_coll_ctx(comm),
        payload=payload,
        send_time=lib.clock.now,
    )


def _recv_raw(lib, comm: CommObject, src: int, tag: int) -> bytes:
    msg = lib.fabric.wait_match(
        lib.world_rank,
        comm.world_rank_of(src),
        tag,
        _coll_ctx(comm),
        deadline=lib._deadline(),
    )
    lib.clock.merge(msg.arrive_time)
    return msg.payload


def _next_tag(lib, comm: CommObject) -> int:
    comm.coll_seq += 1
    return comm.coll_seq & 0x7FFFFFFF


# ----------------------------------------------------------------------
# synchronization
# ----------------------------------------------------------------------

def barrier(lib, comm: CommObject) -> None:
    """Dissemination barrier: ceil(log2 p) rounds."""
    tag = _next_tag(lib, comm)
    size, rank = comm.size, comm.rank
    if size == 1:
        return
    k = 0
    while (1 << k) < size:
        dst = (rank + (1 << k)) % size
        src = (rank - (1 << k)) % size
        _send_raw(lib, comm, dst, tag + (k << 16), b"")
        _recv_raw(lib, comm, src, tag + (k << 16))
        k += 1


# ----------------------------------------------------------------------
# data movement
# ----------------------------------------------------------------------

def bcast(
    lib, comm: CommObject, buf: np.ndarray, count: int,
    datatype: DatatypeObject, root: int,
) -> None:
    """Binomial-tree broadcast rooted at ``root``."""
    datatype.check_committed()
    tag = _next_tag(lib, comm)
    size, rank = comm.size, comm.rank
    if size == 1:
        return
    rel = (rank - root) % size
    desc = datatype.descriptor

    # Receive from parent (unless root).
    if rel != 0:
        parent_rel = rel & (rel - 1)  # clear lowest set bit
        parent = (parent_rel + root) % size
        payload = _recv_raw(lib, comm, parent, tag)
        desc.unpack(payload, buf, count)
    payload = desc.pack(buf, count)
    # Send to children: rel + 2^k for each k above rel's lowest set bit.
    mask = 1
    while mask < size:
        if rel & (mask - 1) == 0 and rel + mask < size and not rel & mask:
            child = (rel + mask + root) % size
            _send_raw(lib, comm, child, tag, payload)
        mask <<= 1


def gather(
    lib, comm: CommObject, sendbuf, sendcount: int, sendtype: DatatypeObject,
    recvbuf, recvcount: int, recvtype: DatatypeObject, root: int,
) -> None:
    sendtype.check_committed()
    tag = _next_tag(lib, comm)
    if comm.rank != root:
        _send_raw(lib, comm, root, tag, sendtype.descriptor.pack(sendbuf, sendcount))
        return
    recvtype.check_committed()
    raw = _as_bytes(recvbuf)
    slot = recvcount * recvtype.descriptor.extent()
    for i in range(comm.size):
        if i == root:
            payload = sendtype.descriptor.pack(sendbuf, sendcount)
        else:
            payload = _recv_raw(lib, comm, i, tag)
        view = raw[i * slot : (i + 1) * slot]
        recvtype.descriptor.unpack(payload, view, recvcount)


def gatherv(
    lib, comm: CommObject, sendbuf, sendcount: int, sendtype: DatatypeObject,
    recvbuf, recvcounts: Sequence[int], displs: Sequence[int],
    recvtype: DatatypeObject, root: int,
) -> None:
    sendtype.check_committed()
    tag = _next_tag(lib, comm)
    if comm.rank != root:
        _send_raw(lib, comm, root, tag, sendtype.descriptor.pack(sendbuf, sendcount))
        return
    recvtype.check_committed()
    raw = _as_bytes(recvbuf)
    ext = recvtype.descriptor.extent()
    for i in range(comm.size):
        if i == root:
            payload = sendtype.descriptor.pack(sendbuf, sendcount)
        else:
            payload = _recv_raw(lib, comm, i, tag)
        off = displs[i] * ext
        view = raw[off : off + recvcounts[i] * ext]
        recvtype.descriptor.unpack(payload, view, recvcounts[i])


def scatter(
    lib, comm: CommObject, sendbuf, sendcount: int, sendtype: DatatypeObject,
    recvbuf, recvcount: int, recvtype: DatatypeObject, root: int,
) -> None:
    recvtype.check_committed()
    tag = _next_tag(lib, comm)
    if comm.rank == root:
        sendtype.check_committed()
        raw = _as_bytes(sendbuf)
        slot = sendcount * sendtype.descriptor.extent()
        for i in range(comm.size):
            view = raw[i * slot : (i + 1) * slot]
            payload = sendtype.descriptor.pack(view, sendcount)
            if i == root:
                recvtype.descriptor.unpack(payload, recvbuf, recvcount)
            else:
                _send_raw(lib, comm, i, tag, payload)
    else:
        payload = _recv_raw(lib, comm, root, tag)
        recvtype.descriptor.unpack(payload, recvbuf, recvcount)


def scatterv(
    lib, comm: CommObject, sendbuf, sendcounts: Sequence[int],
    displs: Sequence[int], sendtype: DatatypeObject,
    recvbuf, recvcount: int, recvtype: DatatypeObject, root: int,
) -> None:
    recvtype.check_committed()
    tag = _next_tag(lib, comm)
    if comm.rank == root:
        sendtype.check_committed()
        raw = _as_bytes(sendbuf)
        ext = sendtype.descriptor.extent()
        for i in range(comm.size):
            off = displs[i] * ext
            view = raw[off : off + sendcounts[i] * ext]
            payload = sendtype.descriptor.pack(view, sendcounts[i])
            if i == root:
                recvtype.descriptor.unpack(payload, recvbuf, recvcount)
            else:
                _send_raw(lib, comm, i, tag, payload)
    else:
        payload = _recv_raw(lib, comm, root, tag)
        recvtype.descriptor.unpack(payload, recvbuf, recvcount)


def allgather(
    lib, comm: CommObject, sendbuf, sendcount: int, sendtype: DatatypeObject,
    recvbuf, recvcount: int, recvtype: DatatypeObject,
) -> None:
    gather(lib, comm, sendbuf, sendcount, sendtype,
           recvbuf, recvcount, recvtype, 0)
    # A contiguous run of size*recvcount elements broadcast from root 0.
    full = ContiguousType(recvcount, recvtype.descriptor)
    fulltype = DatatypeObject(full, committed=True)
    bcast(lib, comm, recvbuf, comm.size, fulltype, 0)


def allgatherv(
    lib, comm: CommObject, sendbuf, sendcount: int, sendtype: DatatypeObject,
    recvbuf, recvcounts: Sequence[int], displs: Sequence[int],
    recvtype: DatatypeObject,
) -> None:
    gatherv(lib, comm, sendbuf, sendcount, sendtype,
            recvbuf, recvcounts, displs, recvtype, 0)
    # Broadcast the filled region; displacements may leave holes, so
    # broadcast the full span of the receive buffer as raw bytes.
    raw = _as_bytes(recvbuf)
    bytetype = DatatypeObject(NamedType("MPI_BYTE", "u1"), committed=True)
    bcast(lib, comm, raw, raw.size, bytetype, 0)


def alltoall(
    lib, comm: CommObject, sendbuf, sendcount: int, sendtype: DatatypeObject,
    recvbuf, recvcount: int, recvtype: DatatypeObject,
) -> None:
    """Pairwise-exchange alltoall: p-1 rounds of sendrecv."""
    sendtype.check_committed()
    recvtype.check_committed()
    tag = _next_tag(lib, comm)
    size, rank = comm.size, comm.rank
    sraw = _as_bytes(sendbuf)
    rraw = _as_bytes(recvbuf)
    sslot = sendcount * sendtype.descriptor.extent()
    rslot = recvcount * recvtype.descriptor.extent()

    def send_to(i: int) -> None:
        view = sraw[i * sslot : (i + 1) * sslot]
        _send_raw(lib, comm, i, tag, sendtype.descriptor.pack(view, sendcount))

    def recv_from(i: int) -> None:
        payload = _recv_raw(lib, comm, i, tag)
        view = rraw[i * rslot : (i + 1) * rslot]
        recvtype.descriptor.unpack(payload, view, recvcount)

    # Self copy first.
    self_payload = sendtype.descriptor.pack(
        sraw[rank * sslot : (rank + 1) * sslot], sendcount
    )
    recvtype.descriptor.unpack(
        self_payload, rraw[rank * rslot : (rank + 1) * rslot], recvcount
    )
    for shift in range(1, size):
        dst = (rank + shift) % size
        src = (rank - shift) % size
        send_to(dst)
        recv_from(src)


def alltoallv(
    lib, comm: CommObject, sendbuf, sendcounts: Sequence[int],
    sdispls: Sequence[int], sendtype: DatatypeObject,
    recvbuf, recvcounts: Sequence[int], rdispls: Sequence[int],
    recvtype: DatatypeObject,
) -> None:
    sendtype.check_committed()
    recvtype.check_committed()
    tag = _next_tag(lib, comm)
    size, rank = comm.size, comm.rank
    sraw = _as_bytes(sendbuf)
    rraw = _as_bytes(recvbuf)
    sext = sendtype.descriptor.extent()
    rext = recvtype.descriptor.extent()

    def pack_for(i: int) -> bytes:
        off = sdispls[i] * sext
        view = sraw[off : off + sendcounts[i] * sext]
        return sendtype.descriptor.pack(view, sendcounts[i])

    def unpack_from(i: int, payload: bytes) -> None:
        off = rdispls[i] * rext
        view = rraw[off : off + recvcounts[i] * rext]
        recvtype.descriptor.unpack(payload, view, recvcounts[i])

    unpack_from(rank, pack_for(rank))
    for shift in range(1, size):
        dst = (rank + shift) % size
        src = (rank - shift) % size
        _send_raw(lib, comm, dst, tag, pack_for(dst))
        unpack_from(src, _recv_raw(lib, comm, src, tag))


# ----------------------------------------------------------------------
# reductions
# ----------------------------------------------------------------------

def _reduction_dtype(desc: TypeDescriptor) -> np.dtype:
    """The numpy element dtype a reduction operates on.

    Reductions are supported on named types and contiguous-of-named —
    the cases real applications use (the standard permits more, but a
    user op on an arbitrary derived type is vanishingly rare).
    """
    if isinstance(desc, NamedType):
        return desc.np_dtype
    if isinstance(desc, ContiguousType) and isinstance(desc.base, NamedType):
        return desc.base.np_dtype
    raise MpiError(
        f"reduction on unsupported datatype {desc!r}", "MPI_ERR_TYPE"
    )


def _combine(
    op: OpObject, contributions: List[bytes], np_dtype: np.dtype
) -> np.ndarray:
    """Apply ``op`` over per-rank contributions in rank order.

    MPI requires reductions to be evaluated as
    ``a_0 op a_1 op ... op a_{n-1}`` (left-associative) for
    non-commutative ops; the user-function contract is
    ``fn(invec, inoutvec) -> inoutvec = invec op inoutvec``, so we fold
    from the highest rank down.
    """
    op.check_live()
    acc = np.frombuffer(contributions[-1], dtype=np_dtype).copy()
    for payload in reversed(contributions[:-1]):
        invec = np.frombuffer(payload, dtype=np_dtype)
        op.fn(invec, acc)
    return acc


def reduce(
    lib, comm: CommObject, sendbuf, recvbuf, count: int,
    datatype: DatatypeObject, op: OpObject, root: int,
) -> None:
    datatype.check_committed()
    tag = _next_tag(lib, comm)
    np_dtype = _reduction_dtype(datatype.descriptor)
    my_payload = datatype.descriptor.pack(sendbuf, count)
    if comm.rank != root:
        _send_raw(lib, comm, root, tag, my_payload)
        return
    contributions: List[bytes] = []
    for i in range(comm.size):
        if i == root:
            contributions.append(my_payload)
        else:
            contributions.append(_recv_raw(lib, comm, i, tag))
    acc = _combine(op, contributions, np_dtype)
    datatype.descriptor.unpack(acc.tobytes(), recvbuf, count)


def allreduce(
    lib, comm: CommObject, sendbuf, recvbuf, count: int,
    datatype: DatatypeObject, op: OpObject,
) -> None:
    reduce(lib, comm, sendbuf, recvbuf, count, datatype, op, 0)
    bcast(lib, comm, recvbuf, count, datatype, 0)


def scan(
    lib, comm: CommObject, sendbuf, recvbuf, count: int,
    datatype: DatatypeObject, op: OpObject, inclusive: bool = True,
) -> None:
    """MPI_Scan / MPI_Exscan: prefix reduction in rank order.

    Linear chain: rank i receives the prefix of ranks [0, i), combines,
    and forwards.  For the exclusive scan, rank 0's receive buffer is
    left untouched (its value is undefined per the standard).
    """
    datatype.check_committed()
    op.check_live()
    tag = _next_tag(lib, comm)
    np_dtype = _reduction_dtype(datatype.descriptor)
    rank, size = comm.rank, comm.size
    mine = np.frombuffer(
        datatype.descriptor.pack(sendbuf, count), dtype=np_dtype
    ).copy()
    prefix = None
    if rank > 0:
        payload = _recv_raw(lib, comm, rank - 1, tag)
        prefix = np.frombuffer(payload, dtype=np_dtype).copy()
    # Inclusive value for this rank: prefix op mine (left operand = the
    # lower ranks, per fn(invec, inoutvec) -> inoutvec = invec op inoutvec).
    inclusive_val = mine.copy()
    if prefix is not None:
        op.fn(prefix, inclusive_val)
    if rank + 1 < size:
        _send_raw(lib, comm, rank + 1, tag, inclusive_val.tobytes())
    if inclusive:
        datatype.descriptor.unpack(inclusive_val.tobytes(), recvbuf, count)
    elif prefix is not None:
        datatype.descriptor.unpack(prefix.tobytes(), recvbuf, count)


def reduce_scatter_block(
    lib, comm: CommObject, sendbuf, recvbuf, recvcount: int,
    datatype: DatatypeObject, op: OpObject,
) -> None:
    """MPI_Reduce_scatter_block: elementwise reduce of size*recvcount
    elements, block i of the result delivered to rank i."""
    datatype.check_committed()
    size, rank = comm.size, comm.rank
    total = size * recvcount
    np_dtype = _reduction_dtype(datatype.descriptor)
    tmp = np.zeros(total, dtype=np_dtype)
    reduce(lib, comm, sendbuf, tmp, total, datatype, op, 0)
    scatter(
        lib, comm, tmp, recvcount, datatype, recvbuf, recvcount, datatype, 0
    )


# ----------------------------------------------------------------------
# object allgather (library-internal, used by comm_split)
# ----------------------------------------------------------------------

def allgather_obj(lib, comm: CommObject, obj) -> List:
    """Allgather arbitrary picklable objects; returns list indexed by
    communicator rank.  Used by comm_split to exchange (color, key)."""
    tag = _next_tag(lib, comm)
    size, rank = comm.size, comm.rank
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    if size == 1:
        return [obj]
    results: List = [None] * size
    results[rank] = obj
    if rank != 0:
        _send_raw(lib, comm, 0, tag, payload)
        blob = _recv_raw(lib, comm, 0, tag)
        return pickle.loads(blob)
    for i in range(1, size):
        msg = lib.fabric.wait_match(
            lib.world_rank,
            comm.world_rank_of(i),
            tag,
            _coll_ctx(comm),
            deadline=lib._deadline(),
        )
        lib.clock.merge(msg.arrive_time)
        results[i] = pickle.loads(msg.payload)
    blob = pickle.dumps(results, protocol=pickle.HIGHEST_PROTOCOL)
    for i in range(1, size):
        _send_raw(lib, comm, i, tag, blob)
    return results
