"""Internal structs that physical MPI handles point to.

These are the moral equivalents of MPICH's ``MPID_Comm`` /
``ompi_communicator_t`` etc.  A handle (whatever its representation)
resolves to one of these; MANA never sees them directly — it only sees
handles, which is what keeps MANA implementation-oblivious.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.mpi.datatypes import TypeDescriptor
from repro.mpi.group import GroupData
from repro.util.errors import MpiError


@dataclass
class Status:
    """MPI_Status: returned by value, never a handle."""

    source: int = -1
    tag: int = -1
    error: int = 0
    count_bytes: int = 0
    cancelled: bool = False


@dataclass
class CartInfo:
    """Cartesian topology attached to a communicator."""

    dims: Tuple[int, ...]
    periods: Tuple[bool, ...]

    @property
    def ndims(self) -> int:
        return len(self.dims)

    def coords_of(self, rank: int) -> Tuple[int, ...]:
        coords = []
        for extent in reversed(self.dims):
            coords.append(rank % extent)
            rank //= extent
        return tuple(reversed(coords))

    def rank_of(self, coords: Tuple[int, ...]) -> int:
        rank = 0
        for extent, c in zip(self.dims, coords):
            rank = rank * extent + (c % extent)
        return rank

    def shift(self, rank: int, direction: int, disp: int) -> Tuple[int, int]:
        """MPI_Cart_shift: (source, dest) ranks, PROC_NULL at open edges."""
        from repro.mpi.constants import PROC_NULL

        coords = list(self.coords_of(rank))

        def neighbor(delta: int) -> int:
            c = coords[direction] + delta
            if self.periods[direction]:
                c %= self.dims[direction]
            elif not 0 <= c < self.dims[direction]:
                return PROC_NULL
            nc = list(coords)
            nc[direction] = c
            return self.rank_of(tuple(nc))

        return neighbor(-disp), neighbor(+disp)


@dataclass
class CommObject:
    """A communicator: a group plus a communication context."""

    group: GroupData
    context_id: int
    my_world_rank: int
    name: str = ""
    topo: Optional[CartInfo] = None
    freed: bool = False
    # Cached communicator attributes (MPI_Comm_set_attr): keyval -> value.
    attributes: Dict[int, object] = field(default_factory=dict)
    # Monotonic per-communicator counter of collective operations; used by
    # the library to derive deterministic child context ids without a
    # global allocator (DESIGN.md §4).
    coll_seq: int = 0

    @property
    def rank(self) -> int:
        return self.group.rank_of(self.my_world_rank)

    @property
    def size(self) -> int:
        return self.group.size

    def check_live(self) -> None:
        if self.freed:
            raise MpiError(
                f"communicator {self.name or self.context_id} already freed",
                "MPI_ERR_COMM",
            )

    def world_rank_of(self, comm_rank: int) -> int:
        return self.group.world_rank(comm_rank)


@dataclass
class GroupObject:
    data: GroupData
    freed: bool = False

    def check_live(self) -> None:
        if self.freed:
            raise MpiError("group already freed", "MPI_ERR_GROUP")


@dataclass
class DatatypeObject:
    descriptor: TypeDescriptor
    committed: bool
    predefined_name: Optional[str] = None  # set for named types
    freed: bool = False

    def check_live(self) -> None:
        if self.freed:
            raise MpiError("datatype already freed", "MPI_ERR_TYPE")

    def check_committed(self) -> None:
        self.check_live()
        if not self.committed:
            raise MpiError(
                "datatype used in communication before MPI_Type_commit",
                "MPI_ERR_TYPE",
            )


@dataclass
class OpObject:
    """A reduction operation.

    ``fn(invec, inoutvec)`` reduces elementwise into ``inoutvec``.
    ``registry_name`` is set for user ops created from a registered
    function, which is what makes the op reconstructible at restart.
    """

    fn: Callable[[np.ndarray, np.ndarray], None]
    commute: bool
    predefined_name: Optional[str] = None
    registry_name: Optional[str] = None
    freed: bool = False

    def check_live(self) -> None:
        if self.freed:
            raise MpiError("op already freed", "MPI_ERR_OP")


class RequestObject:
    """A nonblocking operation in flight (send or receive).

    Persistent requests (MPI_Send_init/MPI_Recv_init) reuse one object
    across many MPI_Start cycles: ``persistent`` marks them, ``active``
    tracks whether a started operation is outstanding.
    """

    SEND = "send"
    RECV = "recv"

    def __init__(
        self,
        kind: str,
        comm: CommObject,
        tag: int,
        peer: int,  # comm rank of the remote side (or ANY_SOURCE)
        buf: Optional[np.ndarray],
        count: int,
        datatype: DatatypeObject,
    ):
        self.kind = kind
        self.comm = comm
        self.tag = tag
        self.peer = peer
        self.buf = buf
        self.count = count
        self.datatype = datatype
        self.complete = False
        self.status = Status()
        self.freed = False
        self.persistent = False
        self.active = False
        self._lock = threading.Lock()

    def mark_complete(self, status: Status) -> None:
        with self._lock:
            self.complete = True
            self.status = status

    def check_live(self) -> None:
        if self.freed:
            raise MpiError("request already freed", "MPI_ERR_REQUEST")
