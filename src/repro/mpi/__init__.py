"""MPI semantics shared by all four simulated implementations.

The split mirrors how real MPI implementations are layered:

* :mod:`repro.mpi.datatypes` — the datatype algebra (typemaps, envelopes,
  contents, packing), shared verbatim by every implementation;
* :mod:`repro.mpi.group` — group set-algebra over world ranks;
* :mod:`repro.mpi.objects` — the internal structs (communicator, group,
  datatype, op, request) that physical handles point to;
* :mod:`repro.mpi.collectives` — collective algorithms over point-to-point;
* :mod:`repro.mpi.api` — :class:`BaseMpiLib`, the full function surface.

What *differs* between implementations — handle representation, constant
resolution, and supported subset — lives in :mod:`repro.impls`.
"""

from repro.mpi.constants import (
    ANY_SOURCE,
    ANY_TAG,
    PROC_NULL,
    UNDEFINED,
    COMBINER_NAMED,
    COMBINER_CONTIGUOUS,
    COMBINER_VECTOR,
    COMBINER_INDEXED,
    COMBINER_STRUCT,
    IDENT,
    CONGRUENT,
    SIMILAR,
    UNEQUAL,
    PREDEFINED_DATATYPES,
    PREDEFINED_OPS,
)
from repro.mpi.datatypes import TypeDescriptor, NamedType, make_predefined_types
from repro.mpi.group import GroupData
from repro.mpi.objects import (
    CommObject,
    GroupObject,
    DatatypeObject,
    OpObject,
    RequestObject,
    Status,
)
from repro.mpi.api import BaseMpiLib, HandleKind

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "PROC_NULL",
    "UNDEFINED",
    "COMBINER_NAMED",
    "COMBINER_CONTIGUOUS",
    "COMBINER_VECTOR",
    "COMBINER_INDEXED",
    "COMBINER_STRUCT",
    "IDENT",
    "CONGRUENT",
    "SIMILAR",
    "UNEQUAL",
    "PREDEFINED_DATATYPES",
    "PREDEFINED_OPS",
    "TypeDescriptor",
    "NamedType",
    "make_predefined_types",
    "GroupData",
    "CommObject",
    "GroupObject",
    "DatatypeObject",
    "OpObject",
    "RequestObject",
    "Status",
    "BaseMpiLib",
    "HandleKind",
]
