"""Datatype algebra: typemaps, envelopes/contents, and packing.

Every simulated implementation shares this algebra; what differs across
implementations is only how a *handle* names one of these descriptors
(32-bit MPICH id, Open MPI pointer, ExaMPI enum).

The envelope/contents protocol (``MPI_Type_get_envelope`` /
``MPI_Type_get_contents``) is implemented exactly as MANA needs it:
a derived type can be decoded recursively down to named types, which is
how MANA reconstructs user datatypes at restart (paper §5, category 2).

Packing is vectorized: a descriptor compiles once into a block table
(``(offset, nbytes)`` pairs for one element), and ``pack``/``unpack``
turn that into a flat uint8 index array reused across calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.mpi import constants as C
from repro.util.errors import MpiError, TruncationError


@dataclass(frozen=True)
class Envelope:
    """Result of ``MPI_Type_get_envelope``."""

    combiner: str
    num_integers: int
    num_addresses: int
    num_datatypes: int


@dataclass(frozen=True)
class Contents:
    """Result of ``MPI_Type_get_contents``.

    ``datatypes`` holds *descriptors*, not handles; the library layer
    translates them to handles of its own representation.
    """

    integers: Tuple[int, ...]
    addresses: Tuple[int, ...]
    datatypes: Tuple["TypeDescriptor", ...]


class TypeDescriptor:
    """Abstract base of the datatype algebra."""

    # Per-instance caches (descriptors are immutable after construction):
    # the compiled block table and the most recent flat index array.
    _blocks_cache: Optional[np.ndarray] = None
    _flat_cache: Optional[Tuple[int, np.ndarray]] = None

    def compiled_blocks(self) -> np.ndarray:
        """Cached :meth:`blocks` — packing compiles the typemap once."""
        if self._blocks_cache is None:
            self._blocks_cache = self.blocks()
        return self._blocks_cache

    # -- geometry -------------------------------------------------------
    def size(self) -> int:
        """Bytes of actual data in one element (MPI_Type_size)."""
        raise NotImplementedError

    def extent(self) -> int:
        """Span from lower to upper bound (MPI_Type_get_extent)."""
        return self.upper_bound() - self.lower_bound()

    def lower_bound(self) -> int:
        raise NotImplementedError

    def upper_bound(self) -> int:
        raise NotImplementedError

    # -- introspection ---------------------------------------------------
    def envelope(self) -> Envelope:
        raise NotImplementedError

    def contents(self) -> Contents:
        raise NotImplementedError

    def is_named(self) -> bool:
        return isinstance(self, NamedType)

    # -- packing ----------------------------------------------------------
    def blocks(self) -> np.ndarray:
        """``(nblocks, 2)`` int64 array of (byte offset, byte length) for
        one element, offsets relative to the element origin (may be
        negative for exotic strides; callers use lower_bound)."""
        raise NotImplementedError

    def _flat_byte_indices(self, count: int) -> np.ndarray:
        """Absolute byte indices (into the caller's buffer) touched by
        ``count`` consecutive elements, in typemap order.  Cached for the
        most recent ``count`` (halo exchanges repeat the same shape)."""
        if self._flat_cache is not None and self._flat_cache[0] == count:
            return self._flat_cache[1]
        blocks = self.compiled_blocks()
        ext = self.extent()
        if blocks.size == 0 or count == 0:
            return np.empty(0, dtype=np.int64)
        # Expand each (offset, length) block into its byte indices.
        per_elem = np.concatenate(
            [np.arange(off, off + ln, dtype=np.int64) for off, ln in blocks]
        )
        # Element e starts at e * extent; typemap offsets are absolute
        # from the buffer origin (MPI semantics).  Types whose typemap
        # reaches below the buffer (negative lower bound) cannot be
        # addressed in the flat-array model.
        starts = np.arange(count, dtype=np.int64) * ext
        idx = (starts[:, None] + per_elem[None, :]).reshape(-1)
        if idx.size and idx.min() < 0:
            raise MpiError(
                "types with a negative lower bound are not supported by "
                "the simulated buffers",
                error_class="MPI_ERR_TYPE",
            )
        self._flat_cache = (count, idx)
        return idx

    def is_dense(self) -> bool:
        """True when one element is a single contiguous block starting at
        its lower bound and extent == size (so packing is a memcpy)."""
        blocks = self.compiled_blocks()
        return (
            blocks.shape[0] == 1
            and self.lower_bound() == 0
            and int(blocks[0, 0]) == 0
            and int(blocks[0, 1]) == self.size() == self.extent()
        )

    def pack(self, buf: np.ndarray, count: int) -> bytes:
        """Gather ``count`` elements from ``buf`` into contiguous bytes."""
        raw = _as_bytes(buf)
        if self.is_dense():
            nbytes = count * self.size()
            if nbytes > raw.size:
                raise MpiError(
                    f"pack: buffer of {raw.size} bytes too small for "
                    f"{count} x {self!r}",
                    error_class="MPI_ERR_BUFFER",
                )
            return raw[:nbytes].tobytes()
        idx = self._flat_byte_indices(count)
        if idx.size and (idx[-1] >= raw.size or idx.min() < 0):
            raise MpiError(
                f"pack: buffer of {raw.size} bytes too small for "
                f"{count} x {self!r}",
                error_class="MPI_ERR_BUFFER",
            )
        return raw[idx].tobytes()

    def unpack(self, payload: bytes, buf: np.ndarray, count: int) -> int:
        """Scatter packed bytes into ``buf``; returns bytes consumed.

        Raises :class:`TruncationError` if the payload holds more data
        than ``count`` elements of this type can absorb.
        """
        raw = _as_bytes(buf)
        capacity = self.size() * count
        if len(payload) > capacity:
            raise TruncationError(
                f"message of {len(payload)} bytes truncated: receive "
                f"buffer holds {count} x {self.size()} bytes"
            )
        nbytes = len(payload)
        if nbytes == 0:
            return 0
        if self.is_dense():
            if nbytes > raw.size:
                raise MpiError(
                    f"unpack: buffer of {raw.size} bytes too small",
                    error_class="MPI_ERR_BUFFER",
                )
            raw[:nbytes] = np.frombuffer(payload, dtype=np.uint8)
            return nbytes
        full, part = divmod(nbytes, self.size())
        idx = self._flat_byte_indices(full)
        if part:
            tail = self._flat_byte_indices(full + 1)[idx.size : idx.size + part]
            idx = np.concatenate([idx, tail])
        if idx.size and idx[-1] >= raw.size:
            raise MpiError(
                f"unpack: buffer of {raw.size} bytes too small",
                error_class="MPI_ERR_BUFFER",
            )
        raw[idx] = np.frombuffer(payload, dtype=np.uint8)
        return nbytes

    def count_elements(self, nbytes: int) -> int:
        """MPI_Get_count: elements in ``nbytes``; raises if not integral."""
        sz = self.size()
        if sz == 0:
            return 0
        if nbytes % sz:
            return C.UNDEFINED
        return nbytes // sz

    # -- structural equality ------------------------------------------------
    def signature(self) -> Tuple:
        """A hashable structural signature (used for congruence tests and
        for MANA's restart replay verification)."""
        raise NotImplementedError

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, TypeDescriptor)
            and self.signature() == other.signature()
        )

    def __hash__(self) -> int:
        return hash(self.signature())


class NamedType(TypeDescriptor):
    """A predefined (named) type, e.g. MPI_INT."""

    def __init__(self, name: str, np_dtype: Union[str, list]):
        if name not in C.PREDEFINED_DATATYPES:
            raise MpiError(
                f"{name} is not a predefined datatype", "MPI_ERR_TYPE"
            )
        self.name = name
        self.np_dtype = np.dtype(np_dtype)

    def size(self) -> int:
        return self.np_dtype.itemsize

    def lower_bound(self) -> int:
        return 0

    def upper_bound(self) -> int:
        return self.np_dtype.itemsize

    def envelope(self) -> Envelope:
        return Envelope(C.COMBINER_NAMED, 0, 0, 0)

    def contents(self) -> Contents:
        # Per MPI-3 §4.1.13 it is erroneous to call get_contents on a
        # named type; MANA's replay relies on this to terminate recursion.
        raise MpiError(
            f"MPI_Type_get_contents called on named type {self.name}",
            "MPI_ERR_TYPE",
        )

    def blocks(self) -> np.ndarray:
        return np.array([[0, self.np_dtype.itemsize]], dtype=np.int64)

    def signature(self) -> Tuple:
        return ("named", self.name)

    def __repr__(self) -> str:
        return f"NamedType({self.name})"


class ContiguousType(TypeDescriptor):
    def __init__(self, count: int, base: TypeDescriptor):
        if count < 0:
            raise MpiError(f"negative count {count}", "MPI_ERR_COUNT")
        self.count = count
        self.base = base

    def size(self) -> int:
        return self.count * self.base.size()

    def lower_bound(self) -> int:
        return self.base.lower_bound()

    def upper_bound(self) -> int:
        if self.count == 0:
            return self.base.lower_bound()
        return (self.count - 1) * self.base.extent() + self.base.upper_bound()

    def envelope(self) -> Envelope:
        return Envelope(C.COMBINER_CONTIGUOUS, 1, 0, 1)

    def contents(self) -> Contents:
        return Contents((self.count,), (), (self.base,))

    def blocks(self) -> np.ndarray:
        return _offset_blocks(
            self.base, np.arange(self.count, dtype=np.int64) * self.base.extent()
        )

    def signature(self) -> Tuple:
        return ("contig", self.count, self.base.signature())

    def __repr__(self) -> str:
        return f"ContiguousType({self.count}, {self.base!r})"


class VectorType(TypeDescriptor):
    """``MPI_Type_vector``: ``count`` blocks of ``blocklength`` elements,
    block starts ``stride`` elements apart (stride in units of the base
    extent, as the standard specifies)."""

    def __init__(
        self, count: int, blocklength: int, stride: int, base: TypeDescriptor
    ):
        if count < 0 or blocklength < 0:
            raise MpiError("negative count/blocklength", "MPI_ERR_COUNT")
        self.count = count
        self.blocklength = blocklength
        self.stride = stride
        self.base = base

    def size(self) -> int:
        return self.count * self.blocklength * self.base.size()

    def _elem_offsets(self) -> np.ndarray:
        ext = self.base.extent()
        block_starts = np.arange(self.count, dtype=np.int64) * self.stride * ext
        within = np.arange(self.blocklength, dtype=np.int64) * ext
        return (block_starts[:, None] + within[None, :]).reshape(-1)

    def lower_bound(self) -> int:
        offs = self._elem_offsets()
        if offs.size == 0:
            return 0
        return int(offs.min()) + self.base.lower_bound()

    def upper_bound(self) -> int:
        offs = self._elem_offsets()
        if offs.size == 0:
            return 0
        return int(offs.max()) + self.base.upper_bound()

    def envelope(self) -> Envelope:
        return Envelope(C.COMBINER_VECTOR, 3, 0, 1)

    def contents(self) -> Contents:
        return Contents(
            (self.count, self.blocklength, self.stride), (), (self.base,)
        )

    def blocks(self) -> np.ndarray:
        return _offset_blocks(self.base, self._elem_offsets())

    def signature(self) -> Tuple:
        return (
            "vector",
            self.count,
            self.blocklength,
            self.stride,
            self.base.signature(),
        )

    def __repr__(self) -> str:
        return (
            f"VectorType({self.count}, {self.blocklength}, "
            f"{self.stride}, {self.base!r})"
        )


class IndexedType(TypeDescriptor):
    """``MPI_Type_indexed``: displacements in units of the base extent."""

    def __init__(
        self,
        blocklengths: Sequence[int],
        displacements: Sequence[int],
        base: TypeDescriptor,
    ):
        if len(blocklengths) != len(displacements):
            raise MpiError(
                "blocklengths and displacements differ in length",
                "MPI_ERR_ARG",
            )
        if any(b < 0 for b in blocklengths):
            raise MpiError("negative blocklength", "MPI_ERR_COUNT")
        self.blocklengths = tuple(int(b) for b in blocklengths)
        self.displacements = tuple(int(d) for d in displacements)
        self.base = base

    def size(self) -> int:
        return sum(self.blocklengths) * self.base.size()

    def _elem_offsets(self) -> np.ndarray:
        ext = self.base.extent()
        out: List[np.ndarray] = []
        for bl, disp in zip(self.blocklengths, self.displacements):
            out.append((disp + np.arange(bl, dtype=np.int64)) * ext)
        if not out:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(out)

    def lower_bound(self) -> int:
        offs = self._elem_offsets()
        if offs.size == 0:
            return 0
        return int(offs.min()) + self.base.lower_bound()

    def upper_bound(self) -> int:
        offs = self._elem_offsets()
        if offs.size == 0:
            return 0
        return int(offs.max()) + self.base.upper_bound()

    def envelope(self) -> Envelope:
        n = len(self.blocklengths)
        return Envelope(C.COMBINER_INDEXED, 1 + 2 * n, 0, 1)

    def contents(self) -> Contents:
        n = len(self.blocklengths)
        return Contents(
            (n,) + self.blocklengths + self.displacements, (), (self.base,)
        )

    def blocks(self) -> np.ndarray:
        return _offset_blocks(self.base, self._elem_offsets())

    def signature(self) -> Tuple:
        return (
            "indexed",
            self.blocklengths,
            self.displacements,
            self.base.signature(),
        )

    def __repr__(self) -> str:
        return (
            f"IndexedType({list(self.blocklengths)}, "
            f"{list(self.displacements)}, {self.base!r})"
        )


class StructType(TypeDescriptor):
    """``MPI_Type_create_struct``: byte displacements, per-block types."""

    def __init__(
        self,
        blocklengths: Sequence[int],
        byte_displacements: Sequence[int],
        bases: Sequence[TypeDescriptor],
    ):
        if not (len(blocklengths) == len(byte_displacements) == len(bases)):
            raise MpiError("struct argument arrays differ in length", "MPI_ERR_ARG")
        if any(b < 0 for b in blocklengths):
            raise MpiError("negative blocklength", "MPI_ERR_COUNT")
        self.blocklengths = tuple(int(b) for b in blocklengths)
        self.byte_displacements = tuple(int(d) for d in byte_displacements)
        self.bases = tuple(bases)

    def size(self) -> int:
        return sum(
            bl * b.size() for bl, b in zip(self.blocklengths, self.bases)
        )

    def lower_bound(self) -> int:
        lbs = [
            disp + b.lower_bound()
            for disp, b in zip(self.byte_displacements, self.bases)
        ]
        return min(lbs) if lbs else 0

    def upper_bound(self) -> int:
        ubs = [
            disp + (bl - 1) * b.extent() + b.upper_bound() if bl > 0 else disp
            for disp, bl, b in zip(
                self.byte_displacements, self.blocklengths, self.bases
            )
        ]
        return max(ubs) if ubs else 0

    def envelope(self) -> Envelope:
        n = len(self.blocklengths)
        return Envelope(C.COMBINER_STRUCT, 1 + n, n, n)

    def contents(self) -> Contents:
        n = len(self.blocklengths)
        return Contents(
            (n,) + self.blocklengths, self.byte_displacements, self.bases
        )

    def blocks(self) -> np.ndarray:
        parts: List[np.ndarray] = []
        for bl, disp, base in zip(
            self.blocklengths, self.byte_displacements, self.bases
        ):
            offs = disp + np.arange(bl, dtype=np.int64) * base.extent()
            parts.append(_offset_blocks(base, offs))
        if not parts:
            return np.empty((0, 2), dtype=np.int64)
        return np.concatenate(parts)

    def signature(self) -> Tuple:
        return (
            "struct",
            self.blocklengths,
            self.byte_displacements,
            tuple(b.signature() for b in self.bases),
        )

    def __repr__(self) -> str:
        return (
            f"StructType({list(self.blocklengths)}, "
            f"{list(self.byte_displacements)}, {list(self.bases)})"
        )


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------

def _offset_blocks(base: TypeDescriptor, elem_offsets: np.ndarray) -> np.ndarray:
    """Replicate a base type's block table at each element offset,
    merging adjacent blocks where possible (keeps pack index tables small
    for the common contiguous-over-basic case)."""
    base_blocks = base.blocks()
    if base_blocks.size == 0 or elem_offsets.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    offs = (elem_offsets[:, None] + base_blocks[None, :, 0]).reshape(-1)
    lens = np.broadcast_to(
        base_blocks[None, :, 1], (elem_offsets.size, base_blocks.shape[0])
    ).reshape(-1)
    blocks = np.stack([offs, lens], axis=1)
    return _merge_blocks(blocks)


def _merge_blocks(blocks: np.ndarray) -> np.ndarray:
    """Merge byte blocks that are exactly adjacent (in typemap order)."""
    if blocks.shape[0] <= 1:
        return blocks
    merged = [list(blocks[0])]
    for off, ln in blocks[1:]:
        last = merged[-1]
        if last[0] + last[1] == off:
            last[1] += ln
        else:
            merged.append([off, ln])
    return np.array(merged, dtype=np.int64)


def _as_bytes(buf: np.ndarray) -> np.ndarray:
    """Flat uint8 view of a (contiguous) numpy buffer."""
    arr = np.asarray(buf)
    if not arr.flags["C_CONTIGUOUS"]:
        raise MpiError("buffers must be C-contiguous", "MPI_ERR_BUFFER")
    return arr.view(np.uint8).reshape(-1)


def make_predefined_types() -> dict:
    """Fresh ``name -> NamedType`` table (one per library instance)."""
    return {
        name: NamedType(name, spec)
        for name, spec in C.PREDEFINED_DATATYPES.items()
    }


def descriptor_from_contents(
    combiner: str,
    integers: Sequence[int],
    addresses: Sequence[int],
    bases: Sequence[TypeDescriptor],
) -> TypeDescriptor:
    """Rebuild a descriptor from envelope/contents data.

    This is the exact operation MANA's restart replay performs after
    decoding a user datatype with get_envelope/get_contents.
    """
    if combiner == C.COMBINER_CONTIGUOUS:
        (count,) = integers
        return ContiguousType(count, bases[0])
    if combiner == C.COMBINER_VECTOR:
        count, blocklength, stride = integers
        return VectorType(count, blocklength, stride, bases[0])
    if combiner == C.COMBINER_INDEXED:
        n = integers[0]
        bls = tuple(integers[1 : 1 + n])
        disps = tuple(integers[1 + n : 1 + 2 * n])
        return IndexedType(bls, disps, bases[0])
    if combiner == C.COMBINER_STRUCT:
        n = integers[0]
        bls = tuple(integers[1 : 1 + n])
        return StructType(bls, tuple(addresses), tuple(bases))
    raise MpiError(f"cannot rebuild combiner {combiner}", "MPI_ERR_TYPE")
