"""repro — a simulated reproduction of "Implementation-Oblivious
Transparent Checkpoint-Restart for MPI" (MANA, SC 2023).

Public surface (see README.md for a tour):

* :class:`repro.runtime.JobConfig` / :class:`repro.runtime.Launcher` —
  run a simulated MPI application, natively or under MANA;
* :class:`repro.runtime.MpiApplication` — the application contract;
* ``job.request_checkpoint(...)`` — transparent checkpoints (continue /
  relaunch / preempt), ``Launcher.restart(...)`` — cold restart,
  optionally under a different MPI implementation — and
  ``Launcher.elastic_restart(...)`` — restore N-rank checkpoints onto
  M ranks (docs/PROTOCOLS.md §12);
* :mod:`repro.apps` — the five proxy applications of Section 6;
* :mod:`repro.faults` — deterministic fault injection
  (``JobConfig(faults=FaultPlan(...))``) and, with
  ``Launcher(cfg, RestartPolicy(...)).supervise(...)``, self-healing
  recovery from the latest restorable checkpoint generation;
* :mod:`repro.harness` — regenerates every table and figure of the paper.
"""

from repro.runtime import (
    Job,
    JobConfig,
    JobResult,
    Launcher,
    MpiApplication,
    RankContext,
    RestartPolicy,
)
from repro.faults import FaultPlan, FaultSpec
from repro.mana.coordinator import CheckpointKind, CheckpointMode
from repro.util.errors import ElasticRestartError, InjectedFault, RestartError
from repro.util.registry import user_op

__version__ = "1.0.0"

__all__ = [
    "Job",
    "JobConfig",
    "JobResult",
    "Launcher",
    "MpiApplication",
    "RankContext",
    "RestartPolicy",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "ElasticRestartError",
    "RestartError",
    "CheckpointKind",
    "CheckpointMode",
    "user_op",
    "__version__",
]
