"""Experiment harness: regenerates every table and figure of the paper.

Entry points (one per experiment; see DESIGN.md §3 for the index):

* :func:`repro.harness.experiments.table1` / ``table2`` — input tables;
* :func:`repro.harness.experiments.figure2` — MPICH vs Open MPI runtimes;
* :func:`repro.harness.experiments.figure3` — ExaMPI runtimes;
* :func:`repro.harness.experiments.figure4` — Cray MPI on Perlmutter;
* :func:`repro.harness.experiments.section63` — context-switch rates;
* :func:`repro.harness.experiments.table3` — checkpoint times/sizes;
* :func:`repro.harness.experiments.cross_impl_restart` — §3.6/§9;
* :func:`repro.harness.experiments.ablation_ggid` — eager/lazy/hybrid;
* :func:`repro.harness.experiments.ablation_vid_lookup` — old vs new
  virtual-id translation.

Every experiment runs at a configurable ``scale`` (fraction of the
paper's blocks/ranks) so the benchmark suite stays tractable; shapes are
scale-invariant because the calibration targets per-rank *rates*.
"""

from repro.harness.runner import CaseResult, run_case
from repro.harness import experiments

__all__ = ["CaseResult", "run_case", "experiments"]
