"""Hot-path benchmarks: translation fast lane + parallel harness.

Two measurements back the fast-lane work (see docs/PROTOCOLS.md §8):

* **vid microbenchmark** — raw handle-translation throughput
  (lookups/second) for three code paths: the fast lane (cache hit),
  the full single-table path with the cache bypassed (what every
  translation cost before the fast lane), and the legacy per-type
  string-keyed design (the paper's §4.1 baseline).  The headline ratio
  is fast-vs-legacy, the axis the paper's lookup ablation measures;
  fast-vs-slow is recorded too.
* **figure2 sweep** — wall-clock for the Figure 2 sweep run serially vs
  with ``--jobs N`` workers, asserting the rendered values are
  byte-identical (virtual time is scheduling-independent).

``python -m repro bench-smoke`` runs a tiny version of the
microbenchmark and fails when throughput regresses more than
``max_regression``× against the checked-in baseline
(benchmarks/results/BENCH_hotpath.json), making hot-path regressions a
CI failure rather than a surprise.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Optional

#: Checked-in baseline, relative to the repository root.
BASELINE_RELPATH = os.path.join(
    "benchmarks", "results", "BENCH_hotpath.json"
)
#: Checkpoint-pipeline baseline (cold/warm/restore), repo-relative.
CKPT_BASELINE_RELPATH = os.path.join(
    "benchmarks", "results", "BENCH_ckpt.json"
)


def _repo_root() -> str:
    return os.path.dirname(
        os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
    )


def default_baseline_path() -> str:
    return os.path.join(_repo_root(), BASELINE_RELPATH)


def default_ckpt_baseline_path() -> str:
    return os.path.join(_repo_root(), CKPT_BASELINE_RELPATH)


# ----------------------------------------------------------------------
# vid microbenchmark
# ----------------------------------------------------------------------
def _populated_tables(entries: int = 64):
    """One table per design, each holding ``entries`` request handles."""
    from repro.mana.legacy import LegacyVirtualIdMaps
    from repro.mana.virtid import VirtualIdTable
    from repro.mpi.api import HandleKind

    new = VirtualIdTable(handle_bits=32)
    legacy = LegacyVirtualIdMaps(handle_bits=32)
    new_vhs: List[int] = []
    legacy_vhs: List[int] = []
    for i in range(entries):
        new_vhs.append(
            new.attach(HandleKind.REQUEST, object(), phys=1000 + i)
        )
        legacy_vhs.append(
            legacy.attach(HandleKind.REQUEST, object(), phys=1000 + i)
        )
    return new, new_vhs, legacy, legacy_vhs


def _rate(fn, handles: List[int], n: int, repeats: int) -> float:
    """Best-of-``repeats`` calls/second for ``fn(handle)`` over ``n``
    calls round-robined across ``handles``."""
    seq = [handles[i % len(handles)] for i in range(n)]
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for vh in seq:
            fn(vh)
        best = min(best, time.perf_counter() - t0)
    return n / best if best > 0 else float("inf")


def bench_vid_lookup(n: int = 200_000, entries: int = 64,
                     repeats: int = 3) -> Dict:
    """Translation throughput (lookups/sec) for the three designs."""
    from repro.mpi.api import HandleKind

    new, new_vhs, legacy, legacy_vhs = _populated_tables(entries)
    kind = HandleKind.REQUEST

    # Warm the fast lane, then measure pure cache hits.
    for vh in new_vhs:
        new.phys(vh, kind)
    fast = _rate(lambda vh: new.phys(vh, kind), new_vhs, n, repeats)

    # The pre-fast-lane cost of every translation: extract + entry dict
    # + kind check + None-phys check, no cache consulted.
    slow = _rate(
        lambda vh: new._lookup_slow(vh, kind).phys, new_vhs, n, repeats
    )

    # The paper's §4.1 baseline: string key construction + per-type maps
    # + separate metadata maps on every call.
    legacy_rate = _rate(
        lambda vh: legacy.phys(vh, kind), legacy_vhs, n, repeats
    )

    return {
        "n": n,
        "entries": entries,
        "fast_lookups_per_sec": fast,
        "slow_lookups_per_sec": slow,
        "legacy_lookups_per_sec": legacy_rate,
        "speedup_vs_slow": fast / slow,
        "speedup_vs_legacy": fast / legacy_rate,
    }


# ----------------------------------------------------------------------
# figure2 sweep: serial vs --jobs wall-clock
# ----------------------------------------------------------------------
def bench_figure2_sweep(scale: float = 0.12,
                        ranks_cap: Optional[int] = 8,
                        jobs: int = 4) -> Dict:
    """Wall-clock of the Figure 2 sweep, serial vs ``jobs`` workers.

    Also checks the acceptance property that matters: the parallel run's
    rendered values are identical to the serial run's.
    """
    from repro.harness.experiments import figure2
    from repro.harness.runner import CaseCache

    t0 = time.perf_counter()
    serial = figure2(scale, ranks_cap, CaseCache())
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = figure2(scale, ranks_cap, CaseCache(), jobs=jobs)
    parallel_s = time.perf_counter() - t0

    from repro.harness.parallel import default_jobs

    return {
        "scale": scale,
        "ranks_cap": ranks_cap,
        "jobs": jobs,
        # Cases are CPU-bound, so speedup approaches min(jobs, cpus);
        # recorded so single-core container numbers read correctly.
        "cpus": default_jobs(),
        "serial_seconds": serial_s,
        "parallel_seconds": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s > 0 else float("inf"),
        "identical": serial["data"] == parallel["data"],
    }


# ----------------------------------------------------------------------
# full bench + smoke check
# ----------------------------------------------------------------------
def run_hotpath_bench(out_path: Optional[str] = None,
                      n: int = 200_000,
                      scale: float = 0.12,
                      ranks_cap: Optional[int] = 8,
                      jobs: int = 4) -> Dict:
    """The full hot-path bench; writes JSON when ``out_path`` is given."""
    import platform as _platform

    result = {
        "python": _platform.python_version(),
        "vid": bench_vid_lookup(n=n),
        "figure2": bench_figure2_sweep(scale, ranks_cap, jobs),
    }
    if out_path:
        os.makedirs(os.path.dirname(out_path), exist_ok=True)
        with open(out_path, "w") as f:
            json.dump(result, f, indent=2, sort_keys=True)
            f.write("\n")
    return result


# ----------------------------------------------------------------------
# checkpoint pipeline bench (format 5: chunked dedup + compression)
# ----------------------------------------------------------------------
def _ckpt_bench_image(rank: int, nranks: int, payload, generation: int):
    from repro.mana.checkpoint import CheckpointImage
    from repro.mana.drain import DrainBuffer
    from repro.mana.virtid import VirtualIdTable

    return CheckpointImage(
        rank=rank,
        nranks=nranks,
        impl="mpich",
        kind="loop",
        generation=generation,
        app={"state": payload},
        loops={"main": generation},
        vid_table=VirtualIdTable(32),
        drain_buffer=DrainBuffer(),
        clock_state={"now": float(generation), "accounts": {}},
        rng_state=None,
        cs_count=0,
        epoch=generation - 1,
    )


def _agg_savestats(stats_list: List[Dict]) -> Dict:
    keys = ("chunks_total", "chunks_written", "chunks_reused",
            "bytes_written", "payload_bytes")
    return {k: sum(s[k] for s in stats_list) for k in keys}


def bench_checkpoint(payload_mb: float = 4.0,
                     nranks: int = 4,
                     mutate_fraction: float = 0.02,
                     compress_level: int = 3,
                     save_workers: int = 4) -> Dict:
    """Format-5 checkpoint pipeline throughput + dedup factors.

    Measures saves of ``nranks`` images, each carrying a
    ``payload_mb``-MB incompressible numpy payload:

    * **cold** — generation 1, empty chunk store: every chunk written.
    * **warm_identical** — generation 2, app state unchanged: only the
      image headers and the few chunks carrying generation-dependent
      metadata are rewritten.  ``bytes_dedup_factor`` (cold bytes
      written / warm bytes written) is an acceptance number — it must
      be ≥ 100 (in practice it is orders of magnitude higher).
    * **warm_mutated** — generation 3 after overwriting a contiguous
      ``mutate_fraction`` of each rank's payload: content-defined
      boundaries resync after the edit, so bytes written scale with
      the change, not the payload.
    * **cold_pooled** — the cold save re-run (fresh store dir) with a
      ``save_workers``-wide TaskPool fanning ~256 KiB chunk runs: the
      stage-parallel pipeline column.
    * **async_save** — generation 5 saved the asynchronous way:
      snapshot (pickle) timed separately from the background drain,
      with a compute loop spinning in the "rank" thread while the
      drain runs — ``compute_iters_during_drain`` > 0 is the measured
      overlap.

    Then restores generation 3 (full reassembly + per-chunk sha256
    verification) and, for comparison, saves the same state in the
    monolithic format-4 layout; ``warm_vs_format4_wallclock`` is the
    second acceptance number (≤ 2).
    """
    import shutil
    import tempfile
    import threading

    import numpy as np

    from repro.harness.parallel import TaskPool
    from repro.mana import checkpoint as ckpt
    from repro.mana.chunkstore import ChunkStore

    per_rank = int(payload_mb * 1_000_000)
    rng = np.random.default_rng(20230715)
    payloads = [
        rng.integers(0, 256, size=per_rank, dtype=np.uint8)
        for _ in range(nranks)
    ]
    logical_total = per_rank * nranks

    tmp = tempfile.mkdtemp(prefix="repro-ckpt-bench-")
    pool = TaskPool(save_workers, name="bench-save") if save_workers > 1 \
        else None
    try:
        store = ChunkStore(tmp, compress_level=compress_level)

        def run_ranked(fn):
            """Round wall-clock with every rank working concurrently —
            the production shape (each rank saves from its own thread;
            numpy hashing and compression release the GIL)."""
            results = [None] * nranks
            errors = []

            def _one(r):
                try:
                    results[r] = fn(r)
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [
                threading.Thread(target=_one, args=(r,))
                for r in range(nranks)
            ]
            t0 = time.perf_counter()
            for th in threads:
                th.start()
            for th in threads:
                th.join()
            secs = time.perf_counter() - t0
            if errors:
                raise errors[0]
            return results, secs

        def save_generation(gen: int, use_pool=None, base=tmp,
                            in_store=None):
            def _save_rank(r):
                path = ckpt.rank_image_path(base, gen, r)
                img = _ckpt_bench_image(r, nranks, payloads[r], gen)
                return ckpt.save_chunked_image(
                    path, img, in_store or store, pool=use_pool
                )

            stats, secs = run_ranked(_save_rank)
            agg = _agg_savestats(stats)
            agg["seconds"] = secs
            agg["mb_per_s"] = (logical_total / 1e6) / secs if secs > 0 \
                else float("inf")
            return agg

        cold = save_generation(1)
        warm_identical = save_generation(2)
        span = max(1, int(per_rank * mutate_fraction))
        for r in range(nranks):
            start = (r * 7919) % max(1, per_rank - span)
            payloads[r][start:start + span] ^= 0xA5
        warm_mutated = save_generation(3)

        # Stage-parallel column: the same cold save against a fresh
        # store, chunk runs fanned across the TaskPool.
        cold_pooled = None
        if pool is not None:
            pooled_dir = os.path.join(tmp, "pooled")
            pooled_store = ChunkStore(
                pooled_dir, compress_level=compress_level
            )
            cold_pooled = save_generation(
                1, use_pool=pool, base=pooled_dir, in_store=pooled_store
            )

        # Async column: snapshot (what the ranks block on) timed apart
        # from the drain (what rides behind compute).  The compute loop
        # below runs in this thread while the drainer thread writes —
        # iterations completed during the drain are the measured
        # overlap.
        def _snapshot_rank(r):
            img = _ckpt_bench_image(r, nranks, payloads[r], 5)
            return (
                ckpt.rank_image_path(tmp, 5, r), img,
                ckpt._pickle_upper_half(img),
            )

        staged, snapshot_s = run_ranked(_snapshot_rank)
        drain_result: Dict = {}

        def _drain():
            t1 = time.perf_counter()
            for path, img, blob in staged:
                ckpt.save_chunked_blob(path, img, blob, store, pool=pool)
            drain_result["seconds"] = time.perf_counter() - t1

        th = threading.Thread(target=_drain, name="bench-drain")
        th.start()
        compute_iters = 0
        scratch = np.zeros(1 << 20, dtype=np.uint64)
        while th.is_alive():
            np.cumsum(scratch, out=scratch)
            compute_iters += 1
        th.join()
        async_save = {
            "snapshot_seconds": snapshot_s,
            "drain_seconds": drain_result.get("seconds", 0.0),
            "compute_iters_during_drain": compute_iters,
            "blocked_fraction_vs_sync": (
                snapshot_s / warm_mutated["seconds"]
                if warm_mutated["seconds"] > 0 else 0.0
            ),
        }

        t0 = time.perf_counter()
        restored = [
            ckpt.load_image(ckpt.rank_image_path(tmp, 3, r))
            for r in range(nranks)
        ]
        restore_s = time.perf_counter() - t0
        for r, img in enumerate(restored):
            if not np.array_equal(img.app["state"], payloads[r]):
                raise AssertionError(
                    f"restored payload mismatch for rank {r}"
                )

        fmt4_dir = os.path.join(tmp, "fmt4")

        def _save_fmt4(r):
            path = ckpt.rank_image_path(fmt4_dir, 1, r)
            return ckpt.save_image(
                path, _ckpt_bench_image(r, nranks, payloads[r], 1)
            )

        fmt4_sizes, fmt4_s = run_ranked(_save_fmt4)
        fmt4_bytes = sum(fmt4_sizes)

        def factor(baseline: Dict, warm: Dict) -> float:
            if warm["bytes_written"] <= 0:
                return float("inf")
            return baseline["bytes_written"] / warm["bytes_written"]

        return {
            "payload_mb": payload_mb,
            "nranks": nranks,
            "mutate_fraction": mutate_fraction,
            "compress_level": compress_level,
            "save_workers": save_workers,
            "cold": cold,
            "warm_identical": warm_identical,
            "warm_mutated": warm_mutated,
            "cold_pooled": cold_pooled,
            "async_save": async_save,
            "restore": {
                "seconds": restore_s,
                "mb_per_s": (logical_total / 1e6) / restore_s
                if restore_s > 0 else float("inf"),
            },
            "format4": {"seconds": fmt4_s, "bytes_written": fmt4_bytes},
            "warm_vs_format4_wallclock": (
                warm_identical["seconds"] / fmt4_s if fmt4_s > 0
                else float("inf")
            ),
            # What the ranks actually block on in the async production
            # configuration (ckpt_async=True): the snapshot.  The drain
            # rides behind compute.
            "blocked_vs_format4_wallclock": (
                async_save["snapshot_seconds"] / fmt4_s if fmt4_s > 0
                else float("inf")
            ),
            "bytes_dedup_factor": factor(cold, warm_identical),
            "mutated_dedup_factor": factor(cold, warm_mutated),
        }
    finally:
        if pool is not None:
            pool.shutdown()
        shutil.rmtree(tmp, ignore_errors=True)


def run_ckpt_bench(out_path: Optional[str] = None,
                   payload_mb: float = 4.0,
                   nranks: int = 4,
                   compress_levels: Optional[List[int]] = None) -> Dict:
    """The full checkpoint bench; writes JSON when ``out_path`` given.

    ``compress_levels`` adds a sweep: the bench re-runs at each zlib
    level (1 = fastest, 9 = smallest) so the write-bandwidth /
    CPU-time trade can be read off one report.
    """
    import platform as _platform

    result = {
        "python": _platform.python_version(),
        "ckpt": bench_checkpoint(payload_mb=payload_mb, nranks=nranks),
    }
    if compress_levels:
        result["compress_level_sweep"] = {
            str(lvl): bench_checkpoint(
                payload_mb=payload_mb, nranks=nranks, compress_level=lvl
            )
            for lvl in compress_levels
        }
    if out_path:
        os.makedirs(os.path.dirname(out_path), exist_ok=True)
        with open(out_path, "w") as f:
            json.dump(result, f, indent=2, sort_keys=True)
            f.write("\n")
    return result


def ckpt_smoke(baseline_path: Optional[str] = None,
               max_regression: float = 5.0,
               payload_mb: float = 4.0) -> Dict:
    """Small checkpoint bench vs the checked-in baseline.

    Fails when cold-save or restore throughput regresses more than
    ``max_regression``× against BENCH_ckpt.json, or when one of the
    pipeline's acceptance properties no longer holds:

    * warm identical-state save writes ≥ 100x fewer payload bytes than
      the cold save (dedup);
    * the rank-observed warm-save wall-clock in the async configuration
      (the snapshot — the drain overlaps compute) is ≤ 2x a format-4
      save of the same state;
    * the synchronous warm encode stays within 6x of format 4 — the
      guard on the vectorized boundary scan (~20x before it).
    """
    baseline_path = baseline_path or default_ckpt_baseline_path()
    with open(baseline_path) as f:
        baseline = json.load(f)
    now = bench_checkpoint(payload_mb=payload_mb, nranks=2)
    checks = []
    ok = True
    for metric, base, cur in (
        ("cold_save_mb_per_s", baseline["ckpt"]["cold"]["mb_per_s"],
         now["cold"]["mb_per_s"]),
        ("restore_mb_per_s", baseline["ckpt"]["restore"]["mb_per_s"],
         now["restore"]["mb_per_s"]),
    ):
        ratio = base / cur if cur > 0 else float("inf")
        good = ratio <= max_regression
        ok = ok and good
        checks.append({
            "metric": metric,
            "baseline": base,
            "current": cur,
            "slowdown": ratio,
            "ok": good,
        })
    # Acceptance properties — absolute bounds, not baseline-relative.
    for metric, bound, cur, good in (
        ("bytes_dedup_factor", 100.0, now["bytes_dedup_factor"],
         now["bytes_dedup_factor"] >= 100.0),
        ("warm_blocked_vs_format4", 2.0,
         now["blocked_vs_format4_wallclock"],
         now["blocked_vs_format4_wallclock"] <= 2.0),
        ("warm_sync_vs_format4", 6.0,
         now["warm_vs_format4_wallclock"],
         now["warm_vs_format4_wallclock"] <= 6.0),
    ):
        ok = ok and good
        checks.append({
            "metric": metric,
            "baseline": bound,
            "current": cur,
            "slowdown": None,
            "ok": good,
        })
    return {"ok": ok, "max_regression": max_regression, "checks": checks}


def smoke(baseline_path: Optional[str] = None,
          max_regression: float = 5.0,
          n: int = 20_000) -> Dict:
    """Tiny vid bench vs the checked-in baseline.

    Compares lookups/second (scale-invariant in ``n``); ``ok`` is False
    when the fast lane is more than ``max_regression`` times slower than
    the baseline recorded.  Machine variance is far below 5x; a failure
    means the fast lane is gone (e.g. an invalidation bug made every
    hit a miss) or the hot path grew accidental work.
    """
    baseline_path = baseline_path or default_baseline_path()
    with open(baseline_path) as f:
        baseline = json.load(f)
    now = bench_vid_lookup(n=n, repeats=2)
    checks = []
    ok = True
    for key in ("fast_lookups_per_sec", "slow_lookups_per_sec"):
        base = baseline["vid"][key]
        cur = now[key]
        ratio = base / cur if cur > 0 else float("inf")
        good = ratio <= max_regression
        ok = ok and good
        checks.append({
            "metric": key,
            "baseline": base,
            "current": cur,
            "slowdown": ratio,
            "ok": good,
        })
    # The fast lane must still actually be faster than the legacy design.
    faster = now["speedup_vs_legacy"] > 1.0
    ok = ok and faster
    checks.append({
        "metric": "speedup_vs_legacy",
        "baseline": baseline["vid"]["speedup_vs_legacy"],
        "current": now["speedup_vs_legacy"],
        "slowdown": None,
        "ok": faster,
    })
    return {"ok": ok, "max_regression": max_regression, "checks": checks}
