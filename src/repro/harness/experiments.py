"""One function per paper experiment (DESIGN.md §3 index).

Each returns a dict with ``"data"`` (structured results, consumed by the
benchmark assertions) and ``"text"`` (the rendered table/figure).  Paper
reference values are carried alongside so EXPERIMENTS.md and the bench
output can show paper-vs-measured in one place.
"""

from __future__ import annotations

import tempfile
import time
from typing import Dict, List, Optional

import numpy as np

from repro.apps import APP_CLASSES, EXAMPI_COMPATIBLE
from repro.harness.report import fmt_pct, render_bar_figure, render_table
from repro.harness.runner import CaseCache, run_case, scaled_spec
from repro.runtime import JobConfig, Launcher
from repro.util.errors import IncompatibleHandleError, ReproError

FIG2_APPS = ("comd", "hpcg", "lammps", "lulesh", "sw4")
# The paper's Figure 3 subset (of its five benchmark applications).
FIG3_APPS = ("comd", "lammps", "lulesh")
FIG4_APPS = ("comd", "lammps", "sw4")

#: §6.3 measured context switches per second (job aggregate) and ranks.
PAPER_CS_RATES = {
    "comd": (3.7e6, 27),
    "hpcg": (4.7e6, 56),
    "lammps": (22.9e6, 56),
    "lulesh": (1.3e6, 27),
    "sw4": (12.5e6, 56),
}

#: §6.1/§6.4 headline overheads (fraction over native).
PAPER_OVERHEADS = {
    ("lammps", "mpich"): 0.32,
    ("lammps", "openmpi"): 0.37,
    ("sw4", "mpich"): 0.15,
    ("sw4", "openmpi"): 0.18,
    ("lammps", "craympi"): 0.054,
    ("sw4", "craympi"): 0.055,
}

#: Table 3 (Discovery, NFSv3).
PAPER_TABLE3 = {
    "comd": (32, 8.9, 3.6),
    "lammps": (42, 12.8, 3.3),
    "sw4": (49, 12.3, 4.0),
    "lulesh": (207, 16.3, 12.7),
    "hpcg": (934, 72.9, 12.8),
}


# ----------------------------------------------------------------------
# input tables
# ----------------------------------------------------------------------

def table1() -> Dict:
    """Table 1: input for each application on a single node (Discovery)."""
    rows = []
    for name in FIG2_APPS:
        spec = APP_CLASSES[name].paper_config("discovery")
        rows.append((name.upper() if name != "comd" else "CoMD",
                     spec.nranks, spec.input_label))
    text = render_table(
        "Table 1 — Input for each application on a single node (Discovery)",
        ("App.", "Ranks", "Input"),
        rows,
    )
    return {"data": rows, "text": text}


def table2() -> Dict:
    """Table 2: input for each application on Perlmutter."""
    rows = []
    for name in FIG4_APPS:
        spec = APP_CLASSES[name].paper_config("perlmutter")
        rows.append((name.upper() if name != "comd" else "CoMD",
                     spec.nranks, spec.input_label))
    text = render_table(
        "Table 2 — Input for each application on Perlmutter",
        ("App.", "Ranks", "Input"),
        rows,
    )
    return {"data": rows, "text": text}


# ----------------------------------------------------------------------
# figures 2-4: runtimes
# ----------------------------------------------------------------------

def _runtime_figure(
    apps,
    cases,
    platform: str,
    scale: float,
    ranks_cap: Optional[int],
    cache: Optional[CaseCache],
    title: str,
    note: str,
    trials: Optional[int] = None,
    jobs: Optional[int] = None,
) -> Dict:
    import os

    cache = cache or CaseCache()
    if trials is None:
        # The paper's figures are medians of 10 (Figs 2-3) / 25 (Fig 4)
        # trials; default to 1 for bench speed, REPRO_BENCH_TRIALS opts in.
        trials = int(os.environ.get("REPRO_BENCH_TRIALS", "1"))
    if jobs is not None and jobs > 1:
        # Fill the cache for the whole sweep in parallel; the rendering
        # loop below then sees pure (ordered, deterministic) cache hits.
        cache.prefetch(
            [
                dict(
                    app_name=app, impl=impl, mana=mana, vid_design=vid,
                    platform=platform, scale=scale, ranks_cap=ranks_cap,
                    trials=trials,
                )
                for app in apps
                for (impl, mana, vid) in cases
            ],
            jobs=jobs,
        )
    values: Dict[str, Dict[str, Optional[float]]] = {}
    errors: Dict[str, Dict[str, float]] = {}
    results: Dict[str, Dict[str, Optional[object]]] = {}
    for app in apps:
        values[app] = {}
        errors[app] = {}
        results[app] = {}
        for (impl, mana, vid) in cases:
            label = _case_label(impl, mana, vid)
            try:
                r = cache.get(
                    app_name=app, impl=impl, mana=mana, vid_design=vid,
                    platform=platform, scale=scale, ranks_cap=ranks_cap,
                    trials=trials,
                )
                values[app][label] = r.runtime
                errors[app][label] = r.runtime_std
                results[app][label] = r
            except IncompatibleHandleError:
                # The legacy design cannot run on pointer-handle MPIs —
                # the paper's motivating failure, kept visible.
                values[app][label] = None
                results[app][label] = None
    series = [_case_label(*c) for c in cases]
    text = render_bar_figure(
        title,
        groups=list(apps),
        series=series,
        values=values,
        unit="s",
        normalize_to=series[0],
        note=note,
        errors=errors if trials > 1 else None,
    )
    return {
        "data": results, "values": values, "errors": errors,
        "series": series, "trials": trials, "text": text,
    }


def _case_label(impl: str, mana: bool, vid: str) -> str:
    if not mana:
        return f"native/{impl}"
    return f"{'mana+vid' if vid == 'new' else 'mana'}/{impl}"


def figure2(scale: float = 0.2, ranks_cap: Optional[int] = 16,
            cache: Optional[CaseCache] = None,
            jobs: Optional[int] = None) -> Dict:
    """Figure 2: five cases on MPICH and Open MPI (Discovery, prctl)."""
    cases = [
        ("mpich", False, "new"),
        ("mpich", True, "legacy"),   # "MANA": the previous production code
        ("mpich", True, "new"),      # "MANA+virtId"
        ("openmpi", False, "new"),
        ("openmpi", True, "new"),
    ]
    out = _runtime_figure(
        FIG2_APPS, cases, "discovery", scale, ranks_cap, cache,
        "Figure 2 — Application runtimes, MPICH vs Open MPI "
        "(Discovery; no userspace FSGSBASE)",
        "Paper shape: overhead tracks MPI-call rate (LAMMPS worst: +32% "
        "MPICH / +37% OpenMPI; SW4 +15%/+18%; CoMD/HPCG/LULESH low); "
        "virtId ~= legacy MANA or slightly faster on MPICH; legacy MANA "
        "cannot run Open MPI at all.",
        jobs=jobs,
    )
    return out


def figure3(scale: float = 0.2, ranks_cap: Optional[int] = 16,
            cache: Optional[CaseCache] = None,
            jobs: Optional[int] = None) -> Dict:
    """Figure 3: ExaMPI (compatible subset) vs MPICH (Discovery)."""
    cases = [
        ("mpich", False, "new"),
        ("mpich", True, "legacy"),
        ("mpich", True, "new"),
        ("exampi", False, "new"),
        ("exampi", True, "new"),
    ]
    return _runtime_figure(
        FIG3_APPS, cases, "discovery", scale, ranks_cap, cache,
        "Figure 3 — Runtimes for ExaMPI on Discovery "
        "(ExaMPI-compatible applications)",
        "Paper shape: MANA+virtId runs ExaMPI (previously impossible); "
        "overhead comparable to MPICH, slightly higher (slower network "
        "software path lengthens MANA's polling).",
        jobs=jobs,
    )


def figure4(scale: float = 0.2, ranks_cap: Optional[int] = 16,
            cache: Optional[CaseCache] = None,
            jobs: Optional[int] = None) -> Dict:
    """Figure 4: Cray MPI on Perlmutter (userspace FSGSBASE present)."""
    cases = [
        ("craympi", False, "new"),
        ("craympi", True, "legacy"),
        ("craympi", True, "new"),
    ]
    return _runtime_figure(
        FIG4_APPS, cases, "perlmutter", scale, ranks_cap, cache,
        "Figure 4 — Runtimes for Cray MPI on Perlmutter (FSGSBASE)",
        "Paper shape: with userspace FSGSBASE the large overheads "
        "disappear (~5% or less: LAMMPS 5.4%, SW4 5.5% -> 4.2% with "
        "virtId).",
        jobs=jobs,
    )


# ----------------------------------------------------------------------
# §6.3: context switches
# ----------------------------------------------------------------------

def section63(scale: float = 0.2, ranks_cap: Optional[int] = 16,
              cache: Optional[CaseCache] = None) -> Dict:
    """Context-switch rates per application under MANA (Discovery)."""
    cache = cache or CaseCache()
    rows = []
    data = {}
    for app in FIG2_APPS:
        r = cache.get(
            app_name=app, impl="mpich", mana=True, vid_design="new",
            platform="discovery", scale=scale, ranks_cap=ranks_cap,
        )
        paper_rate, paper_ranks = PAPER_CS_RATES[app]
        # Scale the job-aggregate paper number to the per-rank rate the
        # calibration targets; compare against measured per-rank rate.
        measured_per_rank = r.cs_per_second / r.nranks
        paper_per_rank = paper_rate / paper_ranks
        data[app] = {
            "measured_cs_per_rank_s": measured_per_rank,
            "paper_cs_per_rank_s": paper_per_rank,
            "measured_total": r.cs_per_second,
        }
        rows.append(
            (
                app,
                f"{r.cs_per_second / 1e6:.2f}M",
                f"{measured_per_rank / 1e3:.0f}k",
                f"{paper_per_rank / 1e3:.0f}k",
                f"{measured_per_rank / paper_per_rank:.2f}x",
            )
        )
    text = render_table(
        "Section 6.3 — context switches per second under MANA (Discovery)",
        ("App", "CS/s (job)", "CS/s/rank", "paper CS/s/rank", "ratio"),
        rows,
        note="Paper (job aggregate): CoMD 3.7M @27r, HPCG 4.7M @56r, "
        "LAMMPS 22.9M @56r, LULESH 1.3M @27r, SW4 12.5M @56r.",
    )
    return {"data": data, "text": text}


# ----------------------------------------------------------------------
# Table 3: checkpoint sizes/times
# ----------------------------------------------------------------------

def table3(scale: float = 0.15, ranks_cap: Optional[int] = 12) -> Dict:
    """Checkpoint image size/time/bandwidth per application (NFSv3)."""
    rows = []
    data = {}
    for app in FIG2_APPS:
        cls = APP_CLASSES[app]
        spec = scaled_spec(app, "discovery", scale, ranks_cap)
        cfg = JobConfig(
            nranks=spec.nranks, impl="mpich", platform="discovery",
            mana=True, ckpt_dir=tempfile.mkdtemp(prefix=f"t3-{app}-"),
        )
        job = Launcher(cfg).launch(lambda r: cls(spec))
        tk = job.checkpoint_at_iteration("main", max(2, spec.blocks // 2))
        job.start()
        info = tk.wait(300)
        res = job.wait(300)
        if res.status != "completed":
            raise ReproError(f"table3 {app}: {res.first_error()}")
        # Use the paper's rank count for the filesystem model, so the
        # aggregate-bandwidth contention matches Table 3's setting even
        # when the simulation runs fewer ranks.
        from repro.simtime.cost import FilesystemProfile, checkpoint_time

        paper_spec = cls.paper_config("discovery")
        fs = FilesystemProfile.discovery_nfsv3()
        size = info["mean_bytes_per_rank"]
        t = checkpoint_time(fs, paper_spec.nranks, int(size))
        mbps = size / t / 1e6
        psize, ptime, pmbps = PAPER_TABLE3[app]
        data[app] = {
            "size_mb": size / 1e6,
            "ckpt_time": t,
            "mb_per_s_per_rank": mbps,
            "paper": {"size_mb": psize, "ckpt_time": ptime, "mbps": pmbps},
        }
        rows.append(
            (
                app,
                f"{size / (1024 * 1024):.0f}MB",
                f"{t:.1f}",
                f"{mbps:.1f}",
                f"{psize}MB",
                f"{ptime}",
                f"{pmbps}",
            )
        )
    text = render_table(
        "Table 3 — Checkpoint times on Discovery (NFSv3 model)",
        ("App", "Ckpt size/rank", "Ckpt time", "MB/s/rank",
         "paper size", "paper time", "paper MB/s"),
        rows,
        note="Shape under test: MB/s/rank RISES with image size (fixed "
        "per-checkpoint overhead amortizes).",
    )
    return {"data": data, "text": text}


# ----------------------------------------------------------------------
# cross-implementation restart (§3.6 of [GPC19] + §9 future work)
# ----------------------------------------------------------------------

def cross_impl_restart(scale: float = 0.3) -> Dict:
    """Checkpoint under one MPI implementation, restart under another.

    Stage 1 (the historically demonstrated case): the GROMACS
    primitives-only proxy, MPICH -> Open MPI.
    Stage 2 (the §9 future-work case, possible with the new virtual-id
    design): CoMD — which creates communicators and datatypes — across
    MPICH -> Open MPI -> ExaMPI.
    """
    results = []
    for app_name, chain in (
        ("gromacs", ["mpich", "openmpi"]),
        ("comd", ["mpich", "openmpi", "exampi"]),
    ):
        cls = APP_CLASSES[app_name]
        spec = scaled_spec(app_name, "discovery", scale, ranks_cap=8)
        baseline = Launcher(
            JobConfig(nranks=spec.nranks, impl=chain[0], mana=True)
        ).run(lambda r: cls(spec), timeout=300)
        if baseline.status != "completed":
            raise ReproError(f"{app_name} baseline: {baseline.first_error()}")
        expect = [a.checksum for a in baseline.apps()]

        ckdir = tempfile.mkdtemp(prefix=f"cross-{app_name}-")
        # These proxies allreduce every block, so rank skew is tiny: a
        # short lag window keeps the elected iteration inside the run.
        cfg = JobConfig(nranks=spec.nranks, impl=chain[0], mana=True,
                        ckpt_dir=ckdir, loop_lag_window=2)
        job = Launcher(cfg).launch(lambda r: cls(spec))
        tk = job.checkpoint_at_iteration(
            "main", max(1, spec.blocks // 3), kind="loop", mode="exit"
        )
        job.start()
        tk.wait(300)
        res = job.wait(300)
        if res.status != "preempted":
            raise ReproError(f"{app_name} preemption: {res.first_error()}")

        hops = []
        for next_impl in chain[1:]:
            job2 = Launcher(cfg).restart(ckdir, impl_override=next_impl)
            # Mid-chain hops re-checkpoint; the final hop runs to the end.
            final = next_impl == chain[-1]
            if not final:
                tk2 = job2.coordinator.checkpoint_at_iteration(
                    "main", max(2, 2 * spec.blocks // 3),
                    kind="loop", mode="exit",
                )
            job2.start()
            if not final:
                tk2.wait(300)
            res2 = job2.wait(300)
            want = "completed" if final else "preempted"
            if res2.status != want:
                raise ReproError(
                    f"{app_name} restart under {next_impl}: "
                    f"{res2.status}: {res2.first_error()}"
                )
            hops.append(next_impl)
            if final:
                got = [a.checksum for a in res2.apps()]
                match = bool(np.allclose(got, expect))
                results.append(
                    {
                        "app": app_name,
                        "chain": [chain[0]] + hops,
                        "bitwise_equal": got == expect,
                        "match": match,
                    }
                )
                if not match:
                    raise ReproError(
                        f"{app_name} cross-impl result mismatch: "
                        f"{got} != {expect}"
                    )
    rows = [
        (r["app"], " -> ".join(r["chain"]),
         "yes" if r["match"] else "NO",
         "yes" if r["bitwise_equal"] else "no")
        for r in results
    ]
    text = render_table(
        "Cross-implementation restart ([GPC19] §3.6 + §9 future work)",
        ("App", "Checkpoint/restart chain", "Result matches", "Bitwise"),
        rows,
        note="gromacs = primitives-only (the historically demonstrated "
        "case); comd creates communicators and derived datatypes (the "
        "full interoperability the new virtual-id design enables).",
    )
    return {"data": results, "text": text}


# ----------------------------------------------------------------------
# ablations
# ----------------------------------------------------------------------

def ablation_ggid(churn: int = 300, nranks: int = 8) -> Dict:
    """§9: eager vs lazy vs hybrid ggid policy under communicator churn.

    Some codes create and free communicators in a loop; eager ggid pays
    the membership hash at every create, lazy defers everything to
    checkpoint time, hybrid caches by membership.
    """
    from repro.runtime import MpiApplication

    class CommChurn(MpiApplication):
        name = "comm-churn"

        def __init__(self, churn: int):
            self.churn = churn
            self.created = 0

        def run(self, ctx) -> None:
            MPI = ctx.MPI
            for it in ctx.loop("main", self.churn):
                sub = MPI.comm_split(
                    MPI.COMM_WORLD, ctx.rank % 2, ctx.rank
                )
                MPI.barrier(sub)
                MPI.comm_free(sub)
                self.created += 1

    data = {}
    for policy in ("eager", "lazy", "hybrid"):
        cfg = JobConfig(nranks=nranks, impl="mpich", mana=True,
                        ggid_policy=policy)
        res = Launcher(cfg).run(lambda r: CommChurn(churn), timeout=300)
        if res.status != "completed":
            raise ReproError(f"ggid {policy}: {res.first_error()}")
        ggid_time = max(
            r.accounts.get("mana-ggid", 0.0) for r in res.ranks
        )
        data[policy] = {"runtime": res.runtime, "ggid_seconds": ggid_time}
    rows = [
        (p, f"{d['runtime']:.4f}", f"{d['ggid_seconds'] * 1e3:.3f}ms")
        for p, d in data.items()
    ]
    text = render_table(
        f"Ablation — ggid policy under communicator churn "
        f"({churn} create/free cycles, {nranks} ranks)",
        ("policy", "runtime (s)", "ggid hash time"),
        rows,
        note="§9: 'because some codes repeatedly create and free "
        "communicators in a loop, we are considering a lazy or hybrid "
        "policy.'  Lazy/hybrid eliminate per-create hashing.",
    )
    return {"data": data, "text": text}


def ablation_vid_lookup(n: int = 20000) -> Dict:
    """§4.1: translation cost, legacy string-maps vs new single table.

    Measures (a) real wall-clock per lookup in this implementation and
    (b) the modeled per-call cost difference that produces the up-to-1.6%
    LAMMPS improvement of §6.1.
    """
    from repro.mana.legacy import LegacyVirtualIdMaps
    from repro.mana.records import GroupRecord
    from repro.mana.virtid import VirtualIdTable
    from repro.mpi.api import HandleKind
    from repro.simtime.cost import ManaCostProfile

    data = {}
    for design, table in (
        ("new", VirtualIdTable(32)),
        ("legacy", LegacyVirtualIdMaps(32)),
    ):
        handles = [
            table.attach(HandleKind.GROUP, GroupRecord((i,)), 1000 + i)
            for i in range(64)
        ]
        t0 = time.perf_counter()
        for i in range(n):
            table.lookup(handles[i % 64], HandleKind.GROUP)
        per_lookup = (time.perf_counter() - t0) / n
        # reverse translation
        t0 = time.perf_counter()
        for i in range(min(n, 2000)):
            table.vid_of_phys(HandleKind.GROUP, 1000 + (i % 64))
        per_reverse = (time.perf_counter() - t0) / min(n, 2000)
        data[design] = {
            "wall_per_lookup_ns": per_lookup * 1e9,
            "wall_per_reverse_ns": per_reverse * 1e9,
        }
    prof = ManaCostProfile()
    lam_rate = PAPER_CS_RATES["lammps"][0] / PAPER_CS_RATES["lammps"][1]
    modeled_gain = (prof.vid_cost_legacy - prof.vid_cost_new) * lam_rate
    data["modeled"] = {
        "vid_cost_new_ns": prof.vid_cost_new * 1e9,
        "vid_cost_legacy_ns": prof.vid_cost_legacy * 1e9,
        "lammps_runtime_gain": modeled_gain,
    }
    rows = [
        (
            d,
            f"{data[d]['wall_per_lookup_ns']:.0f}ns",
            f"{data[d]['wall_per_reverse_ns']:.0f}ns",
        )
        for d in ("new", "legacy")
    ]
    text = render_table(
        "Ablation — virtual-id translation cost (old vs new design)",
        ("design", "lookup (measured)", "reverse (measured)"),
        rows,
        note=f"Modeled per-call gap {prof.vid_cost_legacy * 1e9:.0f}ns -> "
        f"{prof.vid_cost_new * 1e9:.0f}ns; at LAMMPS' call rate this is "
        f"a {modeled_gain * 100:.1f}% runtime improvement (paper §6.1: "
        f"'up to 1.6%').",
    )
    return {"data": data, "text": text}


def overhead_breakdown(scale: float = 0.15, ranks_cap: Optional[int] = 8) -> Dict:
    """EXTENSION: decompose each application's MANA runtime.

    Accounts per rank (max over ranks): declared compute, MPI library
    software path, communication idle (waiting on peers), and MANA's
    wrapper overhead.  This is the quantitative version of the paper's
    §6.3 argument: overhead variation across applications is explained by
    the wrapper-crossing account, which scales with MPI-call rate.
    """
    rows = []
    data = {}
    for app in FIG2_APPS:
        cls = APP_CLASSES[app]
        spec = scaled_spec(app, "discovery", scale, ranks_cap)
        cfg = JobConfig(nranks=spec.nranks, impl="mpich", mana=True)
        res = Launcher(cfg).run(lambda r: cls(spec), timeout=600)
        if res.status != "completed":
            raise ReproError(f"breakdown {app}: {res.first_error()}")
        slowest = max(res.ranks, key=lambda r: r.runtime)
        acc = slowest.accounts
        total = slowest.runtime
        breakdown = {
            "compute": acc.get("compute", 0.0),
            "mana_overhead": acc.get("mana-overhead", 0.0),
            "idle": acc.get("idle", 0.0),
            "mpi_lib": acc.get("mpi-lib", 0.0),
            "other": total - sum(
                acc.get(k, 0.0)
                for k in ("compute", "mana-overhead", "idle", "mpi-lib")
            ),
            "total": total,
        }
        data[app] = breakdown
        rows.append(
            (
                app,
                f"{total:.1f}",
                f"{breakdown['compute'] / total:.1%}",
                f"{breakdown['mana_overhead'] / total:.1%}",
                f"{breakdown['idle'] / total:.1%}",
            )
        )
    text = render_table(
        "Extension — MANA runtime decomposition (Discovery, MPICH)",
        ("App", "runtime (s)", "compute", "mana overhead", "idle"),
        rows,
        note="The mana-overhead share orders exactly like the §6.3 "
        "context-switch rates: the wrapper crossing cost IS the overhead.",
    )
    return {"data": data, "text": text}


def restart_analysis(scale: float = 0.15, ranks_cap: Optional[int] = 8) -> Dict:
    """EXTENSION (not a paper table): restart time vs image size.

    The paper reports checkpoint times (Table 3) but not restart times;
    this extension measures the symmetric quantity under the same NFSv3
    model: restart = image read (size-dependent) + object replay
    (MPI-call dependent).  Expected shape: dominated by image size, with
    the same fixed-cost amortization as Table 3.
    """
    rows = []
    data = {}
    for app in FIG2_APPS:
        cls = APP_CLASSES[app]
        spec = scaled_spec(app, "discovery", scale, ranks_cap)
        ckdir = tempfile.mkdtemp(prefix=f"restart-{app}-")
        cfg = JobConfig(
            nranks=spec.nranks, impl="mpich", platform="discovery",
            mana=True, ckpt_dir=ckdir, loop_lag_window=2,
        )
        job = Launcher(cfg).launch(lambda r: cls(spec))
        tk = job.checkpoint_at_iteration(
            "main", max(1, spec.blocks // 2), kind="loop", mode="exit"
        )
        job.start()
        info = tk.wait(300)
        res = job.wait(300)
        if res.status != "preempted":
            raise ReproError(f"restart_analysis {app}: {res.first_error()}")
        job2 = Launcher(cfg).restart(ckdir)
        res2 = job2.run(timeout=300)
        if res2.status != "completed":
            raise ReproError(f"restart_analysis {app}: {res2.first_error()}")
        restart_time = max(
            r.accounts.get("restart", 0.0) for r in res2.ranks
        )
        size_mb = info["mean_bytes_per_rank"] / 1e6
        data[app] = {
            "size_mb": size_mb,
            "restart_time": restart_time,
            "ckpt_time": info["ckpt_time"],
        }
        rows.append(
            (app, f"{size_mb:.0f}MB", f"{info['ckpt_time']:.1f}",
             f"{restart_time:.1f}")
        )
    rows.sort(key=lambda r: float(r[1][:-2]))
    text = render_table(
        "Extension — restart time vs image size (Discovery NFSv3 model)",
        ("App", "Image/rank", "Ckpt time (s)", "Restart time (s)"),
        rows,
        note="Not a paper table: the paper reports checkpoint times only; "
        "restart shows the same fixed-cost amortization shape.",
    )
    return {"data": data, "text": text}


# ----------------------------------------------------------------------
# everything at once
# ----------------------------------------------------------------------

def run_all(scale: float = 0.2, ranks_cap: Optional[int] = 16,
            jobs: Optional[int] = None) -> Dict[str, Dict]:
    """Run every experiment; returns {name: result}."""
    cache = CaseCache()
    out = {
        "table1": table1(),
        "table2": table2(),
        "figure2": figure2(scale, ranks_cap, cache, jobs=jobs),
        "figure3": figure3(scale, ranks_cap, cache, jobs=jobs),
        "figure4": figure4(scale, ranks_cap, cache, jobs=jobs),
        "section63": section63(scale, ranks_cap, cache),
        "table3": table3(min(scale, 0.15), min(ranks_cap or 12, 12)),
        "cross_impl_restart": cross_impl_restart(),
        "restart_analysis": restart_analysis(),
        "overhead_breakdown": overhead_breakdown(),
        "ablation_ggid": ablation_ggid(),
        "ablation_vid_lookup": ablation_vid_lookup(),
    }
    return out
