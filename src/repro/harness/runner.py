"""Case runner: one (application, implementation, MANA-config) execution.

A *case* is one bar of one figure.  ``run_case`` builds the workload at
the requested scale, runs it, validates the application state, and
returns a :class:`CaseResult` with the metrics every experiment consumes:
virtual runtime, context switches, call counts.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps import APP_CLASSES
from repro.runtime import JobConfig, Launcher
from repro.util.errors import ReproError


@dataclass
class CaseResult:
    app: str
    impl: str
    mana: bool
    vid_design: str
    platform: str
    nranks: int
    blocks: int
    runtime: float          # virtual seconds (median over trials)
    total_cs: int
    cs_per_second: float
    wrapped_calls: int
    status: str
    trials: int = 1
    runtime_std: float = 0.0  # std across trials (the figures' error bars)

    @property
    def label(self) -> str:
        if not self.mana:
            return f"native/{self.impl}"
        tag = "mana+vid" if self.vid_design == "new" else "mana"
        return f"{tag}/{self.impl}"

    def overhead_vs(self, native: "CaseResult") -> float:
        """Runtime overhead relative to a native case, as a fraction."""
        if native.runtime <= 0:
            return float("nan")
        return self.runtime / native.runtime - 1.0


def scaled_spec(app_name: str, platform: str, scale: float,
                ranks_cap: Optional[int] = None):
    """The paper workload for ``app_name``, scaled for bench tractability.

    ``scale`` shrinks the number of blocks; ``ranks_cap`` optionally caps
    the rank count (per-rank call *rates*, and hence overhead shapes,
    are rank-count invariant by construction).
    """
    cls = APP_CLASSES[app_name]
    spec = cls.paper_config(platform)
    blocks = max(4, round(spec.blocks * scale))
    spec = replace(spec, blocks=blocks)
    if ranks_cap is not None and spec.nranks > ranks_cap:
        spec = replace(spec, nranks=ranks_cap)
    return spec


def run_case(
    app_name: str,
    impl: str,
    mana: bool,
    vid_design: str = "new",
    platform: str = "discovery",
    scale: float = 0.25,
    ranks_cap: Optional[int] = 16,
    seed: int = 12345,
    timeout: float = 600.0,
    trials: int = 1,
) -> CaseResult:
    """Run one case to completion and validate it.

    ``trials > 1`` reproduces the paper's methodology (median of N
    trials, std as the error bar): each trial gets a different seed,
    which perturbs the deterministic OS-noise model.
    """
    cls = APP_CLASSES[app_name]
    spec = scaled_spec(app_name, platform, scale, ranks_cap)
    runtimes = []
    result = None
    for trial in range(max(1, trials)):
        cfg = JobConfig(
            nranks=spec.nranks,
            impl=impl,
            platform=platform,
            mana=mana,
            vid_design=vid_design,
            seed=seed + 1009 * trial,
        )
        result = Launcher(cfg).run(lambda r: cls(spec), timeout=timeout)
        if result.status != "completed":
            break
        runtimes.append(result.runtime)
    if result.status != "completed":
        err = result.first_error() or ""
        if "IncompatibleHandleError" in err:
            # Surface the legacy-design-vs-pointer-handles failure as its
            # own type: figures render these cases as "n/a" (the paper's
            # motivation for the new design).
            from repro.util.errors import IncompatibleHandleError

            raise IncompatibleHandleError(
                f"{vid_design} virtual ids cannot run on {impl}"
            )
        raise ReproError(
            f"case {app_name}/{impl}/mana={mana}/{vid_design} failed: {err}"
        )
    for app in result.apps():
        err = app.validate(None)
        if err:
            raise ReproError(f"case {app_name}/{impl}: validation: {err}")
    import statistics

    median_rt = statistics.median(runtimes)
    std_rt = statistics.pstdev(runtimes) if len(runtimes) > 1 else 0.0
    return CaseResult(
        app=app_name,
        impl=impl,
        mana=mana,
        vid_design=vid_design,
        platform=platform,
        nranks=spec.nranks,
        blocks=spec.blocks,
        runtime=median_rt,
        total_cs=result.total_cs,
        cs_per_second=result.total_cs / median_rt if median_rt else 0.0,
        wrapped_calls=sum(r.wrapped_calls for r in result.ranks),
        status=result.status,
        trials=len(runtimes),
        runtime_std=std_rt,
    )


class CaseCache:
    """Memoizes case *outcomes* within one benchmark session (several
    experiments share the native baselines).

    Failures are cached alongside successes and re-raised by ``get``:
    the expected ``IncompatibleHandleError`` of legacy-design-on-64-bit
    cases renders as the same "n/a" figure cell every time without
    re-running the doomed case.  ``prefetch`` fills the cache for a
    whole sweep at once, optionally in parallel (see
    :mod:`repro.harness.parallel`).
    """

    def __init__(self) -> None:
        #: key -> ("ok", CaseResult) | ("err", exception)
        self._outcomes: Dict[Tuple, Tuple[str, object]] = {}

    @staticmethod
    def _key(kwargs: Dict) -> Tuple:
        return tuple(sorted(kwargs.items()))

    def get(self, **kwargs) -> CaseResult:
        key = self._key(kwargs)
        out = self._outcomes.get(key)
        if out is None:
            try:
                out = ("ok", run_case(**kwargs))
            except Exception as exc:
                out = ("err", exc)
            self._outcomes[key] = out
        status, payload = out
        if status == "err":
            raise payload
        return payload

    def prefetch(
        self, cases: Sequence[Dict], jobs: Optional[int] = None
    ) -> int:
        """Run every not-yet-cached case (deduplicated), ``jobs`` at a
        time, and store the outcomes.  Returns how many cases ran.
        Subsequent ``get`` calls are pure cache hits, raising exactly
        what a serial run would have raised."""
        from repro.harness.parallel import run_cases

        keys: List[Tuple] = []
        todo: List[Dict] = []
        for kw in cases:
            key = self._key(kw)
            if key in self._outcomes or key in keys:
                continue
            keys.append(key)
            todo.append(dict(kw))
        if todo:
            for key, out in zip(keys, run_cases(todo, jobs=jobs)):
                self._outcomes[key] = out
        return len(todo)
