"""Parallel experiment harness: fan independent cases across workers.

A *case* is one ``run_case`` invocation (one bar of one figure).  Cases
are fully independent — each builds its own fabric, clocks, and rank
threads, and its virtual-time result is deterministic given the case's
own seed — so they may execute in worker processes in any order and
still produce byte-identical figures.  Two rules make that hold:

* **Deterministic seeds travel with the case.**  A case's kwargs carry
  (or default) its seed; nothing about scheduling feeds back into the
  simulation, whose clocks are purely virtual.
* **Ordered collection.**  Outcomes are returned by submission index,
  never by completion order, so downstream consumers (figure renderers,
  caches) observe exactly the serial sequence.

Failures are first-class: a worker returns ``("err", exc)`` instead of
raising, so one incompatible case (e.g. the legacy design on a
pointer-handle MPI, which figures render as "n/a") cannot poison the
pool or reorder its siblings.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

#: ("ok", CaseResult) or ("err", BaseException) — always picklable.
Outcome = Tuple[str, object]


def default_jobs() -> int:
    """A sensible worker count for ``--jobs 0``: the CPUs we may use."""
    try:
        n = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        n = os.cpu_count() or 1
    return max(1, n)


def _run_one(kwargs: Dict) -> Outcome:
    """Worker entry point: run one case, return a picklable outcome.

    Exceptions are data here — expected ones (IncompatibleHandleError)
    must reach the parent intact, and unpicklable ones are downgraded to
    a ReproError carrying the original message.
    """
    from repro.harness.runner import run_case

    try:
        return ("ok", run_case(**kwargs))
    except BaseException as exc:  # noqa: BLE001 - report any case death
        try:
            pickle.loads(pickle.dumps(exc))
            return ("err", exc)
        except Exception:
            from repro.util.errors import ReproError

            return ("err", ReproError(f"{type(exc).__name__}: {exc}"))


def run_cases(
    case_kwargs: List[Dict], jobs: Optional[int] = None
) -> List[Outcome]:
    """Run every case, ``jobs`` at a time; outcomes in submission order.

    ``jobs`` of None, 0, or 1 runs serially in-process (0 is resolved by
    callers to :func:`default_jobs` before reaching here; None/1 mean
    "don't parallelize").  Workers are forked so the (frozen, memoized)
    cost models and imported modules are inherited for free; on
    platforms without fork a thread pool still overlaps the real-time
    waits of blocking-heavy cases.
    """
    if not case_kwargs:
        return []
    jobs = min(jobs or 1, len(case_kwargs))
    if jobs <= 1:
        return [_run_one(kw) for kw in case_kwargs]
    if "fork" in mp.get_all_start_methods():
        ctx = mp.get_context("fork")
        with ProcessPoolExecutor(max_workers=jobs, mp_context=ctx) as pool:
            return list(pool.map(_run_one, case_kwargs))
    with ThreadPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(_run_one, case_kwargs))


class TaskPool:
    """A small reusable thread pool for in-process save fan-out.

    The checkpoint coordinator dispatches per-rank encode/write work
    here (threads, not processes: the work closes over live rank state).
    Determinism is preserved by the same rule as :func:`run_cases` —
    nothing about scheduling feeds back into the simulation; durations
    charged to virtual time are analytic functions of byte counts, so
    completion *order* in the pool is irrelevant to the result.

    ``submit`` returns a ``concurrent.futures.Future``; ``result()``
    re-raises the callable's exception in the caller, which is what lets
    an :class:`~repro.util.errors.InjectedFault` raised inside a pooled
    save surface in the owning rank thread with crash semantics intact.
    """

    def __init__(self, workers: int, name: str = "repro-task"):
        self.workers = max(1, int(workers))
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix=name
        )
        self._closed = False

    def submit(self, fn, *args, **kwargs):
        if self._closed:
            raise RuntimeError("TaskPool is shut down")
        return self._pool.submit(fn, *args, **kwargs)

    def gather(self, calls) -> List[object]:
        """Run ``(fn, *args)`` work items concurrently, returning their
        results in submission order.

        Every item is allowed to settle before the first exception (if
        any) is re-raised — a faulting chunk run must not leave sibling
        runs mid-write when the caller unwinds.
        """
        futs = [self.submit(fn, *args) for fn, *args in calls]
        out: List[object] = []
        first_exc: Optional[BaseException] = None
        for f in futs:
            try:
                out.append(f.result())
            except BaseException as exc:  # noqa: BLE001 - settled below
                if first_exc is None:
                    first_exc = exc
                out.append(None)
        if first_exc is not None:
            raise first_exc
        return out

    def shutdown(self, wait: bool = True) -> None:
        if not self._closed:
            self._closed = True
            self._pool.shutdown(wait=wait)

    def __enter__(self) -> "TaskPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
