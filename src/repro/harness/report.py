"""Text renderers: the paper's tables and figures as aligned ASCII.

Figures are rendered as grouped bar tables plus a normalized-runtime
column, which is what the reproduction actually claims (shapes and
ratios, not absolute seconds).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence],
    note: Optional[str] = None,
) -> str:
    """Aligned monospace table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    out = [title, "=" * len(title)]
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for row in cells:
        out.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    if note:
        out.append("")
        out.append(note)
    return "\n".join(out)


def render_bar_figure(
    title: str,
    groups: Sequence[str],
    series: Sequence[str],
    values: Dict[str, Dict[str, Optional[float]]],
    unit: str = "s",
    normalize_to: Optional[str] = None,
    width: int = 34,
    note: Optional[str] = None,
    errors: Optional[Dict[str, Dict[str, float]]] = None,
) -> str:
    """Grouped horizontal bars: ``values[group][series] -> value``.

    Missing values (None) render as ``n/a`` — e.g. MANA-legacy under
    Open MPI, which cannot run at all.
    """
    finite = [
        v
        for g in groups
        for v in values.get(g, {}).values()
        if v is not None
    ]
    vmax = max(finite) if finite else 1.0
    out = [title, "=" * len(title)]
    label_w = max(len(s) for s in series) + 2
    for g in groups:
        out.append(f"\n{g}")
        base = values.get(g, {}).get(normalize_to) if normalize_to else None
        for s in series:
            v = values.get(g, {}).get(s)
            if v is None:
                out.append(f"  {s.ljust(label_w)} n/a")
                continue
            bar = "#" * max(1, round(v / vmax * width))
            rel = ""
            if base:
                rel = f"  ({v / base:.2f}x)"
            err = ""
            if errors is not None:
                e = errors.get(g, {}).get(s)
                if e:
                    err = f" ±{e:.1f}"
            out.append(f"  {s.ljust(label_w)} {bar} {v:.1f}{err}{unit}{rel}")
    if note:
        out.append("")
        out.append(note)
    return "\n".join(out)


def fmt_pct(x: Optional[float]) -> str:
    if x is None or x != x:  # None or NaN
        return "n/a"
    return f"{x * 100:+.1f}%"


def fmt_bytes(n: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if n < 1024 or unit == "GB":
            return f"{n:.0f}{unit}" if unit == "B" else f"{n:.1f}{unit}"
        n /= 1024
    return f"{n:.1f}GB"
