"""Restart-time reconstruction of MPI objects (paper §4.2 and §5).

After a new lower half initializes, every virtual-id entry must be
rebound to a *semantically equivalent* physical object, created through
**standard MPI calls only** — MANA cannot reach into any implementation's
internals.  The calls used here are exactly the paper's §5 subset plus
the object constructors being replayed:

* constants: re-resolved by name (``lib.constant``) — this is where the
  §4.3 constants-as-functions machinery pays off: the new lower half may
  return completely different values (Open MPI pointers, lazy ExaMPI
  pointers) and nothing upstream notices;
* groups: ``MPI_Comm_group`` (of world) + ``MPI_Group_incl``;
* communicators: one ``MPI_Comm_split`` of MPI_COMM_WORLD per *global*
  communicator, in an order all ranks agree on — the (ggid, dup_seq)
  keys are exchanged with MANA's own Send/Recv/Iprobe traffic and
  sorted, which is why the ggid exists (§4.2);
* datatypes: rebuilt from the descriptor tree that was decoded at commit
  time with ``MPI_Type_get_envelope``/``MPI_Type_get_contents``;
* ops: ``MPI_Op_create`` with the registered user function (or the
  predefined constant);
* pending receives: re-posted with ``MPI_Irecv``.
"""

from __future__ import annotations

import pickle
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.mana.records import (
    CommRecord,
    ConstantRecord,
    DatatypeRecord,
    GroupRecord,
    OpRecord,
    RequestRecord,
)
from repro.mpi import constants as C
from repro.mpi import datatypes as dt
from repro.mpi.api import BaseMpiLib, HandleKind
from repro.util.errors import RestartError
from repro.util.registry import USER_OPS

# Tag space reserved for MANA-internal restart traffic.
_REPLAY_TAG = C.ROOT_TAG_BASE + 0x52


# ----------------------------------------------------------------------
# datatype decode / rebuild
# ----------------------------------------------------------------------

def decode_datatype(lib: BaseMpiLib, phys: int) -> dt.TypeDescriptor:
    """Decode a lower-half datatype into an implementation-neutral tree
    using only get_envelope/get_contents (paper §5 category 2).

    Named types are recognized by comparing the handle against the
    implementation's predefined constants — the only portable way, and
    robust to ExaMPI's aliasing (the first matching name wins, and
    aliases share both handle and layout).
    """
    env = lib.type_get_envelope(phys)
    if env.combiner == C.COMBINER_NAMED:
        for name in C.PREDEFINED_DATATYPES:
            try:
                if lib.constant(name) == phys:
                    return dt.NamedType(name, C.PREDEFINED_DATATYPES[name])
            except Exception:
                continue
        raise RestartError(
            f"named datatype {phys:#x} matches no predefined constant"
        )
    integers, addresses, inner = lib.type_get_contents(phys)
    bases = []
    for inner_phys in inner:
        base = decode_datatype(lib, inner_phys)
        bases.append(base)
        # get_contents hands back fresh handles for derived inner types;
        # the caller must free them (the standard's contract).
        if not base.is_named():
            lib.type_free(inner_phys)
    return dt.descriptor_from_contents(env.combiner, integers, addresses, bases)


def create_datatype(lib: BaseMpiLib, desc: dt.TypeDescriptor) -> int:
    """Rebuild a descriptor tree in the lower half via standard calls.

    Returns an *uncommitted* handle (commit is the caller's decision).
    Intermediate child handles are freed.
    """
    if isinstance(desc, dt.NamedType):
        return lib.constant(desc.name)

    def build(child: dt.TypeDescriptor) -> Tuple[int, bool]:
        h = create_datatype(lib, child)
        return h, not child.is_named()

    if isinstance(desc, dt.ContiguousType):
        base, tmp = build(desc.base)
        out = lib.type_contiguous(desc.count, base)
        if tmp:
            lib.type_free(base)
        return out
    if isinstance(desc, dt.VectorType):
        base, tmp = build(desc.base)
        out = lib.type_vector(desc.count, desc.blocklength, desc.stride, base)
        if tmp:
            lib.type_free(base)
        return out
    if isinstance(desc, dt.IndexedType):
        base, tmp = build(desc.base)
        out = lib.type_indexed(
            list(desc.blocklengths), list(desc.displacements), base
        )
        if tmp:
            lib.type_free(base)
        return out
    if isinstance(desc, dt.StructType):
        handles, tmps = [], []
        for b in desc.bases:
            h, tmp = build(b)
            handles.append(h)
            tmps.append(tmp)
        out = lib.type_create_struct(
            list(desc.blocklengths), list(desc.byte_displacements), handles
        )
        for h, tmp in zip(handles, tmps):
            if tmp:
                lib.type_free(h)
        return out
    raise RestartError(f"cannot rebuild datatype {desc!r}")


# ----------------------------------------------------------------------
# MANA-internal allgather over Send/Recv/Iprobe (§5 category 3)
# ----------------------------------------------------------------------

def allgather_blob(lib: BaseMpiLib, obj) -> List:
    """Gather one picklable object from every rank, returned world-rank
    ordered.  Star topology through rank 0 using only Send/Recv/Probe —
    the small communication subset §5 grants MANA."""
    world = lib.constant("MPI_COMM_WORLD")
    byte_t = lib.constant("MPI_BYTE")
    me = lib.world_rank
    blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    if lib.nranks == 1:
        return [obj]
    if me != 0:
        buf = np.frombuffer(blob, dtype=np.uint8).copy()
        lib.send(buf, buf.size, byte_t, 0, _REPLAY_TAG, world)
        st = lib.probe(C.ANY_SOURCE, _REPLAY_TAG + 1, world)
        rbuf = np.empty(st.count_bytes, dtype=np.uint8)
        lib.recv(rbuf, st.count_bytes, byte_t, 0, _REPLAY_TAG + 1, world)
        return pickle.loads(rbuf.tobytes())
    gathered: List = [None] * lib.nranks
    gathered[0] = obj
    for _ in range(lib.nranks - 1):
        st = lib.probe(C.ANY_SOURCE, _REPLAY_TAG, world)
        rbuf = np.empty(st.count_bytes, dtype=np.uint8)
        st2 = lib.recv(
            rbuf, st.count_bytes, byte_t, st.source, _REPLAY_TAG, world
        )
        gathered[st2.source] = pickle.loads(rbuf.tobytes())
    out = pickle.dumps(gathered, protocol=pickle.HIGHEST_PROTOCOL)
    obuf = np.frombuffer(out, dtype=np.uint8).copy()
    for dst in range(1, lib.nranks):
        lib.send(obuf, obuf.size, byte_t, dst, _REPLAY_TAG + 1, world)
    return gathered


# ----------------------------------------------------------------------
# full replay
# ----------------------------------------------------------------------

def replay_all(mana) -> Dict[str, int]:
    """Rebind every virtual id against ``mana.lower`` (a fresh library).

    Every rank of the job must call this in lockstep (communicator
    reconstruction is collective).  Returns per-kind rebind counts.
    """
    lib = mana.lower
    vids = mana.vids
    counts = {k: 0 for k in HandleKind.ALL}

    # Phase 0: constants (includes MPI_COMM_WORLD/SELF, predefined
    # datatypes and ops the app has touched).
    for entry in vids.entries():
        if entry.constant_name is not None:
            vids.set_phys(vids.embed(entry.vid), lib.constant(entry.constant_name))
            counts[entry.kind] += 1

    world_phys = lib.constant("MPI_COMM_WORLD")

    # Phase 1: groups (local reconstruction).
    world_group = lib.comm_group(world_phys)
    for entry in vids.entries(HandleKind.GROUP):
        if entry.constant_name is not None:
            continue
        rec = entry.record
        if not isinstance(rec, GroupRecord):
            raise RestartError(f"group vid {entry.vid:#x} has no GroupRecord")
        vids.set_phys(
            vids.embed(entry.vid),
            lib.group_incl(world_group, list(rec.world_ranks)),
        )
        counts[HandleKind.GROUP] += 1

    # Phase 2: communicators (collective; globally agreed order).
    my_keys = []
    for entry in vids.entries(HandleKind.COMM):
        if entry.constant_name is not None:
            continue
        rec = entry.record
        if not isinstance(rec, CommRecord):
            raise RestartError(f"comm vid {entry.vid:#x} has no CommRecord")
        my_keys.append(rec.key())
    all_keys = allgather_blob(lib, my_keys)
    global_keys = sorted({k for keys in all_keys for k in keys})
    by_key = {}
    for entry in vids.entries(HandleKind.COMM):
        if entry.constant_name is None and isinstance(entry.record, CommRecord):
            by_key[entry.record.key()] = entry
    for key in global_keys:
        entry = by_key.get(key)
        if entry is None:
            color = C.UNDEFINED
            split_key = 0
        else:
            color = 1
            split_key = entry.record.world_ranks.index(lib.world_rank)
        new_phys = lib.comm_split(world_phys, color, split_key)
        if entry is not None:
            vids.set_phys(vids.embed(entry.vid), new_phys)
            counts[HandleKind.COMM] += 1

    # Phase 3: datatypes (local).
    for entry in vids.entries(HandleKind.DATATYPE):
        if entry.constant_name is not None:
            continue
        rec = entry.record
        if not isinstance(rec, DatatypeRecord) or rec.descriptor is None:
            raise RestartError(
                f"datatype vid {entry.vid:#x} was never decoded; cannot "
                f"reconstruct"
            )
        phys = create_datatype(lib, rec.descriptor)
        if rec.committed:
            lib.type_commit(phys)
        vids.set_phys(vids.embed(entry.vid), phys)
        counts[HandleKind.DATATYPE] += 1

    # Phase 4: reduction ops (local).
    for entry in vids.entries(HandleKind.OP):
        if entry.constant_name is not None:
            continue
        rec = entry.record
        if not isinstance(rec, OpRecord):
            raise RestartError(f"op vid {entry.vid:#x} has no OpRecord")
        if rec.predefined_name is not None:
            phys = lib.constant(rec.predefined_name)
        else:
            fn = USER_OPS.lookup(rec.registry_name)
            phys = lib.op_create(fn, rec.commute)
        vids.set_phys(vids.embed(entry.vid), phys)
        counts[HandleKind.OP] += 1

    # Phase 5: requests.  Persistent requests are re-created with
    # *_init (and re-started if a cycle was outstanding); ordinary
    # pending receives are re-posted with Irecv.
    for entry in vids.entries(HandleKind.REQUEST):
        rec = entry.record
        if not isinstance(rec, RequestRecord):
            continue
        if rec.persistent:
            comm_entry = vids.lookup(vids.embed(rec.comm_vid), HandleKind.COMM)
            dt_entry = vids.lookup(
                vids.embed(rec.datatype_vid), HandleKind.DATATYPE
            )
            init = lib.send_init if rec.kind == "send" else lib.recv_init
            phys = init(
                rec.buf, rec.count, dt_entry.phys, rec.peer, rec.tag,
                comm_entry.phys,
            )
            vids.set_phys(vids.embed(entry.vid), phys)
            if rec.active and not rec.completed and rec.kind == "recv":
                src_world = (
                    C.ANY_SOURCE
                    if rec.peer == C.ANY_SOURCE
                    else comm_entry.record.world_ranks[rec.peer]
                )
                drained = mana.drain_buffer.match(
                    comm_entry.vid, src_world, rec.tag
                )
                if drained is not None:
                    desc = mana.descriptor_of(dt_entry)
                    desc.unpack(drained.payload, rec.buf, rec.count)
                    rec.completed = True
                    from repro.mpi.objects import Status

                    rec.status = Status(
                        source=drained.src_comm_rank,
                        tag=drained.tag,
                        count_bytes=drained.nbytes,
                    )
                else:
                    lib.start(phys)
            counts[HandleKind.REQUEST] += 1
            continue
        if rec.completed:
            continue
        if rec.kind != "recv":
            continue
        comm_entry = vids.lookup(vids.embed(rec.comm_vid), HandleKind.COMM)
        dt_entry = vids.lookup(vids.embed(rec.datatype_vid), HandleKind.DATATYPE)
        # The drain buffer wins over a fresh post: a message drained at
        # checkpoint time may be the one this request was waiting for.
        src_world = (
            C.ANY_SOURCE
            if rec.peer == C.ANY_SOURCE
            else comm_entry.record.world_ranks[rec.peer]
        )
        drained = mana.drain_buffer.match(
            comm_entry.vid, src_world, rec.tag
        )
        if drained is not None:
            desc = mana.descriptor_of(dt_entry)
            desc.unpack(drained.payload, rec.buf, rec.count)
            rec.completed = True
            from repro.mpi.objects import Status

            rec.status = Status(
                source=drained.src_comm_rank,
                tag=drained.tag,
                count_bytes=drained.nbytes,
            )
            vids.set_phys(vids.embed(entry.vid), None)
        else:
            vids.set_phys(
                vids.embed(entry.vid),
                lib.irecv(
                    rec.buf, rec.count, dt_entry.phys, rec.peer, rec.tag,
                    comm_entry.phys,
                ),
            )
        counts[HandleKind.REQUEST] += 1

    vids.rebuild_reverse()
    return counts
