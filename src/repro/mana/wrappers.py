"""MANA's wrapper (stub) functions — Figure 1's upper-half library.

Every MPI call an application makes lands here.  A wrapper:

1. checks for checkpoint intent (the safe-point mechanism);
2. charges the split-process crossing cost (one fs-register switch pair
   per lower-half entry, §6.3/§6.4) and one virtual-id translation;
3. translates virtual handles to the current lower half's physical ids;
4. calls the lower-half library;
5. wraps any newly created physical object in a fresh virtual id with a
   reconstruction record, and returns virtual handles to the app.

Blocking operations never block inside the lower half: they are
implemented as ``MPI_Iprobe``/``MPI_Test`` polling loops (this is what
guarantees "no MPI process is blocked in a call to the lower half at the
time of checkpoint", §2.1).  The *virtual* cost of polling is charged
analytically — ``wait_time / poll_cycle`` extra crossings — so reported
times are deterministic regardless of host scheduling, while still
reproducing the mechanism behind Open MPI's higher overhead (slower
network calls → longer waits → more polls, §6.1).  In *real* time the
loops are event-driven: instead of sleeping a fixed poll interval they
block on the fabric's activity counter (woken by message arrival,
abort, or checkpoint-intent arming), so blocking-heavy runs stop
burning wall-clock without changing any reported number.

Collectives are two-phase: a checkpoint-tolerant *trivial barrier*
(hosted by the coordinator) followed by the real lower-half collective
as a critical section.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.impls import make_lib
from repro.impls.facade import _CONSTANT_ATTRS, _NULL_ATTRS, FacadeBase
from repro.mana import checkpoint as ckpt
from repro.mana import constants as mana_constants
from repro.mana import replay as replay_mod
from repro.mana.coordinator import (
    CheckpointCoordinator,
    CheckpointKind,
    CheckpointMode,
)
from repro.mana.drain import DrainBuffer, run_drain
from repro.mana.legacy import LegacyVirtualIdMaps
from repro.mana.records import (
    CommRecord,
    ConstantRecord,
    DatatypeRecord,
    GroupRecord,
    OpRecord,
    RequestRecord,
)
from repro.mana.virtid import KIND_TAGS, VID_LAYOUT, VirtualIdTable
from repro.mpi import constants as C
from repro.mpi.api import BaseMpiLib, HandleKind
from repro.mpi.datatypes import TypeDescriptor
from repro.mpi.objects import CartInfo, Status
from repro.simtime.clock import VirtualClock
from repro.simtime.cost import CostModel
from repro.util.errors import (
    CheckpointRoundAborted,
    InvalidHandleError,
    JobPreempted,
    MpiError,
    RestartError,
)
from repro.util.registry import USER_OPS

_MAX_POLL_CHARGES = 100_000  # cap on analytically charged polls per wait


class ManaRank:
    """The per-rank MANA agent: lower half + virtual-id table + wrappers."""

    def __init__(
        self,
        fabric,
        rank: int,
        clock: VirtualClock,
        cost_model: CostModel,
        impl_name: str,
        coordinator: Optional[CheckpointCoordinator] = None,
        vid_design: str = "new",
        ggid_policy: str = "eager",
        seed: int = 0,
        ckpt_dir: str = "/tmp/mana-ckpt",
        epoch: int = 0,
        injector=None,
    ):
        self.fabric = fabric
        self.rank = rank
        self.clock = clock
        self.cost_model = cost_model
        self.impl_name = impl_name
        self.coordinator = coordinator
        self.vid_design = vid_design
        self.seed = seed
        self.ckpt_dir = ckpt_dir
        self.epoch = epoch
        # Optional repro.faults.FaultInjector; None on the hot path.
        self.injector = injector

        self.lower: Optional[BaseMpiLib] = None
        handle_bits = 32  # set for real at bootstrap
        if vid_design == "new":
            self.vids = VirtualIdTable(
                handle_bits, ggid_policy=ggid_policy, clock=clock
            )
        elif vid_design == "legacy":
            self.vids = LegacyVirtualIdMaps(handle_bits, clock=clock)
        else:
            raise ValueError(f"unknown virtual-id design {vid_design!r}")

        self.drain_buffer = DrainBuffer()
        self.cs_count = 0          # lower-half entries ("context switches")
        self.wrapped_calls = 0
        # Coarse-graining factor: one simulated MPI call stands for
        # ``call_weight`` real calls (a simulated iteration is a *block*
        # of real timesteps).  Crossing costs and CS counts scale by it;
        # time-based poll charges do not (waits are already block-level
        # aggregates).  See repro.apps.base.WorkloadSpec.
        self.call_weight = 1
        self._app = None           # the upper half (set by the runtime)
        self._ctx = None
        self._app_initialized = False
        self._active_ticket = None
        # Functions MANA itself called in the lower half during the most
        # recent checkpoint (drain/save) or restart (replay).
        self.last_internal_calls: dict = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def bootstrap(self) -> None:
        """Launch the lower half: the 'small MPI application' of Figure 1
        initializes the real MPI library before the upper half runs."""
        self.lower = make_lib(
            self.impl_name, self.fabric, self.rank, self.clock,
            self.cost_model, epoch=self.epoch, seed=self.seed,
        )
        self.lower.init()
        self.vids.handle_bits = self.lower.handles.handle_bits
        # Eagerly bind MPI_COMM_WORLD: MANA itself needs it for the drain
        # and the app will ask for it immediately anyway.
        self._constant_handle("MPI_COMM_WORLD")

    def attach_upper(self, app, ctx) -> None:
        self._app = app
        self._ctx = ctx

    def restore_from_image(self, image: ckpt.CheckpointImage) -> None:
        """Adopt a cold checkpoint image as this rank's upper half.

        Called after :meth:`bootstrap`; replays the virtual-id table into
        the fresh lower half.  All ranks must call this in lockstep.
        """
        self.vids = image.vid_table
        self.vids.clock = self.clock
        self.vids.handle_bits = self.lower.handles.handle_bits
        self.drain_buffer = image.drain_buffer
        self.cs_count = image.cs_count
        self._app_initialized = True
        replay_mod.replay_all(self)

    # ------------------------------------------------------------------
    # cost accounting / safe points
    # ------------------------------------------------------------------
    def _cross(self, n: int = 1, weighted: bool = True) -> None:
        """Charge ``n`` lower-half crossings (fs-register switch pairs +
        one virtual-id translation each).  ``weighted`` applies the
        call-aggregation factor (a wrapped call represents
        ``call_weight`` real calls); poll charges pass weighted=False
        because waits are already block-level aggregates."""
        if weighted:
            n *= self.call_weight
        self.cs_count += n
        self.clock.advance(
            n * self.cost_model.wrapper_crossing_cost(self.vids.design_name),
            "mana-overhead",
        )

    def _enter(self) -> None:
        """Top of every wrapper: safe point + one crossing."""
        self.wrapped_calls += 1
        if self.injector is not None:
            self.injector.on_mpi_call(self.rank, self.wrapped_calls,
                                      self.clock.now)
        self._maybe_checkpoint()
        self._cross()

    def _extra_lib_calls(self, n: int = 1) -> None:
        """Charge ``n`` *additional* lower-half MPI calls per real call.

        Blocking completions under MANA are wrapped as Iprobe/Test loops
        (§2.1), so one application call becomes >= 2 library calls.  Each
        extra call is a crossing (switch + vid) plus the implementation's
        per-call software path — the mechanism behind §6.1's observation
        that Open MPI's slower network calls raise MANA's overhead."""
        self._cross(n)
        self.clock.advance(
            n * self.call_weight * self.cost_model.library_call_cost(),
            "mana-overhead",
        )

    def _maybe_checkpoint(self) -> None:
        coord = self.coordinator
        if coord is not None and coord.should_park_now():
            self.checkpoint_participate()

    def _charge_wait_polls(self, t_enter: float) -> None:
        """Analytic polling cost: one extra crossing per poll cycle the
        virtual wait spanned (MANA calls MPI_Test/MPI_Iprobe in a loop
        while wrapping blocking completion)."""
        wait = self.clock.now - t_enter
        if wait <= 0:
            return
        n = min(int(wait / self.cost_model.mana.poll_cycle), _MAX_POLL_CHARGES)
        if n > 0:
            self._cross(n, weighted=False)

    # ------------------------------------------------------------------
    # translation helpers
    # ------------------------------------------------------------------
    def null_vhandle(self, kind: str) -> int:
        if self.vids.design_name == "new":
            return self.vids.embed(VID_LAYOUT.pack(kind=KIND_TAGS[kind], index=0))
        return 0

    def is_null_vhandle(self, vhandle: int) -> bool:
        if self.vids.design_name == "new":
            return (VirtualIdTable.extract(vhandle) & ((1 << 29) - 1)) == 0
        return vhandle == 0

    def _comm(self, vhandle: int):
        return self.vids.lookup(vhandle, HandleKind.COMM)

    def _dtype(self, vhandle: int):
        return self.vids.lookup(vhandle, HandleKind.DATATYPE)

    def descriptor_of(self, dt_entry) -> TypeDescriptor:
        """Structural descriptor for a datatype entry (decoding it from
        the lower half on first need)."""
        rec = dt_entry.record
        if isinstance(rec, ConstantRecord):
            from repro.mpi.datatypes import NamedType

            name = C.EXAMPI_ALIASES.get(rec.name, rec.name)
            return NamedType(rec.name, C.PREDEFINED_DATATYPES[name])
        if isinstance(rec, DatatypeRecord):
            if rec.descriptor is None:
                rec.descriptor = replay_mod.decode_datatype(
                    self.lower, dt_entry.phys
                )
            return rec.descriptor
        raise InvalidHandleError(
            f"vid {dt_entry.vid:#x} is not a datatype"
        )

    def ensure_datatypes_decoded(self) -> None:
        for entry in self.vids.entries(HandleKind.DATATYPE):
            if isinstance(entry.record, DatatypeRecord):
                if entry.record.descriptor is None and entry.phys is not None:
                    entry.record.descriptor = replay_mod.decode_datatype(
                        self.lower, entry.phys
                    )

    def _world_ranks_of_comm(self, comm_phys: int) -> Tuple[int, ...]:
        """Membership of a physical communicator in comm-rank order,
        obtained through §5 category-2 calls only."""
        lib = self.lower
        world_phys = lib.constant("MPI_COMM_WORLD")
        g = lib.comm_group(comm_phys)
        wg = lib.comm_group(world_phys)
        n = lib.group_size(g)
        world_ranks = lib.group_translate_ranks(g, list(range(n)), wg)
        lib.group_free(g)
        lib.group_free(wg)
        return tuple(world_ranks)

    def _dup_seq_for(self, world_ranks: Tuple[int, ...]) -> int:
        """Disambiguator among comms with identical membership.

        A monotonic incarnation number (never reset by comm_free):
        communicator creation is collective, so every member rank
        observes the same creation order and computes the same value —
        and re-creating a freed communicator yields a FRESH (ggid,
        dup_seq) identity, which the two-phase collective barrier and
        the restart replay both rely on."""
        incs = self.vids.membership_incarnations
        n = incs.get(world_ranks, 0)
        incs[world_ranks] = n + 1
        return n

    def _attach_comm(
        self, phys: int, name: str = "",
        cart: Optional[Tuple[Tuple[int, ...], Tuple[bool, ...]]] = None,
    ) -> int:
        world_ranks = self._world_ranks_of_comm(phys)
        rec = CommRecord(
            world_ranks=world_ranks,
            ggid=None,  # policy decides (eager computes in attach)
            dup_seq=self._dup_seq_for(world_ranks),
            name=name,
            cart=cart,
        )
        return self.vids.attach(HandleKind.COMM, rec, phys)

    # ------------------------------------------------------------------
    # constants (§4.3: constants as functions, lazy for ExaMPI)
    # ------------------------------------------------------------------
    def _constant_handle(self, name: str) -> int:
        vh = self.vids.constant_vid(name)
        if vh is not None:
            entry = self.vids.lookup(vh)
            if entry.phys is None:
                # Rebind on demand (e.g. right after a restart) — through
                # set_phys so the fast lane and reverse map stay coherent.
                self.vids.set_phys(vh, self.lower.constant(name))
            return vh
        phys = self.lower.constant(name)
        kind = mana_constants.constant_kind(name)
        if kind is None:
            raise MpiError(f"unknown constant {name!r}", "MPI_ERR_ARG")
        if kind == HandleKind.COMM:
            # Predefined communicators get full CommRecords: they carry
            # drain counters and collective sequence numbers like any
            # user communicator.
            ranks = self._world_ranks_of_comm(phys)
            rec: object = CommRecord(
                world_ranks=ranks,
                ggid=None,
                dup_seq=self._dup_seq_for(ranks),
                name=name,
            )
        else:
            rec = ConstantRecord(name)
        return self.vids.attach(kind, rec, phys, constant_name=name)

    # ------------------------------------------------------------------
    # environment wrappers
    # ------------------------------------------------------------------
    def init(self) -> None:
        """The app's MPI_Init: the lower half is already initialized (it
        is MANA's own small MPI program), so this is bookkeeping."""
        self._enter()
        self._app_initialized = True

    def finalize(self) -> None:
        self._enter()
        self._app_initialized = False
        if self.coordinator is not None:
            # Stay checkpoint-available until every rank has finalized.
            self.coordinator.finalize_rank(self.rank, self._maybe_checkpoint)

    def initialized(self) -> bool:
        return self._app_initialized

    def finalized(self) -> bool:
        return not self._app_initialized and self.lower is not None

    def wtime(self) -> float:
        return self.clock.now

    def abort(self, comm_v: int, errorcode: int) -> None:
        self._enter()
        self.lower.abort(self.vids.phys(comm_v, HandleKind.COMM), errorcode)

    def get_processor_name(self) -> str:
        self._enter()
        return self.lower.get_processor_name()

    # ------------------------------------------------------------------
    # communicator wrappers
    # ------------------------------------------------------------------
    def comm_rank(self, comm_v: int) -> int:
        self._enter()
        entry = self._comm(comm_v)
        rec = entry.record
        if isinstance(rec, CommRecord):
            # Served from MANA's own record (one lookup, no lower call
            # needed — the §4.1-problem-3 win in action).
            return rec.world_ranks.index(self.rank)
        return self.lower.comm_rank(entry.phys)

    def comm_size(self, comm_v: int) -> int:
        self._enter()
        entry = self._comm(comm_v)
        rec = entry.record
        if isinstance(rec, CommRecord):
            return len(rec.world_ranks)
        return self.lower.comm_size(entry.phys)

    def comm_group(self, comm_v: int) -> int:
        self._enter()
        entry = self._comm(comm_v)
        phys_group = self.lower.comm_group(entry.phys)
        world_ranks = (
            entry.record.world_ranks
            if isinstance(entry.record, CommRecord)
            else self._world_ranks_of_comm(entry.phys)
        )
        return self.vids.attach(
            HandleKind.GROUP, GroupRecord(world_ranks), phys_group
        )

    def comm_compare(self, c1: int, c2: int) -> int:
        self._enter()
        return self.lower.comm_compare(
            self.vids.phys(c1, HandleKind.COMM),
            self.vids.phys(c2, HandleKind.COMM),
        )

    def comm_dup(self, comm_v: int) -> int:
        self._enter()
        entry = self._comm(comm_v)
        self._two_phase(entry)
        phys = self.lower.comm_dup(entry.phys)
        return self._attach_comm(phys, name=f"dup({entry.record.name})")

    def comm_split(self, comm_v: int, color: int, key: int) -> int:
        self._enter()
        entry = self._comm(comm_v)
        self._two_phase(entry)
        phys = self.lower.comm_split(entry.phys, color, key)
        if self.lower.handles.is_null(HandleKind.COMM, phys):
            return self.null_vhandle(HandleKind.COMM)
        return self._attach_comm(phys, name=f"split({color})")

    def comm_split_type(self, comm_v: int, split_type: int, key: int) -> int:
        self._enter()
        entry = self._comm(comm_v)
        self._two_phase(entry)
        phys = self.lower.comm_split_type(entry.phys, split_type, key)
        if self.lower.handles.is_null(HandleKind.COMM, phys):
            return self.null_vhandle(HandleKind.COMM)
        return self._attach_comm(phys, name="split-type")

    def comm_create(self, comm_v: int, group_v: int) -> int:
        self._enter()
        entry = self._comm(comm_v)
        gphys = self.vids.phys(group_v, HandleKind.GROUP)
        self._two_phase(entry)
        phys = self.lower.comm_create(entry.phys, gphys)
        if self.lower.handles.is_null(HandleKind.COMM, phys):
            return self.null_vhandle(HandleKind.COMM)
        return self._attach_comm(phys, name="created")

    def comm_free(self, comm_v: int) -> None:
        self._enter()
        entry = self._comm(comm_v)
        if entry.constant_name is not None:
            raise MpiError(
                f"cannot free {entry.constant_name}", "MPI_ERR_COMM"
            )
        self._two_phase(entry)
        self.lower.comm_free(entry.phys)
        self.vids.remove(comm_v)

    # ------------------------------------------------------------------
    # group wrappers (local operations)
    # ------------------------------------------------------------------
    def _attach_group(self, phys: int) -> int:
        lib = self.lower
        wg = lib.comm_group(lib.constant("MPI_COMM_WORLD"))
        n = lib.group_size(phys)
        world_ranks = tuple(
            lib.group_translate_ranks(phys, list(range(n)), wg)
        )
        lib.group_free(wg)
        return self.vids.attach(HandleKind.GROUP, GroupRecord(world_ranks), phys)

    def group_size(self, group_v: int) -> int:
        self._enter()
        return self.lower.group_size(self.vids.phys(group_v, HandleKind.GROUP))

    def group_rank(self, group_v: int) -> int:
        self._enter()
        return self.lower.group_rank(self.vids.phys(group_v, HandleKind.GROUP))

    def group_incl(self, group_v: int, ranks: Sequence[int]) -> int:
        self._enter()
        phys = self.lower.group_incl(
            self.vids.phys(group_v, HandleKind.GROUP), ranks
        )
        return self._attach_group(phys)

    def group_excl(self, group_v: int, ranks: Sequence[int]) -> int:
        self._enter()
        phys = self.lower.group_excl(
            self.vids.phys(group_v, HandleKind.GROUP), ranks
        )
        return self._attach_group(phys)

    def group_union(self, g1: int, g2: int) -> int:
        self._enter()
        phys = self.lower.group_union(
            self.vids.phys(g1, HandleKind.GROUP),
            self.vids.phys(g2, HandleKind.GROUP),
        )
        return self._attach_group(phys)

    def group_intersection(self, g1: int, g2: int) -> int:
        self._enter()
        phys = self.lower.group_intersection(
            self.vids.phys(g1, HandleKind.GROUP),
            self.vids.phys(g2, HandleKind.GROUP),
        )
        return self._attach_group(phys)

    def group_difference(self, g1: int, g2: int) -> int:
        self._enter()
        phys = self.lower.group_difference(
            self.vids.phys(g1, HandleKind.GROUP),
            self.vids.phys(g2, HandleKind.GROUP),
        )
        return self._attach_group(phys)

    def group_translate_ranks(
        self, g1: int, ranks: Sequence[int], g2: int
    ) -> List[int]:
        self._enter()
        return self.lower.group_translate_ranks(
            self.vids.phys(g1, HandleKind.GROUP),
            ranks,
            self.vids.phys(g2, HandleKind.GROUP),
        )

    def group_compare(self, g1: int, g2: int) -> int:
        self._enter()
        return self.lower.group_compare(
            self.vids.phys(g1, HandleKind.GROUP),
            self.vids.phys(g2, HandleKind.GROUP),
        )

    def group_free(self, group_v: int) -> None:
        self._enter()
        entry = self.vids.lookup(group_v, HandleKind.GROUP)
        if entry.constant_name is not None:
            raise MpiError("cannot free MPI_GROUP_EMPTY", "MPI_ERR_GROUP")
        self.lower.group_free(entry.phys)
        self.vids.remove(group_v)

    # ------------------------------------------------------------------
    # point-to-point wrappers
    # ------------------------------------------------------------------
    def _count_send(self, comm_entry, dest_comm_rank: int) -> None:
        rec = comm_entry.record
        if isinstance(rec, CommRecord):
            w = rec.world_ranks[dest_comm_rank]
            rec.sent_to[w] = rec.sent_to.get(w, 0) + 1

    def _count_recv(self, comm_entry, src_comm_rank: int) -> None:
        rec = comm_entry.record
        if isinstance(rec, CommRecord) and src_comm_rank >= 0:
            w = rec.world_ranks[src_comm_rank]
            rec.received_from[w] = rec.received_from.get(w, 0) + 1

    def send(
        self, buf, count: int, dtype_v: int, dest: int, tag: int, comm_v: int
    ) -> None:
        self._enter()
        if dest == C.PROC_NULL:
            return
        centry = self._comm(comm_v)
        dentry = self._dtype(dtype_v)
        self.lower.send(buf, count, dentry.phys, dest, tag, centry.phys)
        self._count_send(centry, dest)

    def _src_world(self, comm_entry, source: int) -> int:
        if source == C.ANY_SOURCE:
            return C.ANY_SOURCE
        rec = comm_entry.record
        if isinstance(rec, CommRecord):
            return rec.world_ranks[source]
        return source

    def _recv_from_drain(
        self, comm_entry, dt_entry, buf, count: int, source: int, tag: int
    ) -> Optional[Status]:
        msg = self.drain_buffer.match(
            comm_entry.vid, self._src_world(comm_entry, source), tag
        )
        if msg is None:
            return None
        desc = self.descriptor_of(dt_entry)
        desc.unpack(msg.payload, buf, count)
        return Status(
            source=msg.src_comm_rank, tag=msg.tag, count_bytes=msg.nbytes
        )

    def recv(
        self, buf, count: int, dtype_v: int, source: int, tag: int,
        comm_v: int,
    ) -> Status:
        self._enter()
        if source == C.PROC_NULL:
            return Status(source=C.PROC_NULL, tag=C.ANY_TAG)
        t_enter = self.clock.now
        while True:
            # Token BEFORE the completion checks: an arrival in between
            # makes wait_activity return at once (no lost wakeup).  The
            # analytic poll cost below is what the *results* see; the
            # real-time loop merely sleeps until something changes.
            token = self.fabric.activity_token()
            centry = self._comm(comm_v)
            dentry = self._dtype(dtype_v)
            st = self._recv_from_drain(
                centry, dentry, buf, count, source, tag
            )
            if st is not None:
                return st
            flag, pst = BaseMpiLib.iprobe.__wrapped__(
                self.lower, source, tag, centry.phys
            )
            if flag:
                st = self.lower.recv(
                    buf, count, dentry.phys, pst.source, pst.tag, centry.phys
                )
                self._count_recv(centry, st.source)
                self._extra_lib_calls(1)  # the Iprobe preceding the Recv
                self._charge_wait_polls(t_enter)
                return st
            self._maybe_checkpoint()
            self.fabric.wait_activity(token)
            if self.fabric.aborted:
                raise MpiError("job aborted during recv", "MPI_ERR_OTHER")

    def isend(
        self, buf, count: int, dtype_v: int, dest: int, tag: int, comm_v: int
    ) -> int:
        self._enter()
        centry = self._comm(comm_v)
        dentry = self._dtype(dtype_v)
        if dest != C.PROC_NULL:
            # The eager fabric completes sends at post time; MANA retires
            # the lower request immediately and keeps a virtual one.
            phys_req = self.lower.isend(
                buf, count, dentry.phys, dest, tag, centry.phys
            )
            self.lower.wait(phys_req)
            self._count_send(centry, dest)
        rec = RequestRecord(
            kind="send",
            comm_vid=centry.vid,
            peer=dest,
            tag=tag,
            count=count,
            datatype_vid=dentry.vid,
            completed=True,
            status=Status(),
        )
        return self.vids.attach(HandleKind.REQUEST, rec, None)

    def irecv(
        self, buf, count: int, dtype_v: int, source: int, tag: int,
        comm_v: int,
    ) -> int:
        self._enter()
        centry = self._comm(comm_v)
        dentry = self._dtype(dtype_v)
        rec = RequestRecord(
            kind="recv",
            comm_vid=centry.vid,
            peer=source,
            tag=tag,
            count=count,
            datatype_vid=dentry.vid,
            buf=buf,
        )
        # Drained messages take precedence over fresh lower-half posts:
        # they are strictly older.
        st = self._recv_from_drain(centry, dentry, buf, count, source, tag)
        if st is not None:
            rec.completed = True
            rec.status = st
            return self.vids.attach(HandleKind.REQUEST, rec, None)
        phys = (
            None
            if source == C.PROC_NULL
            else self.lower.irecv(
                buf, count, dentry.phys, source, tag, centry.phys
            )
        )
        if source == C.PROC_NULL:
            rec.completed = True
            rec.status = Status(source=C.PROC_NULL)
        return self.vids.attach(HandleKind.REQUEST, rec, phys)

    def send_init(
        self, buf, count: int, dtype_v: int, dest: int, tag: int, comm_v: int
    ) -> int:
        self._enter()
        centry = self._comm(comm_v)
        dentry = self._dtype(dtype_v)
        phys = self.lower.send_init(
            buf, count, dentry.phys, dest, tag, centry.phys
        )
        rec = RequestRecord(
            kind="send", comm_vid=centry.vid, peer=dest, tag=tag,
            count=count, datatype_vid=dentry.vid, buf=buf, persistent=True,
        )
        return self.vids.attach(HandleKind.REQUEST, rec, phys)

    def recv_init(
        self, buf, count: int, dtype_v: int, source: int, tag: int,
        comm_v: int,
    ) -> int:
        self._enter()
        centry = self._comm(comm_v)
        dentry = self._dtype(dtype_v)
        phys = self.lower.recv_init(
            buf, count, dentry.phys, source, tag, centry.phys
        )
        rec = RequestRecord(
            kind="recv", comm_vid=centry.vid, peer=source, tag=tag,
            count=count, datatype_vid=dentry.vid, buf=buf, persistent=True,
        )
        return self.vids.attach(HandleKind.REQUEST, rec, phys)

    def start(self, request_v: int) -> None:
        self._enter()
        self._start_impl(request_v)

    def _start_impl(self, request_v: int) -> None:
        entry = self.vids.lookup(request_v, HandleKind.REQUEST)
        rec: RequestRecord = entry.record
        if not rec.persistent:
            raise MpiError("MPI_Start on a non-persistent request",
                           "MPI_ERR_REQUEST")
        if rec.active:
            raise MpiError("MPI_Start on an already-active request",
                           "MPI_ERR_REQUEST")
        rec.active = True
        rec.completed = False
        rec.status = None
        centry = self.vids.lookup(
            self.vids.embed(rec.comm_vid), HandleKind.COMM
        )
        if rec.kind == "recv":
            dentry = self.vids.lookup(
                self.vids.embed(rec.datatype_vid), HandleKind.DATATYPE
            )
            # Drained messages win over a fresh lower-half start.
            st = self._recv_from_drain(
                centry, dentry, rec.buf, rec.count, rec.peer, rec.tag
            )
            if st is not None:
                rec.completed = True
                rec.status = st
                return
            self.lower.start(entry.phys)
        else:
            self.lower.start(entry.phys)
            # Eager fabric: the lower send completed at start time; cycle
            # the lib request back to inactive so the next MPI_Start works.
            BaseMpiLib.test.__wrapped__(self.lower, entry.phys)
            if rec.peer != C.PROC_NULL:
                self._count_send(centry, rec.peer)
            rec.completed = True
            rec.status = Status()

    def startall(self, requests: Sequence[int]) -> None:
        self._enter()
        for r in requests:
            self._start_impl(r)

    def request_free(self, request_v: int) -> None:
        self._enter()
        entry = self.vids.lookup(request_v, HandleKind.REQUEST)
        rec: RequestRecord = entry.record
        if rec.active and not rec.completed:
            raise MpiError("freeing an active persistent request",
                           "MPI_ERR_REQUEST")
        if entry.phys is not None:
            self.lower.request_free(entry.phys)
        self.vids.remove(request_v)

    def test(self, request_v: int) -> Tuple[bool, Status]:
        self._enter()
        return self._test_impl(request_v)

    def _finish_cycle(self, request_v: int, rec: RequestRecord,
                      st: Status) -> Tuple[bool, Status]:
        """Deliver a completion: persistent requests go inactive,
        ordinary requests retire their virtual id."""
        if rec.persistent:
            rec.active = False
            rec.completed = False
            rec.status = None
            return True, st
        self.vids.remove(request_v)
        return True, st

    def _test_impl(self, request_v: int) -> Tuple[bool, Status]:
        entry = self.vids.lookup(request_v, HandleKind.REQUEST)
        rec: RequestRecord = entry.record
        if rec.persistent and not rec.active:
            return True, Status()  # inactive persistent: trivially done
        if rec.completed:
            return self._finish_cycle(request_v, rec, rec.status or Status())
        if entry.phys is None:
            # Pending but not posted in this lower half: the message can
            # only be in the drain buffer.
            centry = self.vids.lookup(
                self.vids.embed(rec.comm_vid), HandleKind.COMM
            )
            dentry = self.vids.lookup(
                self.vids.embed(rec.datatype_vid), HandleKind.DATATYPE
            )
            st = self._recv_from_drain(
                centry, dentry, rec.buf, rec.count, rec.peer, rec.tag
            )
            if st is None:
                return False, Status()
            return self._finish_cycle(request_v, rec, st)
        flag, st = BaseMpiLib.test.__wrapped__(self.lower, entry.phys)
        if not flag:
            return False, Status()
        centry = self.vids.lookup(
            self.vids.embed(rec.comm_vid), HandleKind.COMM
        )
        if rec.kind == "recv":
            self._count_recv(centry, st.source)
        return self._finish_cycle(request_v, rec, st)

    def wait(self, request_v: int) -> Status:
        self._enter()
        t_enter = self.clock.now
        while True:
            token = self.fabric.activity_token()
            flag, st = self._test_impl(request_v)
            if flag:
                self._extra_lib_calls(1)  # the MPI_Test that completed it
                self._charge_wait_polls(t_enter)
                return st
            self._maybe_checkpoint()
            self.fabric.wait_activity(token)
            if self.fabric.aborted:
                raise MpiError("job aborted during wait", "MPI_ERR_OTHER")

    def waitall(self, requests: Sequence[int]) -> List[Status]:
        self._enter()
        t_enter = self.clock.now
        statuses: List[Optional[Status]] = [None] * len(requests)
        pending = set(range(len(requests)))
        while pending:
            token = self.fabric.activity_token()
            progressed = False
            for i in list(pending):
                flag, st = self._test_impl(requests[i])
                if flag:
                    statuses[i] = st
                    pending.discard(i)
                    progressed = True
            if pending and not progressed:
                self._maybe_checkpoint()
                self.fabric.wait_activity(token)
                if self.fabric.aborted:
                    raise MpiError(
                        "job aborted during waitall", "MPI_ERR_OTHER"
                    )
        self._extra_lib_calls(len(requests))
        self._charge_wait_polls(t_enter)
        return [s if s is not None else Status() for s in statuses]

    def testall(self, requests: Sequence[int]) -> Tuple[bool, List[Status]]:
        self._enter()
        # Progress every incomplete request; completion is recorded in
        # the records, but virtual ids are only retired when ALL complete
        # (matching MPI_Testall's all-or-nothing contract).
        all_done = True
        for r in requests:
            entry = self.vids.lookup(r, HandleKind.REQUEST)
            rec: RequestRecord = entry.record
            if rec.completed or (rec.persistent and not rec.active):
                continue
            if entry.phys is None:
                centry = self.vids.lookup(
                    self.vids.embed(rec.comm_vid), HandleKind.COMM
                )
                dentry = self.vids.lookup(
                    self.vids.embed(rec.datatype_vid), HandleKind.DATATYPE
                )
                st = self._recv_from_drain(
                    centry, dentry, rec.buf, rec.count, rec.peer, rec.tag
                )
                if st is not None:
                    rec.completed = True
                    rec.status = st
                else:
                    all_done = False
                continue
            flag, st = BaseMpiLib.test.__wrapped__(self.lower, entry.phys)
            if flag:
                rec.completed = True
                rec.status = st
                if not rec.persistent:
                    self.vids.set_phys(r, None)
                centry = self.vids.lookup(
                    self.vids.embed(rec.comm_vid), HandleKind.COMM
                )
                if rec.kind == "recv":
                    self._count_recv(centry, st.source)
            else:
                all_done = False
        if not all_done:
            return False, []
        statuses = []
        for r in list(requests):
            flag, st = self._test_impl(r)
            statuses.append(st)
        return True, statuses

    def waitany(self, requests: Sequence[int]) -> Tuple[int, Status]:
        self._enter()
        if not requests:
            raise MpiError("waitany on empty request list", "MPI_ERR_REQUEST")
        t_enter = self.clock.now
        while True:
            token = self.fabric.activity_token()
            for i, r in enumerate(requests):
                flag, st = self._test_impl(r)
                if flag:
                    self._extra_lib_calls(1)
                    self._charge_wait_polls(t_enter)
                    return i, st
            self._maybe_checkpoint()
            self.fabric.wait_activity(token)
            if self.fabric.aborted:
                raise MpiError("job aborted during waitany", "MPI_ERR_OTHER")

    def testany(self, requests: Sequence[int]) -> Tuple[bool, int, Status]:
        self._enter()
        for i, r in enumerate(requests):
            flag, st = self._test_impl(r)
            if flag:
                return True, i, st
        return False, C.UNDEFINED, Status()

    def pack(self, inbuf, incount: int, dtype_v: int, outbuf,
             position: int) -> int:
        self._enter()
        return self.lower.pack(
            inbuf, incount, self.vids.phys(dtype_v, HandleKind.DATATYPE),
            outbuf, position,
        )

    def unpack(self, inbuf, position: int, outbuf, outcount: int,
               dtype_v: int) -> int:
        self._enter()
        return self.lower.unpack(
            inbuf, position, outbuf, outcount,
            self.vids.phys(dtype_v, HandleKind.DATATYPE),
        )

    def pack_size(self, incount: int, dtype_v: int) -> int:
        self._enter()
        return self.lower.pack_size(
            incount, self.vids.phys(dtype_v, HandleKind.DATATYPE)
        )

    def iprobe(self, source: int, tag: int, comm_v: int) -> Tuple[bool, Status]:
        self._enter()
        centry = self._comm(comm_v)
        msg = self.drain_buffer.match(
            centry.vid, self._src_world(centry, source), tag, remove=False
        )
        if msg is not None:
            return True, Status(
                source=msg.src_comm_rank, tag=msg.tag, count_bytes=msg.nbytes
            )
        return self.lower.iprobe(source, tag, centry.phys)

    def probe(self, source: int, tag: int, comm_v: int) -> Status:
        self._enter()
        t_enter = self.clock.now
        while True:
            token = self.fabric.activity_token()
            centry = self._comm(comm_v)
            msg = self.drain_buffer.match(
                centry.vid, self._src_world(centry, source), tag, remove=False
            )
            if msg is not None:
                return Status(
                    source=msg.src_comm_rank, tag=msg.tag,
                    count_bytes=msg.nbytes,
                )
            flag, st = BaseMpiLib.iprobe.__wrapped__(
                self.lower, source, tag, centry.phys
            )
            if flag:
                self._extra_lib_calls(1)
                self._charge_wait_polls(t_enter)
                return st
            self._maybe_checkpoint()
            self.fabric.wait_activity(token)
            if self.fabric.aborted:
                raise MpiError("job aborted during probe", "MPI_ERR_OTHER")

    def sendrecv(
        self,
        sendbuf, sendcount: int, sendtype_v: int, dest: int, sendtag: int,
        recvbuf, recvcount: int, recvtype_v: int, source: int, recvtag: int,
        comm_v: int,
    ) -> Status:
        self.send(sendbuf, sendcount, sendtype_v, dest, sendtag, comm_v)
        return self.recv(
            recvbuf, recvcount, recvtype_v, source, recvtag, comm_v
        )

    def get_count(self, status: Status, dtype_v: int) -> int:
        self._enter()
        dentry = self._dtype(dtype_v)
        return self.descriptor_of(dentry).count_elements(status.count_bytes)

    # ------------------------------------------------------------------
    # collective wrappers (two-phase)
    # ------------------------------------------------------------------
    def _two_phase(self, comm_entry) -> None:
        """Trivial barrier before the real collective (checkpoint never
        splits a communicator's ranks across a collective boundary)."""
        rec = comm_entry.record
        if not isinstance(rec, CommRecord) or len(rec.world_ranks) == 1:
            self._maybe_checkpoint()
            return
        if self.coordinator is None:
            return
        rec.coll_seq += 1
        self._extra_lib_calls(1)  # the two-phase barrier's extra round
        self.coordinator.trivial_barrier(
            comm_key=rec.key(),
            seq=rec.coll_seq,
            rank=self.rank,
            member_world_ranks=rec.world_ranks,
            park_check=self._maybe_checkpoint,
        )

    def barrier(self, comm_v: int) -> None:
        self._enter()
        entry = self._comm(comm_v)
        self._two_phase(entry)
        self.lower.barrier(entry.phys)

    def bcast(self, buf, count: int, dtype_v: int, root: int, comm_v: int):
        self._enter()
        entry = self._comm(comm_v)
        dentry = self._dtype(dtype_v)
        self._two_phase(entry)
        self.lower.bcast(buf, count, dentry.phys, root, entry.phys)

    def reduce(
        self, sendbuf, recvbuf, count: int, dtype_v: int, op_v: int,
        root: int, comm_v: int,
    ):
        self._enter()
        entry = self._comm(comm_v)
        self._two_phase(entry)
        self.lower.reduce(
            sendbuf, recvbuf, count,
            self.vids.phys(dtype_v, HandleKind.DATATYPE),
            self.vids.phys(op_v, HandleKind.OP),
            root, entry.phys,
        )

    def allreduce(
        self, sendbuf, recvbuf, count: int, dtype_v: int, op_v: int,
        comm_v: int,
    ):
        self._enter()
        entry = self._comm(comm_v)
        self._two_phase(entry)
        self.lower.allreduce(
            sendbuf, recvbuf, count,
            self.vids.phys(dtype_v, HandleKind.DATATYPE),
            self.vids.phys(op_v, HandleKind.OP),
            entry.phys,
        )

    def alltoall(
        self, sendbuf, sendcount: int, sendtype_v: int,
        recvbuf, recvcount: int, recvtype_v: int, comm_v: int,
    ):
        self._enter()
        entry = self._comm(comm_v)
        self._two_phase(entry)
        self.lower.alltoall(
            sendbuf, sendcount,
            self.vids.phys(sendtype_v, HandleKind.DATATYPE),
            recvbuf, recvcount,
            self.vids.phys(recvtype_v, HandleKind.DATATYPE),
            entry.phys,
        )

    def alltoallv(
        self, sendbuf, sendcounts, sdispls, sendtype_v: int,
        recvbuf, recvcounts, rdispls, recvtype_v: int, comm_v: int,
    ):
        self._enter()
        entry = self._comm(comm_v)
        self._two_phase(entry)
        self.lower.alltoallv(
            sendbuf, sendcounts, sdispls,
            self.vids.phys(sendtype_v, HandleKind.DATATYPE),
            recvbuf, recvcounts, rdispls,
            self.vids.phys(recvtype_v, HandleKind.DATATYPE),
            entry.phys,
        )

    def gather(
        self, sendbuf, sendcount: int, sendtype_v: int,
        recvbuf, recvcount: int, recvtype_v: int, root: int, comm_v: int,
    ):
        self._enter()
        entry = self._comm(comm_v)
        self._two_phase(entry)
        self.lower.gather(
            sendbuf, sendcount,
            self.vids.phys(sendtype_v, HandleKind.DATATYPE),
            recvbuf, recvcount,
            self.vids.phys(recvtype_v, HandleKind.DATATYPE),
            root, entry.phys,
        )

    def gatherv(
        self, sendbuf, sendcount: int, sendtype_v: int,
        recvbuf, recvcounts, displs, recvtype_v: int, root: int, comm_v: int,
    ):
        self._enter()
        entry = self._comm(comm_v)
        self._two_phase(entry)
        self.lower.gatherv(
            sendbuf, sendcount,
            self.vids.phys(sendtype_v, HandleKind.DATATYPE),
            recvbuf, recvcounts, displs,
            self.vids.phys(recvtype_v, HandleKind.DATATYPE),
            root, entry.phys,
        )

    def scatter(
        self, sendbuf, sendcount: int, sendtype_v: int,
        recvbuf, recvcount: int, recvtype_v: int, root: int, comm_v: int,
    ):
        self._enter()
        entry = self._comm(comm_v)
        self._two_phase(entry)
        self.lower.scatter(
            sendbuf, sendcount,
            self.vids.phys(sendtype_v, HandleKind.DATATYPE),
            recvbuf, recvcount,
            self.vids.phys(recvtype_v, HandleKind.DATATYPE),
            root, entry.phys,
        )

    def scatterv(
        self, sendbuf, sendcounts, displs, sendtype_v: int,
        recvbuf, recvcount: int, recvtype_v: int, root: int, comm_v: int,
    ):
        self._enter()
        entry = self._comm(comm_v)
        self._two_phase(entry)
        self.lower.scatterv(
            sendbuf, sendcounts, displs,
            self.vids.phys(sendtype_v, HandleKind.DATATYPE),
            recvbuf, recvcount,
            self.vids.phys(recvtype_v, HandleKind.DATATYPE),
            root, entry.phys,
        )

    def allgather(
        self, sendbuf, sendcount: int, sendtype_v: int,
        recvbuf, recvcount: int, recvtype_v: int, comm_v: int,
    ):
        self._enter()
        entry = self._comm(comm_v)
        self._two_phase(entry)
        self.lower.allgather(
            sendbuf, sendcount,
            self.vids.phys(sendtype_v, HandleKind.DATATYPE),
            recvbuf, recvcount,
            self.vids.phys(recvtype_v, HandleKind.DATATYPE),
            entry.phys,
        )

    def allgatherv(
        self, sendbuf, sendcount: int, sendtype_v: int,
        recvbuf, recvcounts, displs, recvtype_v: int, comm_v: int,
    ):
        self._enter()
        entry = self._comm(comm_v)
        self._two_phase(entry)
        self.lower.allgatherv(
            sendbuf, sendcount,
            self.vids.phys(sendtype_v, HandleKind.DATATYPE),
            recvbuf, recvcounts, displs,
            self.vids.phys(recvtype_v, HandleKind.DATATYPE),
            entry.phys,
        )

    def scan(
        self, sendbuf, recvbuf, count: int, dtype_v: int, op_v: int,
        comm_v: int,
    ):
        self._enter()
        entry = self._comm(comm_v)
        self._two_phase(entry)
        self.lower.scan(
            sendbuf, recvbuf, count,
            self.vids.phys(dtype_v, HandleKind.DATATYPE),
            self.vids.phys(op_v, HandleKind.OP),
            entry.phys,
        )

    def exscan(
        self, sendbuf, recvbuf, count: int, dtype_v: int, op_v: int,
        comm_v: int,
    ):
        self._enter()
        entry = self._comm(comm_v)
        self._two_phase(entry)
        self.lower.exscan(
            sendbuf, recvbuf, count,
            self.vids.phys(dtype_v, HandleKind.DATATYPE),
            self.vids.phys(op_v, HandleKind.OP),
            entry.phys,
        )

    def reduce_scatter_block(
        self, sendbuf, recvbuf, recvcount: int, dtype_v: int, op_v: int,
        comm_v: int,
    ):
        self._enter()
        entry = self._comm(comm_v)
        self._two_phase(entry)
        self.lower.reduce_scatter_block(
            sendbuf, recvbuf, recvcount,
            self.vids.phys(dtype_v, HandleKind.DATATYPE),
            self.vids.phys(op_v, HandleKind.OP),
            entry.phys,
        )

    # ------------------------------------------------------------------
    # datatype wrappers
    # ------------------------------------------------------------------
    def _attach_datatype(self, phys: int) -> int:
        return self.vids.attach(
            HandleKind.DATATYPE, DatatypeRecord(descriptor=None), phys
        )

    def type_contiguous(self, count: int, oldtype_v: int) -> int:
        self._enter()
        phys = self.lower.type_contiguous(
            count, self.vids.phys(oldtype_v, HandleKind.DATATYPE)
        )
        return self._attach_datatype(phys)

    def type_vector(
        self, count: int, blocklength: int, stride: int, oldtype_v: int
    ) -> int:
        self._enter()
        phys = self.lower.type_vector(
            count, blocklength, stride,
            self.vids.phys(oldtype_v, HandleKind.DATATYPE),
        )
        return self._attach_datatype(phys)

    def type_indexed(
        self, blocklengths: Sequence[int], displacements: Sequence[int],
        oldtype_v: int,
    ) -> int:
        self._enter()
        phys = self.lower.type_indexed(
            blocklengths, displacements,
            self.vids.phys(oldtype_v, HandleKind.DATATYPE),
        )
        return self._attach_datatype(phys)

    def type_create_struct(
        self, blocklengths: Sequence[int], displacements: Sequence[int],
        types_v: Sequence[int],
    ) -> int:
        self._enter()
        phys = self.lower.type_create_struct(
            blocklengths, displacements,
            [self.vids.phys(t, HandleKind.DATATYPE) for t in types_v],
        )
        return self._attach_datatype(phys)

    def type_dup(self, oldtype_v: int) -> int:
        self._enter()
        entry = self._dtype(oldtype_v)
        phys = self.lower.type_dup(entry.phys)
        vh = self._attach_datatype(phys)
        new_entry = self._dtype(vh)
        if isinstance(entry.record, DatatypeRecord):
            new_entry.record.descriptor = entry.record.descriptor
            new_entry.record.committed = entry.record.committed
        return vh

    def type_commit(self, dtype_v: int) -> None:
        self._enter()
        entry = self._dtype(dtype_v)
        self.lower.type_commit(entry.phys)
        rec = entry.record
        if isinstance(rec, DatatypeRecord):
            # Decode now, through get_envelope/get_contents (§5 cat. 2):
            # the record must be reconstructible in any implementation.
            rec.descriptor = replay_mod.decode_datatype(self.lower, entry.phys)
            rec.committed = True

    def type_free(self, dtype_v: int) -> None:
        self._enter()
        entry = self._dtype(dtype_v)
        if entry.constant_name is not None:
            raise MpiError(
                f"cannot free predefined type {entry.constant_name}",
                "MPI_ERR_TYPE",
            )
        self.lower.type_free(entry.phys)
        self.vids.remove(dtype_v)

    def type_size(self, dtype_v: int) -> int:
        self._enter()
        return self.lower.type_size(self.vids.phys(dtype_v, HandleKind.DATATYPE))

    def type_get_extent(self, dtype_v: int) -> Tuple[int, int]:
        self._enter()
        return self.lower.type_get_extent(
            self.vids.phys(dtype_v, HandleKind.DATATYPE)
        )

    def type_get_envelope(self, dtype_v: int):
        self._enter()
        return self.lower.type_get_envelope(
            self.vids.phys(dtype_v, HandleKind.DATATYPE)
        )

    def type_get_contents(self, dtype_v: int):
        self._enter()
        entry = self._dtype(dtype_v)
        integers, addresses, inner_phys = self.lower.type_get_contents(
            entry.phys
        )
        inner_v = [self._vid_for_phys_datatype(p) for p in inner_phys]
        return integers, addresses, inner_v

    def _vid_for_phys_datatype(self, phys: int) -> int:
        """Physical -> virtual for datatypes returned by the lower half.

        This is the wrapper the paper notes as the (rare) consumer of
        reverse translation: O(1) in the new design, O(n) in the legacy.
        """
        vh = self.vids.vid_of_phys(HandleKind.DATATYPE, phys)
        if vh is not None:
            return vh
        # A predefined type the app never touched?  Bind its constant.
        for name in C.PREDEFINED_DATATYPES:
            try:
                if self.lower.constant(name) == phys:
                    return self._constant_handle(name)
            except MpiError:
                continue
        # A brand-new derived handle created by get_contents itself.
        vh = self._attach_datatype(phys)
        entry = self._dtype(vh)
        entry.record.descriptor = replay_mod.decode_datatype(self.lower, phys)
        return vh

    # ------------------------------------------------------------------
    # op wrappers
    # ------------------------------------------------------------------
    def op_create(self, fn: Callable, commute: bool) -> int:
        self._enter()
        name = USER_OPS.name_of(fn)
        if name is None:
            raise MpiError(
                "MPI_Op_create under MANA requires the function to be "
                "registered via repro.util.registry.user_op so it can be "
                "re-created at restart",
                "MPI_ERR_OP",
            )
        phys = self.lower.op_create(fn, commute)
        rec = OpRecord(registry_name=name, commute=commute)
        return self.vids.attach(HandleKind.OP, rec, phys)

    def op_free(self, op_v: int) -> None:
        self._enter()
        entry = self.vids.lookup(op_v, HandleKind.OP)
        if entry.constant_name is not None:
            raise MpiError(
                f"cannot free predefined op {entry.constant_name}",
                "MPI_ERR_OP",
            )
        self.lower.op_free(entry.phys)
        self.vids.remove(op_v)

    # ------------------------------------------------------------------
    # communicator attribute wrappers
    # ------------------------------------------------------------------
    # Attributes are served entirely from the MANA records (never from
    # the lower half): they are upper-half data, so they checkpoint and
    # restart for free — including across MPI implementations, and even
    # on implementations whose native attribute support is missing.

    def _comm_attrs(self, comm_v: int) -> dict:
        entry = self._comm(comm_v)
        rec = entry.record
        if not isinstance(rec, CommRecord):
            raise MpiError("not an attribute-capable comm", "MPI_ERR_COMM")
        return rec.attributes

    def comm_create_keyval(self) -> int:
        self._enter()
        kv = self.vids.next_keyval
        self.vids.next_keyval += 1
        self.vids.live_keyvals.add(kv)
        return kv

    def comm_free_keyval(self, keyval: int) -> None:
        self._enter()
        if keyval not in self.vids.live_keyvals:
            raise MpiError(f"unknown keyval {keyval}", "MPI_ERR_KEYVAL")
        self.vids.live_keyvals.discard(keyval)

    def comm_set_attr(self, comm_v: int, keyval: int, value) -> None:
        self._enter()
        if keyval not in self.vids.live_keyvals:
            raise MpiError(f"unknown keyval {keyval}", "MPI_ERR_KEYVAL")
        self._comm_attrs(comm_v)[keyval] = value

    def comm_get_attr(self, comm_v: int, keyval: int):
        self._enter()
        attrs = self._comm_attrs(comm_v)
        if keyval in attrs:
            return True, attrs[keyval]
        return False, None

    def comm_delete_attr(self, comm_v: int, keyval: int) -> None:
        self._enter()
        self._comm_attrs(comm_v).pop(keyval, None)

    # ------------------------------------------------------------------
    # cartesian topology wrappers
    # ------------------------------------------------------------------
    def cart_create(
        self, comm_v: int, dims: Sequence[int], periods: Sequence[bool],
        reorder: bool = False,
    ) -> int:
        self._enter()
        entry = self._comm(comm_v)
        self._two_phase(entry)
        phys = self.lower.cart_create(entry.phys, dims, periods, reorder)
        if self.lower.handles.is_null(HandleKind.COMM, phys):
            return self.null_vhandle(HandleKind.COMM)
        cart = (tuple(dims), tuple(bool(p) for p in periods))
        return self._attach_comm(phys, name="cart", cart=cart)

    def _cart_info(self, comm_v: int) -> Tuple[CommRecord, CartInfo]:
        entry = self._comm(comm_v)
        rec = entry.record
        if not isinstance(rec, CommRecord) or rec.cart is None:
            raise MpiError(
                "communicator has no cartesian topology", "MPI_ERR_TOPOLOGY"
            )
        return rec, CartInfo(rec.cart[0], rec.cart[1])

    def cart_coords(self, comm_v: int, rank: int) -> Tuple[int, ...]:
        # Served from the MANA record: topology is MANA-internal metadata,
        # which also survives the comm_split-based restart replay.
        self._enter()
        _, info = self._cart_info(comm_v)
        return info.coords_of(rank)

    def cart_rank(self, comm_v: int, coords: Sequence[int]) -> int:
        self._enter()
        _, info = self._cart_info(comm_v)
        return info.rank_of(tuple(coords))

    def cart_shift(
        self, comm_v: int, direction: int, disp: int
    ) -> Tuple[int, int]:
        self._enter()
        rec, info = self._cart_info(comm_v)
        my = rec.world_ranks.index(self.rank)
        return info.shift(my, direction, disp)

    # ------------------------------------------------------------------
    # checkpoint participation (the rank side of the coordinator dance)
    # ------------------------------------------------------------------
    def checkpoint_participate(self) -> None:
        """Run this rank's part of a checkpoint.  Called from any safe
        point; returns when the job resumes (or raises JobPreempted).

        An aborted round (injected coordinator stall, or a failure
        detected mid-round) surfaces as :class:`CheckpointRoundAborted`
        out of the phase calls; while the coordinator keeps the same
        ticket armed — it bounds retries — this rank simply re-enters
        the round."""
        coord = self.coordinator
        while True:
            ticket = coord.intent
            if ticket is None:
                return
            try:
                self._participate_once(ticket)
                return
            except CheckpointRoundAborted:
                self._active_ticket = None
                # Re-read the intent: the coordinator either re-armed the
                # same ticket (retry the round) or failed it (return to
                # the application).
                continue

    def _participate_once(self, ticket) -> None:
        """One attempt at the quiesce → drain → save → resume round."""
        coord = self.coordinator
        self._active_ticket = ticket
        attempt = coord.begin_participation(self.rank)

        coord.quiesce(self.rank, self.clock.now, attempt)
        if self.injector is not None:
            self.injector.crash_point(
                "pre-drain", self.rank, ticket.generation, self.clock.now
            )
        # From here until resume, every lower-half call is MANA-internal
        # (the app is parked); record the delta to audit the paper's
        # Section 5 required-subset claim.
        calls_before = dict(self.lower.call_counts)
        run_drain(self)
        if self.injector is not None:
            self.injector.crash_point(
                "post-drain", self.rank, ticket.generation, self.clock.now
            )
        coord.drained(self.rank, attempt)

        nbytes, savestats = self._write_image(ticket)
        coord.saved(self.rank, nbytes, attempt, stats=savestats)

        # Charge the checkpoint's cost to virtual time (Table 3 model).
        start, duration = coord.checkpoint_timing()
        self.clock.merge(start)
        self.clock.advance(duration, "checkpoint")

        if self.rank == 0 and not coord.async_round():
            # Async rounds: the background drainer writes the manifest
            # once every image is durable (and prunes afterwards) — a
            # manifest written here would mark a generation restorable
            # while its images are still draining.
            extra = {"vid_design": self.vids.design_name}
            if coord.elastic_provenance is not None:
                extra["elastic"] = dict(coord.elastic_provenance)
            ckpt.write_manifest(
                self.ckpt_dir,
                ticket.generation,
                nranks=self.fabric.nranks,
                impl=self.impl_name,
                kind=ticket.kind,
                cold_restartable=(ticket.kind == CheckpointKind.LOOP),
                loop_target=coord.loop_target(),
                extra=extra,
                dedup=coord.last_dedup,
            )
            if coord.keep_generations:
                ckpt.prune_generations(self.ckpt_dir, coord.keep_generations)

        if ticket.mode == CheckpointMode.RELAUNCH:
            self._relaunch_lower()
            # Replay ran against a brand-new library: audit it all.
            self.last_internal_calls = dict(self.lower.call_counts)
        else:
            self.last_internal_calls = {
                name: n - calls_before.get(name, 0)
                for name, n in self.lower.call_counts.items()
                if n > calls_before.get(name, 0)
            }

        coord.resumed(self.rank, attempt)
        self._active_ticket = None

        if ticket.mode == CheckpointMode.EXIT:
            raise JobPreempted(ticket.generation)

    def _write_image(self, ticket):
        """Serialize and persist this rank's image; returns
        ``(logical_bytes, savestats_or_None)``.

        With a chunk store configured the write goes through the format-5
        incremental path (chunked, deduped, compressed) on the
        coordinator's save worker pool; otherwise the monolithic format-4
        path.  ``logical_bytes`` is always the logical upper-half size —
        the quantity Table 3's filesystem model is calibrated against —
        never the post-dedup physical bytes.
        """
        loops = dict(self._ctx._loops) if self._ctx is not None else {}
        image = ckpt.CheckpointImage(
            rank=self.rank,
            nranks=self.fabric.nranks,
            impl=self.impl_name,
            kind=ticket.kind,
            generation=ticket.generation,
            app=self._app,
            loops=loops,
            vid_table=self.vids,
            drain_buffer=self.drain_buffer,
            clock_state=self.clock.get_state(),
            rng_state=None,
            cs_count=self.cs_count,
            epoch=self.epoch,
        )
        path = ckpt.rank_image_path(self.ckpt_dir, ticket.generation, self.rank)
        coord = self.coordinator
        savestats = None
        if coord.async_round():
            # Async save: the pickle below IS the snapshot — a cheap,
            # consistent copy taken while every rank is parked.  The
            # encode+write moves to the coordinator's background
            # drainer; this rank resumes computing after the barrier.
            blob = ckpt._pickle_upper_half(image)
            manifest = None
            if self.rank == 0:
                extra = {
                    "vid_design": self.vids.design_name,
                    "async": True,
                }
                if coord.elastic_provenance is not None:
                    extra["elastic"] = dict(coord.elastic_provenance)
                manifest = {
                    "nranks": self.fabric.nranks,
                    "impl": self.impl_name,
                    "kind": ticket.kind,
                    "cold_restartable": ticket.kind == CheckpointKind.LOOP,
                    "extra": extra,
                    "keep_generations": coord.keep_generations,
                }
            coord.stage_async_blob(self.rank, path, image, blob, manifest)
            nbytes = len(blob)
        elif coord.chunk_store is not None:
            savestats = coord.run_save(
                lambda pool: ckpt.save_chunked_image(
                    path, image, coord.chunk_store,
                    injector=self.injector, vtime=self.clock.now,
                    pool=pool,
                )
            )
            nbytes = savestats["payload_bytes"] + savestats["file_bytes"]
        else:
            nbytes = ckpt.save_image(path, image, injector=self.injector,
                                     vtime=self.clock.now)
        # Proxy applications hold a scaled-down working set; they declare
        # the full-size resident bytes the real application would have
        # checkpointed (Table 3 image sizes).  Accounting — not storage.
        extra = getattr(self._app, "simulated_state_bytes", 0) or 0
        return nbytes + int(extra), savestats

    def _relaunch_lower(self) -> None:
        """Discard the lower half and rebuild it — the restart path of
        Figure 1, exercised without killing the process."""
        self.lower.shutdown()
        self.epoch += 1
        self.lower = make_lib(
            self.impl_name, self.fabric, self.rank, self.clock,
            self.cost_model, epoch=self.epoch, seed=self.seed,
        )
        self.lower.init()
        self.vids.handle_bits = self.lower.handles.handle_bits
        # Invalidate every physical binding, then replay.
        for entry in list(self.vids.entries()):
            if entry.phys is not None:
                self.vids.set_phys(self.vids.embed(entry.vid), None)
        replay_mod.replay_all(self)


class ManaFacade(FacadeBase):
    """The application-visible MPI surface, MANA edition.

    Identical shape to :class:`repro.impls.facade.NativeFacade`; constants
    resolve to *virtual* handles that stay stable across checkpoints,
    restarts, and even MPI implementations.
    """

    def __init__(self, mana: ManaRank):
        self._mana = mana

    @property
    def impl_name(self) -> str:
        return self._mana.impl_name

    @property
    def handle_bits(self) -> int:
        return self._mana.lower.handles.handle_bits

    def __getattr__(self, attr: str):
        mana = object.__getattribute__(self, "_mana")
        const = _CONSTANT_ATTRS.get(attr)
        if const is not None:
            return mana._constant_handle(const)
        kind = _NULL_ATTRS.get(attr)
        if kind is not None:
            return mana.null_vhandle(kind)
        if hasattr(ManaRank, attr) and not attr.startswith("_"):
            return getattr(mana, attr)
        raise AttributeError(f"MANA MPI facade has no attribute {attr!r}")
