"""Background drainer for asynchronous format-5 checkpoints.

The synchronous save path keeps every rank parked while its chunks are
hashed, compressed, and written.  The async path (PROTOCOLS.md §11)
splits the round at the save barrier: each rank *snapshots* — stages the
already-pickled bytes of its upper half with the coordinator — and
resumes computing; this module's single drainer thread then encodes and
writes the whole generation in the background.

Invariants the drainer maintains:

* **At most one drain in flight.**  The coordinator's save-gate action
  waits (wall-clock) for the previous drain before admitting the next
  round — natural back-pressure, and the reason the virtual-time
  *overrun* accounting needs to consider only one outstanding drain.
* **No half-visible generations.**  The generation is pinned
  (:func:`repro.mana.checkpoint.pin_generation`) before its first image
  is written and chunk digests are store-pinned while their referencing
  header is in flight, so concurrent pruning/GC cannot reclaim what the
  drain is about to reference.  The manifest — what marks a generation
  restorable — is written only after every rank image is durable.
* **Deterministic failure.**  An injected fault during the drain deletes
  the generation's partial rank images (the chunk store is
  content-addressed, so orphan chunks are harmless until GC'd), records
  an ``async-drain-failed`` round event, and fails the ticket; restarts
  fall back to the previous complete generation exactly as they would
  after a synchronous mid-save crash.
* **Tickets complete after resume.**  The ticket's ``_done`` fires only
  once the round's ranks have passed the resume gate *and* the drain has
  settled, so ``request_checkpoint``'s one-in-flight check never sees a
  done ticket whose round is still holding gates.

Nothing the drainer measures in wall-clock ever reaches a virtual
clock: time charged to the simulation is derived from byte counts by
:class:`repro.simtime.cost.CheckpointCostModel` in the coordinator.
"""

from __future__ import annotations

import glob
import os
import queue
import threading
from dataclasses import dataclass
from typing import Dict, Optional

from repro.mana import checkpoint as ckpt
from repro.mana import storeio
from repro.mana.journal import Journal


@dataclass
class DrainJob:
    """One staged generation: everything the drainer needs to make it
    durable without touching live rank state."""

    generation: int
    ticket: object
    #: rank -> {"path": image path, "image": CheckpointImage,
    #:          "blob": pickled upper half (the snapshot)}
    ranks: Dict[int, Dict]
    #: Rank 0's manifest fields (None when another round already failed).
    manifest: Optional[Dict]
    #: Set by the coordinator once the round's ranks passed resume.
    resume_event: threading.Event
    #: Virtual time of the snapshot barrier (fault-hook timestamps).
    vtime: float
    #: Mean logical bytes per rank (drain_time modeling in the result).
    logical_mean: float


class AsyncSaveDrainer:
    """Single background thread that drains staged checkpoint
    generations for one coordinator."""

    def __init__(self, coordinator):
        self.coordinator = coordinator
        self._q: "queue.Queue[Optional[DrainJob]]" = queue.Queue()
        self._idle = threading.Event()
        self._idle.set()
        #: Summary of the most recently settled drain:
        #: {"generation": int, "dedup": dict-or-None (None = failed)}.
        self.last_drain: Optional[Dict] = None
        self._thread = threading.Thread(
            target=self._run, name="ckpt-drain", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    def submit(self, job: DrainJob) -> None:
        self._idle.clear()
        self._q.put(job)

    def wait_idle(self, timeout: Optional[float] = None) -> Optional[Dict]:
        """Block until no drain is in flight; returns the last drain's
        summary (or None if nothing ever drained)."""
        self._idle.wait(timeout)
        return self.last_drain

    def shutdown(self, timeout: float = 300.0) -> None:
        """Finish queued drains, then stop the thread."""
        self.wait_idle(timeout)
        self._q.put(None)
        self._thread.join(timeout=10.0)

    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            job = self._q.get()
            if job is None:
                return
            try:
                self._drain_one(job)
            finally:
                if self._q.empty():
                    self._idle.set()

    def _drain_one(self, job: DrainJob) -> None:
        # Everything the drainer writes is labeled with the "drain"
        # operation context, so its crash points are named drain.* and a
        # crash-injection sweep can target the async path separately
        # from the synchronous save path.
        with storeio.op_context("drain"):
            self._drain_one_inner(job)

    def _drain_one_inner(self, job: DrainJob) -> None:
        coord = self.coordinator
        base = coord.ckpt_dir
        store = coord.chunk_store
        ckpt.pin_generation(base, job.generation)
        pinned = True
        stats: Dict[int, Dict] = {}
        error: Optional[BaseException] = None
        try:
            pool = coord.save_pool()
            for rank in sorted(job.ranks):
                item = job.ranks[rank]
                stats[rank] = ckpt.save_chunked_blob(
                    item["path"], item["image"], item["blob"], store,
                    injector=coord.injector, vtime=job.vtime,
                    pool=pool, pin=True,
                )
        except BaseException as exc:  # noqa: BLE001 - fault => fail gen
            error = exc
        try:
            if error is None:
                # Journal the finalize as one unit: manifest commit plus
                # the post-commit prune.  A crash in between leaves the
                # record pending and fsck rolls forward (the manifest is
                # on disk) and finishes any half-done prune.
                fin = Journal(base).begin(
                    "drain-finalize", generation=job.generation
                )
                dedup = self._finish_generation(job, stats)
            else:
                dedup = None
                self._abandon_generation(job, error)
            # The generation is now either fully durable (manifest on
            # disk) or fully gone — safe to unpin before pruning so the
            # fresh generation counts toward keep_generations.
            ckpt.unpin_generation(base, job.generation)
            pinned = False
            if error is None and job.manifest is not None:
                keep = job.manifest.get("keep_generations")
                if keep:
                    ckpt.prune_generations(base, keep)
            if error is None:
                Journal(base).retire(fin)
        finally:
            if pinned:
                ckpt.unpin_generation(base, job.generation)
        self.last_drain = {"generation": job.generation, "dedup": dedup}
        # Complete the ticket only after the ranks passed resume (or the
        # coordinator aborted and they never will).
        while not job.resume_event.wait(0.05):
            if coord._aborted is not None:
                break
        t = job.ticket
        if t is not None:
            t._done.set()

    # ------------------------------------------------------------------
    def _finish_generation(self, job: DrainJob,
                           stats: Dict[int, Dict]) -> Dict:
        coord = self.coordinator
        payload = sum(s["payload_bytes"] for s in stats.values())
        written = sum(s["bytes_written"] for s in stats.values())
        frac = written / payload if payload else 1.0
        dedup = {
            "format": 5,
            "chunks_total": sum(s["chunks_total"] for s in stats.values()),
            "chunks_written": sum(
                s["chunks_written"] for s in stats.values()
            ),
            "chunks_reused": sum(s["chunks_reused"] for s in stats.values()),
            "bytes_written": written,
            "payload_bytes": payload,
            "written_fraction": round(frac, 6),
        }
        coord.last_dedup = dedup
        t = job.ticket
        if t is not None:
            t.result["dedup"] = dedup
            # The modeled background cost of this drain — what the next
            # round's overrun accounting will charge if it arrives
            # before this much virtual time has passed.
            written_logical = int(job.logical_mean * min(1.0, frac))
            t.result["drain_time"] = coord.ckpt_cost.drain_time(
                coord.fs_profile, coord.nranks,
                int(job.logical_mean), written_logical,
            )
        if job.manifest is not None:
            m = job.manifest
            ckpt.write_manifest(
                coord.ckpt_dir,
                job.generation,
                nranks=m["nranks"],
                impl=m["impl"],
                kind=m["kind"],
                cold_restartable=m["cold_restartable"],
                loop_target=m.get("loop_target"),
                extra=m.get("extra"),
                dedup=dedup,
            )
        return dedup

    def _abandon_generation(self, job: DrainJob,
                            error: BaseException) -> None:
        """A drain fault fails the whole generation: remove its partial
        rank images so no restart can pick a half-written generation
        (orphaned chunks are reclaimed by the next GC)."""
        coord = self.coordinator
        for item in job.ranks.values():
            # Both the durable image and any torn temp file an injected
            # mid-save fault left behind (unique per-writer names plus
            # the legacy bare ``.tmp`` suffix).
            victims = [item["path"], item["path"] + ".tmp"]
            victims += glob.glob(glob.escape(item["path"]) + ".*.tmp")
            for victim in victims:
                try:
                    os.remove(victim)
                except OSError:
                    pass
        # The rollback happened in-process — the drainer survives the
        # fault — so this generation's pending image-save records must
        # be retired here, or a later fsck would mistake the *handled*
        # fault for a dirty shutdown.
        Journal(coord.ckpt_dir).retire_matching(
            op="image-save", generation=job.generation
        )
        ckpt.invalidate_checkpoint_caches(coord.ckpt_dir)
        coord.round_events.append({
            "event": "async-drain-failed",
            "generation": job.generation,
            "error": str(error),
        })
        t = job.ticket
        if t is not None and t.error is None:
            t.error = error
