"""The NEW virtual-id architecture (paper Section 4.2).

One table for all five MPI object kinds.  A virtual id is a 32-bit
integer::

    [ kind:3 | index:29 ]

and is *embedded into the first 32 bits of whatever MPI object type the
target implementation's mpi.h declares*:

* 32-bit handle types (MPICH family): the virtual id IS the handle value
  the application sees;
* 64-bit handle types (Open MPI, ExaMPI pointers): the virtual id
  occupies the low 32 bits, and the high 32 bits carry a MANA tag so a
  stray physical pointer can never be mistaken for a virtual handle.

For communicators (and groups) the index embeds the *ggid* — the global
group id derived from world-rank membership — so a communicator's
virtual id is identical on every member rank and across restarts.

Each table entry carries the reconstruction record and MANA-internal
metadata (drain counters, collective sequence numbers), eliminating the
old design's per-datum side maps: one lookup returns everything
(Section 4.1, problem 3).

Ggid computation policy is pluggable (Section 9 future work): ``eager``
computes the ggid at communicator creation, ``lazy`` defers it to
checkpoint time, ``hybrid`` defers but caches by membership so
create/free loops pay the hash at most once per distinct membership.

Hot-path fast lane
------------------
``lookup``/``phys`` are called on every wrapper crossing — millions of
times per simulated job — so the table keeps two small caches in front
of the full translation path:

* an *entry cache* mapping an application-held vhandle (either embedding
  width) directly to its live :class:`VidEntry`, skipping ``extract``;
* per-kind *phys caches* (one dict per handle kind, precomputed at
  construction) so ``phys(vhandle, kind)`` on the hot wrapper paths is a
  single dict hit that also enforces the kind check by construction.

Invalidation protocol (docs/PROTOCOLS.md §8): ``set_phys`` and
``remove`` evict both embedding widths of the affected vid from every
cache; ``rebuild_reverse`` (the restart-replay epilogue) and any
``handle_bits`` change (a lower-half swap, possibly to a different
implementation) clear everything and bump ``cache_epoch``.  The caches
never survive pickling.  ``lookup_count`` is incremented exactly once
per translation whether served fast or slow, so the §6.3 ablation
numbers are unchanged.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from repro.mana.records import (
    CommRecord,
    ConstantRecord,
    GroupRecord,
    RequestRecord,
)
from repro.mpi.api import HandleKind
from repro.mpi.group import ggid_of
from repro.util.bits import BitField
from repro.util.errors import ElasticRestartError, InvalidHandleError
from repro.util.rng import _stable_hash

VID_LAYOUT = BitField(32, [("kind", 3), ("index", 29)])
INDEX_MASK = (1 << 29) - 1

KIND_TAGS = {
    HandleKind.COMM: 1,
    HandleKind.GROUP: 2,
    HandleKind.DATATYPE: 3,
    HandleKind.OP: 4,
    HandleKind.REQUEST: 5,
}
TAG_KINDS = {v: k for k, v in KIND_TAGS.items()}

#: High-word tag for 64-bit embeddings: "MANA" in ASCII.
MANA_MAGIC = 0x4D414E41

#: Cost (virtual seconds) of hashing one member world rank into a ggid —
#: the unit the eager/lazy ggid ablation measures.
GGID_HASH_COST_PER_RANK = 12e-9


class GgidPolicy:
    """When communicator ggids are computed (paper §9)."""

    EAGER = "eager"
    LAZY = "lazy"
    HYBRID = "hybrid"
    ALL = (EAGER, LAZY, HYBRID)


@dataclass
class VidEntry:
    """One row of the virtual-id table.

    ``phys`` is the current lower half's physical id — transient by
    definition: it is dropped when the entry is pickled into a
    checkpoint image and rebound by replay at restart.
    """

    vid: int             # full 32-bit virtual id (kind tag included)
    kind: str
    record: object       # reconstruction record (records.py)
    phys: Optional[int]  # physical id in the CURRENT lower half
    creation_seq: int
    constant_name: Optional[str] = None

    def __getstate__(self):
        state = self.__dict__.copy()
        state["phys"] = None  # physical ids are meaningless after restart
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)

    @property
    def index(self) -> int:
        return self.vid & INDEX_MASK


class VirtualIdTable:
    """The single-table virtual-id manager (the paper's new design)."""

    design_name = "new"

    def __init__(
        self,
        handle_bits: int = 32,
        ggid_policy: str = GgidPolicy.EAGER,
        clock=None,
    ):
        if ggid_policy not in GgidPolicy.ALL:
            raise ValueError(f"unknown ggid policy {ggid_policy!r}")
        self._init_fast_lane()
        self.handle_bits = handle_bits
        self.ggid_policy = ggid_policy
        self.clock = clock  # charged for ggid hashing when set
        self._entries: Dict[int, VidEntry] = {}
        self._reverse: Dict[Tuple[str, int], int] = {}  # (kind, phys) -> vid
        self._constants: Dict[str, int] = {}            # name -> vid
        self._seq = itertools.count(1)
        self._next_index: Dict[str, int] = {k: 1 for k in HandleKind.ALL}
        self._ggid_cache: Dict[Tuple[int, ...], int] = {}  # hybrid policy
        # Monotonic per-membership communicator incarnation counter: the
        # dup_seq of a new communicator.  Monotonicity (never reset by
        # comm_free) keeps (ggid, dup_seq) keys unique across create/free
        # cycles — required by the two-phase collective barrier.  Stored
        # here so it is checkpointed with the table.
        self.membership_incarnations: Dict[Tuple[int, ...], int] = {}
        # instrumentation for the lookup-cost ablation
        self.lookup_count = 0
        # Wrapper-level attribute keyvals (MPI_Comm_create_keyval):
        # persisted with the table so keyvals held in application state
        # stay valid across cold restarts.
        self.live_keyvals: set = set()
        self.next_keyval: int = 1

    # ------------------------------------------------------------------
    # hot-path fast lane (see module docstring for the protocol)
    # ------------------------------------------------------------------
    def _init_fast_lane(self) -> None:
        # vhandle (either width) -> live VidEntry
        self._fast: Dict[int, VidEntry] = {}
        # per-kind dispatch: kind (or None) -> {vhandle: phys}
        self._physcache: Dict[Optional[str], Dict[int, int]] = {
            None: {}, **{k: {} for k in HandleKind.ALL}
        }
        self.cache_hits = 0
        self.cache_epoch = 0

    @property
    def handle_bits(self) -> int:
        return self._handle_bits

    @handle_bits.setter
    def handle_bits(self, bits: int) -> None:
        # A width change means the lower half was swapped (bootstrap,
        # relaunch, or cross-impl restart): nothing cached can be trusted.
        self._handle_bits = bits
        self.invalidate_cache()

    def invalidate_cache(self) -> None:
        """Drop every fast-lane entry and start a new cache epoch."""
        self._fast.clear()
        for c in self._physcache.values():
            c.clear()
        self.cache_epoch += 1

    def _invalidate(self, vid: int) -> None:
        """Evict one vid — under both embedding widths — from all caches."""
        for key in (vid, (MANA_MAGIC << 32) | vid):
            self._fast.pop(key, None)
            for c in self._physcache.values():
                c.pop(key, None)

    # ------------------------------------------------------------------
    # embedding (paper §4.2: vid occupies the first 32 bits of the
    # implementation's MPI object type)
    # ------------------------------------------------------------------
    def embed(self, vid: int) -> int:
        """Wrap a 32-bit vid as a handle of the declared width."""
        if self.handle_bits == 32:
            return vid
        return (MANA_MAGIC << 32) | vid

    @staticmethod
    def extract(vhandle: int) -> int:
        """Recover the 32-bit vid from an application-held handle.

        Accepts both widths regardless of the current implementation, so
        upper-half memory checkpointed under a 32-bit-handle MPI can be
        restarted under a 64-bit-handle MPI and vice versa.
        """
        if vhandle < 0:
            raise InvalidHandleError(f"negative handle {vhandle}")
        if vhandle < (1 << 32):
            return vhandle
        if (vhandle >> 32) != MANA_MAGIC:
            raise InvalidHandleError(
                f"{vhandle:#x} is not a MANA virtual handle "
                f"(missing MANA tag in high word)"
            )
        return vhandle & 0xFFFFFFFF

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def attach(
        self,
        kind: str,
        record,
        phys: Optional[int],
        constant_name: Optional[str] = None,
    ) -> int:
        """Create an entry; returns the *embedded* virtual handle."""
        index = self._pick_index(kind, record, constant_name)
        vid = VID_LAYOUT.pack(kind=KIND_TAGS[kind], index=index)
        if vid in self._entries:
            raise InvalidHandleError(
                f"virtual id {vid:#010x} collision ({kind})"
            )
        entry = VidEntry(
            vid=vid,
            kind=kind,
            record=record,
            phys=phys,
            creation_seq=next(self._seq),
            constant_name=constant_name,
        )
        self._entries[vid] = entry
        if phys is not None:
            self._reverse[(kind, phys)] = vid
        if constant_name is not None:
            self._constants[constant_name] = vid
        return self.embed(vid)

    def _pick_index(
        self, kind: str, record, constant_name: Optional[str]
    ) -> int:
        if constant_name is not None:
            # Constants get name-derived indices: stable across sessions
            # and implementations (needed for cross-impl cold restart).
            base = _stable_hash(f"const/{constant_name}") & INDEX_MASK
            return self._probe(kind, base)
        if kind == HandleKind.COMM and isinstance(record, CommRecord):
            g = self._comm_ggid(record)
            if g is not None:
                base = (g ^ (record.dup_seq * 0x9E37)) & INDEX_MASK
                return self._probe(kind, base)
        if kind == HandleKind.GROUP and isinstance(record, GroupRecord):
            base = ggid_of(record.world_ranks) & INDEX_MASK
            self._charge_ggid(len(record.world_ranks))
            return self._probe(kind, base)
        # requests, datatypes, ops: sequential indices with reuse via probe
        idx = self._next_index[kind]
        self._next_index[kind] = (idx + 1) & INDEX_MASK or 1
        return self._probe(kind, idx)

    def _comm_ggid(self, record: CommRecord) -> Optional[int]:
        """Apply the ggid policy at creation time."""
        if self.ggid_policy == GgidPolicy.EAGER:
            if record.ggid is None:
                record.ggid = ggid_of(record.world_ranks)
                self._charge_ggid(len(record.world_ranks))
            return record.ggid
        if self.ggid_policy == GgidPolicy.HYBRID:
            cached = self._ggid_cache.get(record.world_ranks)
            if cached is not None:
                record.ggid = cached
                return cached
            return None  # first sight: defer to checkpoint time
        return None  # lazy

    def _charge_ggid(self, nranks: int) -> None:
        if self.clock is not None:
            self.clock.advance(GGID_HASH_COST_PER_RANK * nranks, "mana-ggid")

    def _probe(self, kind: str, base: int) -> int:
        """Linear probing for a free index (0 is reserved as null)."""
        tag = KIND_TAGS[kind]
        index = base or 1
        for _ in range(1 << 16):
            vid = VID_LAYOUT.pack(kind=tag, index=index)
            if vid not in self._entries:
                return index
            index = (index + 1) & INDEX_MASK or 1
        raise InvalidHandleError(f"virtual id space exhausted for {kind}")

    def finalize_ggids(self) -> int:
        """Checkpoint-time pass for lazy/hybrid policies: compute any
        deferred ggids.  Returns how many were computed now."""
        computed = 0
        for entry in self._entries.values():
            if entry.kind != HandleKind.COMM:
                continue
            rec = entry.record
            if isinstance(rec, CommRecord) and rec.ggid is None:
                rec.ggid = ggid_of(rec.world_ranks)
                self._charge_ggid(len(rec.world_ranks))
                computed += 1
                if self.ggid_policy == GgidPolicy.HYBRID:
                    self._ggid_cache[rec.world_ranks] = rec.ggid
        return computed

    # ------------------------------------------------------------------
    # translation
    # ------------------------------------------------------------------
    def lookup(self, vhandle: int, kind: Optional[str] = None) -> VidEntry:
        """Virtual handle -> entry.  One lookup returns record, physical
        id, and MANA metadata together (§4.1 problem 3, solved)."""
        entry = self._fast.get(vhandle)
        if entry is not None and (kind is None or entry.kind == kind):
            self.lookup_count += 1
            self.cache_hits += 1
            return entry
        return self._lookup_slow(vhandle, kind)

    def _lookup_slow(self, vhandle: int, kind: Optional[str]) -> VidEntry:
        """The full translation path (and the fast lane's fill side)."""
        self.lookup_count += 1
        vid = self.extract(vhandle)
        entry = self._entries.get(vid)
        if entry is None:
            raise InvalidHandleError(
                f"unknown virtual id {vid:#010x} "
                f"(freed, or a physical id leaked into the upper half?)"
            )
        if kind is not None and entry.kind != kind:
            raise InvalidHandleError(
                f"virtual id {vid:#010x} is a {entry.kind}, not a {kind}"
            )
        self._fast[vhandle] = entry
        return entry

    def phys(self, vhandle: int, kind: Optional[str] = None) -> int:
        p = self._physcache[kind].get(vhandle)
        if p is not None:
            self.lookup_count += 1
            self.cache_hits += 1
            return p
        entry = self._lookup_slow(vhandle, kind)
        if entry.phys is None:
            raise InvalidHandleError(
                f"virtual id {entry.vid:#010x} ({entry.kind}) has no "
                f"physical binding — replay incomplete after restart?"
            )
        self._physcache[kind][vhandle] = entry.phys
        return entry.phys

    def set_phys(self, vhandle: int, phys: Optional[int]) -> None:
        entry = self._lookup_slow(vhandle, None)
        old = entry.phys
        if old is not None:
            self._reverse.pop((entry.kind, old), None)
        entry.phys = phys
        self._invalidate(entry.vid)
        if phys is not None:
            self._reverse[(entry.kind, phys)] = entry.vid

    def vid_of_phys(self, kind: str, phys: int) -> Optional[int]:
        """Reverse translation, O(1) in the new design (§4.1 problem 5:
        the old design's was O(n)).  Returns an embedded handle."""
        self.lookup_count += 1
        vid = self._reverse.get((kind, phys))
        return None if vid is None else self.embed(vid)

    def constant_vid(self, name: str) -> Optional[int]:
        vid = self._constants.get(name)
        return None if vid is None else self.embed(vid)

    def remove(self, vhandle: int) -> None:
        vid = self.extract(vhandle)
        entry = self._entries.pop(vid, None)
        if entry is None:
            raise InvalidHandleError(f"double free of virtual id {vid:#010x}")
        self._invalidate(vid)
        if entry.phys is not None:
            self._reverse.pop((entry.kind, entry.phys), None)
        if entry.constant_name is not None:
            self._constants.pop(entry.constant_name, None)

    # ------------------------------------------------------------------
    # iteration / checkpoint support
    # ------------------------------------------------------------------
    def entries(self, kind: Optional[str] = None) -> Iterator[VidEntry]:
        """Entries in creation order (replay depends on this order).

        ``_entries`` is kept in creation order by construction — attach
        appends, remove pops, and ``__setstate__`` re-sorts once — so no
        per-call sort is needed.
        """
        for entry in list(self._entries.values()):
            if kind is None or entry.kind == kind:
                yield entry

    def __len__(self) -> int:
        return len(self._entries)

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_reverse"] = {}  # physical ids die with the lower half
        state["_seq"] = None
        state["_seq_value"] = max(
            (e.creation_seq for e in self._entries.values()), default=0
        )
        state["clock"] = None
        # The fast lane never survives pickling: a restored table faces a
        # brand-new lower half with all-new physical ids.
        state.pop("_fast", None)
        state.pop("_physcache", None)
        # Volatile instrumentation never enters the image: poll-loop
        # iteration counts are wall-clock-scheduling-dependent, and any
        # such byte in the payload would make format-5 chunk digests —
        # and hence checkpoint durations — nondeterministic.
        state["lookup_count"] = 0
        state["cache_hits"] = 0
        state["cache_epoch"] = 0
        return state

    def __setstate__(self, state):
        seq_value = state.pop("_seq_value", 0)
        self.__dict__.update(state)
        self._seq = itertools.count(seq_value + 1)
        self._init_fast_lane()
        # The one place insertion order can disagree with creation order:
        # images written by older code.  Sort once, here, not per entries().
        self._entries = dict(sorted(
            self._entries.items(), key=lambda kv: kv[1].creation_seq
        ))

    def rebuild_reverse(self) -> None:
        """Recompute the reverse map after replay rebinds physical ids;
        also the restart-replay cache fence."""
        self.invalidate_cache()
        self._reverse = {
            (e.kind, e.phys): e.vid
            for e in self._entries.values()
            if e.phys is not None
        }


# ----------------------------------------------------------------------
# elastic restart: world-size remap (PROTOCOLS.md §12, step 2)
# ----------------------------------------------------------------------
def remap_world(
    table: VirtualIdTable,
    *,
    old_nranks: int,
    new_nranks: int,
    old_rank: int,
    new_rank: int,
    rank_map: Dict[int, int],
    merge_tables=(),
) -> None:
    """Rewrite ``table`` (checkpointed at ``old_rank`` of an
    ``old_nranks``-world) for ``new_rank`` of a ``new_nranks``-world.

    Virtual ids are KEPT — the repartitioned application state still
    holds its old handles, and datatype/op vids are identical across
    ranks by collective creation order, so only the *records* behind the
    ids change.  Only two communicator memberships are remappable: the
    full world (→ the new full world) and this rank's self communicator
    (→ the new rank's self).  Anything else — sub-communicators,
    cartesian topologies, pending or persistent requests — pins the old
    world size and raises :class:`ElasticRestartError`.

    Drain ledgers (``sent_to``/``received_from``) name world ranks.  The
    seed ``table``'s ledgers are always discarded; ``new_rank``'s
    ledgers are rebuilt as the sum, rewritten through ``rank_map`` (old
    rank → its unique inheritor), of the ledgers of ``merge_tables`` —
    the *original, unmodified* tables of exactly the old ranks whose
    identity folds into ``new_rank`` (``plan.merged_into(new_rank)``;
    empty for a grow clone, which inherits no old identity).  Matching
    is by vid: full-world comm vids are constant-name-hashed, hence
    identical across ranks.  The seed table may itself appear in
    ``merge_tables`` — pass a deep copy as ``table`` so the original
    stays pristine for folding.  Self-comm ledgers are dropped on both
    sides (self traffic is rank-internal and balanced), so pairwise
    ``sent_to == received_from`` — the quiesced-checkpoint invariant —
    is preserved globally.
    """
    old_world = tuple(range(old_nranks))
    new_world = tuple(range(new_nranks))

    def remap_membership(ranks: Tuple[int, ...], what: str) -> Tuple[int, ...]:
        if ranks == old_world:
            return new_world
        if ranks == (old_rank,):
            return (new_rank,)
        raise ElasticRestartError(
            f"rank {old_rank}: {what} with membership {ranks} pins the "
            f"old world size ({old_nranks} ranks); elastic restore can "
            f"only remap MPI_COMM_WORLD-sized and self memberships"
        )

    def remap_ledger(ledger: Dict[int, int]) -> Dict[int, int]:
        out: Dict[int, int] = {}
        for old_peer, n in ledger.items():
            peer = rank_map[old_peer]
            out[peer] = out.get(peer, 0) + n
        return out

    def fold_ledgers(rec: CommRecord, vid: int) -> None:
        for other in merge_tables:
            entry = other._entries.get(vid)
            if entry is None or not isinstance(entry.record, CommRecord):
                continue
            if len(entry.record.world_ranks) == 1:
                continue  # merged rank's self comm: dropped entirely
            for peer, n in remap_ledger(entry.record.sent_to).items():
                rec.sent_to[peer] = rec.sent_to.get(peer, 0) + n
            for peer, n in remap_ledger(entry.record.received_from).items():
                rec.received_from[peer] = rec.received_from.get(peer, 0) + n

    for entry in list(table.entries()):
        rec = entry.record
        if isinstance(rec, CommRecord):
            if rec.cart is not None:
                raise ElasticRestartError(
                    f"rank {old_rank}: communicator {rec.name or entry.vid:#x}"
                    f" carries a cartesian topology embedding the "
                    f"{old_nranks}-rank process grid; elastic restore "
                    f"cannot remap it"
                )
            rec.world_ranks = remap_membership(
                rec.world_ranks, f"communicator {rec.name or hex(entry.vid)}"
            )
            if rec.ggid is not None:
                rec.ggid = ggid_of(rec.world_ranks)
            rec.sent_to = {}
            rec.received_from = {}
            fold_ledgers(rec, entry.vid)
        elif isinstance(rec, GroupRecord):
            rec.world_ranks = remap_membership(
                rec.world_ranks, f"group {hex(entry.vid)}"
            )
        elif isinstance(rec, RequestRecord):
            if rec.persistent or not rec.completed:
                raise ElasticRestartError(
                    f"rank {old_rank}: "
                    f"{'persistent' if rec.persistent else 'pending'} "
                    f"request {entry.vid:#x} has endpoints in the old "
                    f"world; elastic restore requires a quiesced "
                    f"checkpoint with no outstanding requests"
                )

    incs: Dict[Tuple[int, ...], int] = {}
    for key, n in table.membership_incarnations.items():
        if key == old_world:
            new_key = new_world
        elif key == (old_rank,):
            new_key = (new_rank,)
        else:
            continue  # freed sub-communicator history: irrelevant now
        incs[new_key] = max(incs.get(new_key, 0), n)
    table.membership_incarnations = incs
    table._ggid_cache = {}
    table.invalidate_cache()
