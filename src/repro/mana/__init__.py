"""MANA — the paper's contribution, reimplemented over simulated MPI.

Subpackage map (one module per paper concept):

* :mod:`repro.mana.records` — per-object reconstruction descriptors
  (the "MANA-internal structure" of §4.2 that stores additional
  MANA-specific information beside the physical id);
* :mod:`repro.mana.virtid` — the NEW virtual-id architecture: a single
  table of entries, 32-bit ids with kind tags and embedded ggids,
  embedded into the first 32 bits of whatever handle type the target
  ``mpi.h`` declares;
* :mod:`repro.mana.legacy` — the OLD design (per-type string-keyed maps,
  int-only virtual ids) kept as the ablation baseline; it fails by
  construction on pointer-handle implementations;
* :mod:`repro.mana.wrappers` — the stub functions of Figure 1: one
  wrapper per MPI call, translating virtual to physical ids on the way
  into the lower half and back on the way out;
* :mod:`repro.mana.drain` — the checkpoint-time quiesce and
  point-to-point drain protocol (send-count alltoall + Iprobe/Recv);
* :mod:`repro.mana.checkpoint` — checkpoint images (save/load, format 4
  monolithic and format 5 incremental);
* :mod:`repro.mana.chunkstore` — the per-job content-addressed store of
  compressed content-defined chunks backing format-5 images;
* :mod:`repro.mana.replay` — restart-time reconstruction of MPI objects
  through standard MPI calls only (§5's required subset);
* :mod:`repro.mana.coordinator` — the checkpoint coordinator state
  machine (the moral equivalent of the DMTCP coordinator).
"""

from repro.mana.virtid import VirtualIdTable, VidEntry, GgidPolicy
from repro.mana.legacy import LegacyVirtualIdMaps
from repro.mana.wrappers import ManaRank, ManaFacade
from repro.mana.coordinator import CheckpointCoordinator, CheckpointKind
from repro.mana.checkpoint import (
    CheckpointImage,
    save_chunked_image,
    save_image,
    load_image,
)
from repro.mana.chunkstore import ChunkStore, chunk_spans, store_for

__all__ = [
    "VirtualIdTable",
    "VidEntry",
    "GgidPolicy",
    "LegacyVirtualIdMaps",
    "ManaRank",
    "ManaFacade",
    "CheckpointCoordinator",
    "CheckpointKind",
    "CheckpointImage",
    "save_image",
    "save_chunked_image",
    "load_image",
    "ChunkStore",
    "chunk_spans",
    "store_for",
]
