"""Checkpoint images: the serialized upper half.

One image file per rank per generation, plus a job-level manifest.
The per-rank payload is **one pickle**: the application object graph, the
virtual-id table, the drain buffer, the resumable-loop tokens, the clock
and RNG state.  Using a single pickle preserves object identity between,
e.g., a pending-receive buffer referenced from a RequestRecord and the
same numpy array inside the application state — they come back as one
object, just as they were one region of upper-half memory in real MANA.

Physical MPI ids are *not* in the image (VidEntry drops them when
pickled); "MANA does not require a special data structure in the
checkpoint image to identify these MANA-internal structures" — the
records are simply part of the saved upper half.

On-disk layout (format 4)::

    MAGIC (8 bytes) | header length (4 bytes, big-endian) | JSON header
    | pickle payload

The JSON header carries the image identity plus ``payload_bytes`` and a
``payload_sha256`` over the pickle blob, so :func:`load_image` detects
truncation and bit rot *before* unpickling.  Writes go to a temp file in
the generation dir and are atomically renamed into place — an
interrupted save never leaves a torn image at the final path.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import struct
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.util.errors import (
    CheckpointError,
    InjectedFault,
    IntegrityError,
    RestartError,
)

FORMAT_VERSION = 4
MAGIC = b"RPCKPTIM"
MANIFEST_NAME = "manifest.json"
_LEN = struct.Struct(">I")


@dataclass
class CheckpointImage:
    """A loaded per-rank image."""

    rank: int
    nranks: int
    impl: str
    kind: str
    generation: int
    app: object
    loops: Dict[str, int]
    vid_table: object          # VirtualIdTable or LegacyVirtualIdMaps
    drain_buffer: object       # DrainBuffer
    clock_state: Dict
    rng_state: Optional[Dict]
    cs_count: int
    epoch: int
    # Size of the image file on disk (set by load_image; used for the
    # restart-time model).  Not serialized.
    stored_bytes: int = 0


def generation_dir(base_dir: str, generation: int) -> str:
    return os.path.join(base_dir, f"ckpt_{generation:04d}")


def rank_image_path(base_dir: str, generation: int, rank: int) -> str:
    return os.path.join(generation_dir(base_dir, generation), f"rank_{rank:05d}.img")


def _encode_image(image: CheckpointImage) -> bytes:
    """MAGIC + length-prefixed JSON header + checksummed pickle payload."""
    upper_half = {
        "app": image.app,
        "loops": image.loops,
        "vid_table": image.vid_table,
        "drain_buffer": image.drain_buffer,
        "clock_state": image.clock_state,
        "rng_state": image.rng_state,
        "cs_count": image.cs_count,
        "epoch": image.epoch,
    }
    try:
        # One pickle for everything that shares objects:
        blob = pickle.dumps(upper_half, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:  # unpicklable app state is a user error
        raise CheckpointError(
            f"rank {image.rank}: upper-half state is not serializable "
            f"({exc}); application state must be plain data + numpy"
        ) from exc
    header = {
        "format_version": FORMAT_VERSION,
        "rank": image.rank,
        "nranks": image.nranks,
        "impl": image.impl,
        "kind": image.kind,
        "generation": image.generation,
        "payload_bytes": len(blob),
        "payload_sha256": hashlib.sha256(blob).hexdigest(),
    }
    hdr = json.dumps(header, sort_keys=True).encode("utf-8")
    return MAGIC + _LEN.pack(len(hdr)) + hdr + blob


def save_image(path: str, image: CheckpointImage, injector=None,
               vtime: float = 0.0) -> int:
    """Write one rank's image; returns its size in bytes.

    Crash-safe: the bytes land in ``<path>.tmp`` and are atomically
    renamed, so the final path either holds a complete verified image or
    nothing.  ``injector`` (a :class:`repro.faults.FaultInjector`) may
    fire a mid-save crash (partial temp file left behind, final path
    untouched) or a disk-full error (temp file removed, final path
    untouched) at this site.
    """
    os.makedirs(os.path.dirname(path), exist_ok=True)
    data = _encode_image(image)
    tmp = path + ".tmp"
    if injector is not None:
        try:
            injector.crash_point("mid-save", image.rank, image.generation,
                                 vtime)
        except InjectedFault:
            # The writer died partway: a torn temp file, never a torn
            # image at the final path.
            with open(tmp, "wb") as f:
                f.write(data[: max(1, len(data) // 2)])
            raise
        if injector.disk_full_hit(image.rank, image.generation):
            # ENOSPC mid-write: the writer cleans up its partial temp
            # file and surfaces the error; the final path is untouched.
            try:
                with open(tmp, "wb") as f:
                    f.write(data[: max(1, len(data) // 2)])
            finally:
                if os.path.exists(tmp):
                    os.remove(tmp)
            raise InjectedFault(
                f"injected disk-full: rank {image.rank} saving "
                f"generation {image.generation}"
            )
    with open(tmp, "wb") as f:
        f.write(data)
    os.replace(tmp, path)  # atomic: no torn images
    if injector is not None:
        # Post-rename bit rot / torn-write simulation on the final file.
        injector.after_save(path, image.rank, image.generation)
    return len(data)


def _read_header(path: str, data: bytes) -> Dict:
    """Parse and sanity-check the length-prefixed JSON header."""
    if len(data) < len(MAGIC) + _LEN.size or not data.startswith(MAGIC):
        raise RestartError(
            f"{path}: unrecognized image header (bad magic); expected "
            f"format {FORMAT_VERSION}"
        )
    (hdr_len,) = _LEN.unpack_from(data, len(MAGIC))
    start = len(MAGIC) + _LEN.size
    if len(data) < start + hdr_len:
        raise IntegrityError(f"{path}: truncated image header")
    try:
        header = json.loads(data[start:start + hdr_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise IntegrityError(f"{path}: corrupt image header ({exc})") from None
    if header.get("format_version") != FORMAT_VERSION:
        raise RestartError(
            f"{path}: image format {header.get('format_version')} "
            f"!= expected {FORMAT_VERSION}"
        )
    return header


def _verify_bytes(path: str, data: bytes) -> Dict:
    """Header + payload integrity check; returns the header."""
    header = _read_header(path, data)
    (hdr_len,) = _LEN.unpack_from(data, len(MAGIC))
    start = len(MAGIC) + _LEN.size + hdr_len
    payload = data[start:]
    if len(payload) != header["payload_bytes"]:
        raise IntegrityError(
            f"{path}: truncated image: payload is {len(payload)} bytes, "
            f"header promises {header['payload_bytes']}"
        )
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header["payload_sha256"]:
        raise IntegrityError(
            f"{path}: image checksum mismatch (bit rot or torn write): "
            f"sha256 {digest[:12]}… != recorded "
            f"{header['payload_sha256'][:12]}…"
        )
    return header


def verify_image(path: str) -> Dict:
    """Integrity-check one image without unpickling its payload.

    Returns the parsed header; raises :class:`IntegrityError` on
    truncation or checksum mismatch, :class:`RestartError` when the file
    is missing or not a recognized image format.
    """
    try:
        with open(path, "rb") as f:
            data = f.read()
    except FileNotFoundError:
        raise RestartError(f"no checkpoint image at {path}") from None
    return _verify_bytes(path, data)


def load_image(path: str) -> CheckpointImage:
    """Load one rank's image, verifying its checksum first."""
    try:
        with open(path, "rb") as f:
            data = f.read()
    except FileNotFoundError:
        raise RestartError(f"no checkpoint image at {path}") from None
    header = _verify_bytes(path, data)
    (hdr_len,) = _LEN.unpack_from(data, len(MAGIC))
    uh = pickle.loads(data[len(MAGIC) + _LEN.size + hdr_len:])
    return CheckpointImage(
        rank=header["rank"],
        nranks=header["nranks"],
        impl=header["impl"],
        kind=header["kind"],
        generation=header["generation"],
        app=uh["app"],
        loops=uh["loops"],
        vid_table=uh["vid_table"],
        drain_buffer=uh["drain_buffer"],
        clock_state=uh["clock_state"],
        rng_state=uh["rng_state"],
        cs_count=uh["cs_count"],
        epoch=uh["epoch"],
        stored_bytes=len(data),
    )


def write_manifest(
    base_dir: str,
    generation: int,
    *,
    nranks: int,
    impl: str,
    kind: str,
    cold_restartable: bool,
    loop_target: Optional[int],
    extra: Optional[Dict] = None,
) -> str:
    """Job-level manifest, written once (by rank 0) per generation.

    Atomic like the images: a generation with a manifest at its final
    path is by construction complete (the manifest is written last,
    after every rank's image passed the saved barrier).
    """
    d = generation_dir(base_dir, generation)
    os.makedirs(d, exist_ok=True)
    path = os.path.join(d, MANIFEST_NAME)
    doc = {
        "format_version": FORMAT_VERSION,
        "generation": generation,
        "nranks": nranks,
        "impl": impl,
        "kind": kind,
        "cold_restartable": cold_restartable,
        "loop_target": loop_target,
        "extra": extra or {},
    }
    tmp = path + ".tmp"
    with open(tmp, "w") as f:
        json.dump(doc, f, indent=2)
    os.replace(tmp, path)
    return path


def read_manifest(base_dir: str, generation: Optional[int] = None) -> Dict:
    """Read a generation's manifest; latest generation when unspecified."""
    if generation is None:
        gens = latest_generations(base_dir)
        if not gens:
            raise RestartError(f"no checkpoints under {base_dir}")
        generation = gens[-1]
    path = os.path.join(generation_dir(base_dir, generation), MANIFEST_NAME)
    try:
        with open(path) as f:
            return json.load(f)
    except FileNotFoundError:
        raise RestartError(f"no manifest at {path}") from None


def latest_generations(base_dir: str) -> List[int]:
    """Sorted generation numbers present under ``base_dir``."""
    if not os.path.isdir(base_dir):
        return []
    gens = []
    for name in os.listdir(base_dir):
        if name.startswith("ckpt_"):
            try:
                gens.append(int(name[len("ckpt_"):]))
            except ValueError:
                continue
    return sorted(gens)


def validate_generation(base_dir: str, generation: int,
                        require_cold: bool = True) -> List[str]:
    """Why generation ``generation`` cannot be restored (empty = it can).

    Checks manifest presence, cold-restartability, completeness (an
    image for every rank), and per-image integrity (magic, length,
    checksum).  Returns human-readable problem strings.
    """
    problems: List[str] = []
    try:
        manifest = read_manifest(base_dir, generation)
    except RestartError as exc:
        return [str(exc)]
    if require_cold and not manifest.get("cold_restartable"):
        problems.append(
            f"generation {generation} is not cold-restartable "
            f"(kind={manifest.get('kind')!r})"
        )
    for rank in range(manifest.get("nranks", 0)):
        path = rank_image_path(base_dir, generation, rank)
        if not os.path.exists(path):
            problems.append(f"no checkpoint image for rank {rank}")
            continue
        try:
            header = verify_image(path)
        except (IntegrityError, RestartError) as exc:
            problems.append(f"rank {rank}: {exc}")
            continue
        if header["generation"] != generation or header["rank"] != rank:
            problems.append(
                f"rank {rank}: image identity mismatch "
                f"(header says rank {header['rank']} "
                f"generation {header['generation']})"
            )
    return problems


def restorable_generations(base_dir: str) -> List[int]:
    """Generations that pass :func:`validate_generation`, ascending."""
    return [
        g for g in latest_generations(base_dir)
        if not validate_generation(base_dir, g)
    ]


def latest_restorable_generation(base_dir: str) -> Optional[int]:
    """Newest complete, integrity-verified, cold-restartable generation
    (None when no generation qualifies)."""
    gens = restorable_generations(base_dir)
    return gens[-1] if gens else None
