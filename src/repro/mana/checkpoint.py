"""Checkpoint images: the serialized upper half.

One image file per rank per generation, plus a job-level manifest.
The per-rank payload is **one pickle**: the application object graph, the
virtual-id table, the drain buffer, the resumable-loop tokens, the clock
and RNG state.  Using a single pickle preserves object identity between,
e.g., a pending-receive buffer referenced from a RequestRecord and the
same numpy array inside the application state — they come back as one
object, just as they were one region of upper-half memory in real MANA.

Physical MPI ids are *not* in the image (VidEntry drops them when
pickled); "MANA does not require a special data structure in the
checkpoint image to identify these MANA-internal structures" — the
records are simply part of the saved upper half.

Two on-disk formats coexist (PROTOCOLS.md §10):

**Format 4** (read-side back-compat, and still the write path when no
chunk store is configured)::

    MAGIC (8 bytes) | header length (4 bytes, big-endian) | JSON header
    | pickle payload

The JSON header carries ``payload_bytes`` and a ``payload_sha256`` over
the pickle blob, so :func:`load_image` detects truncation and bit rot
*before* unpickling.

**Format 5** (incremental, chunked, deduplicated)::

    MAGIC | header length | JSON header | sha256(JSON header) (32 bytes)

The payload is *not* in the image file.  It lives in the per-job
content-addressed :class:`repro.mana.chunkstore.ChunkStore` as
compressed content-defined chunks; the header's ``chunks`` list is the
ordered reference list ``[[sha256, uncompressed_len], ...]``.  A
generation whose application state barely changed re-produces mostly
identical chunk digests, so it writes only the changed chunks — the
incremental checkpointing the paper's Table 3 costs motivate.  The
trailing header digest makes any bit flip in the (small) image file
detectable; payload integrity is verified chunk-by-chunk at load, so a
corrupt chunk names itself instead of failing a full-payload hash.

All writes are atomic (temp file + rename) — an interrupted save never
leaves a torn image or chunk at a final path.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import struct
import threading
import warnings
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.mana import storeio
from repro.mana.journal import JOURNAL_DIRNAME, Journal
from repro.mana.chunkstore import (
    CHUNK_MAX,
    CHUNK_MIN,
    ChunkStore,
    STORE_DIRNAME,
    chunk_spans,
    digest_spans,
    store_for,
)
from repro.util.errors import (
    CheckpointError,
    InjectedFault,
    IntegrityError,
    RestartError,
)

FORMAT_VERSION = 5
#: Formats the read side (load/verify/validate/restart) accepts.
SUPPORTED_FORMATS = (4, 5)
MAGIC = b"RPCKPTIM"
MANIFEST_NAME = "manifest.json"
QUARANTINE_DIRNAME = "quarantine"
#: Base-dir entries that are part of the store layout, not generations.
RESERVED_DIRNAMES = (STORE_DIRNAME, JOURNAL_DIRNAME, QUARANTINE_DIRNAME)
_LEN = struct.Struct(">I")
_HDR_DIGEST_LEN = 32  # raw sha256 appended to format-5 headers


@dataclass
class CheckpointImage:
    """A loaded per-rank image."""

    rank: int
    nranks: int
    impl: str
    kind: str
    generation: int
    app: object
    loops: Dict[str, int]
    vid_table: object          # VirtualIdTable or LegacyVirtualIdMaps
    drain_buffer: object       # DrainBuffer
    clock_state: Dict
    rng_state: Optional[Dict]
    cs_count: int
    epoch: int
    # Logical size of the saved upper half (set by load_image; used for
    # the restart-time model).  Not serialized.
    stored_bytes: int = 0


def generation_dir(base_dir: str, generation: int) -> str:
    return os.path.join(base_dir, f"ckpt_{generation:04d}")


def rank_image_path(base_dir: str, generation: int, rank: int) -> str:
    return os.path.join(generation_dir(base_dir, generation), f"rank_{rank:05d}.img")


def _base_dir_of(path: str) -> str:
    """ckpt base dir for an image path (…/base/ckpt_NNNN/rank_X.img)."""
    return os.path.dirname(os.path.dirname(os.path.abspath(path)))


# ----------------------------------------------------------------------
# directory caches (satellite: no repeated re-scans / re-verifies)
# ----------------------------------------------------------------------
# Both caches are keyed by absolute base dir and guarded by one lock.
#
# * listing cache: latest_generations() re-listed and re-sorted the base
#   dir on every call; now the sorted list is reused while the base
#   dir's mtime_ns is unchanged (creating/removing a generation dir
#   bumps it).
# * validation cache: restorable_generations()/
#   latest_restorable_generation() re-verified every image of every
#   generation per call; now a generation's verdict is reused while its
#   stat signature (file names, sizes, mtimes of the generation dir and
#   the chunk store) is unchanged.  New-generation writes, pruning, GC,
#   and any in-place corruption all change the signature.
_CACHE_LOCK = threading.Lock()
_LIST_CACHE: Dict[str, Tuple[int, List[int]]] = {}
_VALIDATION_CACHE: Dict[str, Dict[Tuple[int, bool], Tuple[tuple, List[str]]]] = {}
_WARNED_ENTRIES: Set[Tuple[str, str]] = set()


def invalidate_checkpoint_caches(base_dir: Optional[str] = None) -> None:
    """Drop cached directory listings and generation verdicts (all
    directories when ``base_dir`` is None).  Called on new-generation
    writes and pruning; exposed for tests and external mutation."""
    with _CACHE_LOCK:
        if base_dir is None:
            _LIST_CACHE.clear()
            _VALIDATION_CACHE.clear()
            return
        key = os.path.abspath(base_dir)
        _LIST_CACHE.pop(key, None)
        _VALIDATION_CACHE.pop(key, None)


def _stat_signature(*dirs: str) -> tuple:
    """(name, size, mtime_ns) of every regular file under ``dirs`` —
    cheap (one scandir per dir) but sensitive to truncation, bit flips
    (mtime), additions, and deletions."""
    sig = []
    for d in dirs:
        try:
            with os.scandir(d) as it:
                for e in it:
                    try:
                        st = e.stat(follow_symlinks=False)
                    except OSError:
                        continue
                    sig.append((d, e.name, st.st_size, st.st_mtime_ns))
        except FileNotFoundError:
            sig.append((d, None, -1, -1))
    return tuple(sorted(sig))


# ----------------------------------------------------------------------
# encode / save
# ----------------------------------------------------------------------
def _pickle_upper_half(image: CheckpointImage) -> bytes:
    upper_half = {
        "app": image.app,
        "loops": image.loops,
        "vid_table": image.vid_table,
        "drain_buffer": image.drain_buffer,
        "clock_state": image.clock_state,
        "rng_state": image.rng_state,
        "cs_count": image.cs_count,
        "epoch": image.epoch,
    }
    try:
        # One pickle for everything that shares objects:
        return pickle.dumps(upper_half, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:  # unpicklable app state is a user error
        raise CheckpointError(
            f"rank {image.rank}: upper-half state is not serializable "
            f"({exc}); application state must be plain data + numpy"
        ) from exc


def _identity_header(image: CheckpointImage, fmt: int) -> Dict:
    return {
        "format_version": fmt,
        "rank": image.rank,
        "nranks": image.nranks,
        "impl": image.impl,
        "kind": image.kind,
        "generation": image.generation,
    }


def _encode_image_v4(image: CheckpointImage) -> bytes:
    """MAGIC + length-prefixed JSON header + checksummed pickle payload."""
    blob = _pickle_upper_half(image)
    header = _identity_header(image, 4)
    header["payload_bytes"] = len(blob)
    header["payload_sha256"] = hashlib.sha256(blob).hexdigest()
    hdr = json.dumps(header, sort_keys=True).encode("utf-8")
    return MAGIC + _LEN.pack(len(hdr)) + hdr + blob


def _encode_image_v5(image: CheckpointImage, blob_len: int,
                     refs: List[List], compress_level: int) -> bytes:
    """MAGIC + length-prefixed JSON header + sha256 over the header."""
    header = _identity_header(image, 5)
    header["payload_bytes"] = blob_len
    header["chunks"] = refs
    header["chunking"] = {
        "min": CHUNK_MIN, "max": CHUNK_MAX, "compress_level": compress_level,
    }
    hdr = json.dumps(header, sort_keys=True).encode("utf-8")
    return MAGIC + _LEN.pack(len(hdr)) + hdr + hashlib.sha256(hdr).digest()


def _injection_points(path: str, data: bytes, image: CheckpointImage,
                      injector, vtime: float) -> None:
    """The save-site fault hooks, shared by both formats.

    A mid-save crash leaves a torn *temp* file (never a torn image at
    the final path); a disk-full error cleans its partial temp file up
    and surfaces the error with the final path untouched.
    """
    tmp = storeio.tmp_name(path)
    try:
        injector.crash_point("mid-save", image.rank, image.generation, vtime)
    except InjectedFault:
        with open(tmp, "wb") as f:
            f.write(data[: max(1, len(data) // 2)])
        raise
    if injector.disk_full_hit(image.rank, image.generation):
        try:
            with open(tmp, "wb") as f:
                f.write(data[: max(1, len(data) // 2)])
        finally:
            if os.path.exists(tmp):
                os.remove(tmp)
        raise InjectedFault(
            f"injected disk-full: rank {image.rank} saving "
            f"generation {image.generation}"
        )


def save_image(path: str, image: CheckpointImage, injector=None,
               vtime: float = 0.0) -> int:
    """Write one rank's image in **format 4**; returns its size in bytes.

    Kept as the storeless write path (and the write-side compatibility
    reference): one monolithic checksummed pickle per file.  Jobs with a
    chunk store use :func:`save_chunked_image` instead.

    Crash-safe: the bytes land in ``<path>.tmp`` and are atomically
    renamed, so the final path either holds a complete verified image or
    nothing.  ``injector`` (a :class:`repro.faults.FaultInjector`) may
    fire a mid-save crash or a disk-full error at this site.
    """
    os.makedirs(os.path.dirname(path), exist_ok=True)
    base = _base_dir_of(path)
    invalidate_checkpoint_caches(base)
    data = _encode_image_v4(image)
    # Intent journal: a crash anywhere inside this mutation leaves the
    # record pending, and fsck rolls the (manifest-less) generation
    # back.  No in-writer rollback on exceptions — the writer is
    # treated as dead and repair is fsck's job (PROTOCOLS.md §13).
    token = Journal(base).begin(
        "image-save", generation=image.generation, rank=image.rank,
        format=4,
    )
    if injector is not None:
        _injection_points(path, data, image, injector, vtime)
    tmp = storeio.tmp_name(path)
    storeio.write_file(tmp, data, site="image.tmp")
    storeio.rename(tmp, path, site="image")  # atomic: no torn images
    Journal(base).retire(token)
    if injector is not None:
        # Post-rename bit rot / torn-write simulation on the final file.
        injector.after_save(path, image.rank, image.generation)
    return len(data)


def save_chunked_image(
    path: str,
    image: CheckpointImage,
    store: ChunkStore,
    injector=None,
    vtime: float = 0.0,
    pool=None,
) -> Dict:
    """Write one rank's image in **format 5**: chunks into ``store``,
    a small header-only image file at ``path``.

    Pickles the upper half and delegates to :func:`save_chunked_blob`;
    see there for the statistics dict and the pool semantics.
    """
    blob = _pickle_upper_half(image)
    return save_chunked_blob(
        path, image, blob, store, injector=injector, vtime=vtime, pool=pool
    )


#: Pooled chunk runs target this many uncompressed bytes each: small
#: enough that a 4 MB rank splits into ~16 interleavable work items,
#: large enough that submit overhead stays under ~1% of the zlib cost.
_RUN_BYTES = 256 * 1024


def _store_chunk_run(store: ChunkStore, view, run) -> Tuple[int, List[str]]:
    """Compress+store one run of (digest, start, end) items serially;
    returns (bytes_written, digests new to the store)."""
    written = 0
    new_digests: List[str] = []
    for d, s, e in run:
        nbytes, reused = store.put_known(d, view[s:e])
        if not reused:
            written += nbytes
            new_digests.append(d)
    return written, new_digests


def save_chunked_blob(
    path: str,
    image: CheckpointImage,
    blob: bytes,
    store: ChunkStore,
    injector=None,
    vtime: float = 0.0,
    pool=None,
    pin: bool = False,
) -> Dict:
    """Write one rank's **format-5** image from an already-pickled
    ``blob`` (the async drainer snapshots the pickle at the barrier and
    encodes it here later).

    Returns the save statistics the dedup reporting and the checkpoint
    cost model consume::

        {"format": 5,
         "payload_bytes":  <uncompressed pickle size>,
         "file_bytes":     <image file size>,
         "chunks_total":   n, "chunks_written": w, "chunks_reused": r,
         "bytes_written":  <image file + newly stored compressed bytes>}

    Only chunks whose content is new to the store are written —
    generation N+1 of a mostly-unchanged rank writes a few chunks plus
    the reference list.  Faults fire *before* any durable write, so an
    injected crash or disk-full leaves no fresh chunks behind.

    With a ``pool`` (:class:`repro.harness.parallel.TaskPool`), the
    unique chunks are fanned out in ~256 KiB runs so chunk writes from
    *all* ranks interleave across the pool's workers — one large rank no
    longer serializes a save round.  With ``pin``, the chunk digests are
    refcount-pinned in the store until the image header reaches its
    final path, keeping a concurrent GC from deleting chunks whose
    referencing header is not yet visible on disk.
    """
    os.makedirs(os.path.dirname(path), exist_ok=True)
    base = _base_dir_of(path)
    invalidate_checkpoint_caches(base)
    spans = chunk_spans(blob)
    view = memoryview(blob)
    digests = digest_spans(view, spans)
    refs = [[d, e - s] for d, (s, e) in zip(digests, spans)]
    data = _encode_image_v5(image, len(blob), refs, store.compress_level)
    # Intent journal: pending record = this image (and the chunks only
    # it references) may be half-published; fsck rolls the generation
    # back unless its manifest made it to disk.  Chunk publishes are
    # covered by this record rather than journaled one-by-one — an
    # orphaned chunk is invisible (content-addressed, unreferenced)
    # until GC or fsck reclaims it.
    token = Journal(base).begin(
        "image-save", generation=image.generation, rank=image.rank,
        format=5,
    )
    if injector is not None:
        _injection_points(path, data, image, injector, vtime)
    seen: Set[str] = set()
    todo: List[Tuple[str, int, int]] = []
    for d, (s, e) in zip(digests, spans):
        if d in seen:
            continue  # intra-payload duplicate: one store write at most
        seen.add(d)
        todo.append((d, s, e))
    if pin:
        store.pin(seen)
    try:
        runs: List[List[Tuple[str, int, int]]] = []
        run: List[Tuple[str, int, int]] = []
        size = 0
        for item in todo:
            run.append(item)
            size += item[2] - item[1]
            if size >= _RUN_BYTES:
                runs.append(run)
                run, size = [], 0
        if run:
            runs.append(run)
        if pool is not None and len(runs) > 1:
            results = pool.gather(
                [(_store_chunk_run, store, view, r) for r in runs]
            )
        else:
            results = [_store_chunk_run(store, view, r) for r in runs]
        written = sum(w for w, _ in results)
        new_digests = [d for _, nd in results for d in nd]
        tmp = storeio.tmp_name(path)
        storeio.write_file(tmp, data, site="image.tmp")
        storeio.rename(tmp, path, site="image")
    finally:
        if pin:
            store.unpin(seen)
    Journal(base).retire(token)
    if injector is not None:
        injector.after_save(path, image.rank, image.generation)
        injector.after_chunked_save(
            store, image.rank, image.generation, new_digests, digests
        )
    reused_count = len(seen) - len(new_digests)
    return {
        "format": 5,
        "payload_bytes": len(blob),
        "file_bytes": len(data),
        "chunks_total": len(refs),
        "chunks_written": len(new_digests),
        "chunks_reused": reused_count,
        "bytes_written": len(data) + written,
    }


# ----------------------------------------------------------------------
# decode / load
# ----------------------------------------------------------------------
def _read_header(path: str, data: bytes) -> Dict:
    """Parse and sanity-check the length-prefixed JSON header."""
    if len(data) < len(MAGIC) + _LEN.size or not data.startswith(MAGIC):
        raise RestartError(
            f"{path}: unrecognized image header (bad magic); expected "
            f"format {FORMAT_VERSION}"
        )
    (hdr_len,) = _LEN.unpack_from(data, len(MAGIC))
    start = len(MAGIC) + _LEN.size
    if len(data) < start + hdr_len:
        raise IntegrityError(f"{path}: truncated image header")
    try:
        header = json.loads(data[start:start + hdr_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise IntegrityError(f"{path}: corrupt image header ({exc})") from None
    fmt = header.get("format_version")
    if fmt not in SUPPORTED_FORMATS:
        raise RestartError(
            f"{path}: image format {fmt} not in supported formats "
            f"{SUPPORTED_FORMATS}"
        )
    return header


def _verify_bytes_v4(path: str, data: bytes, header: Dict) -> None:
    (hdr_len,) = _LEN.unpack_from(data, len(MAGIC))
    start = len(MAGIC) + _LEN.size + hdr_len
    payload = data[start:]
    if len(payload) != header["payload_bytes"]:
        raise IntegrityError(
            f"{path}: truncated image: payload is {len(payload)} bytes, "
            f"header promises {header['payload_bytes']}"
        )
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header["payload_sha256"]:
        raise IntegrityError(
            f"{path}: image checksum mismatch (bit rot or torn write): "
            f"sha256 {digest[:12]}… != recorded "
            f"{header['payload_sha256'][:12]}…"
        )


def _verify_bytes_v5(path: str, data: bytes) -> None:
    """The format-5 image file is header-only; a trailing sha256 over
    the header bytes makes any bit flip in the file detectable."""
    (hdr_len,) = _LEN.unpack_from(data, len(MAGIC))
    start = len(MAGIC) + _LEN.size
    end = start + hdr_len
    if len(data) < end + _HDR_DIGEST_LEN:
        raise IntegrityError(f"{path}: truncated image header digest")
    actual = hashlib.sha256(data[start:end]).digest()
    if actual != data[end:end + _HDR_DIGEST_LEN]:
        raise IntegrityError(
            f"{path}: image header checksum mismatch (bit rot or torn "
            f"write)"
        )


def _verify_bytes(path: str, data: bytes, deep: bool = True) -> Dict:
    """Header + integrity check for either format; returns the header.

    For format 5 with ``deep=True`` every referenced chunk is verified
    in the store (decompress + sha256, memoized per chunk file) — a
    corrupt or missing chunk names its index and digest.
    """
    header = _read_header(path, data)
    if header["format_version"] == 4:
        _verify_bytes_v4(path, data, header)
        return header
    _verify_bytes_v5(path, data)
    if deep:
        store = store_for(_base_dir_of(path))
        refs = header.get("chunks", [])
        for i, (digest, _ulen) in enumerate(refs):
            store.verify(digest, context=f"{path}: chunk {i}/{len(refs)}")
    return header


def verify_image(path: str, deep: bool = True) -> Dict:
    """Integrity-check one image without unpickling its payload.

    Returns the parsed header; raises :class:`IntegrityError` on
    truncation or checksum mismatch (for format 5: of the header file
    or of any referenced chunk), :class:`RestartError` when the file is
    missing or not a recognized image format.
    """
    try:
        with open(path, "rb") as f:
            data = f.read()
    except FileNotFoundError:
        raise RestartError(f"no checkpoint image at {path}") from None
    return _verify_bytes(path, data, deep=deep)


def image_chunk_refs(path: str) -> List[List]:
    """The ``[[digest, ulen], ...]`` reference list of a format-5 image
    (empty for format 4) — used by GC and diagnostics."""
    try:
        with open(path, "rb") as f:
            data = f.read()
    except FileNotFoundError:
        return []
    try:
        header = _read_header(path, data)
    except (RestartError, IntegrityError):
        return []
    return header.get("chunks", []) or []


def load_image(path: str, expect_nranks: Optional[int] = None) -> CheckpointImage:
    """Load one rank's image (either format), verifying integrity first.

    Format 4 verifies the full-payload sha256; format 5 streams the
    payload back chunk by chunk, each chunk verified against its own
    digest — corruption therefore names the chunk index rather than
    just "checksum mismatch somewhere in N hundred MB".

    ``expect_nranks`` fails fast — *before* the expensive unpickle — when
    the image was written at a different world size, instead of letting
    the mismatch surface as an obscure replay or membership error later.
    """
    try:
        with open(path, "rb") as f:
            data = f.read()
    except FileNotFoundError:
        raise RestartError(f"no checkpoint image at {path}") from None
    header = _read_header(path, data)
    if expect_nranks is not None and header["nranks"] != expect_nranks:
        raise RestartError(
            f"{path}: image was checkpointed at nranks="
            f"{header['nranks']} but the restore expects "
            f"{expect_nranks} ranks; restore at the original rank count "
            f"or use elastic restart "
            f"(Launcher.elastic_restart / `python -m repro restart "
            f"--ranks N`) to repartition"
        )
    (hdr_len,) = _LEN.unpack_from(data, len(MAGIC))
    if header["format_version"] == 4:
        _verify_bytes_v4(path, data, header)
        blob = data[len(MAGIC) + _LEN.size + hdr_len:]
        stored = len(data)
    else:
        _verify_bytes_v5(path, data)
        store = store_for(_base_dir_of(path))
        refs = header.get("chunks", [])
        parts = bytearray()
        for i, (digest, ulen) in enumerate(refs):
            chunk = store.get(
                digest, context=f"{path}: chunk {i}/{len(refs)}"
            )
            if len(chunk) != ulen:
                raise IntegrityError(
                    f"{path}: chunk {i}/{len(refs)} {digest[:12]}… length "
                    f"{len(chunk)} != recorded {ulen}"
                )
            parts += chunk
        if len(parts) != header["payload_bytes"]:
            raise IntegrityError(
                f"{path}: reassembled payload is {len(parts)} bytes, "
                f"header promises {header['payload_bytes']}"
            )
        blob = bytes(parts)
        stored = len(data) + len(blob)
    uh = pickle.loads(blob)
    return CheckpointImage(
        rank=header["rank"],
        nranks=header["nranks"],
        impl=header["impl"],
        kind=header["kind"],
        generation=header["generation"],
        app=uh["app"],
        loops=uh["loops"],
        vid_table=uh["vid_table"],
        drain_buffer=uh["drain_buffer"],
        clock_state=uh["clock_state"],
        rng_state=uh["rng_state"],
        cs_count=uh["cs_count"],
        epoch=uh["epoch"],
        stored_bytes=stored,
    )


# ----------------------------------------------------------------------
# manifests
# ----------------------------------------------------------------------
def write_manifest(
    base_dir: str,
    generation: int,
    *,
    nranks: int,
    impl: str,
    kind: str,
    cold_restartable: bool,
    loop_target: Optional[int],
    extra: Optional[Dict] = None,
    dedup: Optional[Dict] = None,
) -> str:
    """Job-level manifest, written once (by rank 0) per generation.

    Atomic like the images: a generation with a manifest at its final
    path is by construction complete (the manifest is written last,
    after every rank's image passed the saved barrier).

    ``dedup`` records the generation's incremental-save effectiveness
    (``chunks_written`` / ``chunks_reused`` / ``bytes_written`` summed
    over ranks); surfaced by ``python -m repro faults`` and
    ``ckpt-bench``.
    """
    d = generation_dir(base_dir, generation)
    os.makedirs(d, exist_ok=True)
    path = os.path.join(d, MANIFEST_NAME)
    doc = {
        "format_version": FORMAT_VERSION,
        "generation": generation,
        "nranks": nranks,
        "impl": impl,
        "kind": kind,
        "cold_restartable": cold_restartable,
        "loop_target": loop_target,
        "extra": extra or {},
    }
    if dedup is not None:
        doc["dedup"] = dedup
    # The manifest is the generation's commit marker: journal the commit
    # intent, publish atomically, retire.  A crash in between leaves a
    # pending record for fsck, which rolls forward (manifest landed) or
    # back (it did not — the generation is invisible either way).
    token = Journal(base_dir).begin("manifest-commit", generation=generation)
    tmp = storeio.tmp_name(path)
    storeio.write_file(
        tmp, json.dumps(doc, indent=2).encode("utf-8"), site="manifest.tmp"
    )
    storeio.rename(tmp, path, site="manifest")
    Journal(base_dir).retire(token)
    # A new generation just completed: cached listings/verdicts for this
    # base dir are stale.
    invalidate_checkpoint_caches(base_dir)
    return path


def read_manifest(base_dir: str, generation: Optional[int] = None) -> Dict:
    """Read a generation's manifest; latest generation when unspecified."""
    if generation is None:
        gens = latest_generations(base_dir)
        if not gens:
            raise RestartError(f"no checkpoints under {base_dir}")
        generation = gens[-1]
    path = os.path.join(generation_dir(base_dir, generation), MANIFEST_NAME)
    try:
        with open(path) as f:
            return json.load(f)
    except FileNotFoundError:
        raise RestartError(f"no manifest at {path}") from None


def latest_generations(base_dir: str) -> List[int]:
    """Sorted generation numbers present under ``base_dir``.

    The scan+sort runs once per directory state: the result is cached
    against the base dir's mtime_ns, which changes whenever an entry is
    added or removed.  Unrecognized entries (anything that is not a
    ``ckpt_<int>`` generation dir or the chunk store) are warned about
    once instead of being skipped silently.
    """
    if not os.path.isdir(base_dir):
        return []
    key = os.path.abspath(base_dir)
    mtime = os.stat(base_dir).st_mtime_ns
    with _CACHE_LOCK:
        cached = _LIST_CACHE.get(key)
        if cached is not None and cached[0] == mtime:
            return list(cached[1])
    gens = []
    for name in os.listdir(base_dir):
        if name.startswith("ckpt_"):
            try:
                gens.append(int(name[len("ckpt_"):]))
                continue
            except ValueError:
                pass
        if name in RESERVED_DIRNAMES or name.endswith(storeio.TMP_SUFFIX):
            continue
        with _CACHE_LOCK:
            if (key, name) in _WARNED_ENTRIES:
                continue
            _WARNED_ENTRIES.add((key, name))
        warnings.warn(
            f"unrecognized entry {name!r} in checkpoint dir {base_dir} "
            f"(expected ckpt_<generation> dirs or one of "
            f"{RESERVED_DIRNAMES})",
            stacklevel=2,
        )
    gens.sort()
    with _CACHE_LOCK:
        _LIST_CACHE[key] = (mtime, list(gens))
    return gens


def _validate_generation_uncached(base_dir: str, generation: int,
                                  require_cold: bool) -> List[str]:
    problems: List[str] = []
    try:
        manifest = read_manifest(base_dir, generation)
    except RestartError as exc:
        return [str(exc)]
    if require_cold and not manifest.get("cold_restartable"):
        problems.append(
            f"generation {generation} is not cold-restartable "
            f"(kind={manifest.get('kind')!r})"
        )
    for rank in range(manifest.get("nranks", 0)):
        path = rank_image_path(base_dir, generation, rank)
        if not os.path.exists(path):
            problems.append(f"no checkpoint image for rank {rank}")
            continue
        try:
            header = verify_image(path)
        except (IntegrityError, RestartError) as exc:
            problems.append(f"rank {rank}: {exc}")
            continue
        if header["generation"] != generation or header["rank"] != rank:
            problems.append(
                f"rank {rank}: image identity mismatch "
                f"(header says rank {header['rank']} "
                f"generation {header['generation']})"
            )
    return problems


def validate_generation(base_dir: str, generation: int,
                        require_cold: bool = True) -> List[str]:
    """Why generation ``generation`` cannot be restored (empty = it can).

    Checks manifest presence, cold-restartability, completeness (an
    image for every rank), and per-image integrity — for format 5 that
    includes every referenced chunk in the store.  Returns
    human-readable problem strings.

    Verdicts are cached per (base dir, generation) against a stat
    signature of the generation dir and the chunk store, so repeated
    ``restorable_generations`` calls stop re-hashing unchanged images;
    any on-disk change (new write, corruption, pruning, GC) changes the
    signature and forces re-validation.
    """
    key = os.path.abspath(base_dir)
    sig = _stat_signature(
        generation_dir(base_dir, generation),
        os.path.join(base_dir, STORE_DIRNAME),
    )
    ckey = (generation, require_cold)
    with _CACHE_LOCK:
        cached = _VALIDATION_CACHE.get(key, {}).get(ckey)
        if cached is not None and cached[0] == sig:
            return list(cached[1])
    problems = _validate_generation_uncached(base_dir, generation,
                                             require_cold)
    with _CACHE_LOCK:
        _VALIDATION_CACHE.setdefault(key, {})[ckey] = (sig, list(problems))
    return problems


def restorable_generations(base_dir: str) -> List[int]:
    """Generations that pass :func:`validate_generation`, ascending."""
    return [
        g for g in latest_generations(base_dir)
        if not validate_generation(base_dir, g)
    ]


def latest_restorable_generation(base_dir: str) -> Optional[int]:
    """Newest complete, integrity-verified, cold-restartable generation
    (None when no generation qualifies)."""
    gens = restorable_generations(base_dir)
    return gens[-1] if gens else None


# ----------------------------------------------------------------------
# pruning + chunk garbage collection
# ----------------------------------------------------------------------
# base_dir -> {generation: pin refcount}.  A pinned generation is one an
# async drainer is still materializing: some of its rank images (and the
# chunks only they reference) may not be on disk yet, so pruning and
# reference scans must treat it as live instead of racing the drainer.
_PIN_LOCK = threading.Lock()
_PINNED_GENS: Dict[str, Dict[int, int]] = {}


def pin_generation(base_dir: str, generation: int) -> None:
    """Mark ``generation`` as in-flight: :func:`prune_generations` will
    not doom it (nor treat it as satisfying ``keep``) until unpinned."""
    key = os.path.abspath(base_dir)
    with _PIN_LOCK:
        gens = _PINNED_GENS.setdefault(key, {})
        gens[generation] = gens.get(generation, 0) + 1


def unpin_generation(base_dir: str, generation: int) -> None:
    key = os.path.abspath(base_dir)
    with _PIN_LOCK:
        gens = _PINNED_GENS.get(key)
        if not gens:
            return
        c = gens.get(generation, 0) - 1
        if c <= 0:
            gens.pop(generation, None)
            if not gens:
                _PINNED_GENS.pop(key, None)
        else:
            gens[generation] = c


def pinned_generations(base_dir: str) -> Set[int]:
    with _PIN_LOCK:
        return set(_PINNED_GENS.get(os.path.abspath(base_dir), ()))


def referenced_chunks(base_dir: str,
                      generations: Optional[Iterable[int]] = None) -> Set[str]:
    """Union of chunk digests referenced by the images of
    ``generations`` (default: every generation present)."""
    if generations is None:
        generations = latest_generations(base_dir)
    refs: Set[str] = set()
    for g in generations:
        d = generation_dir(base_dir, g)
        if not os.path.isdir(d):
            continue
        for name in os.listdir(d):
            if name.startswith("rank_") and name.endswith(".img"):
                for digest, _ulen in image_chunk_refs(os.path.join(d, name)):
                    refs.add(digest)
    return refs


def gc_chunks(base_dir: str) -> Tuple[int, int]:
    """Delete store chunks referenced by no remaining generation;
    returns (chunks removed, compressed bytes reclaimed).

    GC is journaled but idempotent: a crash mid-sweep leaves a pending
    ``gc`` record and some unreferenced chunks undeleted; fsck simply
    redoes the reference scan and finishes the sweep.
    """
    store = store_for(base_dir)
    with storeio.op_context("gc"):
        token = Journal(base_dir).begin("gc")
        removed, reclaimed = store.gc(referenced_chunks(base_dir))
        Journal(base_dir).retire(token)
    if removed:
        invalidate_checkpoint_caches(base_dir)
    return removed, reclaimed


def remove_generation_dir(base_dir: str, generation: int) -> None:
    """Delete one generation directory, manifest **first**.

    Ordering is the crash-safety argument: the manifest is the commit
    marker, so unlinking it first makes the generation invisible before
    any image disappears — a crash mid-removal leaves a manifest-less
    directory that fsck (or a re-run prune) finishes deleting, never a
    manifest pointing at missing images.
    """
    d = generation_dir(base_dir, generation)
    storeio.unlink(os.path.join(d, MANIFEST_NAME), site="manifest")
    try:
        names = sorted(os.listdir(d))
    except FileNotFoundError:
        return
    for name in names:
        if name == MANIFEST_NAME:
            continue
        storeio.unlink(os.path.join(d, name), site="image")
    storeio.rmdir(d, site="generation")


def prune_generations(base_dir: str, keep: int) -> Dict:
    """Remove all but the newest ``keep`` generations, then collect
    unreferenced chunks.  Returns a summary dict.

    Generations pinned by an in-flight async drain are never doomed and
    do not count toward ``keep`` — a half-materialized newest generation
    must not cause the last complete one to be pruned out from under a
    restart.

    The journaled ``prune`` record names the doomed generations up
    front; deletion (manifest-first, see :func:`remove_generation_dir`)
    is re-runnable, so fsck finishes an interrupted prune instead of
    rolling it back.
    """
    if keep < 1:
        raise ValueError(f"keep must be >= 1, got {keep}")
    gens = latest_generations(base_dir)
    pinned = pinned_generations(base_dir)
    prunable = [g for g in gens if g not in pinned]
    doomed = prunable[:-keep] if len(prunable) > keep else []
    with storeio.op_context("prune"):
        token = None
        if doomed:
            token = Journal(base_dir).begin("prune", generations=doomed)
        for g in doomed:
            remove_generation_dir(base_dir, g)
        if doomed:
            invalidate_checkpoint_caches(base_dir)
        removed, reclaimed = gc_chunks(base_dir)
        Journal(base_dir).retire(token)
    return {
        "pruned_generations": doomed,
        "kept_generations": [g for g in gens if g not in doomed],
        "chunks_removed": removed,
        "bytes_reclaimed": reclaimed,
    }
