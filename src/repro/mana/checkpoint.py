"""Checkpoint images: the serialized upper half.

One image file per rank per generation, plus a job-level manifest.
The per-rank payload is **one pickle**: the application object graph, the
virtual-id table, the drain buffer, the resumable-loop tokens, the clock
and RNG state.  Using a single pickle preserves object identity between,
e.g., a pending-receive buffer referenced from a RequestRecord and the
same numpy array inside the application state — they come back as one
object, just as they were one region of upper-half memory in real MANA.

Physical MPI ids are *not* in the image (VidEntry drops them when
pickled); "MANA does not require a special data structure in the
checkpoint image to identify these MANA-internal structures" — the
records are simply part of the saved upper half.
"""

from __future__ import annotations

import json
import os
import pickle
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.util.errors import CheckpointError, RestartError

FORMAT_VERSION = 3
MANIFEST_NAME = "manifest.json"


@dataclass
class CheckpointImage:
    """A loaded per-rank image."""

    rank: int
    nranks: int
    impl: str
    kind: str
    generation: int
    app: object
    loops: Dict[str, int]
    vid_table: object          # VirtualIdTable or LegacyVirtualIdMaps
    drain_buffer: object       # DrainBuffer
    clock_state: Dict
    rng_state: Optional[Dict]
    cs_count: int
    epoch: int
    # Size of the image file on disk (set by load_image; used for the
    # restart-time model).  Not serialized.
    stored_bytes: int = 0


def generation_dir(base_dir: str, generation: int) -> str:
    return os.path.join(base_dir, f"ckpt_{generation:04d}")


def rank_image_path(base_dir: str, generation: int, rank: int) -> str:
    return os.path.join(generation_dir(base_dir, generation), f"rank_{rank:05d}.img")


def save_image(path: str, image: CheckpointImage) -> int:
    """Write one rank's image; returns its size in bytes."""
    os.makedirs(os.path.dirname(path), exist_ok=True)
    payload = {
        "format_version": FORMAT_VERSION,
        "rank": image.rank,
        "nranks": image.nranks,
        "impl": image.impl,
        "kind": image.kind,
        "generation": image.generation,
        # One pickle for everything that shares objects:
        "upper_half": {
            "app": image.app,
            "loops": image.loops,
            "vid_table": image.vid_table,
            "drain_buffer": image.drain_buffer,
            "clock_state": image.clock_state,
            "rng_state": image.rng_state,
            "cs_count": image.cs_count,
            "epoch": image.epoch,
        },
    }
    try:
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:  # unpicklable app state is a user error
        raise CheckpointError(
            f"rank {image.rank}: upper-half state is not serializable "
            f"({exc}); application state must be plain data + numpy"
        ) from exc
    tmp = path + ".tmp"
    with open(tmp, "wb") as f:
        f.write(blob)
    os.replace(tmp, path)  # atomic: no torn images
    return len(blob)


def load_image(path: str) -> CheckpointImage:
    try:
        stored_bytes = os.path.getsize(path)
        with open(path, "rb") as f:
            payload = pickle.load(f)
    except FileNotFoundError:
        raise RestartError(f"no checkpoint image at {path}") from None
    if payload.get("format_version") != FORMAT_VERSION:
        raise RestartError(
            f"{path}: image format {payload.get('format_version')} "
            f"!= expected {FORMAT_VERSION}"
        )
    uh = payload["upper_half"]
    return CheckpointImage(
        rank=payload["rank"],
        nranks=payload["nranks"],
        impl=payload["impl"],
        kind=payload["kind"],
        generation=payload["generation"],
        app=uh["app"],
        loops=uh["loops"],
        vid_table=uh["vid_table"],
        drain_buffer=uh["drain_buffer"],
        clock_state=uh["clock_state"],
        rng_state=uh["rng_state"],
        cs_count=uh["cs_count"],
        epoch=uh["epoch"],
        stored_bytes=stored_bytes,
    )


def write_manifest(
    base_dir: str,
    generation: int,
    *,
    nranks: int,
    impl: str,
    kind: str,
    cold_restartable: bool,
    loop_target: Optional[int],
    extra: Optional[Dict] = None,
) -> str:
    """Job-level manifest, written once (by rank 0) per generation."""
    d = generation_dir(base_dir, generation)
    os.makedirs(d, exist_ok=True)
    path = os.path.join(d, MANIFEST_NAME)
    doc = {
        "format_version": FORMAT_VERSION,
        "generation": generation,
        "nranks": nranks,
        "impl": impl,
        "kind": kind,
        "cold_restartable": cold_restartable,
        "loop_target": loop_target,
        "extra": extra or {},
    }
    with open(path, "w") as f:
        json.dump(doc, f, indent=2)
    return path


def read_manifest(base_dir: str, generation: Optional[int] = None) -> Dict:
    """Read a generation's manifest; latest generation when unspecified."""
    if generation is None:
        gens = latest_generations(base_dir)
        if not gens:
            raise RestartError(f"no checkpoints under {base_dir}")
        generation = gens[-1]
    path = os.path.join(generation_dir(base_dir, generation), MANIFEST_NAME)
    try:
        with open(path) as f:
            return json.load(f)
    except FileNotFoundError:
        raise RestartError(f"no manifest at {path}") from None


def latest_generations(base_dir: str) -> List[int]:
    """Sorted generation numbers present under ``base_dir``."""
    if not os.path.isdir(base_dir):
        return []
    gens = []
    for name in os.listdir(base_dir):
        if name.startswith("ckpt_"):
            try:
                gens.append(int(name[len("ckpt_"):]))
            except ValueError:
                continue
    return sorted(gens)
