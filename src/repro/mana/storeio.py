"""Syscall shim for every durable checkpoint-store mutation.

All file operations that mutate the on-disk checkpoint state — chunk
publishes, image and manifest writes, journal records, GC/prune
unlinks — go through this module instead of calling ``os``/``open``
directly.  That buys two things:

* **Named crash points.**  Each operation fires a *before* and an
  *after* hook around the underlying syscall, named
  ``<context>.<site>.<when>`` (e.g. ``save.chunk.link.before``,
  ``drain.image.rename.after``, ``gc.chunk.unlink.before``).  A
  :class:`repro.faults.CrashPointInjector` installed via
  :func:`set_injector` can enumerate them or kill the mutation at any
  one of them — the adversary of PROTOCOLS.md §13.  With no injector
  installed every hook is a single ``is None`` test.
* **Durability discipline.**  Writers follow write-tmp → fsync →
  publish (rename/link).  In the default ``"fast"`` mode the fsync
  *crash points* still fire (so the sweep covers them) but no real
  ``os.fsync`` is issued — this is a simulation and tier-1 tests must
  stay fast.  ``set_durability("strict")`` turns on real fsyncs of both
  files and parent directories.

The *context* half of a point name comes from a thread-local stack:
:func:`op_context` labels whether the mutation runs under the
synchronous save path (``"save"``, the default), the async drainer
(``"drain"``), chunk garbage collection (``"gc"``), or generation
pruning (``"prune"``).

Crash semantics: a dead injector (one that already fired) raises from
*every* subsequent hook, so once a simulated process dies mid-mutation
its ``finally`` blocks cannot clean up — exactly like a real SIGKILL.
What such a crash leaves behind (stray unique-named ``*.tmp`` files,
pending journal records, manifest-less generations, orphan chunks) is
what :mod:`repro.mana.fsck` repairs.
"""

from __future__ import annotations

import contextlib
import os
import threading
from typing import Optional

#: Suffix every temporary file ends with (unique writer id in front).
TMP_SUFFIX = ".tmp"

_DURABILITY = "fast"          # "fast" | "strict"
_INJECTOR = None              # CrashPointInjector | None
_TLS = threading.local()


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
def set_durability(mode: str) -> None:
    """``"fast"`` (default): fsync crash points fire but no real fsync.
    ``"strict"``: real ``os.fsync`` on files and parent directories."""
    global _DURABILITY
    if mode not in ("fast", "strict"):
        raise ValueError(f"durability mode {mode!r}; expected fast|strict")
    _DURABILITY = mode


def get_durability() -> str:
    return _DURABILITY


def set_injector(injector) -> None:
    """Install (or with ``None`` remove) the crash-point injector
    consulted by every shimmed operation, process-wide."""
    global _INJECTOR
    _INJECTOR = injector


def get_injector():
    return _INJECTOR


# ----------------------------------------------------------------------
# operation context (thread-local)
# ----------------------------------------------------------------------
@contextlib.contextmanager
def op_context(name: str):
    """Label shimmed operations on this thread as part of ``name``
    (``"save"`` / ``"drain"`` / ``"gc"`` / ``"prune"``)."""
    stack = getattr(_TLS, "stack", None)
    if stack is None:
        stack = _TLS.stack = []
    stack.append(name)
    try:
        yield
    finally:
        stack.pop()


def current_context() -> str:
    stack = getattr(_TLS, "stack", None)
    return stack[-1] if stack else "save"


def _point(site: str, when: str) -> None:
    inj = _INJECTOR
    if inj is not None:
        inj.hit(f"{current_context()}.{site}.{when}")


# ----------------------------------------------------------------------
# unique temp names (satellite: no cross-writer tmp collisions)
# ----------------------------------------------------------------------
def tmp_name(path: str) -> str:
    """A per-writer-unique temp name next to ``path``.

    ``<path>.<pid>.<tid>.tmp`` — two processes (or two threads) racing
    on the same final path never clobber each other's temp file, and the
    trailing ``.tmp`` keeps every stray-file filter working."""
    return f"{path}.{os.getpid()}.{threading.get_ident()}{TMP_SUFFIX}"


def tmp_owner_pid(name: str) -> Optional[int]:
    """Parse the writer pid out of a unique temp name (None for legacy
    bare ``foo.tmp`` names with no embedded writer id)."""
    if not name.endswith(TMP_SUFFIX):
        return None
    parts = name[: -len(TMP_SUFFIX)].rsplit(".", 2)
    if len(parts) != 3:
        return None
    try:
        int(parts[2])  # tid
        return int(parts[1])
    except ValueError:
        return None


def tmp_owner_alive(name: str) -> bool:
    """Best-effort: does the process that owns this temp file still
    exist?  Unparseable (legacy) names count as dead — safe to sweep."""
    pid = tmp_owner_pid(name)
    if pid is None or pid == os.getpid():
        # Our own pid: the writer thread may be live; don't sweep.
        return pid == os.getpid()
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (OverflowError, ValueError):
        return False
    except PermissionError:
        return True
    return True


# ----------------------------------------------------------------------
# shimmed operations
# ----------------------------------------------------------------------
def write_file(path: str, data, site: str) -> None:
    """Write ``data`` to ``path`` (write → flush → fsync discipline).

    Crash points: ``<site>.write.before`` (nothing on disk yet),
    ``<site>.write.after`` (bytes written, not yet synced),
    ``<site>.fsync.before`` / ``.after``."""
    _point(site + ".write", "before")
    with open(path, "wb") as f:
        f.write(data)
        _point(site + ".write", "after")
        _point(site + ".fsync", "before")
        if _DURABILITY == "strict":
            f.flush()
            os.fsync(f.fileno())
    _point(site + ".fsync", "after")


def rename(src: str, dst: str, site: str) -> None:
    """Atomic publish via ``os.replace`` with a parent-dir sync in
    strict mode."""
    _point(site + ".rename", "before")
    os.replace(src, dst)
    _point(site + ".rename", "after")
    _dir_sync(os.path.dirname(dst), site)


def link(src: str, dst: str, site: str) -> None:
    """Atomic create-if-absent publish via ``os.link``.

    Propagates :class:`FileExistsError` — the caller's dedup hit."""
    _point(site + ".link", "before")
    os.link(src, dst)
    _point(site + ".link", "after")
    _dir_sync(os.path.dirname(dst), site)


def unlink(path: str, site: str, missing_ok: bool = True) -> None:
    _point(site + ".unlink", "before")
    try:
        os.remove(path)
    except FileNotFoundError:
        if not missing_ok:
            raise
    _point(site + ".unlink", "after")


def rmdir(path: str, site: str) -> None:
    """Remove a (now empty) directory; a non-empty or missing dir is
    tolerated — fsck finishes half-removed generation dirs."""
    _point(site + ".rmdir", "before")
    try:
        os.rmdir(path)
    except OSError:
        pass
    _point(site + ".rmdir", "after")


def _dir_sync(dirpath: str, site: str) -> None:
    """Make a rename/link durable: fsync the containing directory
    (strict mode; the crash points fire in both modes)."""
    _point(site + ".dirsync", "before")
    if _DURABILITY == "strict" and dirpath:
        try:
            fd = os.open(dirpath, os.O_RDONLY)
        except OSError:
            fd = -1
        if fd >= 0:
            try:
                os.fsync(fd)
            finally:
                os.close(fd)
    _point(site + ".dirsync", "after")
