"""Durability intent journal for checkpoint-store mutations.

Every multi-step store mutation — a rank image save (which publishes
chunks and then an image header), a generation manifest commit, chunk
GC, generation pruning, an async drain finalize — *begins* by writing a
tiny JSON record under ``<ckpt_base>/journal/`` and *retires* (unlinks)
it only once the mutation is fully durable.  A crash in between leaves
the record pending, and a pending record is exactly what tells
:mod:`repro.mana.fsck` that the store shut down dirty and which
mutation to roll back or forward:

* ``image-save`` / ``manifest-commit`` / ``drain-finalize`` — if the
  named generation has a manifest at its final path it is complete
  (the manifest is always written last): roll *forward* by retiring the
  record.  Otherwise the generation is invisible by construction: roll
  *back* by deleting its directory.
* ``prune`` — the record names the doomed generations; deletion is
  re-runnable, so fsck simply finishes it.
* ``gc`` — reference-scan-and-delete is idempotent; fsck redoes it.

Record files are uniquely named (``<seq>-<op>-<pid>-<tid>.json``), so
concurrent writers — rank threads in one job, or several jobs sharing a
store — never collide, and the journal needs no locking beyond the
filesystem's.  Records are written through :mod:`repro.mana.storeio`,
so the journal's own syscalls are themselves crash points: a record
torn by a crash *during its own write* parses as ``op="?"`` and is
retired by fsck like any other stale record.
"""

from __future__ import annotations

import itertools
import json
import os
from typing import Dict, List, Optional

from repro.mana import storeio

JOURNAL_DIRNAME = "journal"

#: In-process sequence numbers give records a stable sort order within
#: one writer process; cross-process uniqueness comes from the pid.
_SEQ = itertools.count(1)


class Journal:
    """The intent journal of one checkpoint base directory."""

    def __init__(self, base_dir: str):
        self.base_dir = base_dir
        self.dir = os.path.join(base_dir, JOURNAL_DIRNAME)

    # ------------------------------------------------------------------
    def begin(self, op: str, **fields) -> str:
        """Write a pending record for ``op``; returns the retire token.

        The record is durable (fsync discipline) before this returns, so
        the mutation it announces can never outrun it to disk."""
        os.makedirs(self.dir, exist_ok=True)
        import threading

        name = (
            f"{next(_SEQ):06d}-{op}-{os.getpid()}-"
            f"{threading.get_ident()}.json"
        )
        path = os.path.join(self.dir, name)
        doc = dict(fields)
        doc["op"] = op
        storeio.write_file(
            path,
            json.dumps(doc, sort_keys=True).encode("utf-8"),
            site=f"journal.{op}",
        )
        return path

    def retire(self, token: Optional[str]) -> None:
        """Remove a record once its mutation is fully durable (tolerates
        an already-retired token: fsck may have gotten there first)."""
        if token is None:
            return
        op = self._op_of(token)
        storeio.unlink(token, site=f"journal-retire.{op}", missing_ok=True)

    # ------------------------------------------------------------------
    def pending(self) -> List[Dict]:
        """Pending records, oldest first (sorted by record name).

        A record torn mid-write (crash during the journal's own write)
        comes back as ``{"op": "?"}`` so fsck can still retire it."""
        try:
            names = sorted(os.listdir(self.dir))
        except FileNotFoundError:
            return []
        out: List[Dict] = []
        for name in names:
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.dir, name)
            try:
                with open(path, "rb") as f:
                    doc = json.loads(f.read().decode("utf-8"))
                if not isinstance(doc, dict) or "op" not in doc:
                    doc = {"op": "?"}
            except (OSError, ValueError, UnicodeDecodeError):
                doc = {"op": "?"}
            doc["_token"] = path
            out.append(doc)
        return out

    def retire_matching(self, op: Optional[str] = None,
                        generation: Optional[int] = None) -> int:
        """Retire every pending record matching ``op`` and/or
        ``generation`` (used by the async drainer when it abandons a
        generation: the rollback happened in-process, so the records
        must not trigger an fsck rollback later).  Returns the count."""
        n = 0
        for rec in self.pending():
            if op is not None and rec.get("op") != op:
                continue
            if generation is not None and rec.get("generation") != generation:
                continue
            self.retire(rec["_token"])
            n += 1
        return n

    # ------------------------------------------------------------------
    @staticmethod
    def _op_of(token: str) -> str:
        parts = os.path.basename(token).split("-")
        return parts[1] if len(parts) >= 2 else "?"
